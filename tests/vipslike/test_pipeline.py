"""Tests for the vips-like pipeline: Figure 5 / Figure 7 semantics."""

import pytest

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.tools import Helgrind
from repro.vipslike import SLOT_CELLS, vips_pipeline


def profile(scenario, timeslice=13):
    rms = RmsProfiler(keep_activations=True)
    trms = TrmsProfiler(keep_activations=True)
    machine = scenario.run(tools=EventBus([rms, trms]), timeslice=timeslice)
    return rms, trms, machine


def sizes(profiler, prefix):
    return [
        a.size for a in profiler.db.activations if a.routine.startswith(prefix)
    ]


def test_im_generate_rms_is_window_but_trms_is_strip():
    scenario = vips_pipeline(workers=2, strips_per_worker=6, strip_cells=64, window=16)
    rms, trms, _ = profile(scenario)
    rms_sizes = sizes(rms, "im_generate")
    trms_sizes = sizes(trms, "im_generate")
    assert len(rms_sizes) == 12
    assert set(rms_sizes) == {16}       # constant: the reused window
    assert set(trms_sizes) == {64}      # the true strip size


def test_im_generate_trms_tracks_strip_size():
    for strip_cells in (32, 64, 128):
        scenario = vips_pipeline(workers=1, strips_per_worker=3,
                                 strip_cells=strip_cells, window=16)
        rms, trms, _ = profile(scenario)
        assert set(sizes(trms, "im_generate")) == {strip_cells}
        assert set(sizes(rms, "im_generate")) == {16}


def test_wbuffer_rms_collapses_to_few_values():
    """Figure 7a: every wbuffer activation shows nearly the same rms."""
    scenario = vips_pipeline(workers=3, strips_per_worker=8)
    rms, trms, _ = profile(scenario, timeslice=9)
    rms_sizes = sizes(rms, "wbuffer_write_thread")
    trms_sizes = sizes(trms, "wbuffer_write_thread")
    assert len(rms_sizes) >= 3
    assert len(set(rms_sizes)) <= 2                 # the paper's {67, 69}
    assert all(SLOT_CELLS <= value <= SLOT_CELLS + 8 for value in rms_sizes)
    # Figure 7b/c: the trms exposes batch-size variation
    assert len(set(trms_sizes)) > len(set(rms_sizes))
    assert max(trms_sizes) > max(rms_sizes)


def test_wbuffer_input_is_almost_all_induced():
    scenario = vips_pipeline(workers=2, strips_per_worker=8)
    _, trms, _ = profile(scenario)
    records = [
        a for a in trms.db.activations if a.routine == "wbuffer_write_thread"
    ]
    for record in records:
        induced = record.induced_thread + record.induced_external
        assert induced >= 0.9 * record.size
        assert record.induced_external > 0     # metadata from the device
        assert record.induced_thread > 0       # tiles from the workers


def test_all_strips_reach_the_output_device():
    workers, strips = 2, 5
    scenario = vips_pipeline(workers=workers, strips_per_worker=strips)
    machine = scenario.run(timeslice=13)
    out = machine.devices["imgout"].values
    assert len(out) == workers * strips * SLOT_CELLS


def test_pipeline_is_race_free():
    helgrind = Helgrind()
    scenario = vips_pipeline(workers=2, strips_per_worker=6)
    scenario.run(tools=EventBus([helgrind]), timeslice=7)
    assert helgrind.report()["races"] == []


def test_rejects_bad_window():
    with pytest.raises(ValueError):
        vips_pipeline(strip_cells=50, window=16)


@pytest.mark.parametrize("timeslice", [5, 13, 40])
def test_pipeline_terminates_under_any_timeslice(timeslice):
    scenario = vips_pipeline(workers=2, strips_per_worker=4)
    machine = scenario.run(timeslice=timeslice)
    assert machine.stats.total_blocks > 0
