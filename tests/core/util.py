"""Shared helpers for core tests: trace generation and database snapshots."""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from hypothesis import strategies as st

from repro.core import Event, EventKind, ProfileDatabase

ROUTINES = ["f", "g", "h", "k"]
THREADS = [1, 2, 3]
ADDRESSES = list(range(8))


def db_snapshot(db: ProfileDatabase) -> Dict:
    """Canonical, comparable representation of a profile database."""
    profiles = {}
    for profile in db:
        points = {
            size: (stats.calls, stats.cost_min, stats.cost_max, stats.cost_sum)
            for size, stats in profile.points.items()
        }
        profiles[(profile.routine, profile.thread)] = (
            points,
            profile.calls,
            profile.size_sum,
            profile.cost_sum,
            profile.induced_thread_sum,
            profile.induced_external_sum,
        )
    return {
        "profiles": profiles,
        "activations": sorted(db.activations),
        "global_induced": db.total_induced(),
    }


class _OpsToEvents:
    """Expand a generated op list into a merged event stream.

    Ops are tuples driven by hypothesis; this class tracks per-thread
    pending-call depth so traces stay plausible (returns only close real
    calls — unmatched returns are exercised by dedicated unit tests, not
    by the differential property, where both sides define them away).
    """

    def __init__(self, ops: List[Tuple]):
        self.ops = ops

    def build(self) -> List[Event]:
        events: List[Event] = []
        current_thread = None
        routine_cycle = itertools.cycle(ROUTINES)
        for op in self.ops:
            kind, thread, arg = op
            if thread != current_thread:
                events.append(Event(EventKind.THREAD_SWITCH, thread, thread))
                current_thread = thread
            if kind == "call":
                events.append(Event(EventKind.CALL, thread, next(routine_cycle)))
            elif kind == "return":
                events.append(Event(EventKind.RETURN, thread, None))
            elif kind == "read":
                events.append(Event(EventKind.READ, thread, arg))
            elif kind == "write":
                events.append(Event(EventKind.WRITE, thread, arg))
            elif kind == "kread":
                events.append(Event(EventKind.KERNEL_READ, thread, arg))
            elif kind == "kwrite":
                events.append(Event(EventKind.KERNEL_WRITE, thread, arg))
            elif kind == "cost":
                events.append(Event(EventKind.COST, thread, arg))
        return events


def op_strategy():
    """One random trace operation: (kind, thread, arg)."""
    kinds = st.sampled_from(
        ["call", "call", "return", "read", "read", "read", "write", "write",
         "kread", "kwrite", "cost"]
    )
    return st.tuples(kinds, st.sampled_from(THREADS), st.sampled_from(ADDRESSES))


def events_strategy(max_ops: int = 120):
    """A merged event stream from a random op list."""
    return st.lists(op_strategy(), min_size=0, max_size=max_ops).map(
        lambda ops: _OpsToEvents(ops).build()
    )
