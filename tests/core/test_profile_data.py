"""Unit tests for profile data containers."""

import pytest

from repro.core import ProfileDatabase, RoutineProfile, SizeStats


def test_size_stats_min_max_sum():
    stats = SizeStats()
    for cost in (5, 2, 9):
        stats.add(cost)
    assert stats.calls == 3
    assert stats.cost_min == 2
    assert stats.cost_max == 9
    assert stats.cost_sum == 16
    assert stats.cost_sumsq == 25 + 4 + 81
    assert stats.cost_avg == pytest.approx(16 / 3)


def test_size_stats_merge():
    a, b = SizeStats(), SizeStats()
    a.add(5)
    b.add(1)
    b.add(10)
    a.merge(b)
    assert (a.calls, a.cost_min, a.cost_max, a.cost_sum) == (3, 1, 10, 16)


def test_size_stats_merge_empty_cases():
    a, b = SizeStats(), SizeStats()
    a.merge(b)
    assert a.calls == 0
    b.add(4)
    a.merge(b)
    assert (a.cost_min, a.cost_max) == (4, 4)


def test_routine_profile_points_and_plots():
    profile = RoutineProfile("f", 1)
    profile.add_activation(size=2, cost=10)
    profile.add_activation(size=2, cost=30)
    profile.add_activation(size=5, cost=50)
    assert profile.distinct_sizes == 2
    assert profile.worst_case_points() == [(2, 30), (5, 50)]
    assert profile.average_points() == [(2, 20.0), (5, 50.0)]
    assert profile.workload_points() == [(2, 2), (5, 1)]
    assert profile.calls == 3
    assert profile.size_sum == 9
    assert profile.cost_sum == 90


def test_routine_profile_induced_fraction():
    profile = RoutineProfile("f", 1)
    profile.add_activation(size=4, cost=1, induced_thread=1, induced_external=2)
    assert profile.induced_sum == 3
    assert profile.induced_fraction() == pytest.approx(0.75)
    empty = RoutineProfile("g", 1)
    assert empty.induced_fraction() == 0.0


def test_routine_profile_merge_rejects_other_routine():
    a = RoutineProfile("f", 1)
    b = RoutineProfile("g", 2)
    with pytest.raises(ValueError):
        a.merge(b)


def test_database_add_and_lookup():
    db = ProfileDatabase()
    db.add_activation("f", 1, size=3, cost=7)
    db.add_activation("f", 2, size=3, cost=9)
    db.add_activation("g", 1, size=1, cost=2)
    assert db.routines() == ["f", "g"]
    assert db.threads() == [1, 2]
    assert db.profile("f", 1).calls == 1
    assert db.profile("f", 3) is None
    assert len(db) == 3
    assert len(db.routine_profiles("f")) == 2


def test_database_merged_combines_threads():
    db = ProfileDatabase()
    db.add_activation("f", 1, size=3, cost=7, induced_thread=1)
    db.add_activation("f", 2, size=3, cost=9, induced_external=2)
    db.add_activation("f", 2, size=4, cost=1)
    merged = db.merged()
    profile = merged["f"]
    assert profile.thread == -1
    assert profile.calls == 3
    assert profile.distinct_sizes == 2
    assert profile.points[3].cost_max == 9
    assert profile.induced_thread_sum == 1
    assert profile.induced_external_sum == 2


def test_database_keep_activations():
    db = ProfileDatabase(keep_activations=True)
    db.add_activation("f", 1, size=3, cost=7)
    assert len(db.activations) == 1
    record = db.activations[0]
    assert (record.routine, record.thread, record.size, record.cost) == ("f", 1, 3, 7)


def test_database_totals():
    db = ProfileDatabase()
    db.add_activation("f", 1, size=3, cost=7)
    db.add_activation("g", 1, size=5, cost=7)
    db.global_induced_thread = 4
    db.global_induced_external = 1
    assert db.total_size_sum() == 8
    assert db.total_induced() == (4, 1)
