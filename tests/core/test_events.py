"""Unit tests for the trace event model and merging."""

import itertools

import pytest

from repro.core import Event, EventBus, EventKind, Trace, TraceConsumer, merge_traces, replay


class Recorder(TraceConsumer):
    """Collects callback invocations as tuples for assertions."""

    def __init__(self):
        self.log = []

    def on_start(self):
        self.log.append(("start",))

    def on_call(self, thread, routine):
        self.log.append(("call", thread, routine))

    def on_return(self, thread):
        self.log.append(("return", thread))

    def on_read(self, thread, addr):
        self.log.append(("read", thread, addr))

    def on_write(self, thread, addr):
        self.log.append(("write", thread, addr))

    def on_kernel_read(self, thread, addr):
        self.log.append(("kread", thread, addr))

    def on_kernel_write(self, thread, addr):
        self.log.append(("kwrite", thread, addr))

    def on_thread_switch(self, thread):
        self.log.append(("switch", thread))

    def on_cost(self, thread, units):
        self.log.append(("cost", thread, units))

    def on_finish(self):
        self.log.append(("finish",))


def test_trace_records_events_in_order():
    trace = Trace(7)
    trace.call("f")
    trace.read(3)
    trace.write(4)
    trace.ret()
    kinds = [event.kind for event in trace]
    assert kinds == [EventKind.CALL, EventKind.READ, EventKind.WRITE, EventKind.RETURN]
    assert all(event.thread == 7 for event in trace)


def test_trace_multi_cell_access_expands_per_cell():
    trace = Trace(1)
    trace.read(10, size=3)
    trace.kernel_write(20, size=2)
    addrs = [event.arg for event in trace]
    assert addrs == [10, 11, 12, 20, 21]


def test_trace_times_are_monotonic():
    trace = Trace(1)
    for _ in range(5):
        trace.read(0)
    times = [event.time for event in trace]
    assert times == sorted(times)
    assert len(set(times)) == len(times)


def test_merge_inserts_thread_switches():
    clock = itertools.count(1)
    tick = lambda: next(clock)
    t1, t2 = Trace(1, clock=tick), Trace(2, clock=tick)
    t1.call("f")
    t2.call("g")
    t1.read(0)
    merged = merge_traces([t1, t2])
    switches = [event for event in merged if event.kind == EventKind.THREAD_SWITCH]
    assert [event.arg for event in switches] == [1, 2, 1]


def test_merge_orders_by_shared_clock():
    clock = itertools.count(1)
    tick = lambda: next(clock)
    t1, t2 = Trace(1, clock=tick), Trace(2, clock=tick)
    t1.write(0)   # time 1
    t2.write(1)   # time 2
    t1.write(2)   # time 3
    merged = [event for event in merge_traces([t1, t2]) if event.kind == EventKind.WRITE]
    assert [event.arg for event in merged] == [0, 1, 2]


def test_merge_breaks_ties_deterministically():
    t1, t2 = Trace(1), Trace(2)   # independent clocks: both start at 1
    t1.write(0)
    t2.write(1)
    merged = [event for event in merge_traces([t1, t2]) if event.kind == EventKind.WRITE]
    # tie at time 1 broken by thread id
    assert [event.thread for event in merged] == [1, 2]


def test_merge_empty():
    assert merge_traces([]) == []
    assert merge_traces([Trace(1)]) == []


def test_replay_dispatches_every_kind():
    recorder = Recorder()
    events = [
        Event(EventKind.THREAD_SWITCH, 1, 1),
        Event(EventKind.CALL, 1, "f"),
        Event(EventKind.READ, 1, 5),
        Event(EventKind.WRITE, 1, 6),
        Event(EventKind.KERNEL_READ, 1, 7),
        Event(EventKind.KERNEL_WRITE, 1, 8),
        Event(EventKind.COST, 1, 3),
        Event(EventKind.RETURN, 1, None),
    ]
    replay(events, recorder)
    assert recorder.log == [
        ("start",),
        ("switch", 1),
        ("call", 1, "f"),
        ("read", 1, 5),
        ("write", 1, 6),
        ("kread", 1, 7),
        ("kwrite", 1, 8),
        ("cost", 1, 3),
        ("return", 1),
        ("finish",),
    ]


def test_event_bus_fans_out_and_nests():
    inner1, inner2, outer = Recorder(), Recorder(), Recorder()
    bus = EventBus([inner1])
    bus.attach(EventBus([inner2]))
    bus.attach(outer)
    replay([Event(EventKind.READ, 1, 0)], bus)
    for recorder in (inner1, inner2, outer):
        assert ("read", 1, 0) in recorder.log
        assert recorder.log[0] == ("start",)
        assert recorder.log[-1] == ("finish",)


def test_event_bus_space_is_sum():
    class Sized(TraceConsumer):
        def __init__(self, n):
            self.n = n

        def space_bytes(self):
            return self.n

    bus = EventBus([Sized(10), Sized(32)])
    assert bus.space_bytes() == 42


def test_default_consumer_ignores_everything():
    consumer = TraceConsumer()
    replay([Event(EventKind.READ, 1, 0), Event(EventKind.CALL, 1, "f")], consumer)
    assert consumer.space_bytes() == 0


def test_trace_len_and_iter():
    trace = Trace(1)
    trace.call("f")
    trace.cost(2)
    assert len(trace) == 2
    assert [event.kind for event in trace] == [EventKind.CALL, EventKind.COST]
