"""Unit and property tests for the shadow memories."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DictShadow, ShadowMemory


def test_default_is_zero():
    shadow = ShadowMemory()
    assert shadow.get(0) == 0
    assert shadow.get(10**12) == 0
    assert shadow.chunks_allocated == 0


def test_set_get_roundtrip():
    shadow = ShadowMemory(chunk_size=16, secondary_size=4)
    shadow.set(5, 42)
    shadow.set(63, 7)       # same secondary, different chunk
    shadow.set(64, 9)       # next secondary
    assert shadow.get(5) == 42
    assert shadow.get(63) == 7
    assert shadow.get(64) == 9
    assert shadow.get(6) == 0


def test_dict_style_access():
    shadow = ShadowMemory()
    shadow[123] = 99
    assert shadow[123] == 99


def test_overwrite():
    shadow = ShadowMemory()
    shadow.set(1, 5)
    shadow.set(1, 6)
    assert shadow.get(1) == 6


def test_chunk_accounting_is_lazy():
    shadow = ShadowMemory(chunk_size=8, secondary_size=4)
    assert shadow.chunks_allocated == 0
    shadow.set(0, 1)
    assert shadow.chunks_allocated == 1
    shadow.set(7, 1)      # same chunk
    assert shadow.chunks_allocated == 1
    shadow.set(8, 1)      # next chunk
    assert shadow.chunks_allocated == 2
    assert shadow.space_bytes() == 2 * 8 * ShadowMemory.ENTRY_BYTES


def test_reading_does_not_allocate():
    shadow = ShadowMemory(chunk_size=8, secondary_size=4)
    for addr in range(100):
        shadow.get(addr)
    assert shadow.chunks_allocated == 0


def test_items_yields_nonzero_entries():
    shadow = ShadowMemory(chunk_size=4, secondary_size=2)
    shadow.set(3, 30)
    shadow.set(9, 90)
    shadow.set(9, 0)   # explicitly zeroed entries are skipped
    assert dict(shadow.items()) == {3: 30}


def test_clear():
    shadow = ShadowMemory(chunk_size=4, secondary_size=2)
    shadow.set(1, 1)
    shadow.clear()
    assert shadow.get(1) == 0
    assert shadow.chunks_allocated == 0


def test_sparse_far_addresses():
    shadow = ShadowMemory(chunk_size=16, secondary_size=4)
    far = 10**15
    shadow.set(far, 77)
    assert shadow.get(far) == 77
    assert shadow.chunks_allocated == 1


def test_invalid_geometry_rejected():
    import pytest

    with pytest.raises(ValueError):
        ShadowMemory(chunk_size=0)
    with pytest.raises(ValueError):
        ShadowMemory(secondary_size=-1)


def test_dict_shadow_matches_interface():
    shadow = DictShadow()
    shadow.set(4, 2)
    shadow[5] = 3
    assert shadow.get(4) == 2
    assert shadow[5] == 3
    assert dict(shadow.items()) == {4: 2, 5: 3}
    shadow.set(4, 0)
    assert dict(shadow.items()) == {5: 3}
    assert shadow.space_bytes() == DictShadow.ENTRY_BYTES
    shadow.clear()
    assert shadow.get(5) == 0


@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=2**31)),
        max_size=80,
    )
)
def test_shadow_memory_equivalent_to_dict(writes):
    """Property: the 3-level table behaves exactly like a plain dict."""
    chunked = ShadowMemory(chunk_size=8, secondary_size=4)
    reference = DictShadow()
    for addr, value in writes:
        chunked.set(addr, value)
        reference.set(addr, value)
    for addr in range(501):
        assert chunked.get(addr) == reference.get(addr)
    assert dict(chunked.items()) == dict(reference.items())
