"""Unit tests for counter-overflow renumbering (Section 4.4)."""

import itertools

from repro.core import (
    DictShadow,
    NaiveTrms,
    RmsProfiler,
    Trace,
    TrmsProfiler,
    merge_traces,
    renumber_timestamps,
    replay,
)


class _State:
    """Minimal stand-in for a profiler thread state."""

    def __init__(self, stack_ts, cells):
        from repro.core import ShadowStack

        self.stack = ShadowStack()
        for index, ts in enumerate(stack_ts):
            self.stack.push(f"r{index}", ts, 0)
        self.ts = DictShadow()
        for addr, value in cells.items():
            self.ts.set(addr, value)


def test_routine_stamps_become_multiples_of_three_in_order():
    state = _State([5, 17, 90], {})
    new_count = renumber_timestamps([state], None)
    stamps = [entry.ts for entry in state.stack.entries]
    assert stamps == [3, 6, 9]
    assert new_count > max(stamps)


def test_ranks_are_global_across_threads():
    state_a = _State([5, 40], {})
    state_b = _State([20], {})
    renumber_timestamps([state_a, state_b], None)
    assert [entry.ts for entry in state_a.stack.entries] == [3, 9]
    assert [entry.ts for entry in state_b.stack.entries] == [6]


def test_memory_stamp_order_vs_stack_preserved_without_wts():
    state = _State([10, 20, 30], {1: 5, 2: 10, 3: 15, 4: 30, 5: 99})
    renumber_timestamps([state], None)
    stack_ts = [entry.ts for entry in state.stack.entries]   # [3, 6, 9]
    assert state.ts.get(1) < stack_ts[0]
    assert stack_ts[0] <= state.ts.get(2) < stack_ts[1]
    assert stack_ts[0] <= state.ts.get(3) < stack_ts[1]
    assert stack_ts[2] <= state.ts.get(4)
    assert stack_ts[2] <= state.ts.get(5)
    # nonzero stamps never collapse onto the 0 sentinel
    for addr in (1, 2, 3, 4, 5):
        assert state.ts.get(addr) > 0


def test_wts_relations_preserved_in_same_window():
    # Window between stack stamps 10 and 20; three cells covering the
    # three residue cases of the paper.
    state = _State([10, 20], {1: 12, 2: 12, 3: 15})
    wts = DictShadow()
    wts.set(1, 12)   # ts == wts: thread was last writer
    wts.set(2, 14)   # ts <  wts: foreign write after access
    wts.set(3, 12)   # ts >  wts: thread read after the write
    renumber_timestamps([state], wts)
    assert state.ts.get(1) == wts.get(1)
    assert state.ts.get(2) < wts.get(2)
    assert state.ts.get(3) > wts.get(3)
    # all still inside the first window [3, 6)
    for addr in (1, 2, 3):
        assert 3 <= state.ts.get(addr) < 6
        assert 3 <= wts.get(addr) < 6


def test_wts_relations_preserved_across_windows():
    state = _State([10, 20, 30], {1: 12, 2: 25})
    wts = DictShadow()
    wts.set(1, 25)   # write in a later window than the access
    wts.set(2, 12)   # write in an earlier window
    renumber_timestamps([state], wts)
    assert state.ts.get(1) < wts.get(1)
    assert state.ts.get(2) > wts.get(2)


def test_never_written_cells_keep_zero_wts():
    state = _State([10], {1: 15})
    wts = DictShadow()
    renumber_timestamps([state], wts)
    assert wts.get(1) == 0
    assert state.ts.get(1) >= 3


def test_new_count_exceeds_every_assigned_stamp():
    state = _State([10, 20], {1: 15, 2: 25})
    wts = DictShadow()
    wts.set(1, 16)
    new_count = renumber_timestamps([state], wts)
    stamps = [entry.ts for entry in state.stack.entries]
    stamps += [state.ts.get(1), state.ts.get(2), wts.get(1)]
    assert new_count > max(stamps)


def test_profiler_renumbers_and_stays_correct_on_long_run():
    """A long single-thread run under a tiny counter: many renumberings,
    same answer as the oracle."""
    trace = Trace(1)
    trace.call("main")
    for i in range(60):
        trace.call("work")
        trace.read(i % 7)
        trace.write(i % 5)
        trace.ret()
    trace.ret()
    events = merge_traces([trace])

    bounded = TrmsProfiler(keep_activations=True, max_count=25)
    oracle = NaiveTrms(keep_activations=True)
    replay(events, bounded)
    replay(events, oracle)
    assert bounded.renumber_count >= 3
    assert [a.size for a in bounded.db.activations] == [
        a.size for a in oracle.db.activations
    ]


def test_rms_profiler_renumbering_smoke():
    trace = Trace(1)
    trace.call("main")
    for i in range(40):
        trace.call("f")
        trace.read(i % 3)
        trace.ret()
    trace.ret()
    profiler = RmsProfiler(keep_activations=True, max_count=12)
    replay(merge_traces([trace]), profiler)
    assert profiler.renumber_count > 0
    main = [a for a in profiler.db.activations if a.routine == "main"][0]
    assert main.size == 3


def test_renumbering_counts_are_reported():
    trace = Trace(1)
    for _ in range(30):
        trace.call("f")
        trace.ret()
    profiler = TrmsProfiler(max_count=10)
    replay(merge_traces([trace]), profiler)
    assert profiler.renumber_count >= 2
