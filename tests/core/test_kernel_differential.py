"""Differential property tests: flat-array kernel vs classic vs online.

The flat kernel (:mod:`repro.core.flatkernel`) re-implements the offline
TRMS hot loop over columnar event batches — packed latest-write shadow,
flat array stacks, single interleaved pass.  Its contract is *bit
identity*: on any trace hypothesis can dream up, it must produce exactly
the database of the classic two-pass machinery and of the online
:class:`~repro.core.trms.TrmsProfiler` — including under timestamp
renumbering (Section 4.4), context sensitivity, and sharded thread
assignments.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProfileDatabase, TrmsProfiler, analyze_trace, replay
from repro.core.flatkernel import FlatAnalyzer, analyze_events_flat

from .util import THREADS, db_snapshot, events_strategy


@settings(max_examples=200, deadline=None)
@given(events_strategy())
def test_flat_kernel_matches_classic_offline(events):
    flat = analyze_trace(events, keep_activations=True, kernel="flat")
    classic = analyze_trace(events, keep_activations=True, kernel="classic")
    assert db_snapshot(flat) == db_snapshot(classic)


@settings(max_examples=150, deadline=None)
@given(events_strategy())
def test_flat_kernel_matches_online_profiler(events):
    flat = analyze_trace(events, keep_activations=True, kernel="flat")
    online = TrmsProfiler(keep_activations=True)
    replay(events, online)
    assert db_snapshot(flat) == db_snapshot(online.db)


@settings(max_examples=120, deadline=None)
@given(events_strategy())
def test_flat_kernel_matches_online_under_renumbering(events):
    """The online profiler under a tiny counter bound renumbers its
    timestamps constantly (Section 4.4); the flat kernel uses unbounded
    trace positions and must still land on the identical profiles —
    the counter-overflow edge cases cancel out or neither is exact."""
    flat = analyze_trace(events, keep_activations=True, kernel="flat")
    online = TrmsProfiler(keep_activations=True, max_count=40)
    replay(events, online)
    assert db_snapshot(flat) == db_snapshot(online.db)


@settings(max_examples=120, deadline=None)
@given(events_strategy())
def test_flat_kernel_context_sensitive_matches_classic(events):
    flat = analyze_trace(events, keep_activations=True, kernel="flat",
                         context_sensitive=True)
    classic = analyze_trace(events, keep_activations=True, kernel="classic",
                            context_sensitive=True)
    assert db_snapshot(flat) == db_snapshot(classic)


@settings(max_examples=100, deadline=None)
@given(events_strategy())
def test_flat_kernel_dumps_are_byte_identical(events):
    """The CI gate compares SHA-256 of profile dumps, so equality has to
    hold at the *byte* level of ``save_profile``, not just structurally."""
    from repro.farm import save_profile

    flat_dump = io.StringIO()
    classic_dump = io.StringIO()
    save_profile(analyze_trace(events, kernel="flat"), flat_dump)
    save_profile(analyze_trace(events, kernel="classic"), classic_dump)
    assert flat_dump.getvalue() == classic_dump.getvalue()


@settings(max_examples=100, deadline=None)
@given(events_strategy(), st.integers(min_value=1, max_value=len(THREADS)))
def test_flat_kernel_sharded_threads_merge_to_whole(events, split):
    """Analysing disjoint thread subsets with separate FlatAnalyzers
    (the farm's sharding) and merging must equal the whole-trace run —
    foreign threads contribute exactly their writes, nothing else."""
    from repro.farm import merge_databases
    from repro.farm.binfmt import columns_from_events

    whole = ProfileDatabase(keep_activations=True)
    analyze_events_flat(events, whole)

    threads_seen = sorted({event.thread for event in events})
    shards = [threads_seen[:split], threads_seen[split:]]
    columns, names = columns_from_events(events)
    partials = []
    for shard_threads in shards:
        db = ProfileDatabase(keep_activations=True)
        analyzer = FlatAnalyzer(shard_threads, names, db)
        analyzer.feed(columns)
        analyzer.finish()
        partials.append(db)
    merged = merge_databases(partials, keep_activations=True)
    assert db_snapshot(merged) == db_snapshot(whole)
