"""Unit tests for the shadow run-time stack."""

import pytest

from repro.core import ShadowStack


def make_stack(timestamps):
    stack = ShadowStack()
    for index, ts in enumerate(timestamps):
        stack.push(f"r{index}", ts, cost=0)
    return stack


def test_push_pop_lifo():
    stack = ShadowStack()
    stack.push("a", 1, 0)
    stack.push("b", 2, 5)
    assert len(stack) == 2
    assert stack.top.rtn == "b"
    entry = stack.pop()
    assert entry.rtn == "b"
    assert entry.cost == 5
    assert stack.top.rtn == "a"


def test_parent():
    stack = make_stack([1, 4, 9])
    assert stack.parent().rtn == "r1"
    stack.pop()
    stack.pop()
    assert stack.parent() is None


def test_bool_and_len():
    stack = ShadowStack()
    assert not stack
    stack.push("a", 1, 0)
    assert stack
    assert len(stack) == 1


def test_find_latest_not_after_exact_and_between():
    stack = make_stack([2, 5, 9])
    assert stack.find_latest_not_after(9).rtn == "r2"
    assert stack.find_latest_not_after(8).rtn == "r1"
    assert stack.find_latest_not_after(5).rtn == "r1"
    assert stack.find_latest_not_after(4).rtn == "r0"
    assert stack.find_latest_not_after(2).rtn == "r0"
    assert stack.find_latest_not_after(100).rtn == "r2"


def test_find_latest_not_after_before_everything():
    stack = make_stack([10, 20])
    assert stack.find_latest_not_after(9) is None
    assert stack.find_latest_not_after(0) is None


def test_find_latest_not_after_empty_stack():
    assert ShadowStack().find_latest_not_after(5) is None


def test_find_latest_not_after_single_entry():
    stack = make_stack([7])
    assert stack.find_latest_not_after(7).rtn == "r0"
    assert stack.find_latest_not_after(6) is None


@pytest.mark.parametrize("depth", [1, 2, 3, 17, 64])
def test_find_latest_linear_reference(depth):
    """Binary search agrees with a linear scan at every query point."""
    timestamps = [3 * i + 1 for i in range(depth)]
    stack = make_stack(timestamps)
    for query in range(3 * depth + 3):
        expected = None
        for entry in stack.entries:
            if entry.ts <= query:
                expected = entry
        assert stack.find_latest_not_after(query) is expected


def test_suffix_partial_sum():
    stack = make_stack([1, 2, 3])
    stack.entries[0].partial = 5
    stack.entries[1].partial = -1
    stack.entries[2].partial = 2
    assert stack.suffix_partial_sum(0) == 6
    assert stack.suffix_partial_sum(1) == 1
    assert stack.suffix_partial_sum(2) == 2
    assert stack.suffix_partial_sum(3) == 0


def test_entry_carries_attribution_counters():
    stack = make_stack([1])
    entry = stack.top
    assert entry.induced_thread == 0
    assert entry.induced_external == 0
    entry.induced_thread += 2
    entry.induced_external += 1
    assert (entry.induced_thread, entry.induced_external) == (2, 1)
