"""Unit tests for the cost-model abstraction."""

from repro.core import BasicBlockCost, CostModel, InstructionCost, OperationCost


def test_base_model_charges_nothing():
    model = CostModel()
    assert model.block() == 0
    assert model.instruction() == 0
    assert model.operation() == 0


def test_basic_block_model():
    model = BasicBlockCost()
    assert model.block() == 1
    assert model.instruction() == 0
    assert model.name == "basic-blocks"


def test_instruction_model():
    model = InstructionCost()
    assert model.block() == 0
    assert model.instruction() == 1


def test_operation_model():
    model = OperationCost()
    assert model.operation() == 1
    assert model.block() == 0
