"""Stepwise verification of Invariant 2 (the algorithm's heart).

The differential tests compare final profile databases; these go finer:
after *every single event*, for *every pending activation* of every
thread, the suffix sum of shadow-stack partials must equal the true
(t)rms of that activation so far — computed independently by the naive
oracle, whose frames hold the explicit access sets of Figure 10.
"""

from hypothesis import given, settings

from repro.core import NaiveRms, NaiveTrms, RmsProfiler, TrmsProfiler
from repro.core.events import _DISPATCH

from .util import events_strategy


def step_both(events, fast, oracle):
    """Drive both consumers one event at a time, checking after each."""
    fast.on_start()
    oracle.on_start()
    for event in events:
        _DISPATCH[event.kind](fast, event)
        _DISPATCH[event.kind](oracle, event)
        check_invariant(fast, oracle)
    fast.on_finish()
    oracle.on_finish()


def check_invariant(fast, oracle):
    for thread, state in fast.states.items():
        oracle_stack = oracle._stacks.get(thread)
        assert oracle_stack is not None, thread
        assert len(oracle_stack) == len(state.stack)
        for index, oracle_frame in enumerate(oracle_stack):
            suffix = state.stack.suffix_partial_sum(index)
            assert suffix == oracle_frame.size, (
                thread, index, oracle_frame.rtn, suffix, oracle_frame.size
            )


@settings(max_examples=60, deadline=None)
@given(events_strategy(max_ops=60))
def test_invariant2_holds_after_every_event_trms(events):
    step_both(events, TrmsProfiler(), NaiveTrms())


@settings(max_examples=60, deadline=None)
@given(events_strategy(max_ops=60))
def test_invariant2_holds_after_every_event_rms(events):
    step_both(events, RmsProfiler(), NaiveRms())


@settings(max_examples=40, deadline=None)
@given(events_strategy(max_ops=60))
def test_invariant2_under_renumbering(events):
    """Renumbering must never disturb the partials, only the stamps."""
    step_both(events, TrmsProfiler(max_count=15), NaiveTrms())
