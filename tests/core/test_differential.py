"""Differential property tests: timestamping algorithm vs. Figure 10 oracle.

These are the highest-value tests in the suite: hypothesis generates
arbitrary interleaved multi-thread traces (calls, returns, reads, writes,
kernel I/O, costs) and we require the efficient read/write timestamping
profilers to produce *exactly* the same profile databases as the naive
stack-walking oracles — sizes, costs, induced-access attribution, global
tallies, everything.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NaiveRms, NaiveTrms, RmsProfiler, TrmsProfiler, replay

from .util import db_snapshot, events_strategy


@settings(max_examples=200, deadline=None)
@given(events_strategy())
def test_trms_matches_naive_oracle(events):
    fast = TrmsProfiler(keep_activations=True)
    oracle = NaiveTrms(keep_activations=True)
    replay(events, fast)
    replay(events, oracle)
    assert db_snapshot(fast.db) == db_snapshot(oracle.db)


@settings(max_examples=200, deadline=None)
@given(events_strategy())
def test_rms_matches_naive_oracle(events):
    fast = RmsProfiler(keep_activations=True)
    oracle = NaiveRms(keep_activations=True)
    replay(events, fast)
    replay(events, oracle)
    assert db_snapshot(fast.db) == db_snapshot(oracle.db)


@settings(max_examples=150, deadline=None)
@given(events_strategy())
def test_trms_with_renumbering_matches_oracle(events):
    """A tiny counter bound forces renumbering constantly; results must
    be identical to the unbounded oracle (Section 4.4 correctness)."""
    fast = TrmsProfiler(keep_activations=True, max_count=40)
    oracle = NaiveTrms(keep_activations=True)
    replay(events, fast)
    replay(events, oracle)
    assert db_snapshot(fast.db) == db_snapshot(oracle.db)


@settings(max_examples=100, deadline=None)
@given(events_strategy())
def test_rms_with_renumbering_matches_oracle(events):
    fast = RmsProfiler(keep_activations=True, max_count=40)
    oracle = NaiveRms(keep_activations=True)
    replay(events, fast)
    replay(events, oracle)
    assert db_snapshot(fast.db) == db_snapshot(oracle.db)


@settings(max_examples=100, deadline=None)
@given(events_strategy())
def test_chunked_shadow_matches_dict_shadow(events):
    plain = TrmsProfiler(keep_activations=True)
    chunked = TrmsProfiler(keep_activations=True, use_chunked_shadow=True)
    replay(events, plain)
    replay(events, chunked)
    assert db_snapshot(plain.db) == db_snapshot(chunked.db)


@settings(max_examples=150, deadline=None)
@given(events_strategy())
def test_inequality_trms_ge_rms(events):
    """Inequality 1: trms >= rms for every activation, on any trace."""
    trms = TrmsProfiler(keep_activations=True)
    rms = RmsProfiler(keep_activations=True)
    replay(events, trms)
    replay(events, rms)
    trms_by_order = [(a.routine, a.thread, a.size) for a in trms.db.activations]
    rms_by_order = [(a.routine, a.thread, a.size) for a in rms.db.activations]
    assert len(trms_by_order) == len(rms_by_order)
    for (routine_t, thread_t, size_t), (routine_r, thread_r, size_r) in zip(
        trms_by_order, rms_by_order
    ):
        assert (routine_t, thread_t) == (routine_r, thread_r)
        assert size_t >= size_r


@settings(max_examples=100, deadline=None)
@given(events_strategy())
def test_trms_size_decomposition(events):
    """Per activation: induced accesses never exceed the trms, and the
    global induced tallies equal the root-level per-thread sums."""
    trms = TrmsProfiler(keep_activations=True)
    replay(events, trms)
    for record in trms.db.activations:
        assert record.induced_thread + record.induced_external <= record.size
        assert record.size >= 0
    roots = [a for a in trms.db.activations if a.routine.startswith("<root:")]
    assert sum(a.induced_thread for a in roots) == trms.db.global_induced_thread
    assert sum(a.induced_external for a in roots) == trms.db.global_induced_external


@settings(max_examples=100, deadline=None)
@given(events_strategy())
def test_single_consumer_reuse_is_rejected_by_state(events):
    """Replaying a second stream into a finished profiler must not
    corrupt earlier results: pending stacks were fully unwound."""
    profiler = TrmsProfiler(keep_activations=True)
    replay(events, profiler)
    first = len(profiler.db.activations)
    for state in profiler.states.values():
        assert len(state.stack) == 0
    replay([], profiler)
    assert len(profiler.db.activations) == first


@settings(max_examples=120, deadline=None)
@given(events_strategy(), st.booleans(), st.booleans())
def test_trms_kind_selection_matches_oracle(events, thread_kind, external_kind):
    """The induced-kind configuration (Figure 7b's "external input only"
    and friends) must agree with the identically configured oracle."""
    fast = TrmsProfiler(keep_activations=True, count_thread_induced=thread_kind,
                        count_external=external_kind)
    oracle = NaiveTrms(keep_activations=True, count_thread_induced=thread_kind,
                       count_external=external_kind)
    replay(events, fast)
    replay(events, oracle)
    assert db_snapshot(fast.db) == db_snapshot(oracle.db)


@settings(max_examples=120, deadline=None)
@given(events_strategy())
def test_trms_with_no_induced_kinds_equals_rms(events):
    """With both induced kinds disabled, trms degenerates to rms."""
    degenerate = TrmsProfiler(keep_activations=True, count_thread_induced=False,
                              count_external=False)
    rms = RmsProfiler(keep_activations=True)
    replay(events, degenerate)
    replay(events, rms)
    assert [(a.routine, a.thread, a.size, a.cost) for a in degenerate.db.activations] \
        == [(a.routine, a.thread, a.size, a.cost) for a in rms.db.activations]


@settings(max_examples=60, deadline=None)
@given(events_strategy())
def test_all_features_combined_matches_oracle(events):
    """Chunked shadows + tiny counter (constant renumbering) + context
    keys + external-only counting, all at once, against the identically
    configured oracle — the configuration-interaction property."""
    fast = TrmsProfiler(
        keep_activations=True,
        use_chunked_shadow=True,
        max_count=35,
        context_sensitive=True,
        count_thread_induced=False,
    )
    oracle = NaiveTrms(
        keep_activations=True,
        context_sensitive=True,
        count_thread_induced=False,
    )
    replay(events, fast)
    replay(events, oracle)
    assert db_snapshot(fast.db) == db_snapshot(oracle.db)
