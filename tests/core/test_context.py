"""Tests for calling-context-sensitive profiling."""

import pytest
from hypothesis import given, settings

from repro.core import (
    NaiveTrms,
    RmsProfiler,
    Trace,
    TrmsProfiler,
    compose_context,
    context_depth,
    contexts_of,
    fold_to_routines,
    leaf_routine,
    merge_traces,
    replay,
)

from .util import db_snapshot, events_strategy


def two_caller_trace():
    """parse() called from load_config (1 cell) and from handler (5 cells)."""
    trace = Trace(1)
    trace.call("main")
    trace.call("load_config")
    trace.call("parse")
    trace.read(0)
    trace.ret()
    trace.ret()
    trace.call("handler")
    trace.call("parse")
    trace.read(10, size=5)
    trace.ret()
    trace.ret()
    trace.ret()
    return merge_traces([trace])


def test_key_grammar():
    key = compose_context(compose_context("main", "f"), "g")
    assert key == "main;f;g"
    assert leaf_routine(key) == "g"
    assert leaf_routine("main") == "main"
    assert context_depth(key) == 3
    assert context_depth("main") == 1


def test_routine_level_merges_callers():
    profiler = RmsProfiler(keep_activations=True)
    replay(two_caller_trace(), profiler)
    parse = profiler.db.merged()["parse"]
    assert parse.calls == 2
    assert sorted(parse.points) == [1, 5]


def test_context_level_separates_callers():
    profiler = RmsProfiler(keep_activations=True, context_sensitive=True)
    replay(two_caller_trace(), profiler)
    contexts = contexts_of(profiler.db, "parse")
    assert len(contexts) == 2
    by_leafless = {key.rsplit(";", 2)[-2]: profile for key, profile in contexts.items()}
    assert by_leafless["load_config"].size_sum == 1
    assert by_leafless["handler"].size_sum == 5
    for key in contexts:
        assert key.startswith("<root:1>;main;")


def test_fold_recovers_routine_level():
    """Context keys refine routine keys: folding them back yields the
    same aggregate profile as routine-level profiling of the same run."""
    events = two_caller_trace()
    context_profiler = TrmsProfiler(context_sensitive=True)
    routine_profiler = TrmsProfiler()
    replay(events, context_profiler)
    replay(events, routine_profiler)
    folded = fold_to_routines(context_profiler.db)
    plain = routine_profiler.db.merged()
    assert set(folded) == set(plain)
    for routine, profile in plain.items():
        twin = folded[routine]
        assert twin.calls == profile.calls
        assert twin.size_sum == profile.size_sum
        assert twin.cost_sum == profile.cost_sum
        assert {s: st.calls for s, st in twin.points.items()} == {
            s: st.calls for s, st in profile.points.items()
        }


def test_recursion_produces_per_depth_contexts():
    trace = Trace(1)
    trace.call("rec")
    trace.read(0)
    trace.call("rec")
    trace.read(1)
    trace.call("rec")
    trace.read(2)
    trace.ret()
    trace.ret()
    trace.ret()
    profiler = RmsProfiler(context_sensitive=True)
    replay(merge_traces([trace]), profiler)
    contexts = contexts_of(profiler.db, "rec")
    assert len(contexts) == 3
    depths = sorted(context_depth(key) for key in contexts)
    assert depths == [2, 3, 4]   # under the implicit root


@settings(max_examples=100, deadline=None)
@given(events_strategy())
def test_context_sensitive_trms_matches_oracle(events):
    fast = TrmsProfiler(keep_activations=True, context_sensitive=True)
    oracle = NaiveTrms(keep_activations=True, context_sensitive=True)
    replay(events, fast)
    replay(events, oracle)
    assert db_snapshot(fast.db) == db_snapshot(oracle.db)


@settings(max_examples=80, deadline=None)
@given(events_strategy())
def test_fold_property_on_random_traces(events):
    context_profiler = TrmsProfiler(context_sensitive=True)
    routine_profiler = TrmsProfiler()
    replay(events, context_profiler)
    replay(events, routine_profiler)
    folded = fold_to_routines(context_profiler.db)
    plain = routine_profiler.db.merged()
    assert {r: p.calls for r, p in folded.items()} == {
        r: p.calls for r, p in plain.items()
    }
    assert {r: p.size_sum for r, p in folded.items()} == {
        r: p.size_sum for r, p in plain.items()
    }
