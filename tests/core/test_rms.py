"""Unit tests for the sequential RMS profiler (PLDI 2012 semantics)."""

from repro.core import Event, EventKind, RmsProfiler, Trace, merge_traces, replay


def run(build, **kwargs):
    """Build a single-thread trace with ``build(trace)`` and profile it."""
    trace = Trace(1)
    build(trace)
    profiler = RmsProfiler(keep_activations=True, **kwargs)
    replay(merge_traces([trace]), profiler)
    return profiler


def sizes(profiler, routine):
    return [a.size for a in profiler.db.activations if a.routine == routine]


def test_single_read_counts_once():
    profiler = run(lambda t: (t.call("f"), t.read(0), t.read(0), t.read(0), t.ret()))
    assert sizes(profiler, "f") == [1]


def test_distinct_cells_count_individually():
    def build(t):
        t.call("f")
        for addr in range(10):
            t.read(addr)
        t.ret()

    assert sizes(run(build), "f") == [10]


def test_write_then_read_is_not_input():
    profiler = run(lambda t: (t.call("f"), t.write(3), t.read(3), t.ret()))
    assert sizes(profiler, "f") == [0]


def test_read_then_write_counts():
    profiler = run(lambda t: (t.call("f"), t.read(3), t.write(3), t.read(3), t.ret()))
    assert sizes(profiler, "f") == [1]


def test_child_read_propagates_to_parent():
    def build(t):
        t.call("f")
        t.call("g")
        t.read(0)
        t.ret()
        t.ret()

    profiler = run(build)
    assert sizes(profiler, "g") == [1]
    assert sizes(profiler, "f") == [1]


def test_cell_read_by_parent_then_child_counts_for_both():
    def build(t):
        t.call("f")
        t.read(0)
        t.call("g")
        t.read(0)
        t.ret()
        t.ret()

    profiler = run(build)
    assert sizes(profiler, "g") == [1]
    assert sizes(profiler, "f") == [1]   # not 2: one distinct cell


def test_parent_write_shields_child_read_from_parent_only():
    def build(t):
        t.call("f")
        t.write(0)
        t.call("g")
        t.read(0)
        t.ret()
        t.ret()

    profiler = run(build)
    assert sizes(profiler, "g") == [1]   # g did not produce the value
    assert sizes(profiler, "f") == [0]   # f did


def test_sibling_calls_share_parent_accounting():
    def build(t):
        t.call("f")
        t.call("g")
        t.read(0)
        t.ret()
        t.call("h")
        t.read(0)
        t.ret()
        t.ret()

    profiler = run(build)
    assert sizes(profiler, "g") == [1]
    assert sizes(profiler, "h") == [1]
    assert sizes(profiler, "f") == [1]   # still one distinct cell for f


def test_deep_nesting_suffix_accounting():
    def build(t):
        t.call("a")
        t.read(0)
        t.call("b")
        t.call("c")
        t.read(0)
        t.read(1)
        t.ret()
        t.ret()
        t.ret()

    profiler = run(build)
    assert sizes(profiler, "c") == [2]
    assert sizes(profiler, "b") == [2]
    assert sizes(profiler, "a") == [2]   # cells 0 and 1


def test_inclusive_cost():
    def build(t):
        t.call("f")
        t.cost(5)
        t.call("g")
        t.cost(7)
        t.ret()
        t.cost(1)
        t.ret()

    profiler = run(build)
    record = {a.routine: a.cost for a in profiler.db.activations}
    assert record["g"] == 7
    assert record["f"] == 13


def test_unmatched_return_is_ignored():
    trace = Trace(1)
    trace.ret()
    trace.call("f")
    trace.read(0)
    trace.ret()
    trace.ret()
    profiler = RmsProfiler(keep_activations=True)
    replay(merge_traces([trace]), profiler)
    assert sizes(profiler, "f") == [1]


def test_finish_unwinds_pending_activations():
    trace = Trace(1)
    trace.call("main")
    trace.read(0)
    profiler = RmsProfiler(keep_activations=True)
    replay(merge_traces([trace]), profiler)
    assert sizes(profiler, "main") == [1]
    roots = [a for a in profiler.db.activations if a.routine.startswith("<root:")]
    assert len(roots) == 1 and roots[0].size == 1


def test_kernel_write_is_invisible_to_rms():
    def build(t):
        t.call("f")
        for _ in range(5):
            t.kernel_write(0)
            t.read(0)
        t.ret()

    assert sizes(run(build), "f") == [1]   # the paper's Figure 3: rms = 1


def test_kernel_read_counts_as_thread_read():
    profiler = run(lambda t: (t.call("f"), t.kernel_read(0), t.kernel_read(0), t.ret()))
    assert sizes(profiler, "f") == [1]


def test_multithreaded_rms_is_per_thread_isolated():
    t1, t2 = Trace(1), Trace(2)
    t1.call("f")
    t1.read(0)
    t2.call("g")
    t2.write(0)
    t2.ret()
    t1.read(0)
    t1.ret()
    profiler = RmsProfiler(keep_activations=True)
    replay(merge_traces([t1, t2]), profiler)
    f_sizes = [a.size for a in profiler.db.activations if a.routine == "f"]
    assert f_sizes == [1]   # the foreign write is ignored (Figure 1a: rms_f = 1)


def test_chunked_shadow_gives_same_answer():
    def build(t):
        t.call("f")
        t.read(1000)
        t.read(2000000)
        t.write(1000)
        t.read(1000)
        t.ret()

    plain = run(build)
    chunked = run(build, use_chunked_shadow=True)
    assert sizes(plain, "f") == sizes(chunked, "f") == [2]
    assert chunked.space_bytes() > 0


def test_workload_points_accumulate_per_size():
    def build(t):
        for n in (1, 1, 2):
            t.call("f")
            for addr in range(n):
                t.read(addr)
            t.ret()

    profiler = run(build)
    profile = profiler.db.profile("f", 1)
    assert profile.workload_points() == [(1, 2), (2, 1)]
