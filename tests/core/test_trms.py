"""Unit tests for the TRMS profiler — the paper's worked examples.

Each of the paper's synthetic examples (Figures 1a, 1b, 2, 3 and the
Section 3 asymptotics scenario) is encoded as an explicit interleaved
trace and checked against the rms/trms values the paper states.
"""

import itertools

from repro.core import (
    Event,
    EventBus,
    EventKind,
    NaiveTrms,
    RmsProfiler,
    Trace,
    TrmsProfiler,
    merge_traces,
    replay,
)


def shared_clock_traces(*threads):
    clock = itertools.count(1)
    tick = lambda: next(clock)
    return [Trace(t, clock=tick) for t in threads]


def run_trms(events):
    profiler = TrmsProfiler(keep_activations=True)
    replay(events, profiler)
    return profiler


def activation(profiler, routine):
    matches = [a for a in profiler.db.activations if a.routine == routine]
    assert len(matches) == 1, matches
    return matches[0]


def test_figure_1a():
    """f reads x, g (other thread) writes x, f reads x again."""
    t1, t2 = shared_clock_traces(1, 2)
    t1.call("f")
    t1.read(100)
    t2.call("g")
    t2.write(100)
    t2.ret()
    t1.read(100)
    t1.ret()
    profiler = run_trms(merge_traces([t1, t2]))
    f = activation(profiler, "f")
    assert f.size == 2
    assert f.induced_thread == 1
    assert f.induced_external == 0
    # rms of the same execution is 1
    rms = RmsProfiler(keep_activations=True)
    replay(merge_traces([t1, t2]), rms)
    assert activation(rms, "f").size == 1


def test_figure_1b():
    """f reads x, h (child of f) reads x after a foreign write, f reads x
    again with no further foreign write: trms_f = 2, trms_h = 1."""
    t1, t2 = shared_clock_traces(1, 2)
    t1.call("f")
    t1.read(100)                    # first-access for f
    t2.call("g")
    t2.write(100)                   # foreign write
    t2.ret()
    t1.call("h")
    t1.read(100)                    # induced first-access (for h and f)
    t1.ret()
    t1.read(100)                    # NOT induced: f accessed x via h already
    t1.ret()
    profiler = run_trms(merge_traces([t1, t2]))
    f = activation(profiler, "f")
    h = activation(profiler, "h")
    assert h.size == 1
    assert h.induced_thread == 1    # paper: classify as induced, not plain
    assert f.size == 2
    assert f.induced_thread == 1


def test_figure_2_producer_consumer():
    """n produced values into one cell: rms_consumer = 1, trms_consumer = n."""
    n = 8
    t1, t2 = shared_clock_traces(1, 2)
    t1.call("producer")
    t2.call("consumer")
    for _ in range(n):
        t1.call("produceData")
        t1.write(500)
        t1.ret()
        t2.call("consumeData")
        t2.read(500)
        t2.ret()
    t1.ret()
    t2.ret()
    events = merge_traces([t1, t2])

    trms = TrmsProfiler(keep_activations=True)
    rms = RmsProfiler(keep_activations=True)
    replay(events, EventBus([trms, rms]))

    assert activation(trms, "consumer").size == n
    assert activation(trms, "consumer").induced_thread == n
    assert activation(rms, "consumer").size == 1
    # every consumeData activation has trms 1 (one fresh value)
    consume = [a for a in trms.db.activations if a.routine == "consumeData"]
    assert [a.size for a in consume] == [1] * n


def test_figure_3_buffered_external_read():
    """2n cells loaded from a device into a 2-cell buffer; only b[0] is
    read each iteration: rms = 1, trms = n (external)."""
    n = 6
    trace = Trace(1)
    trace.call("externalRead")
    for _ in range(n):
        trace.kernel_write(700, size=2)   # OS fills b[0], b[1]
        trace.read(700)                   # only b[0] is processed
    trace.ret()
    events = merge_traces([trace])

    trms = TrmsProfiler(keep_activations=True)
    rms = RmsProfiler(keep_activations=True)
    replay(events, EventBus([trms, rms]))

    ext = activation(trms, "externalRead")
    assert ext.size == n
    assert ext.induced_external == n
    assert ext.induced_thread == 0
    assert activation(rms, "externalRead").size == 1


def test_unread_buffer_cells_do_not_count():
    """A kernel fill alone contributes nothing until cells are read."""
    trace = Trace(1)
    trace.call("f")
    trace.kernel_write(0, size=16)
    trace.ret()
    profiler = run_trms(merge_traces([trace]))
    assert activation(profiler, "f").size == 0


def test_local_write_suppresses_induced():
    """A local write after the foreign write re-claims the cell."""
    t1, t2 = shared_clock_traces(1, 2)
    t1.call("f")
    t2.call("g")
    t2.write(9)
    t2.ret()
    t1.write(9)    # local write after the foreign one
    t1.read(9)     # reads its own value: no input
    t1.ret()
    profiler = run_trms(merge_traces([t1, t2]))
    f = activation(profiler, "f")
    assert f.size == 0
    assert f.induced_thread == 0


def test_induced_counts_once_per_foreign_write():
    t1, t2 = shared_clock_traces(1, 2)
    t1.call("f")
    t2.call("g")
    t2.write(9)
    t2.ret()
    t1.read(9)
    t1.read(9)   # second read: f already accessed the cell
    t1.ret()
    profiler = run_trms(merge_traces([t1, t2]))
    assert activation(profiler, "f").size == 1


def test_kernel_refill_of_same_cell_counts_each_time():
    trace = Trace(1)
    trace.call("f")
    trace.kernel_write(3)
    trace.read(3)
    trace.kernel_write(3)
    trace.read(3)
    trace.ret()
    profiler = run_trms(merge_traces([trace]))
    f = activation(profiler, "f")
    assert f.size == 2
    assert f.induced_external == 2


def test_kernel_read_consumes_guest_memory_as_input():
    """Sending a foreign-written buffer out counts as induced input."""
    t1, t2 = shared_clock_traces(1, 2)
    t2.call("g")
    t2.write(40)
    t2.write(41)
    t2.ret()
    t1.call("send")
    t1.kernel_read(40, size=2)
    t1.ret()
    profiler = run_trms(merge_traces([t1, t2]))
    send = activation(profiler, "send")
    assert send.size == 2
    assert send.induced_thread == 2


def test_attribution_tracks_latest_writer_kind():
    """A thread write after a kernel fill makes the input thread-induced."""
    t1, t2 = shared_clock_traces(1, 2)
    t1.call("f")
    t1.kernel_write(5)
    t2.call("g")
    t2.write(5)
    t2.ret()
    t1.read(5)
    t1.ret()
    profiler = run_trms(merge_traces([t1, t2]))
    f = activation(profiler, "f")
    assert f.induced_thread == 1
    assert f.induced_external == 0


def test_section3_asymptotics_scenario():
    """Activation r_i costs i, performs ceil(i/2) first accesses and
    floor(i/2) induced ones: trms_i = i while rms_i = ceil(i/2)."""
    n = 9
    t1, t2 = shared_clock_traces(1, 2)
    t2.call("writer")
    next_fresh = 1000
    for i in range(1, n + 1):
        first = (i + 1) // 2
        induced = i // 2
        t1.call("r")
        base = next_fresh
        for _ in range(first):          # fresh cells: plain first-accesses
            t1.read(next_fresh)
            next_fresh += 1
        for k in range(induced):        # foreign writes mid-activation
            t2.write(base + k)
        for k in range(induced):        # re-reads: induced, invisible to rms
            t1.read(base + k)
        t1.cost(i)
        t1.ret()
    t2.ret()
    events = merge_traces([t1, t2])
    trms = TrmsProfiler(keep_activations=True)
    rms = RmsProfiler(keep_activations=True)
    replay(events, EventBus([trms, rms]))
    trms_sizes = [a.size for a in trms.db.activations if a.routine == "r"]
    rms_sizes = [a.size for a in rms.db.activations if a.routine == "r"]
    assert trms_sizes == list(range(1, n + 1))
    assert rms_sizes == [(i + 1) // 2 for i in range(1, n + 1)]
    # trms yields n distinct plot points; rms collapses pairs
    assert len(set(trms_sizes)) == n
    assert len(set(rms_sizes)) == (n + 1) // 2


def test_inequality_trms_ge_rms_on_example():
    """Inequality 1 on a mixed trace, checked activation by activation."""
    t1, t2 = shared_clock_traces(1, 2)
    t1.call("a")
    t1.read(1)
    t2.call("b")
    t2.write(1)
    t2.write(2)
    t2.ret()
    t1.read(1)
    t1.read(2)
    t1.kernel_write(3)
    t1.read(3)
    t1.ret()
    events = merge_traces([t1, t2])
    trms = TrmsProfiler(keep_activations=True)
    rms = RmsProfiler(keep_activations=True)
    replay(events, EventBus([trms, rms]))
    trms_by_key = {(a.routine, a.thread): a.size for a in trms.db.activations}
    for a in rms.db.activations:
        assert trms_by_key[(a.routine, a.thread)] >= a.size


def test_global_induced_tallies():
    t1, t2 = shared_clock_traces(1, 2)
    t2.call("w")
    t2.write(0)
    t2.ret()
    t1.call("f")
    t1.read(0)        # thread-induced
    t1.kernel_write(1)
    t1.read(1)        # external
    t1.ret()
    profiler = run_trms(merge_traces([t1, t2]))
    assert profiler.db.total_induced() == (1, 1)


def test_space_accounting_includes_global_shadows():
    profiler = TrmsProfiler(use_chunked_shadow=True)
    trace = Trace(1)
    trace.call("f")
    trace.write(0)
    trace.read(0)
    trace.ret()
    replay(merge_traces([trace]), profiler)
    # thread shadow + wts + writer shadows must all be accounted
    assert profiler.space_bytes() >= 3 * 4096 * 4
