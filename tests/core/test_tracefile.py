"""Tests for trace persistence."""

import io

import pytest

from repro.core import (
    EventBus,
    RmsProfiler,
    TraceWriter,
    TrmsProfiler,
    iter_trace,
    read_trace,
    replay,
    write_trace,
)
from repro.core.tracefile import TraceFileError
from repro.vm import programs

from .util import db_snapshot


def record_scenario(scenario, **kwargs):
    buffer = io.StringIO()
    writer = TraceWriter(buffer)
    scenario.run(tools=writer, **kwargs)
    buffer.seek(0)
    return buffer, writer.events_written


def test_roundtrip_preserves_analysis():
    """Live profiling and trace-replay profiling are indistinguishable."""
    live = TrmsProfiler(keep_activations=True)
    buffer, _ = record_scenario(programs.producer_consumer(12))
    # run the same scenario live
    programs.producer_consumer(12).run(tools=EventBus([live]))
    replayed = TrmsProfiler(keep_activations=True)
    replay(read_trace(buffer), replayed)
    assert db_snapshot(live.db) == db_snapshot(replayed.db)


def test_event_count_matches():
    buffer, written = record_scenario(programs.buffered_read(6))
    assert written == len(read_trace(buffer))
    assert written > 0


def test_iter_trace_is_lazy_and_equal():
    buffer, _ = record_scenario(programs.figure_1a())
    events_eager = read_trace(buffer)
    buffer.seek(0)
    events_lazy = list(iter_trace(buffer))
    assert events_eager == events_lazy


def test_bad_header_rejected():
    with pytest.raises(TraceFileError, match="not a trace file"):
        read_trace(io.StringIO("something else\nC\t1\tf\n"))


def test_bad_line_rejected():
    with pytest.raises(TraceFileError, match="line 2"):
        read_trace(io.StringIO("repro-trace 1\ngarbage\n"))


def test_bad_argument_rejected():
    with pytest.raises(TraceFileError, match="bad argument"):
        read_trace(io.StringIO("repro-trace 1\nr\t1\tnotanumber\n"))


@pytest.mark.parametrize("name", [
    "evil\tname",
    "multi\nline",
    "back\\slash",
    "\\t not a tab",
    "tab\tnewline\nboth\\\t\n",
    "plain_name",
    "unicode·name",
])
def test_awkward_routine_names_roundtrip(name):
    """Tabs/newlines/backslashes in routine names survive the v1 format."""
    buffer = io.StringIO()
    writer = TraceWriter(buffer)
    writer.on_call(1, name)
    writer.on_return(1)
    buffer.seek(0)
    events = read_trace(buffer)
    assert events[0].arg == name


def test_escape_name_helpers():
    from repro.core.tracefile import escape_name, unescape_name

    assert escape_name("plain") == "plain"
    escaped = escape_name("a\tb\nc\\d")
    assert "\t" not in escaped and "\n" not in escaped
    assert unescape_name(escaped) == "a\tb\nc\\d"
    with pytest.raises(TraceFileError):
        unescape_name("dangling\\")
    with pytest.raises(TraceFileError):
        unescape_name("bad\\x")


def test_write_trace_helper():
    buffer, _ = record_scenario(programs.sum_array([1, 2, 3]))
    events = read_trace(buffer)
    out = io.StringIO()
    count = write_trace(events, out)
    assert count == len(events)
    out.seek(0)
    assert read_trace(out) == events


def test_kernel_events_roundtrip():
    buffer, _ = record_scenario(programs.buffered_read(4))
    rms = RmsProfiler(keep_activations=True)
    trms = TrmsProfiler(keep_activations=True)
    replay(read_trace(buffer), EventBus([rms, trms]))
    external = [a for a in trms.db.activations if a.routine == "externalRead"][0]
    assert external.induced_external == 4
    assert [a for a in rms.db.activations if a.routine == "externalRead"][0].size == 1
