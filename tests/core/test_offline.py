"""Differential tests: offline two-pass TRMS vs the online profiler.

The future-work parallelisation is only worth anything if the offline
restructuring is *exactly* the same analysis; these properties say it is.
"""

import pytest
from hypothesis import given, settings

from repro.core import TrmsProfiler, analyze_trace, build_write_index, replay

from .util import db_snapshot, events_strategy


def online_db(events, **kwargs):
    profiler = TrmsProfiler(keep_activations=True, **kwargs)
    replay(events, profiler)
    return profiler.db


def comparable(db):
    snap = db_snapshot(db)
    # activation order legitimately differs (per-thread vs interleaved)
    return snap["profiles"], snap["global_induced"], sorted(snap["activations"])


@settings(max_examples=150, deadline=None)
@given(events_strategy())
def test_offline_equals_online(events):
    offline = analyze_trace(events, keep_activations=True)
    assert comparable(offline) == comparable(online_db(events))


@settings(max_examples=80, deadline=None)
@given(events_strategy())
def test_offline_parallel_equals_sequential(events):
    sequential = analyze_trace(events, workers=1, keep_activations=True)
    parallel = analyze_trace(events, workers=4, keep_activations=True)
    assert comparable(sequential) == comparable(parallel)


@settings(max_examples=60, deadline=None)
@given(events_strategy())
def test_offline_context_sensitive_equals_online(events):
    offline = analyze_trace(events, context_sensitive=True, keep_activations=True)
    online = online_db(events, context_sensitive=True)
    assert comparable(offline) == comparable(online)


def test_write_index_lookup_semantics():
    from repro.core import Event, EventKind

    events = [
        Event(EventKind.WRITE, 1, 7),         # position 0
        Event(EventKind.KERNEL_WRITE, 2, 7),  # position 1
        Event(EventKind.WRITE, 2, 9),         # position 2
    ]
    index = build_write_index(events)
    assert index.latest_before(7, 0) is None
    assert index.latest_before(7, 1) == (0, 1)
    assert index.latest_before(7, 2) == (1, -1)   # kernel writer
    assert index.latest_before(9, 99) == (2, 2)
    assert index.latest_before(1234, 5) is None
    assert index.cells() == 2


def test_offline_on_real_vm_trace():
    """End to end on a recorded multithreaded guest run."""
    import sys
    sys.path.insert(0, "benchmarks")
    from conftest import EventRecorder

    from repro.core import Event, EventKind
    from repro.vm import programs

    recorder = EventRecorder()
    programs.producer_consumer(20).run(tools=recorder)
    events = []
    kind_map = {
        "on_call": EventKind.CALL, "on_return": EventKind.RETURN,
        "on_read": EventKind.READ, "on_write": EventKind.WRITE,
        "on_kernel_read": EventKind.KERNEL_READ,
        "on_kernel_write": EventKind.KERNEL_WRITE,
        "on_thread_switch": EventKind.THREAD_SWITCH,
        "on_cost": EventKind.COST,
    }
    for name, first, second in recorder.events:
        kind = kind_map[name]
        if kind == EventKind.THREAD_SWITCH:
            events.append(Event(kind, first, first))
        elif kind == EventKind.RETURN:
            events.append(Event(kind, first, None))
        else:
            events.append(Event(kind, first, second))
    offline = analyze_trace(events, workers=3, keep_activations=True)
    online = online_db(events)
    assert comparable(offline) == comparable(online)
    consumer = [a for a in offline.activations if a.routine == "consumer"][0]
    assert consumer.size == 20
    assert consumer.induced_thread == 20
