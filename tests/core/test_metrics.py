"""Unit tests for the Section 6.1 evaluation metrics."""

import pytest

from repro.core import (
    ProfileDatabase,
    RoutineProfile,
    induced_split,
    induced_split_by_routine,
    input_volume,
    input_volume_by_routine,
    profile_richness,
    richness_by_routine,
    tail_curve,
)


def make_dbs():
    rms_db = ProfileDatabase()
    trms_db = ProfileDatabase()
    # routine f: rms sees sizes {2, 2, 3}; trms sees {4, 5, 6}
    for rms_size, trms_size in ((2, 4), (2, 5), (3, 6)):
        rms_db.add_activation("f", 1, rms_size, cost=1)
        trms_db.add_activation("f", 1, trms_size, cost=1, induced_thread=trms_size - rms_size)
    # routine g: identical under both metrics
    rms_db.add_activation("g", 1, 7, cost=1)
    trms_db.add_activation("g", 1, 7, cost=1)
    trms_db.global_induced_thread = 6
    trms_db.global_induced_external = 2
    return rms_db, trms_db


def test_profile_richness_single_routine():
    rms_db, trms_db = make_dbs()
    rms_f = rms_db.merged()["f"]
    trms_f = trms_db.merged()["f"]
    # |rms_f| = 2 points, |trms_f| = 3 points -> richness 0.5
    assert profile_richness(rms_f, trms_f) == pytest.approx(0.5)


def test_profile_richness_can_be_negative():
    rms = RoutineProfile("f", 1)
    trms = RoutineProfile("f", 1)
    rms.add_activation(1, 0)
    rms.add_activation(2, 0)
    trms.add_activation(5, 0)
    trms.add_activation(5, 0)
    assert profile_richness(rms, trms) == pytest.approx(-0.5)


def test_profile_richness_zero_rms_points():
    assert profile_richness(RoutineProfile("f", 1), RoutineProfile("f", 1)) == 0.0


def test_richness_by_routine():
    rms_db, trms_db = make_dbs()
    richness = richness_by_routine(rms_db, trms_db)
    assert richness["f"] == pytest.approx(0.5)
    assert richness["g"] == pytest.approx(0.0)


def test_input_volume_global():
    rms_db, trms_db = make_dbs()
    # sums: rms 2+2+3+7 = 14, trms 4+5+6+7 = 22
    assert input_volume(rms_db, trms_db) == pytest.approx(1 - 14 / 22)


def test_input_volume_empty():
    assert input_volume(ProfileDatabase(), ProfileDatabase()) == 0.0


def test_input_volume_by_routine():
    rms_db, trms_db = make_dbs()
    volumes = input_volume_by_routine(rms_db, trms_db)
    assert volumes["f"] == pytest.approx(1 - 7 / 15)
    assert volumes["g"] == pytest.approx(0.0)


def test_induced_split_global():
    _, trms_db = make_dbs()
    thread_pct, external_pct = induced_split(trms_db)
    assert thread_pct == pytest.approx(75.0)
    assert external_pct == pytest.approx(25.0)
    assert thread_pct + external_pct == pytest.approx(100.0)


def test_induced_split_no_induced_accesses():
    assert induced_split(ProfileDatabase()) == (0.0, 0.0)


def test_induced_split_by_routine():
    trms_db = ProfileDatabase()
    trms_db.add_activation("f", 1, 10, cost=1, induced_thread=3, induced_external=1)
    trms_db.add_activation("g", 1, 10, cost=1)
    split = induced_split_by_routine(trms_db)
    assert split["f"][0] == pytest.approx(75.0)
    assert split["f"][1] == pytest.approx(25.0)
    assert "g" not in split


def test_tail_curve_shape():
    curve = tail_curve([3.0, 1.0, 2.0])
    assert curve == [
        (pytest.approx(100 / 3), 3.0),
        (pytest.approx(200 / 3), 2.0),
        (100.0, 1.0),
    ]
    # y must be non-increasing as x grows
    ys = [y for _, y in curve]
    assert ys == sorted(ys, reverse=True)


def test_tail_curve_empty():
    assert tail_curve([]) == []
