"""Tests for sys.setprofile-based automatic tracing."""

import sys

import pytest

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.pytrace import AutoTracer, TraceSession, default_include, spawn


def make_session():
    profiler = RmsProfiler(keep_activations=True)
    return TraceSession(tools=EventBus([profiler])), profiler


# plain functions: no decorators anywhere
def leaf(array):
    return array[0] + array[1]


def caller(array):
    return leaf(array) + leaf(array)


def test_auto_traces_undecorated_functions():
    session, profiler = make_session()
    with session:
        array = session.array(4, fill=2)
        with AutoTracer(session):
            assert caller(array) == 8
    routines = {a.routine for a in profiler.db.activations}
    assert "caller" in routines
    assert "leaf" in routines
    leaf_records = [a for a in profiler.db.activations if a.routine == "leaf"]
    assert len(leaf_records) == 2
    assert leaf_records[0].size == 2   # two distinct cells
    caller_record = [a for a in profiler.db.activations if a.routine == "caller"][0]
    assert caller_record.size == 2     # same two cells, once


def test_hook_removed_after_block():
    session, _ = make_session()
    with session:
        with AutoTracer(session):
            pass
        assert sys.getprofile() is None


def test_previous_profile_restored():
    sentinel_calls = []

    def sentinel(frame, event, arg):
        sentinel_calls.append(event)

    session, _ = make_session()
    sys.setprofile(sentinel)
    try:
        with session:
            with AutoTracer(session):
                pass
        assert sys.getprofile() is sentinel
    finally:
        sys.setprofile(None)


def test_library_internals_are_invisible():
    session, profiler = make_session()
    with session:
        array = session.array(2, fill=1)
        with AutoTracer(session):
            leaf(array)   # array.__getitem__ runs repro code inside
    routines = {a.routine for a in profiler.db.activations}
    assert "leaf" in routines
    assert "__getitem__" not in routines
    assert "emit_read" not in routines


def test_default_include_rules():
    assert default_include(leaf.__code__)

    class FakeCode:
        def __init__(self, filename):
            self.co_filename = filename

    assert not default_include(FakeCode("<string>"))
    assert not default_include(FakeCode("/x/site-packages/foo/bar.py"))
    import repro.core.rms as rms_module

    assert not default_include(rms_module.RmsProfiler.on_read.__code__)


def test_custom_include_predicate():
    session, profiler = make_session()
    with session:
        array = session.array(2, fill=1)
        with AutoTracer(session, include=lambda code: code.co_name == "leaf"):
            caller(array)
    routines = {a.routine for a in profiler.db.activations}
    assert "leaf" in routines
    assert "caller" not in routines


def test_exception_unwind_balances_stack():
    def boom(array):
        array[0]
        raise RuntimeError("no")

    session, profiler = make_session()
    with session:
        array = session.array(1, fill=1)
        with pytest.raises(RuntimeError):
            with AutoTracer(session):
                boom(array)
    # the exceptional return still closed the activation
    records = [a for a in profiler.db.activations if a.routine == "boom"]
    assert len(records) == 1
    assert records[0].size == 1


def test_threads_spawned_inside_block_are_traced():
    trms = TrmsProfiler(keep_activations=True)
    session = TraceSession(tools=EventBus([trms]))

    def worker(shared):
        return shared[0]

    with session:
        shared = session.array(1)
        shared[0] = 7
        with AutoTracer(session):
            thread = spawn(worker, shared)
            thread.join()
    records = [a for a in trms.db.activations if a.routine == "worker"]
    assert len(records) == 1
    assert records[0].induced_thread == 1   # main wrote, the worker read


def test_exit_restores_preexisting_threading_hook():
    """Regression: __exit__ used to clobber the threading-wide profile
    hook with None, silently unhooking any enclosing tracer (or other
    profiler) for threads started after the block."""
    import threading

    seen = []

    def outer_hook(frame, event, arg):
        seen.append(event)

    threading.setprofile(outer_hook)
    try:
        session, _ = make_session()
        with session:
            array = session.array(2, fill=1)
            with AutoTracer(session):
                caller(array)
        # the pre-existing hook is back for threads spawned afterwards
        getter = getattr(threading, "getprofile", None)
        current = getter() if getter else threading._profile_hook
        assert current is outer_hook
        thread = threading.Thread(target=leaf, args=([1, 2],))
        thread.start()
        thread.join()
        assert seen   # the outer hook really fired in the new thread
    finally:
        threading.setprofile(None)


def test_nested_autotracers_restore_each_other():
    """Two stacked AutoTracers: the inner block must hand the threading
    hook back to the outer tracer, not tear it down."""
    outer_trms = TrmsProfiler(keep_activations=True)
    outer_session = TraceSession(tools=EventBus([outer_trms]))

    def worker(shared):
        return shared[0]

    with outer_session:
        shared = outer_session.array(1)
        shared[0] = 3
        with AutoTracer(outer_session):
            inner_session, inner_profiler = make_session()
            with inner_session:
                inner_array = inner_session.array(2, fill=1)
                with AutoTracer(inner_session):
                    caller(inner_array)
            # after the inner block, the outer tracer still hooks new
            # threads — before the fix this thread went untraced
            thread = spawn(worker, shared)
            thread.join()
    inner_routines = {a.routine for a in inner_profiler.db.activations}
    assert "caller" in inner_routines and "leaf" in inner_routines
    outer_workers = [a for a in outer_trms.db.activations if a.routine == "worker"]
    assert len(outer_workers) == 1
    assert outer_workers[0].induced_thread == 1
