"""Tests for the pytrace substrate: sessions, containers, threads, I/O."""

import pytest

from repro.core import EventBus, NaiveTrms, RmsProfiler, TrmsProfiler
from repro.pytrace import (
    TraceSession,
    TracedLock,
    TrackedArray,
    TrackedDict,
    TrackedList,
    current_session,
    spawn,
    traced,
)


def make_session(keep=True):
    trms = TrmsProfiler(keep_activations=keep)
    rms = RmsProfiler(keep_activations=keep)
    return TraceSession(tools=EventBus([trms, rms])), trms, rms


def activations(profiler, routine):
    return [a for a in profiler.db.activations if a.routine == routine]


# -- session basics ---------------------------------------------------------------


def test_current_session_inside_with_block():
    session = TraceSession()
    assert current_session() is None
    with session:
        assert current_session() is session
    assert current_session() is None


def test_traced_without_session_is_passthrough():
    @traced
    def add(a, b):
        return a + b

    assert add(2, 3) == 5


def test_traced_records_activation_with_size_and_cost():
    session, trms, _ = make_session()

    @traced
    def reader(array):
        return array[0] + array[1]

    with session:
        array = session.array(4, fill=7)
        assert reader(array) == 14

    record = activations(trms, "reader")[0]
    assert record.size == 2
    assert record.cost >= 3   # one call unit + two op units


def test_nested_traced_routines_aggregate():
    session, trms, _ = make_session()

    @traced
    def inner(array):
        return array[0]

    @traced
    def outer(array):
        return inner(array) + array[1]

    with session:
        array = session.array(2, fill=1)
        outer(array)

    assert activations(trms, "inner")[0].size == 1
    assert activations(trms, "outer")[0].size == 2


def test_traced_propagates_exceptions_and_still_returns():
    session, trms, _ = make_session()

    @traced
    def boom():
        raise RuntimeError("no")

    with session:
        with pytest.raises(RuntimeError):
            boom()
    assert len(activations(trms, "boom")) == 1


def test_native_mode_emits_nothing_but_works():
    session = TraceSession(tools=None)
    with session:
        array = session.array(3)
        array[0] = 5
        assert array[0] == 5
        session.kernel_fill(array, 1, [8, 9])
        assert session.kernel_drain(array, 1, 2) == [8, 9]
    assert session.ops > 0


def test_charge_explicit_cost():
    session, trms, _ = make_session()

    @traced
    def compute():
        session.charge(50)

    with session:
        compute()
    assert activations(trms, "compute")[0].cost >= 51


# -- containers -----------------------------------------------------------------------


def test_tracked_array_semantics():
    session = TraceSession()
    with session:
        array = session.array(3, fill=0)
        array[1] = 42
        assert array[1] == 42
        assert len(array) == 3
        assert list(array) == [0, 42, 0]
        assert array.snapshot() == [0, 42, 0]
        with pytest.raises(IndexError):
            array[7]


def test_tracked_array_negative_index_maps_to_same_cell():
    session, trms, _ = make_session()

    @traced
    def touch(array):
        array[-1] = 5
        return array[2]

    with session:
        array = session.array(3)
        touch(array)
    # -1 and 2 are the same cell: one write then read -> size 0
    assert activations(trms, "touch")[0].size == 0


def test_tracked_array_rejects_negative_size():
    session = TraceSession()
    with session:
        with pytest.raises(ValueError):
            session.array(-1)


def test_tracked_list_append_pop():
    session = TraceSession()
    with session:
        items = session.list([1, 2])
        items.append(3)
        assert len(items) == 3
        assert items.pop() == 3
        assert items[0] == 1
        items[1] = 9
        assert items.snapshot() == [1, 9]


def test_tracked_dict_semantics():
    session = TraceSession()
    with session:
        table = session.dict()
        table["k"] = 1
        assert "k" in table
        assert table["k"] == 1
        assert table.get("missing", 7) == 7
        table["k"] = 2
        assert table.snapshot() == {"k": 2}
        del table["k"]
        assert "k" not in table
        with pytest.raises(KeyError):
            table["k"]


def test_tracked_dict_reinsert_gets_fresh_cell():
    session = TraceSession()
    with session:
        table = session.dict()
        table["k"] = 1
        first = table.addr_of("k")
        del table["k"]
        table["k"] = 2
        assert table.addr_of("k") != first


def test_dict_value_rewrite_keeps_cell():
    """Overwriting a value must reuse the cell, so a reader's repeated
    lookups do not inflate rms."""
    session, trms, rms = make_session()

    @traced
    def rewrite(table):
        table["x"] = 1
        table["x"] = 2
        return table["x"]

    with session:
        rewrite(session.dict())
    assert activations(rms, "rewrite")[0].size == 0


# -- kernel I/O -------------------------------------------------------------------------


def test_kernel_fill_then_read_is_external_input():
    session, trms, rms = make_session()

    @traced
    def consume(array, count):
        return sum(array[i] for i in range(count))

    with session:
        array = session.array(8)
        for _ in range(3):
            session.kernel_fill(array, 0, [1, 2])
            consume(array, 1)   # only cell 0 is read

    records = activations(trms, "consume")
    assert [r.size for r in records] == [1, 1, 1]
    assert all(r.induced_external == 1 for r in records)
    # rms: same cell every time -> only the first activation counts it
    assert [r.size for r in activations(rms, "consume")] == [1, 1, 1]


def test_kernel_drain_counts_as_thread_reads():
    session, trms, _ = make_session()

    @traced
    def send(array):
        return session.kernel_drain(array, 0, 4)

    with session:
        array = session.array(4)

        @traced
        def fill(a):
            for i in range(4):
                a[i] = i

        fill(array)
        values = send(array)
    assert values == [0, 1, 2, 3]
    record = activations(trms, "send")[0]
    assert record.size == 4


# -- threads ---------------------------------------------------------------------------


def test_threads_get_distinct_ids_and_serialized_events():
    session, trms, _ = make_session()

    @traced
    def write_cell(array, value):
        array[0] = value

    with session:
        array = session.array(1)
        workers = [spawn(write_cell, array, k) for k in range(3)]
        for worker in workers:
            worker.join()

    threads = {a.thread for a in activations(trms, "write_cell")}
    assert len(threads) == 3


def test_producer_consumer_over_python_threads():
    """The paper's Figure 2 on the pytrace substrate."""
    import threading

    session, trms, rms = make_session()
    n = 10

    @traced
    def consume_one(shared):
        return shared[0]

    with session:
        shared = session.array(1)
        full = threading.Semaphore(0)
        empty = threading.Semaphore(1)

        @traced
        def consumer():
            for _ in range(n):
                full.acquire()
                consume_one(shared)
                empty.release()

        @traced
        def producer():
            for value in range(n):
                empty.acquire()
                shared[0] = value
                full.release()

        threads = [spawn(producer), spawn(consumer)]
        for thread in threads:
            thread.join()

    consumer_record = activations(trms, "consumer")[0]
    assert consumer_record.size == n
    assert consumer_record.induced_thread == n
    assert activations(rms, "consumer")[0].size == 1


def test_spawn_requires_session():
    with pytest.raises(RuntimeError):
        spawn(lambda: None)


def test_traced_lock_reports_to_helgrind():
    from repro.tools import Helgrind

    helgrind = Helgrind()
    session = TraceSession(tools=EventBus([helgrind]))
    with session:
        shared = session.array(1)
        lock = TracedLock(session, "guard")

        def bump():
            with lock:
                shared[0] = shared[0] + 1

        workers = [spawn(bump) for _ in range(3)]
        for worker in workers:
            worker.join()
    assert helgrind.report()["races"] == []


def test_differential_on_pytrace_stream():
    """The naive oracle agrees with the efficient profiler on a stream
    produced by real Python execution (not just generated traces)."""
    trms = TrmsProfiler(keep_activations=True)
    oracle = NaiveTrms(keep_activations=True)
    session = TraceSession(tools=EventBus([trms, oracle]))

    @traced
    def work(array):
        total = 0
        for i in range(len(array)):
            total += array[i]
        array[0] = total
        return total

    with session:
        array = session.array(16, fill=2)
        session.kernel_fill(array, 0, [5] * 4)
        work(array)
        work(array)

    fast = [(a.routine, a.thread, a.size) for a in trms.db.activations]
    slow = [(a.routine, a.thread, a.size) for a in oracle.db.activations]
    assert fast == slow
