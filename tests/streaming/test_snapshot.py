"""Checkpoint snapshots: delta encoding, atomicity, manifest schema."""

import json
import os

import pytest

from repro.core import ProfileDatabase
from repro.farm import ProfileDumpError
from repro.streaming import (
    DELTA_MAGIC,
    MANIFEST_NAME,
    STREAM_SCHEMA,
    SnapshotWriter,
    checkpoint_dump_bytes,
    load_checkpoint,
    load_manifest,
)

from .util import dump_bytes


def growing_db(rounds):
    """Yield the same ProfileDatabase after each round of activations."""
    db = ProfileDatabase()
    for index in range(rounds):
        for size in (4, 8, 16):
            db.add_activation("hot", 1, size, size * (index + 2))
            if index == 0:
                db.add_activation(f"cold{size}", 1, size, size)
        yield db


def test_emit_then_reload_is_exact(tmp_path):
    writer = SnapshotWriter(str(tmp_path), "s1")
    db = None
    for db in growing_db(3):
        writer.emit(db, events_analyzed=100)
    manifest, loaded = load_checkpoint(str(tmp_path))
    assert manifest["seq"] == 3
    assert dump_bytes(loaded) == dump_bytes(db)
    assert checkpoint_dump_bytes(str(tmp_path)) == dump_bytes(db)


def test_second_checkpoint_is_a_delta(tmp_path):
    writer = SnapshotWriter(str(tmp_path), "s1")
    infos = [writer.emit(db, events_analyzed=1) for db in growing_db(3)]
    assert not infos[0].delta                 # nothing to diff against
    assert infos[1].delta and infos[2].delta  # only "hot" blocks changed
    assert infos[1].blocks_changed < 4        # cold blocks not re-shipped
    with open(infos[1].path, "r", encoding="utf-8") as stream:
        first_line = stream.readline().strip()
    assert first_line == DELTA_MAGIC
    # deltas beat full rewrites on these mostly-unchanged databases
    full_size = os.path.getsize(infos[0].path)
    assert infos[1].bytes_written < full_size


def test_full_every_bounds_the_chain(tmp_path):
    writer = SnapshotWriter(str(tmp_path), "s1", full_every=2)
    for db in growing_db(7):
        writer.emit(db, events_analyzed=1)
    manifest = load_manifest(str(tmp_path))
    # chain = one full + at most full_every deltas
    assert 1 <= len(manifest["chain"]) <= 3
    assert manifest["chain"][0].endswith(".profile")


def test_manifest_schema_and_atomicity(tmp_path):
    writer = SnapshotWriter(str(tmp_path), "abc123", full_every=4)
    for db in growing_db(4):
        writer.emit(db, events_analyzed=7, events_behind=3, lag_ms=1.25,
                    events_per_s=1000.0, timestamp="2026-08-07T00:00:00")
    raw = json.load(open(tmp_path / MANIFEST_NAME))
    assert raw["schema"] == STREAM_SCHEMA
    assert raw["stream_id"] == "abc123"
    assert raw["seq"] == 4
    assert raw["events_analyzed"] == 7 and raw["events_behind"] == 3
    assert raw["lag_ms"] == 1.25 and raw["events_per_s"] == 1000.0
    assert raw["closed"] is False
    # atomic writes never leave temp files behind
    assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]


def test_wrong_schema_is_rejected(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text(json.dumps({"schema": "bogus/9"}))
    with pytest.raises(ProfileDumpError):
        load_manifest(str(tmp_path))
