"""Acceptance: a doped run must page the operator *before* it finishes.

The scenario: history says ``victim`` is linear.  A new run starts in
which ``victim`` has gone quadratic (the "doped" input).  Streaming
checkpoints are ingested into the observatory as superseding partial
runs — and the drift detector must raise the regression alert while the
trace is still being written, long before batch analysis could run.
"""

from repro.core import ProfileDatabase, replay
from repro.core.flatkernel import analyze_events_flat
from repro.observatory import (
    ObservatoryStore,
    detect_drift,
    ingest_checkpoint,
    record_from_profile_db,
)
from repro.streaming import LiveProfileSession

from .util import live_writer, synthetic_events

SIZES = (4, 8, 16, 32, 64, 128)


def seeded_store(path, events, runs=2):
    store = ObservatoryStore(path)
    for index in range(runs):
        db = ProfileDatabase()
        analyze_events_flat(events, db)
        record = record_from_profile_db(
            db, run_id=f"run{index}", git_sha=f"sha{index}",
            timestamp=f"2026-08-{index + 1:02d}T00:00:00+00:00", scale=1.0)
        assert store.add_run(record)
    return store


def test_doping_alert_fires_before_trace_close(tmp_path):
    linear = synthetic_events(
        {"victim": lambda n: 10 * n, "stable": lambda n: 5 * n}, SIZES)
    store = seeded_store(str(tmp_path / "obs"), linear)
    assert not [a for a in detect_drift(store)
                if a.routine == "victim" and a.verdict == "regressed"]

    doped = synthetic_events(
        {"victim": lambda n: n * n, "stable": lambda n: 5 * n}, SIZES)
    # padding keeps every doped RETURN inside a *sealed* chunk while the
    # writer is still running (the unflushed tail only holds padding)
    padding = synthetic_events({"stable": lambda n: 5 * n}, (8,) * 24)

    trace = str(tmp_path / "doped.rpt2")
    ckpt = str(tmp_path / "ckpt")
    session = LiveProfileSession(trace, ckpt, checkpoint_events=10 ** 9,
                                 checkpoint_seconds=10 ** 9)
    alerted_mid_run = False
    with live_writer(trace, chunk_events=16) as writer:
        replay(doped + padding, writer)
        # trace still open: drain what is sealed and cut a checkpoint
        while session.step():
            pass
        info = session.checkpoint()
        assert info.seq == 1
        result = ingest_checkpoint(store, ckpt)
        assert result.ingested and result.source == "stream"
        alerts = [a for a in detect_drift(store)
                  if a.routine == "victim" and a.verdict == "regressed"]
        alerted_mid_run = bool(alerts)
        assert alerted_mid_run, "doping must be caught before the run ends"
        assert alerts[0].new_growth and "2" in alerts[0].new_growth
    session.finalize()

    # the final checkpoint supersedes the partial one under the same id:
    # still one streamed run in history, now marked closed
    final = ingest_checkpoint(store, ckpt)
    assert final.run_id == result.run_id
    runs = [run for run in store.runs() if run.run_id == result.run_id]
    assert len(runs) == 1
    assert any(a.routine == "victim" and a.verdict == "regressed"
               for a in detect_drift(store))


def test_checkpoint_reingest_is_idempotent(tmp_path):
    linear = synthetic_events({"victim": lambda n: 10 * n}, SIZES)
    store = seeded_store(str(tmp_path / "obs"), linear, runs=1)
    trace = str(tmp_path / "t.rpt2")
    ckpt = str(tmp_path / "ckpt")
    session = LiveProfileSession(trace, ckpt, checkpoint_events=10 ** 9,
                                 checkpoint_seconds=10 ** 9)
    with live_writer(trace, chunk_events=16) as writer:
        replay(linear, writer)
    session.finalize()
    first = ingest_checkpoint(store, ckpt)
    assert first.ingested
    again = ingest_checkpoint(store, ckpt)
    assert not again.ingested              # identical checkpoint: no-op
    assert "already known" in again.detail
