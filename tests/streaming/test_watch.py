"""The watch dashboard: ranking, rendering, CLI round trip."""

from repro.core import ProfileDatabase
from repro.streaming import render_watch, routine_rows


def fitted_db(routines, sizes=(4, 8, 16, 32, 64)):
    db = ProfileDatabase()
    for name, cost_fn in routines.items():
        for size in sizes:
            db.add_activation(name, 1, size, int(cost_fn(size)))
    return db


def test_superlinear_routines_rank_first():
    db = fitted_db({
        "linear_hog": lambda n: 900 * n,       # most cost, but linear
        "quadratic": lambda n: n * n,
        "constant": lambda n: 17,
    })
    rows = routine_rows(db, top=10)
    assert rows[0][0] == "quadratic"
    growth = {name: model for name, model, *_ in rows}
    assert "n^2" in growth["quadratic"] or "2" in growth["quadratic"]
    assert growth["constant"].startswith("O(1)")


def test_render_watch_frame_contents():
    db = fitted_db({"alpha": lambda n: 3 * n})
    manifest = {
        "stream_id": "cafe01", "seq": 4, "closed": False,
        "events_analyzed": 12345, "events_behind": 67,
        "events_per_s": 2500.0, "lag_ms": 1.5, "stalls": 0,
        "timestamp": "2026-08-07T00:00:00",
    }
    frame = render_watch(manifest, db, top=5)
    assert "stream cafe01" in frame and "checkpoint #4" in frame
    assert "live" in frame
    assert "alpha" in frame
    assert "12.3k" in frame            # humanised events analyzed
    manifest["closed"] = True
    assert "closed" in render_watch(manifest, db)


def test_render_empty_database():
    frame = render_watch({"stream_id": "x", "seq": 1}, ProfileDatabase())
    assert "(no completed activations yet)" in frame
