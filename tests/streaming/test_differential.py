"""Streaming differential suite: arrival schedule must never matter.

The whole point of the live pipeline is that it is *free* of analysis
drift: feed the flat kernel chunk by chunk as a trace grows, and the
final profile — after ``finalize()`` — is byte-identical to the batch
``repro analyze --kernel flat`` dump of the same trace.  These tests
drive real benchmark traces and hypothesis-generated traces through
arbitrary chunk-arrival schedules and compare dumps byte for byte.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.streaming import (
    LiveProfileSession,
    checkpoint_dump_bytes,
    load_manifest,
)

from ..core.util import events_strategy
from .util import batch_dump_bytes, benchmark_events, live_writer, replay_in_slices

#: named arrival schedules: event-index cut points as a function of n
SCHEDULES = {
    "all-at-once": lambda n: [],
    "halves": lambda n: [n // 2],
    "bursts": lambda n: list(range(0, n, max(1, n // 7))),
    "trickle": lambda n: list(range(0, n, max(1, n // 23))),
}


def stream_through(tmp_dir, events, cuts, chunk_events=32, **session_kwargs):
    """Write ``events`` live with polls at ``cuts``; return (session, db)."""
    trace = f"{tmp_dir}/trace.rpt2"
    session = LiveProfileSession(
        trace, f"{tmp_dir}/ckpt",
        checkpoint_events=session_kwargs.pop("checkpoint_events", 500),
        checkpoint_seconds=1e9, **session_kwargs)
    with live_writer(trace, chunk_events=chunk_events) as writer:
        replay_in_slices(events, writer, cuts, session.step)
    db = session.finalize()
    return session, db


@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
@pytest.mark.parametrize("name", ["376.kdtree", "372.smithwa"])
def test_benchmark_traces_any_schedule_byte_identical(tmp_path, name, schedule):
    events = benchmark_events(name, threads=2, scale=0.2)
    expected = batch_dump_bytes(events)
    cuts = SCHEDULES[schedule](len(events))
    session, _db = stream_through(str(tmp_path), events, cuts)
    streamed = checkpoint_dump_bytes(str(tmp_path / "ckpt"))
    assert streamed == expected
    manifest = load_manifest(str(tmp_path / "ckpt"))
    assert manifest["closed"] is True
    assert manifest["events_analyzed"] == len(events)
    # mid-flight checkpoints were cut along the way for real schedules
    if schedule != "all-at-once":
        assert len(session.checkpoints) >= 1


@pytest.mark.parametrize("name", ["376.kdtree"])
def test_context_sensitive_streaming_byte_identical(tmp_path, name):
    events = benchmark_events(name, threads=2, scale=0.2)
    expected = batch_dump_bytes(events, context_sensitive=True)
    cuts = SCHEDULES["bursts"](len(events))
    stream_through(str(tmp_path), events, cuts, context_sensitive=True)
    assert checkpoint_dump_bytes(str(tmp_path / "ckpt")) == expected


@settings(max_examples=25, deadline=None)
@given(events_strategy(max_ops=120),
       st.lists(st.integers(min_value=0, max_value=400), max_size=8),
       st.sampled_from([1, 7, 32]))
def test_hypothesis_traces_any_cuts_byte_identical(events, raw_cuts, chunk_events):
    """Any trace, any cut points, any chunk size: same bytes."""
    expected = batch_dump_bytes(events)
    cuts = sorted(min(c, len(events)) for c in raw_cuts)
    with tempfile.TemporaryDirectory() as tmp_dir:
        stream_through(tmp_dir, events, cuts, chunk_events=chunk_events,
                       checkpoint_events=64)
        assert checkpoint_dump_bytes(f"{tmp_dir}/ckpt") == expected


def test_checkpoint_chain_reassembles_at_every_seq(tmp_path):
    """Deltas must reassemble: ingest the *final* manifest through the
    chain reader and get the exact batch dump even when most checkpoints
    were delta-encoded."""
    events = benchmark_events("376.kdtree", threads=2, scale=0.2)
    cuts = SCHEDULES["trickle"](len(events))
    session, _db = stream_through(str(tmp_path), events, cuts,
                                  checkpoint_events=200, full_every=5)
    assert any(info.delta for info in session.checkpoints)
    assert checkpoint_dump_bytes(str(tmp_path / "ckpt")) == batch_dump_bytes(events)
