"""The chunk tailer: sealed-chunk visibility, torn tails, name sidecar."""

import os

import pytest

from repro.core import EventKind, replay
from repro.farm import TruncatedChunk, live_names_path
from repro.streaming import ChunkTailer

from .util import benchmark_events, live_writer, synthetic_events


def decode_all(tailer):
    """Flatten every polled chunk back into (kind, thread, arg) rows."""
    rows = []
    while True:
        polled = tailer.poll()
        if not polled:
            return rows
        for columns in polled:
            rows.extend(zip(columns.kinds, columns.threads, columns.args))


def test_sealed_chunks_visible_before_close(tmp_path):
    """Every ``_flush_chunk`` must hit the OS: a reader polling while the
    writer is still open sees all sealed chunks, names included."""
    trace = str(tmp_path / "t.rpt2")
    events = synthetic_events({"alpha": lambda n: n, "beta": lambda n: 2 * n})
    seen_mid_flight = 0
    with live_writer(trace, chunk_events=16) as writer:
        replay(events, writer)
        with ChunkTailer(trace) as tailer:
            polled = tailer.poll()
            seen_mid_flight = sum(c.events for c in polled)
            # the sidecar flushes *before* the chunk bytes, so every
            # routine id referenced by a sealed chunk resolves already
            call = int(EventKind.CALL)
            for columns in polled:
                for kind, arg in zip(columns.kinds, columns.args):
                    if kind == call:
                        assert arg < len(tailer.names)
            assert not tailer.sealed
    assert seen_mid_flight > 0
    assert seen_mid_flight % 16 == 0      # whole chunks only, no torn reads


def test_tailer_drains_to_exact_event_stream(tmp_path):
    trace = str(tmp_path / "t.rpt2")
    events = benchmark_events("376.kdtree", threads=2, scale=0.2)
    with live_writer(trace, chunk_events=64) as writer:
        replay(events, writer)
    with ChunkTailer(trace) as tailer:
        rows = decode_all(tailer)
        assert tailer.sealed and tailer.drained
        tailer.finish()               # clean seal: no complaint
    assert len(rows) == len(events)
    names = tailer.names
    for event, (kind, thread, arg) in zip(events, rows):
        assert int(event.kind) == kind
        assert event.thread == thread
        if event.kind == EventKind.CALL:
            assert names[arg] == event.arg


def test_torn_tail_recovers_prefix_and_raises(tmp_path):
    """Truncating a sealed trace mid-chunk must still deliver the intact
    prefix, then fail ``finish()`` with the typed recoverable error."""
    trace = str(tmp_path / "t.rpt2")
    events = synthetic_events({"alpha": lambda n: n * n})
    with live_writer(trace, chunk_events=16) as writer:
        replay(events, writer)
    whole = os.path.getsize(trace)
    os.truncate(trace, whole - whole // 3)   # rip off footer + some chunks
    with ChunkTailer(trace) as tailer:
        rows = decode_all(tailer)
        assert 0 < len(rows) < len(events)
        assert not tailer.sealed
        with pytest.raises(TruncatedChunk):
            tailer.finish()
    # the recovered rows are a strict prefix of the original stream
    for event, (kind, thread, _arg) in zip(events, rows):
        assert (int(event.kind), event.thread) == (kind, thread)


def test_unsealed_trace_without_torn_bytes_still_raises(tmp_path):
    """A writer killed between flushes leaves whole chunks but no seal:
    the prefix is valid, and finish() must say the stream never closed."""
    trace = str(tmp_path / "t.rpt2")
    events = synthetic_events({"alpha": lambda n: n})
    with open(trace, "wb") as stream, \
            open(live_names_path(trace), "w", encoding="utf-8") as names:
        from repro.farm import BinaryTraceWriter

        writer = BinaryTraceWriter(stream, chunk_events=16, names_stream=names)
        replay(events, writer)
        writer._flush_chunk()
        stream.flush()
        # no close(): the footer and trailer never land
    with ChunkTailer(trace) as tailer:
        rows = decode_all(tailer)
        assert rows
        with pytest.raises(TruncatedChunk):
            tailer.finish()


def test_missing_and_empty_files_are_quiet(tmp_path):
    missing = ChunkTailer(str(tmp_path / "nope.rpt2"))
    assert missing.poll() == []
    missing.finish()                  # nothing was ever written: fine
    empty = str(tmp_path / "empty.rpt2")
    open(empty, "wb").close()
    with ChunkTailer(empty) as tailer:
        assert tailer.poll() == []
        tailer.finish()


def test_partial_sidecar_line_is_not_consumed(tmp_path):
    trace = str(tmp_path / "t.rpt2")
    sidecar = live_names_path(trace)
    with open(sidecar, "w", encoding="utf-8") as stream:
        stream.write("alpha\nbet")            # second line still in flight
    tailer = ChunkTailer(trace)
    tailer.refresh_names()
    assert tailer.names == ["alpha"]
    with open(sidecar, "a", encoding="utf-8") as stream:
        stream.write("a\ngamma\n")
    tailer.refresh_names()
    assert tailer.names == ["alpha", "beta", "gamma"]
    tailer.close()


def test_poll_budget_counts_stalls(tmp_path):
    trace = str(tmp_path / "t.rpt2")
    events = synthetic_events({"alpha": lambda n: n}, sizes=(8,) * 40)
    with live_writer(trace, chunk_events=8) as writer:
        replay(events, writer)
    with ChunkTailer(trace, max_chunks_per_poll=2) as tailer:
        first = tailer.poll()
        assert len(first) == 2
        assert tailer.stalls >= 1
        while tailer.poll():
            pass
        assert tailer.drained
