"""CLI round trip: ``repro record --live`` and ``repro watch``."""

import filecmp
import io

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_record_live_then_watch_then_batch_identity(tmp_path):
    trace = str(tmp_path / "live.rpt2")
    ckpt = str(tmp_path / "ckpt")
    code, output = run_cli(
        "record", "376.kdtree", trace, "--threads", "2", "--scale", "0.3",
        "--live", ckpt, "--checkpoint-events", "2000")
    assert code == 0
    assert "live checkpoint" in output

    code, frame = run_cli("watch", ckpt, "--once")
    assert code == 0
    assert "repro watch" in frame and "closed" in frame

    streamed = str(tmp_path / "streamed.profile")
    batch = str(tmp_path / "batch.profile")
    from repro.streaming import checkpoint_dump_bytes

    with open(streamed, "wb") as stream:
        stream.write(checkpoint_dump_bytes(ckpt))
    code, _ = run_cli("analyze", trace, "--kernel", "flat", "--dump", batch)
    assert code == 0
    assert filecmp.cmp(streamed, batch, shallow=False)


def test_watch_follows_a_growing_trace(tmp_path):
    """``repro watch <trace> --checkpoints DIR --once`` co-tails: it can
    analyse a finished trace from scratch with no recorder help."""
    trace = str(tmp_path / "t.rpt2")
    ckpt = str(tmp_path / "ckpt")
    code, _ = run_cli("record", "376.kdtree", trace, "--threads", "2",
                      "--scale", "0.2", "--live", str(tmp_path / "unused"))
    assert code == 0
    code, frame = run_cli("watch", trace, "--checkpoints", ckpt, "--once")
    assert code == 0
    assert "checkpoint #" in frame


def test_record_live_requires_v2(tmp_path):
    code, output = run_cli(
        "record", "376.kdtree", str(tmp_path / "t.trace"), "--format", "v1",
        "--live", str(tmp_path / "ckpt"))
    assert code == 2
    assert "--live" in output


def test_watch_without_checkpoints_errors(tmp_path):
    code, output = run_cli("watch", str(tmp_path / "nothere"), "--once")
    assert code != 0
