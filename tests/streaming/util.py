"""Shared helpers: live recordings, synthetic traces, batch references.

The streaming suite's invariant is *byte identity*: however chunks
arrive — one flush at a time, in bursts, or all at once — the final
streamed dump must equal ``save_profile`` over the batch flat kernel.
These helpers produce both sides of that comparison.
"""

from __future__ import annotations

import contextlib
import io

from repro.core import Event, EventKind, ProfileDatabase, replay
from repro.core.flatkernel import analyze_events_flat
from repro.farm import BinaryTraceWriter, live_names_path, read_binary_trace, save_profile
from repro.workloads import benchmark

SIZES = (4, 8, 16, 32, 64, 128)


@contextlib.contextmanager
def live_writer(trace_path, chunk_events=32, durable=False):
    """A v2 writer with the names sidecar attached, closed on exit."""
    with open(trace_path, "wb") as stream, \
            open(live_names_path(trace_path), "w", encoding="utf-8") as names:
        writer = BinaryTraceWriter(stream, chunk_events=chunk_events,
                                   durable=durable, names_stream=names)
        try:
            yield writer
        finally:
            if not writer.closed:
                writer.close()


def benchmark_events(name, threads=2, scale=0.3):
    """In-memory events of one benchmark run, via a v2 round trip."""
    buffer = io.BytesIO()
    writer = BinaryTraceWriter(buffer, chunk_events=4096)
    benchmark(name).run(tools=writer, threads=threads, scale=scale)
    writer.close()
    buffer.seek(0)
    return read_binary_trace(buffer)


def batch_dump_bytes(events, context_sensitive=False):
    """The ground truth: batch flat-kernel dump of the whole trace."""
    db = ProfileDatabase()
    analyze_events_flat(events, db, context_sensitive=context_sensitive)
    out = io.StringIO()
    save_profile(db, out)
    return out.getvalue().encode("utf-8")


def dump_bytes(db):
    out = io.StringIO()
    save_profile(db, out)
    return out.getvalue().encode("utf-8")


def synthetic_events(routines, sizes=SIZES, thread=1):
    """Events where each routine reads ``size`` fresh cells, costs
    ``cost_fn(size)`` units, and returns — so the fitted growth class of
    each routine is exactly the shape of its cost function."""
    events = []
    fresh = 1_000_000
    for size in sizes:
        for name, cost_fn in routines.items():
            events.append(Event(EventKind.CALL, thread, name))
            for _ in range(size):
                events.append(Event(EventKind.READ, thread, fresh))
                fresh += 1
            events.append(Event(EventKind.COST, thread, int(cost_fn(size))))
            events.append(Event(EventKind.RETURN, thread, 0))
    return events


def replay_in_slices(events, writer, cuts, on_cut):
    """Replay ``events`` through ``writer``, calling ``on_cut()`` at
    every index in ``cuts`` (a sorted list of cut points)."""
    last = 0
    for cut in cuts:
        cut = max(last, min(cut, len(events)))
        replay(events[last:cut], writer)
        last = cut
        on_cut()
    replay(events[last:], writer)
