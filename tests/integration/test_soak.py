"""Soak tests: heavier concurrent runs through the full stack."""

import pytest

from repro.core import EventBus, RmsProfiler, TrmsProfiler, input_volume
from repro.minidb import Database, minislap
from repro.pytrace import TraceSession
from repro.tools import Helgrind
from repro.vipslike import vips_pipeline


def test_minislap_soak_with_flusher_and_race_detector():
    """8 clients, background flusher, profilers + helgrind together."""
    rms = RmsProfiler()
    trms = TrmsProfiler(keep_activations=True)
    helgrind = Helgrind()
    session = TraceSession(tools=EventBus([rms, trms, helgrind]))
    with session:
        db = Database(session, page_size=9, pool_frames=4, ring_slots=8)
        report = minislap(session, db, clients=8, queries_per_client=15,
                          insert_ratio=0.5, preload_rows=20)
        # final state is consistent: every insert visible after the drain
        rows = db.execute("SELECT * FROM load_test")
    assert len(rows) == report.rows_inserted + 20
    assert report.queries == 8 * 15
    # tracked structures are lock-protected: no races
    assert helgrind.report()["races"] == []
    # the engine's communication shows up as induced input
    assert input_volume(rms.db, trms.db) > 0.05
    assert trms.db.total_induced()[0] > 0        # thread-induced
    assert trms.db.total_induced()[1] > 0        # external (disk traffic)


def test_vips_soak_many_workers_small_timeslice():
    """Max context-switch pressure: tiny timeslices, several pairs."""
    trms = TrmsProfiler(keep_activations=True)
    helgrind = Helgrind()
    scenario = vips_pipeline(workers=4, strips_per_worker=10)
    machine = scenario.run(tools=EventBus([trms, helgrind]), timeslice=3)
    assert helgrind.report()["races"] == []
    out = machine.devices["imgout"].values
    assert len(out) == 4 * 10 * 64
    generates = [a for a in trms.db.activations
                 if a.routine.startswith("im_generate")]
    assert len(generates) == 40
    assert all(a.size == 64 for a in generates)


@pytest.mark.parametrize("timeslice", [2, 5, 17, 97])
def test_suite_terminates_under_extreme_timeslices(timeslice):
    from repro.workloads import benchmark

    for name in ("350.md", "372.smithwa", "dedup"):
        machine = benchmark(name).run(threads=3, scale=0.5, timeslice=timeslice)
        assert machine.stats.total_blocks > 0
