"""Instrumentation transparency: analysis must never change execution.

A Valgrind tool observes a program; it must not perturb it.  These tests
run every guest scenario and every registered benchmark twice — natively
and under the full tool stack — and require identical final guest
memory, identical device traffic, and identical execution statistics.
"""

import pytest

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.tools import TOOL_NAMES, make_tool
from repro.vm import OutputDevice, programs
from repro.workloads import all_benchmarks

SCENARIOS = [
    programs.figure_1a,
    programs.figure_1b,
    lambda: programs.producer_consumer(12),
    lambda: programs.buffered_read(9),
    lambda: programs.insertion_sort([5, 2, 9, 1, 7]),
    lambda: programs.merge_sort([4, 4, 1, 9, 0, 3, 8]),
    lambda: programs.matmul(4),
    lambda: programs.parallel_sum(3, 6),
    lambda: programs.locked_increment(3, 5),
]


def final_state(machine):
    devices = {}
    for name, device in machine.devices.items():
        if isinstance(device, OutputDevice):
            devices[name] = list(device.values)
        else:
            devices[name] = device.cursor
    return {
        "memory": dict(machine.memory),
        "devices": devices,
        "blocks": machine.stats.total_blocks,
        "instructions": machine.stats.total_instructions,
        "threads": machine.stats.threads_spawned,
    }


@pytest.mark.parametrize("build", SCENARIOS, ids=lambda b: getattr(b, "__name__", "scenario"))
def test_scenarios_unperturbed_by_full_tool_stack(build):
    native = build().run()
    tools = EventBus([make_tool(name) for name in TOOL_NAMES])
    instrumented = build().run(tools=tools)
    assert final_state(native) == final_state(instrumented)


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
def test_benchmarks_unperturbed_by_profilers(bench):
    native = bench.run(threads=3, scale=0.5)
    instrumented = bench.run(
        tools=EventBus([RmsProfiler(), TrmsProfiler()]), threads=3, scale=0.5
    )
    assert final_state(native) == final_state(instrumented)


def test_profiler_pair_sees_identical_stream():
    """Two trms profilers on one bus must build identical databases."""
    first = TrmsProfiler(keep_activations=True)
    second = TrmsProfiler(keep_activations=True)
    programs.producer_consumer(10).run(tools=EventBus([first, second]))
    assert [tuple(a) for a in first.db.activations] == [
        tuple(a) for a in second.db.activations
    ]
