"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_list_shows_both_suites():
    code, output = run_cli("list")
    assert code == 0
    assert "350.md" in output
    assert "dedup" in output
    assert "spec-omp2012" in output and "parsec" in output


def test_profile_basic():
    code, output = run_cli("profile", "352.nab", "--threads", "2", "--scale", "0.5")
    assert code == 0
    assert "basic blocks" in output
    assert "rms profile of 352.nab" in output
    assert "trms profile of 352.nab" in output
    assert "work_region" in output


def test_profile_single_metric():
    code, output = run_cli("profile", "352.nab", "--metric", "rms",
                           "--threads", "2", "--scale", "0.5")
    assert code == 0
    assert "rms profile" in output
    assert "trms profile" not in output


def test_profile_unknown_benchmark():
    code, output = run_cli("profile", "999.nothing")
    assert code == 2
    assert "error" in output


def test_profile_with_plot_and_bottlenecks():
    code, output = run_cli("profile", "376.kdtree", "--threads", "2",
                           "--plot", "search", "--bottlenecks")
    assert code == 0
    assert "bottleneck ranking" in output
    assert "worst-case cost plot" in output


def test_profile_plot_unknown_routine():
    code, output = run_cli("profile", "352.nab", "--threads", "2",
                           "--scale", "0.5", "--plot", "missing_routine")
    assert code == 2


def test_profile_context_sensitive():
    code, output = run_cli("profile", "376.kdtree", "--threads", "2", "--context")
    assert code == 0
    assert ";search" in output    # context keys visible in the report


def test_dump_and_fit_roundtrip(tmp_path):
    dump = tmp_path / "points.tsv"
    code, _ = run_cli("profile", "376.kdtree", "--threads", "2", "--dump", str(dump))
    assert code == 0
    assert dump.exists()
    code, output = run_cli("fit", str(dump), "search")
    assert code == 0
    assert "search:" in output
    assert "R^2" in output


def test_fit_unknown_routine(tmp_path):
    dump = tmp_path / "points.tsv"
    run_cli("profile", "376.kdtree", "--threads", "2", "--dump", str(dump))
    code, output = run_cli("fit", str(dump), "ghost")
    assert code == 2
    assert "error" in output


def test_profile_with_sampling():
    code, output = run_cli("profile", "352.nab", "--threads", "2",
                           "--scale", "0.5", "--sample", "4")
    assert code == 0
    assert "lower bounds" in output


def test_record_and_analyze_roundtrip(tmp_path):
    trace = tmp_path / "run.trace"
    code, output = run_cli("record", "358.botsalgn", str(trace),
                           "--threads", "2", "--scale", "0.5")
    assert code == 0
    assert "recorded" in output
    assert trace.exists()
    code, output = run_cli("analyze", str(trace), "--metric", "trms")
    assert code == 0
    assert "trms profile" in output
    assert "do_task" in output


def test_analyze_rejects_non_trace(tmp_path):
    bogus = tmp_path / "bogus.txt"
    bogus.write_text("hello\n")
    code, output = run_cli("analyze", str(bogus))
    assert code == 2
    assert "error" in output


def test_record_v2_is_binary_and_analyzable(tmp_path):
    trace = tmp_path / "run.rpt2"
    code, output = run_cli("record", "358.botsalgn", str(trace),
                           "--threads", "2", "--scale", "0.5")
    assert code == 0
    assert "chunks" in output
    assert trace.read_bytes().startswith(b"RPTRACE2")
    code, output = run_cli("analyze", str(trace), "--metric", "trms")
    assert code == 0
    assert "trms profile" in output and "do_task" in output


def test_record_v1_format_still_text(tmp_path):
    trace = tmp_path / "run.trace"
    code, _ = run_cli("record", "358.botsalgn", str(trace),
                      "--threads", "2", "--scale", "0.5", "--format", "v1")
    assert code == 0
    assert trace.read_text().startswith("repro-trace 1")


def test_analyze_jobs_matches_sequential(tmp_path):
    trace = tmp_path / "run.rpt2"
    run_cli("record", "350.md", str(trace), "--threads", "4", "--scale", "0.5")
    code, sequential = run_cli("analyze", str(trace), "--metric", "trms")
    assert code == 0
    code, farmed = run_cli("analyze", str(trace), "--metric", "trms",
                           "--jobs", "2")
    assert code == 0
    assert farmed == sequential  # identical rendered report: exactness


def test_analyze_jobs_stats_report(tmp_path):
    trace = tmp_path / "run.rpt2"
    run_cli("record", "350.md", str(trace), "--threads", "4", "--scale", "0.5")
    code, output = run_cli("analyze", str(trace), "--metric", "trms",
                           "--jobs", "2", "--stats")
    assert code == 0
    assert "farm shards" in output
    assert "events/s" in output
    assert "plan: by-thread" in output


def test_record_analyze_merge_fit_pipeline(tmp_path):
    """The full farm workflow end to end through temp files."""
    dumps = []
    for index, scale in enumerate(("0.5", "1.0")):
        trace = tmp_path / f"run{index}.rpt2"
        code, _ = run_cli("record", "376.kdtree", str(trace),
                          "--threads", "2", "--scale", scale)
        assert code == 0
        dump = tmp_path / f"run{index}.profile"
        code, output = run_cli("analyze", str(trace), "--metric", "trms",
                               "--jobs", "2", "--dump", str(dump))
        assert code == 0
        assert "profile points" in output
        dumps.append(dump)
    merged = tmp_path / "merged.profile"
    code, output = run_cli("merge", "-o", str(merged), *map(str, dumps))
    assert code == 0
    assert "merged profile of 2 run(s)" in output
    assert merged.exists()
    code, output = run_cli("fit", str(merged), "search")
    assert code == 0
    assert "search:" in output and "R^2" in output


def test_merge_rejects_non_profile(tmp_path):
    bogus = tmp_path / "bogus.profile"
    bogus.write_text("hello\n")
    code, output = run_cli("merge", "-o", str(tmp_path / "out"), str(bogus))
    assert code == 2
    assert "error" in output


def test_analyze_rms_with_jobs_notes_sequential(tmp_path):
    trace = tmp_path / "run.rpt2"
    run_cli("record", "350.md", str(trace), "--threads", "2", "--scale", "0.5")
    code, output = run_cli("analyze", str(trace), "--jobs", "2")
    assert code == 0
    assert "rms runs sequentially" in output
    assert "rms profile" in output and "trms profile" in output


def test_profile_html_report(tmp_path):
    html_file = tmp_path / "report.html"
    code, output = run_cli("profile", "376.kdtree", "--threads", "2",
                           "--html", str(html_file))
    assert code == 0
    content = html_file.read_text()
    assert content.startswith("<!DOCTYPE html>")
    assert "search" in content


def test_analyze_with_telemetry_writes_log_and_identical_profile(tmp_path):
    from repro.telemetry import TelemetryRun

    trace = tmp_path / "run.rpt2"
    run_cli("record", "350.md", str(trace), "--threads", "4", "--scale", "0.5")
    dump_without = tmp_path / "without.profile"
    code, _ = run_cli("analyze", str(trace), "--metric", "trms",
                      "--jobs", "2", "--dump", str(dump_without))
    assert code == 0
    dump_with = tmp_path / "with.profile"
    tele_dir = tmp_path / "tele"
    code, output = run_cli("analyze", str(trace), "--metric", "trms",
                           "--jobs", "2", "--dump", str(dump_with),
                           "--telemetry", str(tele_dir))
    assert code == 0
    assert "telemetry written to" in output
    # telemetry observes, never perturbs: bit-identical profile dump
    assert dump_with.read_bytes() == dump_without.read_bytes()
    run = TelemetryRun.load(str(tele_dir))
    assert "analyze.pool" in run.span_names()
    assert run.heartbeats


def test_stats_renders_dashboard_and_html(tmp_path):
    trace = tmp_path / "run.rpt2"
    run_cli("record", "350.md", str(trace), "--threads", "4", "--scale", "0.5")
    tele_dir = tmp_path / "tele"
    run_cli("analyze", str(trace), "--metric", "trms", "--jobs", "2",
            "--telemetry", str(tele_dir))
    html_file = tmp_path / "dash.html"
    code, output = run_cli("stats", str(tele_dir), "--html", str(html_file))
    assert code == 0
    assert "span tree" in output
    assert "worker heartbeats" in output
    assert html_file.read_text().startswith("<!DOCTYPE html>")


def test_stats_rejects_missing_run(tmp_path):
    code, output = run_cli("stats", str(tmp_path / "nope"))
    assert code == 2
    assert "error" in output


def test_overhead_command_reports_slowdowns():
    code, output = run_cli("overhead", "352.nab", "--threads", "2",
                           "--scale", "0.4", "--repeats", "1",
                           "--tools", "aprof-rms,aprof-trms")
    assert code == 0
    assert "native" in output and "aprof-trms" in output
    assert "slowdown" in output


def test_overhead_unknown_benchmark():
    code, output = run_cli("overhead", "999.nothing")
    assert code == 2
    assert "error" in output


def test_record_with_telemetry_counts_events(tmp_path):
    from repro.telemetry import TelemetryRun

    trace = tmp_path / "run.rpt2"
    tele_dir = tmp_path / "tele"
    code, output = run_cli("record", "358.botsalgn", str(trace),
                           "--threads", "2", "--scale", "0.5",
                           "--telemetry", str(tele_dir))
    assert code == 0
    run = TelemetryRun.load(str(tele_dir))
    events = int(output.split("recorded ")[1].split(" events")[0])
    assert run.counter_value("record.events") == events
    assert run.spans_named("record")[0]["attrs"]["events"] == events
