"""Tests for hash indexes: correctness and profile shape."""

import pytest

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.minidb import Database, SqlError
from repro.minidb.sql import CreateIndex, parse
from repro.pytrace import TraceSession


def make_db(**kwargs):
    rms = RmsProfiler(keep_activations=True)
    trms = TrmsProfiler(keep_activations=True)
    session = TraceSession(tools=EventBus([rms, trms]))
    session.__enter__()
    return session, Database(session, **kwargs), rms, trms


def close(session):
    session.__exit__(None, None, None)


def test_parse_create_index():
    assert parse("CREATE INDEX ON users (age)") == CreateIndex("users", "age")
    assert parse("create index on t(a);") == CreateIndex("t", "a")


def test_index_built_from_existing_rows():
    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a, b)")
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i % 3}, {i})")
        db.execute("CREATE INDEX ON t (a)")
        assert db.execute("SELECT * FROM t WHERE a = 1") == [
            [1, 1], [1, 4], [1, 7]
        ]
        index = db.indexes[("t", "a")]
        assert index.lookups == 1
    finally:
        close(session)


def test_index_maintained_on_insert():
    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a)")
        db.execute("CREATE INDEX ON t (a)")
        for i in range(6):
            db.execute(f"INSERT INTO t VALUES ({i % 2})")
        assert db.execute("SELECT * FROM t WHERE a = 0") == [[0]] * 3
        assert db.execute("SELECT * FROM t WHERE a = 1") == [[1]] * 3
        assert db.execute("SELECT * FROM t WHERE a = 7") == []
    finally:
        close(session)


def test_index_maintained_on_update():
    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a, b)")
        db.execute("CREATE INDEX ON t (a)")
        for i in range(4):
            db.execute(f"INSERT INTO t VALUES ({i}, 0)")
        db.execute("UPDATE t SET a = 100 WHERE a < 2")
        assert db.execute("SELECT * FROM t WHERE a = 100") == [[100, 0], [100, 0]]
        assert db.execute("SELECT * FROM t WHERE a = 0") == []
        assert db.execute("SELECT * FROM t WHERE a = 1") == []
    finally:
        close(session)


def test_index_only_serves_equality():
    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a)")
        db.execute("CREATE INDEX ON t (a)")
        for i in range(8):
            db.execute(f"INSERT INTO t VALUES ({i})")
        index = db.indexes[("t", "a")]
        before = index.lookups
        assert len(db.execute("SELECT * FROM t WHERE a < 4")) == 4   # scan path
        assert index.lookups == before
        assert db.execute("SELECT * FROM t WHERE a = 4") == [[4]]    # index path
        assert index.lookups == before + 1
    finally:
        close(session)


def test_duplicate_index_rejected():
    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a)")
        db.execute("CREATE INDEX ON t (a)")
        with pytest.raises(SqlError):
            db.execute("CREATE INDEX ON t (a)")
    finally:
        close(session)


def test_index_on_unknown_column_rejected():
    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a)")
        with pytest.raises(SqlError):
            db.execute("CREATE INDEX ON t (nope)")
    finally:
        close(session)


def test_indexed_point_query_has_smaller_input_than_scan():
    """The input-sensitive payoff: same query text, different metric."""
    session, db, rms, _ = make_db(page_size=9, pool_frames=4)
    try:
        db.execute("CREATE TABLE t (a, b)")
        for i in range(60):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.execute("SELECT * FROM t WHERE a = 30")          # scan (no index)
        db.execute("CREATE INDEX ON t (a)")
        db.execute("SELECT * FROM t WHERE a = 30")          # point lookup
    finally:
        close(session)
    selects = [a for a in rms.db.activations if a.routine == "mysql_select"]
    assert len(selects) == 2
    scan, indexed = selects
    assert indexed.size < scan.size / 3
    assert indexed.cost < scan.cost / 3
