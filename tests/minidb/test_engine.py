"""Tests for the minidb engine: storage, pool, tables, queries, flusher."""

import pytest

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.minidb import Database, SqlError, minislap
from repro.pytrace import TraceSession


def make_db(**kwargs):
    trms = TrmsProfiler(keep_activations=True)
    rms = RmsProfiler(keep_activations=True)
    session = TraceSession(tools=EventBus([rms, trms]))
    session.__enter__()
    db = Database(session, **kwargs)
    return session, db, rms, trms


def close(session):
    session.__exit__(None, None, None)


def test_create_insert_select_roundtrip():
    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a, b)")
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i}, {10 * i})")
        db.flush_now()
        rows = db.execute("SELECT * FROM t")
        assert rows == [[i, 10 * i] for i in range(10)]
    finally:
        close(session)


def test_where_filters():
    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a, b)")
        for i in range(12):
            db.execute(f"INSERT INTO t VALUES ({i}, 0)")
        db.flush_now()
        assert len(db.execute("SELECT * FROM t WHERE a < 4")) == 4
        assert len(db.execute("SELECT * FROM t WHERE a >= 10")) == 2
        assert db.execute("SELECT * FROM t WHERE a = 7") == [[7, 0]]
        assert len(db.execute("SELECT * FROM t WHERE a != 7")) == 11
    finally:
        close(session)


def test_errors():
    session, db, _, _ = make_db()
    try:
        with pytest.raises(SqlError):
            db.execute("SELECT * FROM missing")
        db.execute("CREATE TABLE t (a)")
        with pytest.raises(SqlError):
            db.execute("CREATE TABLE t (a)")
        with pytest.raises(SqlError):
            db.execute("SELECT * FROM t WHERE nope = 1")
        with pytest.raises(ValueError):
            db.execute("INSERT INTO t VALUES (1, 2)")   # wrong arity
    finally:
        close(session)


def test_table_spans_many_pages():
    session, db, _, _ = make_db(page_size=9, pool_frames=3)
    try:
        db.execute("CREATE TABLE t (a, b)")
        n = 50
        for i in range(n):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.flush_now()
        table = db.tables["t"]
        assert table.page_count() > db.pool.frames
        assert db.execute("SELECT * FROM t") == [[i, i] for i in range(n)]
    finally:
        close(session)


def test_mysql_select_rms_saturates_at_pool_size():
    """The Figure 4 mechanism: big scans through a small pool."""
    session, db, rms, trms = make_db(page_size=9, pool_frames=4)
    try:
        db.execute("CREATE TABLE t (a, b)")
        for i in range(60):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.flush_now()
        db.execute("SELECT * FROM t")
    finally:
        close(session)
    rms_size = [a.size for a in rms.db.activations if a.routine == "mysql_select"][0]
    trms_size = [a.size for a in trms.db.activations if a.routine == "mysql_select"][0]
    pool_cells = db.pool.frames * db.pool.page_size
    assert rms_size <= pool_cells
    assert trms_size > 2 * rms_size
    assert trms_size >= 60 * 2    # every row cell is (external) input


def test_pool_hit_does_not_refetch():
    session, db, _, _ = make_db(page_size=9, pool_frames=4)
    try:
        db.execute("CREATE TABLE t (a)")
        for i in range(3):
            db.execute(f"INSERT INTO t VALUES ({i})")
        db.flush_now()
        db.execute("SELECT * FROM t")
        reads_after_first = db.disk.reads
        db.execute("SELECT * FROM t")   # table fits in the pool
        assert db.disk.reads == reads_after_first
        assert db.pool.hits > 0
    finally:
        close(session)


def test_protocol_send_rows_and_eof():
    session, db, _, trms = make_db()
    try:
        db.execute("CREATE TABLE t (a, b)")
        for i in range(5):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.flush_now()
        protocol = db.new_protocol()
        rows = db.execute("SELECT * FROM t WHERE a < 3", protocol)
        assert len(rows) == 3
        assert protocol.rows_sent == 3
        assert protocol.eofs_sent == 1
        # rows flow to the sink, then one status packet
        assert protocol.sent[:6] == [0, 0, 1, 1, 2, 2]
        assert len(protocol.sent) == 6 + 4
    finally:
        close(session)
    eof = [a for a in trms.db.activations if a.routine == "send_eof"]
    assert len(eof) == 1
    assert eof[0].size > 0


def test_flush_applies_records_in_page_order():
    session, db, _, _ = make_db(ring_slots=16)
    try:
        db.execute("CREATE TABLE t (a)")
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i})")
        db.flush_now()
        # one data record + one header record per row, whether drained by
        # flush_now or by ring-pressure self-flushes along the way
        assert db.change_buffer.records_flushed == 20
        assert db.execute("SELECT * FROM t") == [[i] for i in range(10)]
    finally:
        close(session)


def test_background_flusher_drains_under_load():
    session, db, _, trms = make_db(ring_slots=6)
    try:
        db.execute("CREATE TABLE t (a, b)")
        db.start_flusher()
        for i in range(30):
            db.execute(f"INSERT INTO t VALUES ({i}, {i})")
        db.stop_flusher()
        assert db.change_buffer.records_flushed == 60
        assert db.execute("SELECT * FROM t") == [[i, i] for i in range(30)]
    finally:
        close(session)
    flushes = [a for a in trms.db.activations if a.routine == "buf_flush_buffered_writes"]
    assert flushes
    # every flush activation's input came from the client threads
    for record in flushes:
        assert record.size > 0


def test_flush_now_rejected_while_flusher_runs():
    session, db, _, _ = make_db()
    try:
        db.start_flusher()
        with pytest.raises(RuntimeError):
            db.flush_now()
        db.stop_flusher()
    finally:
        close(session)


def test_full_ring_self_flushes_without_background_flusher():
    session, db, _, _ = make_db(ring_slots=2)
    try:
        db.execute("CREATE TABLE t (a)")
        for i in range(20):    # 40 records through a 2-slot ring
            db.execute(f"INSERT INTO t VALUES ({i})")
        db.flush_now()
        assert db.execute("SELECT * FROM t") == [[i] for i in range(20)]
    finally:
        close(session)


def test_minislap_runs_mixed_load():
    trms = TrmsProfiler(keep_activations=True)
    session = TraceSession(tools=EventBus([trms]))
    with session:
        report = minislap(session, clients=3, queries_per_client=8, preload_rows=6)
    assert report.queries == 24
    assert report.rows_inserted > 0
    assert report.rows_received > 0
    assert report.records_flushed == 2 * (report.rows_inserted + 6)
    routines = {a.routine for a in trms.db.activations}
    assert {"mysql_select", "mysql_insert", "send_eof",
            "buf_flush_buffered_writes", "client_session"} <= routines


def test_concurrent_clients_share_tables_consistently():
    session = TraceSession()
    with session:
        db = Database(session)
        report = minislap(session, db, clients=4, queries_per_client=6,
                          insert_ratio=1.0, preload_rows=0)
        db2_rows = db.execute("SELECT * FROM load_test")
    assert len(db2_rows) == report.rows_inserted == 24


def test_update_with_where():
    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a, b)")
        for i in range(8):
            db.execute(f"INSERT INTO t VALUES ({i}, 0)")
        db.execute("UPDATE t SET b = 99 WHERE a >= 5")
        db.flush_now()
        rows = db.execute("SELECT * FROM t")
        assert rows == [[i, 99 if i >= 5 else 0] for i in range(8)]
    finally:
        close(session)


def test_update_all_rows():
    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a)")
        for i in range(5):
            db.execute(f"INSERT INTO t VALUES ({i})")
        db.execute("UPDATE t SET a = 1")
        db.flush_now()
        assert db.execute("SELECT * FROM t") == [[1]] * 5
    finally:
        close(session)


def test_update_unknown_column():
    from repro.minidb import SqlError

    session, db, _, _ = make_db()
    try:
        db.execute("CREATE TABLE t (a)")
        with pytest.raises(SqlError):
            db.execute("UPDATE t SET nope = 1")
    finally:
        close(session)


def test_update_feeds_the_flusher():
    session, db, _, trms = make_db(ring_slots=6)
    try:
        db.execute("CREATE TABLE t (a, b)")
        db.start_flusher()
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i}, 0)")
        db.execute("UPDATE t SET b = 7 WHERE a < 10")
        db.stop_flusher()
        # note: updates racing unflushed inserts see only committed rows;
        # stop_flusher drained everything, so re-run the update for the rest
        db.execute("UPDATE t SET b = 7 WHERE a < 10")
        db.flush_now()
        assert db.execute("SELECT * FROM t") == [[i, 7] for i in range(10)]
    finally:
        close(session)
    flushes = [a for a in trms.db.activations
               if a.routine == "buf_flush_buffered_writes"]
    assert flushes
