"""Tests for the SQL subset parser."""

import pytest

from repro.minidb.sql import CreateTable, Insert, Select, SqlError, evaluate, parse


def test_parse_create():
    statement = parse("CREATE TABLE users (id, age)")
    assert statement == CreateTable("users", ["id", "age"])


def test_parse_create_case_insensitive_and_semicolon():
    statement = parse("create table T (a);")
    assert statement == CreateTable("T", ["a"])


def test_parse_insert():
    statement = parse("INSERT INTO users VALUES (1, -5)")
    assert statement == Insert("users", [1, -5])


def test_parse_select_star():
    statement = parse("SELECT * FROM users")
    assert statement == Select("users", None, None, None)


@pytest.mark.parametrize("op", ["=", "<", ">", "<=", ">=", "!="])
def test_parse_select_where(op):
    statement = parse(f"SELECT * FROM users WHERE age {op} 30")
    assert statement == Select("users", "age", op, 30)


def test_parse_select_where_negative_literal():
    statement = parse("SELECT * FROM t WHERE a = -7")
    assert statement.where_value == -7


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "DROP TABLE users",
        "SELECT id FROM users",              # only * projection supported
        "INSERT INTO users VALUES (a, b)",   # non-integer values
        "CREATE TABLE t ()",
        "CREATE TABLE t (a, a)",             # duplicate columns
        "SELECT * FROM",
    ],
)
def test_parse_rejects(bad):
    with pytest.raises(SqlError):
        parse(bad)


def test_evaluate_ops():
    assert evaluate("=", 3, 3)
    assert evaluate("!=", 3, 4)
    assert evaluate("<", 1, 2)
    assert evaluate(">", 2, 1)
    assert evaluate("<=", 2, 2)
    assert evaluate(">=", 2, 2)
    assert not evaluate("<", 2, 2)


def test_evaluate_unknown_op():
    with pytest.raises(SqlError):
        evaluate("~", 1, 2)


def test_parse_update_with_where():
    from repro.minidb.sql import Update

    statement = parse("UPDATE users SET age = 31 WHERE id = 7")
    assert statement == Update("users", "age", 31, "id", "=", 7)


def test_parse_update_without_where():
    from repro.minidb.sql import Update

    statement = parse("update t set a = -2")
    assert statement == Update("t", "a", -2, None, None, None)


def test_parse_update_rejects_non_integer():
    with pytest.raises(SqlError):
        parse("UPDATE t SET a = b")
