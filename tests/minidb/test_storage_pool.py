"""Direct unit tests for the storage and buffer-pool layers."""

import pytest

from repro.core import EventBus, TrmsProfiler
from repro.minidb.bufferpool import BufferPool
from repro.minidb.storage import Disk, DiskManager
from repro.pytrace import TraceSession, TrackedArray


def make_pool(frames=2, page_size=4, tools=None):
    session = TraceSession(tools=tools)
    session.__enter__()
    disk = Disk(page_size=page_size)
    manager = DiskManager(session, disk)
    pool = BufferPool(session, manager, frames=frames)
    return session, disk, manager, pool


def test_disk_pages_default_to_zero():
    disk = Disk(page_size=4)
    assert disk.page(7) == [0, 0, 0, 0]
    assert disk.page_count() == 1    # materialised on first touch


def test_disk_rejects_bad_page_size():
    with pytest.raises(ValueError):
        Disk(page_size=0)


def test_disk_manager_read_write_roundtrip():
    session, disk, manager, _ = make_pool()
    try:
        frame = TrackedArray(session, 4)
        disk.page(3)[:] = [9, 8, 7, 6]
        manager.read_page(3, frame, 0)
        assert frame.snapshot() == [9, 8, 7, 6]
        frame[1] = 88
        manager.write_page(3, frame, 0)
        assert disk.page(3) == [9, 88, 7, 6]
        assert disk.reads == 1 and disk.writes == 1
    finally:
        session.__exit__(None, None, None)


def test_disk_manager_patch_page():
    session, disk, manager, _ = make_pool()
    try:
        manager.patch_page(5, 1, [42, 43])
        assert disk.page(5) == [0, 42, 43, 0]
    finally:
        session.__exit__(None, None, None)


def test_pool_read_write_and_eviction_writeback():
    session, disk, manager, pool = make_pool(frames=2)
    try:
        disk.page(0)[:] = [1, 2, 3, 4]
        with pool.lock:
            assert pool.read_cell(0, 1) == 2
            pool.write_cell(0, 1, 99)           # dirty page 0
            pool.read_cell(1, 0)                # frame 2 of 2
            pool.read_cell(2, 0)                # evicts page 0 (LRU) -> writeback
        assert disk.page(0)[1] == 99
        with pool.lock:
            assert pool.read_cell(0, 1) == 99   # re-fetched from disk
    finally:
        session.__exit__(None, None, None)


def test_pool_invalidate_forces_refetch():
    session, disk, manager, pool = make_pool()
    try:
        disk.page(0)[:] = [5, 5, 5, 5]
        with pool.lock:
            assert pool.read_cell(0, 0) == 5
        disk.page(0)[0] = 77                    # the flusher rewrote the disk
        with pool.lock:
            assert pool.read_cell(0, 0) == 5    # stale cache
            pool.invalidate(0)
            assert pool.read_cell(0, 0) == 77
    finally:
        session.__exit__(None, None, None)


def test_pool_flush_all_writes_dirty_frames():
    session, disk, manager, pool = make_pool(frames=3)
    try:
        with pool.lock:
            pool.write_cell(0, 0, 10)
            pool.write_cell(1, 0, 20)
            pool.read_cell(2, 0)                # clean frame
            pool.flush_all()
        assert disk.page(0)[0] == 10
        assert disk.page(1)[0] == 20
    finally:
        session.__exit__(None, None, None)


def test_pool_hit_ratio_accounting():
    session, disk, manager, pool = make_pool(frames=2)
    try:
        with pool.lock:
            pool.read_cell(0, 0)
            pool.read_cell(0, 1)
            pool.read_cell(0, 2)
        assert pool.fetches == 3
        assert pool.hits == 2
    finally:
        session.__exit__(None, None, None)


def test_pool_rejects_bad_frames():
    session, disk, manager, _ = make_pool()
    try:
        with pytest.raises(ValueError):
            BufferPool(session, manager, frames=0)
    finally:
        session.__exit__(None, None, None)


def test_pool_traffic_is_kernel_mediated():
    """Fetches appear to the profiler as kernel buffer fills."""
    trms = TrmsProfiler(keep_activations=True)
    session, disk, manager, pool = make_pool(tools=EventBus([trms]))
    try:
        disk.page(0)[:] = [1, 2, 3, 4]
        with pool.lock:
            pool.read_cell(0, 0)
    finally:
        session.__exit__(None, None, None)
    roots = [a for a in trms.db.activations if a.routine.startswith("<root:")]
    assert sum(a.induced_external for a in roots) == 1   # the read cell only
