"""Shared helpers: synthetic profile databases and run histories."""

from repro.core import ProfileDatabase
from repro.observatory import ObservatoryStore, record_from_profile_db

SIZES = (4, 8, 16, 32, 64)


def db_from(routines, sizes=SIZES):
    """A ProfileDatabase with one activation per (routine, size)."""
    db = ProfileDatabase()
    for name, cost_fn in routines.items():
        for size in sizes:
            db.add_activation(name, 1, size, int(cost_fn(size)))
    return db


def seeded_store(path, run_databases, **record_kwargs):
    """A store holding ``run_databases`` as runs run0, run1, … in order."""
    store = ObservatoryStore(str(path))
    for index, db in enumerate(run_databases):
        record = record_from_profile_db(
            db,
            run_id=f"run{index}",
            git_sha=f"sha{index}",
            timestamp=f"2026-07-{index + 1:02d}T00:00:00+00:00",
            scale=1.0,
            **record_kwargs,
        )
        assert store.add_run(record)
    return store


def drifting_history(degrade_from=3, runs=5):
    """The canonical synthetic history: ``victim`` goes O(n) -> O(n^2).

    ``stable`` and ``loglike`` hold their growth class in every run;
    ``victim`` turns quadratic from run index ``degrade_from`` on.
    """
    databases = []
    for index in range(runs):
        quadratic = index >= degrade_from
        databases.append(db_from({
            "stable": lambda n: 10 * n,
            "loglike": lambda n: 7 * n,
            "victim": (lambda n: n * n) if quadratic else (lambda n: 3 * n),
        }))
    return databases
