"""Superseding runs: the streaming-checkpoint contract on the store."""

from repro.observatory import ObservatoryStore, record_from_profile_db

from .util import db_from


def stream_record(db, seq, run_id="stream-abc", closed=False):
    record = record_from_profile_db(
        db, run_id=run_id, git_sha="sha-live",
        timestamp=f"2026-08-07T00:00:{seq:02d}+00:00",
        scale=1.0, source="stream")
    metrics = dict(record.metrics)
    metrics["streaming.seq"] = float(seq)
    metrics["streaming.closed"] = 1.0 if closed else 0.0
    return record._replace(metrics=metrics)


def test_supersede_replaces_in_place(tmp_path):
    store = ObservatoryStore(str(tmp_path / "obs"))
    store.add_run(record_from_profile_db(
        db_from({"alpha": lambda n: n}), run_id="batch-0",
        timestamp="2026-08-06T00:00:00+00:00"))
    assert store.add_run(stream_record(db_from({"alpha": lambda n: n}), 1))
    store.add_run(record_from_profile_db(
        db_from({"alpha": lambda n: n}), run_id="batch-1",
        timestamp="2026-08-08T00:00:00+00:00"))

    # checkpoint #2 grows the stream's profile; its history slot is stable
    bigger = db_from({"alpha": lambda n: n, "beta": lambda n: n * n})
    assert store.add_run(stream_record(bigger, 2), supersede=True)
    runs = store.runs()
    assert [run.run_id for run in runs] == ["batch-0", "stream-abc", "batch-1"]
    stream = next(run for run in runs if run.run_id == "stream-abc")
    assert stream.routines == 2
    assert store.metrics_for(stream.seq)["streaming.seq"] == 2.0


def test_without_supersede_known_run_is_a_noop(tmp_path):
    store = ObservatoryStore(str(tmp_path / "obs"))
    assert store.add_run(stream_record(db_from({"alpha": lambda n: n}), 1))
    bigger = stream_record(db_from({"alpha": lambda n: n * n}), 2)
    assert not store.add_run(bigger)           # default path: idempotent
    assert store.metrics_for(store.runs()[0].seq)["streaming.seq"] == 1.0


def test_identical_supersede_is_idempotent(tmp_path):
    store = ObservatoryStore(str(tmp_path / "obs"))
    record = stream_record(db_from({"alpha": lambda n: n}), 1)
    assert store.add_run(record, supersede=True)
    assert not store.add_run(record, supersede=True)


def test_replay_converges_to_newest_version(tmp_path):
    path = str(tmp_path / "obs")
    store = ObservatoryStore(path)
    store.add_run(stream_record(db_from({"alpha": lambda n: n}), 1))
    for seq in (2, 3):
        db = db_from({"alpha": lambda n: n ** (seq - 1)})
        store.add_run(stream_record(db, seq, closed=seq == 3), supersede=True)

    reopened = ObservatoryStore(path)          # replays history.jsonl
    runs = reopened.runs()
    assert len(runs) == 1
    metrics = reopened.metrics_for(runs[0].seq)
    assert metrics["streaming.seq"] == 3.0
    assert metrics["streaming.closed"] == 1.0


def test_gc_then_supersede_still_works(tmp_path):
    store = ObservatoryStore(str(tmp_path / "obs"))
    for index in range(4):
        store.add_run(record_from_profile_db(
            db_from({"alpha": lambda n: n}), run_id=f"old-{index}",
            timestamp=f"2026-08-0{index + 1}T00:00:00+00:00"))
    store.add_run(stream_record(db_from({"alpha": lambda n: n}), 1))
    dropped = store.gc(keep=2)
    assert dropped == 3
    survivors = [run.run_id for run in store.runs()]
    assert survivors == ["old-3", "stream-abc"]
    assert store.add_run(
        stream_record(db_from({"alpha": lambda n: 2 * n}), 2), supersede=True)
    assert [run.run_id for run in store.runs()] == survivors
