"""Regression: gc compaction takes the store's advisory file lock.

Before the lock existed, ``gc`` atomically replaced ``history.jsonl``
while a concurrent ingest (another cooperating process, or the
profiling service's worker threads) could still append to the *old*
inode — losing the run.  These tests pin the ``flock`` discipline:
appends and the gc critical section exclude each other.
"""

import os
import threading
import time

import pytest

fcntl = pytest.importorskip("fcntl")

from repro.observatory import LOCK_FILENAME, record_from_profile_db  # noqa: E402

from .util import db_from, seeded_store  # noqa: E402


def hold_lock(root, held, release):
    """Hold the store's lock file exclusively until ``release`` is set."""
    with open(os.path.join(root, LOCK_FILENAME), "a+") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        held.set()
        release.wait(10.0)
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def test_lock_file_exists_after_append(tmp_path):
    store = seeded_store(tmp_path, [db_from({"f": lambda n: n})])
    try:
        assert os.path.exists(os.path.join(store.root, LOCK_FILENAME))
    finally:
        store.close()


def test_gc_blocks_while_ingest_holds_the_lock(tmp_path):
    store = seeded_store(
        tmp_path,
        [db_from({"f": lambda n: (index + 1) * n}) for index in range(3)],
    )
    try:
        held = threading.Event()
        release = threading.Event()
        holder = threading.Thread(target=hold_lock,
                                  args=(store.root, held, release))
        holder.start()
        assert held.wait(5.0)

        finished_at = {}

        def compact():
            store.gc(keep=1)
            finished_at["t"] = time.monotonic()

        collector = threading.Thread(target=compact)
        started = time.monotonic()
        collector.start()
        time.sleep(0.3)
        assert "t" not in finished_at       # gc is blocked on the lock
        release.set()
        collector.join(timeout=10.0)
        holder.join(timeout=10.0)
        assert finished_at["t"] - started >= 0.3
        assert len(store) == 1
    finally:
        store.close()


def test_append_blocks_while_gc_style_lock_is_held(tmp_path):
    store = seeded_store(tmp_path, [db_from({"f": lambda n: n})])
    try:
        held = threading.Event()
        release = threading.Event()
        holder = threading.Thread(target=hold_lock,
                                  args=(store.root, held, release))
        holder.start()
        assert held.wait(5.0)

        record = record_from_profile_db(
            db_from({"g": lambda n: 2 * n}), run_id="late")
        done = {}

        def append():
            store.add_run(record)
            done["t"] = time.monotonic()

        writer = threading.Thread(target=append)
        writer.start()
        time.sleep(0.3)
        assert "t" not in done              # append waits for the lock
        release.set()
        writer.join(timeout=10.0)
        holder.join(timeout=10.0)
        assert "t" in done
        assert store.has_run("late")
    finally:
        store.close()
