"""CLI tests: `repro observe {ingest,report,alerts,gc}` and `repro diff`."""

import io
import json

from repro.cli import main
from repro.farm import save_profile
from repro.observatory import ObservatoryStore

from .util import db_from


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def write_dump(path, routines, sizes=(4, 8, 16, 32, 64)):
    with open(path, "w", encoding="utf-8") as stream:
        save_profile(db_from(routines, sizes=sizes), stream)
    return str(path)


def seeded_cli_store(tmp_path, histories):
    """Ingest one dump per history dict, in order, via the CLI."""
    store = str(tmp_path / "obs")
    for index, routines in enumerate(histories):
        dump = write_dump(tmp_path / f"run{index}.prof", routines)
        code, out = run_cli("observe", "ingest", dump, "--store", store,
                            "--run-id", f"run{index}")
        assert code == 0, out
    return store


def test_ingest_reports_and_is_idempotent(tmp_path):
    dump = write_dump(tmp_path / "a.prof", {"f": lambda n: 10 * n})
    store = str(tmp_path / "obs")
    code, out = run_cli("observe", "ingest", dump, "--store", store)
    assert code == 0
    assert "ingested" in out
    assert "1 run(s)" in out
    code, out = run_cli("observe", "ingest", dump, "--store", store)
    assert code == 0
    assert "already known (skipped)" in out
    assert "1 run(s)" in out


def test_ingest_rejects_garbage_with_exit_1(tmp_path):
    junk = tmp_path / "junk.bin"
    junk.write_text("definitely not a profile\n")
    code, out = run_cli("observe", "ingest", str(junk),
                        "--store", str(tmp_path / "obs"))
    assert code == 1
    assert "error:" in out


def test_ingest_run_id_needs_single_input(tmp_path):
    a = write_dump(tmp_path / "a.prof", {"f": lambda n: n})
    b = write_dump(tmp_path / "b.prof", {"f": lambda n: n})
    code, out = run_cli("observe", "ingest", a, b,
                        "--store", str(tmp_path / "obs"), "--run-id", "r")
    assert code == 2
    assert "exactly one input" in out


def test_report_renders_and_writes_html(tmp_path):
    store = seeded_cli_store(tmp_path, [
        {"f": lambda n: 10 * n},
        {"f": lambda n: n * n},
    ])
    html_path = tmp_path / "dash.html"
    code, out = run_cli("observe", "report", "--store", store,
                        "--html", str(html_path))
    assert code == 0
    assert "Fleet summary" in out
    assert "regressed" in out
    html = html_path.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "regressed" in html


def test_alerts_fail_on_trips_exit_code(tmp_path):
    store = seeded_cli_store(tmp_path, [
        {"f": lambda n: 10 * n},
        {"f": lambda n: n * n},
    ])
    code, out = run_cli("observe", "alerts", "--store", store)
    assert code == 0          # alerts alone never fail
    assert "regressed" in out
    code, out = run_cli("observe", "alerts", "--store", store,
                        "--fail-on", "regressed")
    assert code == 1
    assert "failing on verdict(s): regressed" in out


def test_alerts_fail_on_clean_history_passes(tmp_path):
    store = seeded_cli_store(tmp_path, [
        {"f": lambda n: 10 * n},
        {"f": lambda n: 10 * n},
    ])
    code, out = run_cli("observe", "alerts", "--store", store,
                        "--fail-on", "regressed")
    assert code == 0
    assert "no drift" in out


def test_alerts_unknown_verdict_exits_2(tmp_path):
    store = seeded_cli_store(tmp_path, [{"f": lambda n: n}])
    code, out = run_cli("observe", "alerts", "--store", store,
                        "--fail-on", "explosive")
    assert code == 2
    assert "unknown verdict" in out


def test_gc_drops_oldest_runs(tmp_path):
    # identical dumps, but the explicit --run-id keeps all four distinct
    store = seeded_cli_store(tmp_path, [
        {"f": lambda n: n} for _ in range(4)
    ])
    code, out = run_cli("observe", "gc", "--store", store, "--keep", "2")
    assert code == 0
    assert "dropped 2 run(s), 2 left" in out
    assert len(ObservatoryStore(store)) == 2
    code, out = run_cli("observe", "gc", "--store", store, "--keep", "-1")
    assert code == 2


def test_ingest_bench_envelope_uses_its_run_identity(tmp_path):
    envelope = {
        "schema": "repro-bench/1",
        "run_id": "bench-runid-42",
        "git_sha": "deadbeef",
        "timestamp": "2026-08-01T00:00:00+00:00",
        "bench": "kernel",
        "scale": 1.0,
        "metrics": {"gate": {"scale": 1.0, "ratios": {"speedup": 2.0}}},
    }
    path = tmp_path / "env.json"
    path.write_text(json.dumps(envelope))
    store = str(tmp_path / "obs")
    code, out = run_cli("observe", "ingest", str(path), "--store", store)
    assert code == 0
    assert "bench-runid-42" in out
    assert "[bench:kernel]" in out
    opened = ObservatoryStore(store)
    (info,) = opened.runs()
    assert info.run_id == "bench-runid-42"
    metrics = opened.metrics_for(info.seq)
    assert metrics["gate.ratios.speedup"] == 2.0


def test_diff_subcommand_finds_regression(tmp_path):
    old = write_dump(tmp_path / "old.prof", {"f": lambda n: 10 * n})
    new = write_dump(tmp_path / "new.prof", {"f": lambda n: n * n})
    code, out = run_cli("diff", old, new)
    assert code == 0
    assert "regressed" in out
    assert "O(n)" in out and "O(n^2)" in out


def test_diff_fail_on_exit_codes(tmp_path):
    old = write_dump(tmp_path / "old.prof", {"f": lambda n: 10 * n})
    new = write_dump(tmp_path / "new.prof", {"f": lambda n: n * n})
    same = write_dump(tmp_path / "same.prof", {"f": lambda n: 10 * n})
    code, out = run_cli("diff", old, new, "--fail-on", "regressed")
    assert code == 1
    assert "failing on verdict(s): regressed" in out
    code, _ = run_cli("diff", old, same, "--fail-on", "regressed,slower")
    assert code == 0
    code, out = run_cli("diff", old, new, "--fail-on", "nonsense")
    assert code == 2


def test_diff_missing_file_exits_2(tmp_path):
    old = write_dump(tmp_path / "old.prof", {"f": lambda n: n})
    code, out = run_cli("diff", old, str(tmp_path / "absent.prof"))
    assert code == 2
    assert "error:" in out
