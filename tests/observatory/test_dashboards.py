"""Dashboard tests: ASCII report, HTML document, sparklines."""

from repro.observatory import (
    ObservatoryStore,
    detect_drift,
    render_alert_feed,
    render_observatory_html,
    render_observatory_report,
)
from repro.reporting.ascii_charts import sparkline

from .util import drifting_history, seeded_store


def test_sparkline_maps_range_to_blocks():
    line = sparkline([1.0, 2.0, 3.0, 4.0])
    assert len(line) == 4
    assert line[0] == "▁"
    assert line[-1] == "█"
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"


def test_sparkline_handles_gaps_and_empty():
    assert sparkline([]) == ""
    assert sparkline([None, None]) == "··"
    line = sparkline([1.0, None, 3.0])
    assert line[1] == "·"
    assert line[0] != "·" and line[2] != "·"


def test_ascii_report_shows_fleet_trajectories_and_alerts(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history())
    report = render_observatory_report(store)
    assert "Profile observatory — 5 run(s), 3 routine(s)" in report
    assert "Fleet summary" in report
    assert "Growth trajectories" in report
    assert "Alert feed" in report
    assert "O(n) -> O(n^2)" in report
    assert "regressed" in report
    # alerted routines rank above steady ones in the trajectory table
    assert report.index("victim") < report.index("stable")
    assert "steady" in report


def test_ascii_report_on_empty_store(tmp_path):
    store = ObservatoryStore(str(tmp_path / "obs"))
    report = render_observatory_report(store)
    assert "0 run(s)" in report
    assert "empty store" in report


def test_alert_feed_without_alerts_says_so():
    feed = render_alert_feed([])
    assert "no drift" in feed


def test_alert_feed_rows_carry_verdict_and_classes(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history())
    feed = render_alert_feed(detect_drift(store))
    assert "victim" in feed
    assert "regressed" in feed
    assert "O(n)" in feed
    assert "O(n^2)" in feed
    assert "x" in feed   # rendered cost ratio


def test_html_dashboard_is_a_complete_document(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history())
    html = render_observatory_html(store, title="obs test")
    assert html.startswith("<!DOCTYPE html>")
    assert html.rstrip().endswith("</html>")
    assert "obs test" in html
    assert "victim" in html
    assert "regressed" in html
    assert "<svg" in html            # exponent trajectory figures
    assert "Worst alert" in html     # raw cost plot of the top alert
    assert "#aa2222" in html         # alerted routines plot in red


def test_html_dashboard_on_clean_history(tmp_path):
    store = seeded_store(
        tmp_path / "obs", drifting_history(degrade_from=99, runs=3))
    html = render_observatory_html(store)
    assert "No drift" in html
    assert "Worst alert" not in html
