"""Drift-detector tests: the acceptance scenario, ordering, edge cases."""

import pytest

from repro.observatory import (
    ObservatoryStore,
    RunRecord,
    detect_drift,
    record_from_profile_db,
    trajectories,
)
from repro.reporting.diffing import SEVERITY

from .util import db_from, drifting_history, seeded_store


def by_routine(alerts):
    return {alert.routine: alert for alert in alerts}


def test_injected_quadratic_is_the_only_alert(tmp_path):
    """The issue's acceptance scenario: 5 runs, one routine O(n) -> O(n^2)."""
    store = seeded_store(tmp_path / "obs", drifting_history())
    alerts = detect_drift(store)
    assert [alert.routine for alert in alerts] == ["victim"]
    (alert,) = alerts
    assert alert.verdict == "regressed"
    assert alert.old_growth == "O(n)"
    assert alert.new_growth == "O(n^2)"
    assert alert.runs_observed == 5
    assert alert.first_run == "run0"
    assert alert.last_run == "run4"
    assert alert.cost_ratio is not None and alert.cost_ratio > 1.0


def test_changepoint_lands_on_the_degrading_run(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history(degrade_from=3))
    trajectory = {t.routine: t for t in trajectories(store)}["victim"]
    assert trajectory.classes == ["O(n)"] * 3 + ["O(n^2)"] * 2
    (changepoint,) = trajectory.changepoints
    assert changepoint.prev_run_id == "run2"
    assert changepoint.run_id == "run3"
    assert changepoint.old_growth == "O(n)"
    assert changepoint.new_growth == "O(n^2)"
    assert changepoint.verdict == "regressed"


def test_slow_slide_still_classifies_once(tmp_path):
    """First-vs-last comparison catches drift even with one changepoint max."""
    store = seeded_store(tmp_path / "obs", drifting_history(degrade_from=2))
    (alert,) = detect_drift(store)
    assert alert.changepoints == 1
    assert alert.verdict == "regressed"


def test_alert_feed_is_severity_ordered(tmp_path):
    old = db_from({
        "reg": lambda n: 3 * n,
        "slow": lambda n: 10 * n,
        "gone": lambda n: 5 * n,
        "fast": lambda n: 30 * n,
        "imp": lambda n: n * n,
    })
    new = db_from({
        "reg": lambda n: n * n,
        "slow": lambda n: 25 * n,
        "fresh": lambda n: 5 * n,
        "fast": lambda n: 10 * n,
        "imp": lambda n: 12 * n,
    })
    store = seeded_store(tmp_path / "obs", [old, new])
    verdicts = [(alert.routine, alert.verdict) for alert in detect_drift(store)]
    assert verdicts == [
        ("reg", "regressed"),
        ("slow", "slower"),
        ("fresh", "added"),
        ("gone", "removed"),
        ("fast", "faster"),
        ("imp", "improved"),
    ]
    ranks = [SEVERITY[verdict] for _, verdict in verdicts]
    assert ranks == sorted(ranks)


def test_stable_history_has_no_alerts(tmp_path):
    databases = [db_from({"f": lambda n: 10 * n, "g": lambda n: n * n})
                 for _ in range(4)]
    store = seeded_store(tmp_path / "obs", databases)
    assert detect_drift(store) == []


def test_single_run_history_is_quiet(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history(runs=1))
    assert detect_drift(store) == []


def test_empty_store_is_quiet(tmp_path):
    store = ObservatoryStore(str(tmp_path / "obs"))
    assert detect_drift(store) == []
    assert trajectories(store) == []


def test_curveless_latest_run_does_not_mass_remove(tmp_path):
    """A bench envelope ingested after the profiles must not flag removals."""
    store = seeded_store(tmp_path / "obs", drifting_history())
    store.add_run(RunRecord(
        run_id="bench-1", git_sha="", timestamp="2026-07-31T00:00:00+00:00",
        scale=1.0, source="bench:kernel", events=0,
        metrics={"gate.ratios.speedup": 1.4}, curves=[], points={},
    ))
    alerts = detect_drift(store)
    assert [alert.routine for alert in alerts] == ["victim"]
    assert alerts[0].verdict == "regressed"


def test_tolerance_controls_constant_factor_verdicts(tmp_path):
    store = seeded_store(tmp_path / "obs", [
        db_from({"f": lambda n: 10 * n}),
        db_from({"f": lambda n: 16 * n}),
    ])
    assert by_routine(detect_drift(store, tolerance=1.30))["f"].verdict == "slower"
    assert detect_drift(store, tolerance=2.0) == []


def test_unfittable_routine_becomes_added_then_removed(tmp_path):
    """< 3 distinct sizes never produces a curve, so presence flips."""
    thin = db_from({"f": lambda n: 10 * n})
    for size in (4, 8):                # two distinct sizes: unfittable
        thin.add_activation("thin", 1, size, size)
    full = db_from({"f": lambda n: 10 * n, "thin": lambda n: n})
    store = seeded_store(tmp_path / "obs", [thin, full])
    alert = by_routine(detect_drift(store))["thin"]
    assert alert.verdict == "added"
    assert alert.old_growth is None
    assert alert.new_growth == "O(n)"

    store2 = seeded_store(tmp_path / "obs2", [full, thin])
    alert = by_routine(detect_drift(store2))["thin"]
    assert alert.verdict == "removed"
    assert alert.old_growth == "O(n)"
    assert alert.new_growth is None


def test_trajectory_exponents_track_the_bend(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history())
    trajectory = {t.routine: t for t in trajectories(store)}["victim"]
    exponents = trajectory.exponents
    assert len(exponents) == 5
    assert exponents[0] == pytest.approx(1.0, abs=0.15)
    assert exponents[-1] == pytest.approx(2.0, abs=0.15)


def test_drift_survives_store_reopen(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history())
    expected = detect_drift(store)
    store.close()
    reopened = ObservatoryStore(str(tmp_path / "obs"))
    assert detect_drift(reopened) == expected


def test_record_builder_skips_unfittable_routines():
    db = db_from({"ok": lambda n: n, "thin": lambda n: n}, sizes=(4, 8, 16))
    thin_db = db_from({"thin2": lambda n: n}, sizes=(4, 8))
    record = record_from_profile_db(db, run_id="r")
    assert [curve.routine for curve in record.curves] == ["ok", "thin"]
    record = record_from_profile_db(thin_db, run_id="r2")
    assert record.curves == []
    # raw points are still kept for the top-K, fit or no fit
    assert "thin2" in record.points
