"""Store tests: minidb round-trips, idempotency, gc, crash tolerance."""

import json
import os

import pytest

from repro.observatory import (
    HISTORY_FILENAME,
    CurveRecord,
    ObservatoryStore,
    RunRecord,
)

from .util import db_from, drifting_history, seeded_store


def empty_run(run_id, timestamp="2026-07-01T00:00:00+00:00", **overrides):
    fields = dict(
        run_id=run_id,
        git_sha="cafe1234",
        timestamp=timestamp,
        scale=2.0,
        source="profile",
        events=100,
        metrics={},
        curves=[],
        points={},
    )
    fields.update(overrides)
    return RunRecord(**fields)


def test_round_trip_through_reopen(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history())
    before_runs = store.runs()
    before_curves = {name: store.curve_trajectory(name)
                     for name in store.routines()}
    before_points = store.points_for(0, "victim")
    assert before_points, "top-K raw plot points should be stored"
    store.close()

    reopened = ObservatoryStore(str(tmp_path / "obs"))
    assert len(reopened) == 5
    assert reopened.runs() == before_runs
    assert reopened.routines() == ["loglike", "stable", "victim"]
    for name, curves in before_curves.items():
        assert reopened.curve_trajectory(name) == curves
    assert reopened.points_for(0, "victim") == before_points


def test_add_run_is_idempotent_by_run_id(tmp_path):
    store = ObservatoryStore(str(tmp_path / "obs"))
    record = empty_run("r1", metrics={"farm.jobs": 4.0})
    assert store.add_run(record)
    assert not store.add_run(record)
    assert not store.add_run(record._replace(git_sha="other"))
    assert len(store) == 1
    assert store.has_run("r1")

    with open(store.path, encoding="utf-8") as stream:
        lines = [line for line in stream if line.strip()]
    # one meta line + one run line: the duplicate never reached the log
    assert len(lines) == 2


def test_metrics_and_scale_round_trip_fixed_point(tmp_path):
    store = ObservatoryStore(str(tmp_path / "obs"))
    store.add_run(empty_run(
        "r1", scale=0.25,
        metrics={"farm.events_per_s": 12345.678901, "counter.drops": 3.0},
    ))
    (info,) = store.runs()
    assert info.scale == pytest.approx(0.25)
    metrics = store.metrics_for(info.seq)
    assert metrics["counter.drops"] == pytest.approx(3.0)
    # micro-unit fixed point keeps six fractional digits
    assert metrics["farm.events_per_s"] == pytest.approx(12345.678901, abs=1e-6)


def test_curve_row_predict_matches_fit(tmp_path):
    store = seeded_store(tmp_path / "obs", [db_from({"f": lambda n: 10 * n})])
    (row,) = store.curve_trajectory("f")
    assert row.model == "O(n)"
    assert row.predict(64) == pytest.approx(640, rel=0.05)
    assert row.exponent == pytest.approx(1.0, abs=0.1)


def test_runs_ordered_by_timestamp_then_seq(tmp_path):
    store = ObservatoryStore(str(tmp_path / "obs"))
    store.add_run(empty_run("late", timestamp="2026-07-09T00:00:00+00:00"))
    store.add_run(empty_run("early", timestamp="2026-07-01T00:00:00+00:00"))
    assert [info.run_id for info in store.runs()] == ["early", "late"]


def test_gc_keeps_newest_runs_and_compacts_log(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history())
    assert store.gc(keep=2) == 3
    assert len(store) == 2
    assert [info.run_id for info in store.runs()] == ["run3", "run4"]
    # the compaction is durable: a reopen sees the same survivors
    store.close()
    reopened = ObservatoryStore(str(tmp_path / "obs"))
    assert [info.run_id for info in reopened.runs()] == ["run3", "run4"]
    assert reopened.curve_trajectory("victim")[0].model == "O(n^2)"


def test_gc_noop_when_keep_covers_history(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history(runs=2))
    assert store.gc(keep=5) == 0
    assert len(store) == 2
    with pytest.raises(ValueError):
        store.gc(keep=-1)


def test_truncated_trailing_line_is_ignored(tmp_path):
    store = seeded_store(tmp_path / "obs", drifting_history(runs=2))
    store.close()
    path = tmp_path / "obs" / HISTORY_FILENAME
    with open(path, "a", encoding="utf-8") as stream:
        stream.write('{"type": "run", "run_id": "torn')   # crash mid-append
    reopened = ObservatoryStore(str(path.parent))
    assert len(reopened) == 2
    # the store stays writable after recovery
    assert reopened.add_run(empty_run("r3"))
    assert len(reopened) == 3


def test_history_lines_are_self_describing(tmp_path):
    store = ObservatoryStore(str(tmp_path / "obs"))
    store.add_run(empty_run("r1", curves=[
        CurveRecord("f", "O(n)", 10.0, 1.0, 0.99, 5, 64, 1.02),
    ]))
    with open(store.path, encoding="utf-8") as stream:
        records = [json.loads(line) for line in stream if line.strip()]
    assert records[0] == {"type": "meta", "schema": "repro-observatory/1"}
    assert records[1]["type"] == "run"
    assert records[1]["schema"] == "repro-observatory/1"
    assert records[1]["curves"][0]["model"] == "O(n)"


def test_store_creates_directory(tmp_path):
    root = tmp_path / "deep" / "obs"
    store = ObservatoryStore(str(root))
    assert os.path.exists(store.path)
    assert len(store) == 0
    assert store.runs() == []
