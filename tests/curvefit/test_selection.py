"""Unit tests for growth-class selection."""

import math
import random

import pytest

from repro.curvefit import DEFAULT_FAMILY, classify_growth, rank_models, select_model


def clean(fn, sizes=range(4, 80)):
    return [(n, fn(n)) for n in sizes]


def noisy(fn, sizes=range(4, 80), noise=0.03, seed=7):
    rng = random.Random(seed)
    return [(n, fn(n) * (1.0 + rng.uniform(-noise, noise))) for n in sizes]


def test_classifies_constant():
    assert classify_growth(clean(lambda n: 12.0)) == "O(1)"


def test_classifies_logarithmic():
    assert classify_growth(clean(lambda n: 5 * math.log2(n) + 2)) == "O(log n)"


def test_classifies_linear():
    assert classify_growth(clean(lambda n: 7 * n + 100)) == "O(n)"


def test_classifies_linearithmic():
    assert classify_growth(clean(lambda n: 2 * n * math.log2(n + 1))) == "O(n log n)"


def test_classifies_quadratic():
    assert classify_growth(clean(lambda n: 0.5 * n * n + n)) == "O(n^2)"


def test_classifies_cubic():
    assert classify_growth(clean(lambda n: 0.01 * n**3)) == "O(n^3)"


def test_classifies_noisy_linear():
    assert classify_growth(noisy(lambda n: 3 * n + 9)) == "O(n)"


def test_classifies_noisy_quadratic():
    assert classify_growth(noisy(lambda n: n * n)) == "O(n^2)"


def test_prefers_slower_model_on_ties():
    """Constant data fits every model with rss=0 (slope 0); parsimony
    must pick O(1), not O(n^3)."""
    selection = select_model(clean(lambda n: 4.0))
    assert selection.name == "O(1)"


def test_ranking_is_sorted_by_rss():
    ranking = rank_models(clean(lambda n: n * n))
    rss_values = [result.rss for result in ranking]
    assert rss_values == sorted(rss_values)


def test_selection_exposes_full_ranking():
    selection = select_model(clean(lambda n: 2 * n))
    assert len(selection.ranking) == len(DEFAULT_FAMILY)
    assert selection.best in selection.ranking


def test_custom_family():
    from repro.curvefit import model_by_name

    family = [model_by_name("O(1)"), model_by_name("O(n)")]
    selection = select_model(clean(lambda n: n * n), family=family)
    assert selection.name == "O(n)"   # the best available hypothesis


def test_empty_plot_raises():
    with pytest.raises(ValueError):
        select_model([])


def test_figure6_distinction_linear_vs_superlinear():
    """The Figure 6 scenario: the rms plot looks linear while the trms
    plot is super-linear; selection must tell them apart."""
    rms_plot = noisy(lambda n: 40 * n + 300, sizes=range(10, 200, 5))
    trms_plot = noisy(lambda n: 2 * n * n + 40 * n, sizes=range(10, 200, 5))
    assert classify_growth(rms_plot) == "O(n)"
    assert classify_growth(trms_plot) in ("O(n^2)", "O(n^2 log n)")
