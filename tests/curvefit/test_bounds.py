"""Tests for the guess-ratio empirical bound method."""

import math
import random

import pytest

from repro.curvefit import empirical_bound, model_by_name, ratio_test


SIZES = [4, 8, 16, 32, 64, 128, 256]


def plot(fn):
    return [(n, fn(n)) for n in SIZES]


def test_linear_data_accepts_linear_bound_tightly():
    verdict = ratio_test(plot(lambda n: 3 * n), model_by_name("O(n)"))
    assert verdict.is_upper_bound
    assert verdict.is_tight
    assert verdict.verdict == "tight"


def test_linear_data_rejects_log_bound():
    verdict = ratio_test(plot(lambda n: 3 * n), model_by_name("O(log n)"))
    assert not verdict.is_upper_bound
    assert verdict.verdict == "rejected"


def test_linear_data_accepts_quadratic_bound_loosely():
    verdict = ratio_test(plot(lambda n: 3 * n), model_by_name("O(n^2)"))
    assert verdict.is_upper_bound
    assert not verdict.is_tight
    assert verdict.verdict == "loose"


def test_nlogn_data_rejects_linear():
    verdict = ratio_test(plot(lambda n: n * math.log2(n)), model_by_name("O(n)"))
    assert not verdict.is_upper_bound


def test_nlogn_data_tight_against_nlogn():
    verdict = ratio_test(plot(lambda n: 5 * n * math.log2(n + 1)),
                         model_by_name("O(n log n)"))
    assert verdict.is_tight


def test_empirical_bound_walks_family_in_order():
    assert empirical_bound(plot(lambda n: 9)).model.name == "O(1)"
    assert empirical_bound(plot(lambda n: 2 * n)).model.name == "O(n)"
    assert empirical_bound(plot(lambda n: n * n)).model.name == "O(n^2)"


def test_empirical_bound_with_noise():
    rng = random.Random(3)
    noisy = [(n, n * n * (1 + rng.uniform(-0.05, 0.05))) for n in SIZES]
    verdict = empirical_bound(noisy)
    assert verdict.model.name in ("O(n^2)", "O(n log n)")
    assert verdict.is_upper_bound


def test_lower_order_transient_is_forgiven():
    # f(n) = n + 1000: the constant dominates early sizes, but the tail
    # ratios flatten — still Theta(n)
    verdict = ratio_test(plot(lambda n: n + 1000), model_by_name("O(n)"))
    assert verdict.is_upper_bound


def test_requires_four_points():
    with pytest.raises(ValueError):
        ratio_test([(1, 1), (2, 2), (3, 3)], model_by_name("O(n)"))


def test_bound_agrees_with_profiler_output():
    """End to end: guess-ratio on a real profile (VM insertion sort)."""
    from repro.core import EventBus, RmsProfiler
    from repro.vm import programs

    points = []
    for n in (8, 16, 32, 64, 96):
        profiler = RmsProfiler(keep_activations=True)
        programs.insertion_sort(list(range(n, 0, -1))).run(tools=EventBus([profiler]))
        record = [a for a in profiler.db.activations if a.routine == "insertion_sort"][0]
        points.append((record.size, record.cost))
    assert not ratio_test(points, model_by_name("O(n)")).is_upper_bound
    verdict = ratio_test(points, model_by_name("O(n^2)"))
    assert verdict.is_upper_bound
