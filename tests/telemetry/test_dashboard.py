"""Dashboards: ASCII and HTML rendering of telemetry runs, farm stats."""

from repro import telemetry
from repro.farm import analyze_file
from repro.reporting import (
    render_farm_stats,
    render_telemetry_dashboard,
    render_telemetry_html,
)
from repro.telemetry import TelemetryRun

from ..farm.util import record_benchmark_v2


def _farm_run(tmp_path):
    path = tmp_path / "run.rpt2"
    record_benchmark_v2("350.md", path, threads=4, scale=0.5)
    with telemetry.session(str(tmp_path / "tele")):
        result = analyze_file(str(path), jobs=2)
    return result, TelemetryRun.load(str(tmp_path / "tele"))


def test_ascii_dashboard_sections(tmp_path):
    _, run = _farm_run(tmp_path)
    dashboard = render_telemetry_dashboard(run)
    assert "span tree" in dashboard
    assert "analyze.pool" in dashboard
    # worker spans harvested from heartbeat files nest under the pool
    assert "\n  worker.decode" in dashboard or "  worker.decode" in dashboard
    assert "worker heartbeats" in dashboard
    assert "events/s" in dashboard
    assert "farm.trace_events" in dashboard
    assert "histogram" in dashboard


def test_html_dashboard_is_self_contained(tmp_path):
    _, run = _farm_run(tmp_path)
    html = render_telemetry_html(run, title="farm run")
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html          # the span timeline
    assert "analyze.pool" in html
    assert "Worker heartbeats" in html
    # no external assets: nothing is fetched from anywhere
    assert "src=" not in html and "href=" not in html


def test_dashboard_of_empty_run_renders():
    run = TelemetryRun([{"type": "meta", "version": 1}])
    dashboard = render_telemetry_dashboard(run)
    assert "spans: 0" in dashboard
    assert render_telemetry_html(run).startswith("<!DOCTYPE html>")


def test_farm_stats_report_telemetry_columns(tmp_path):
    result, _ = _farm_run(tmp_path)
    report = render_farm_stats(result.stats)
    for column in ("dec/ana", "beats", "rss", "retries", "timeouts", "ran"):
        assert column in report
    assert "pool" in report
    # healthy run: no shard fell back inline
    assert "!" not in report.split("(")[0]


def test_farm_stats_sources_shard_counters_from_metrics(tmp_path):
    result, _ = _farm_run(tmp_path)
    snapshot = {entry["name"] for entry in result.stats.metrics}
    assert "farm.trace_events" in snapshot
    assert "farm.shard.events" in snapshot
