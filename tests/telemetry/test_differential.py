"""Telemetry never perturbs profiles: bit-identical output on vs off."""

from repro import telemetry
from repro.core import TrmsProfiler, replay
from repro.farm import analyze_file
from repro.telemetry import TelemetryRun

from ..farm.util import comparable, online_db, record_benchmark_v2


def test_online_profiler_identical_with_telemetry(tmp_path):
    events = record_benchmark_v2("376.kdtree", tmp_path / "run.rpt2",
                                 threads=3, scale=0.5)
    baseline = comparable(online_db(events))
    with telemetry.session(str(tmp_path / "tele")):
        profiler = TrmsProfiler(keep_activations=True)
        replay(events, profiler)
        profiler.on_finish()
        observed = comparable(profiler.db)
    assert observed == baseline
    run = TelemetryRun.load(str(tmp_path / "tele"))
    assert run.counter_value("profiler.timestamps", tool="aprof-trms") > 0


def test_farm_identical_with_telemetry_enabled(tmp_path):
    """The acceptance gate: farm profiles with a live telemetry session
    equal both the telemetry-off farm run and the online profiler, and
    the session leaves a parseable event log with farm spans and
    worker heartbeats."""
    path = tmp_path / "run.rpt2"
    events = record_benchmark_v2("dedup", path, threads=4, scale=0.5)
    without = analyze_file(str(path), jobs=2, keep_activations=True)
    with telemetry.session(str(tmp_path / "tele")):
        with_tele = analyze_file(str(path), jobs=2, keep_activations=True)
    assert comparable(with_tele.db) == comparable(without.db)
    assert comparable(with_tele.db) == comparable(online_db(events))

    run = TelemetryRun.load(str(tmp_path / "tele"))
    assert {"analyze.plan", "analyze.pool", "analyze.merge"} <= \
        set(run.span_names())
    assert run.heartbeats, "workers reported no heartbeats"
    shards = run.heartbeats_by_shard()
    assert set(shards) == {outcome.shard_id
                           for outcome in with_tele.stats.outcomes}
    for beats in shards.values():
        assert beats[-1]["phase"] == "done"
    assert run.counter_value("farm.trace_events") == len(events)


def test_farm_stats_equal_with_and_without_session(tmp_path):
    """FarmStats' own metrics snapshot rides along either way."""
    path = tmp_path / "run.rpt2"
    record_benchmark_v2("canneal", path, threads=3, scale=0.4)
    without = analyze_file(str(path), jobs=2)
    with telemetry.session(str(tmp_path / "tele")):
        with_tele = analyze_file(str(path), jobs=2)
    names = lambda stats: sorted(
        (e["name"], tuple(sorted(e["labels"].items())))
        for e in stats.metrics)
    assert names(with_tele.stats) == names(without.stats)
