"""Prometheus text exposition of registry snapshots."""

from repro.telemetry import MetricsRegistry
from repro.telemetry.prometheus import (
    CONTENT_TYPE,
    escape_label,
    metric_name,
    render_prometheus,
)
from tools.check_metrics import check_metrics_text


def test_content_type_declares_the_text_format():
    assert "version=0.0.4" in CONTENT_TYPE


def test_metric_name_sanitization():
    assert metric_name("service.ingest_ms") == "service_ingest_ms"
    assert metric_name("a-b c") == "a_b_c"
    assert metric_name("9lives") == "_9lives"
    assert metric_name("fine_name:ok") == "fine_name:ok"


def test_label_escaping():
    assert escape_label('say "hi"\n') == r'say \"hi\"\n'
    assert escape_label("back\\slash") == r"back\\slash"


def test_counters_get_the_total_suffix():
    text = render_prometheus([
        {"kind": "counter", "name": "service.requests",
         "labels": {"op": "put"}, "value": 3},
        {"kind": "counter", "name": "retries_total", "labels": {},
         "value": 1},
    ])
    assert "# TYPE service_requests_total counter" in text
    assert 'service_requests_total{op="put"} 3' in text
    assert "retries_total 1" in text
    assert "retries_total_total" not in text


def test_gauges_render_plainly():
    text = render_prometheus([
        {"kind": "gauge", "name": "queue.depth", "labels": {}, "value": 7},
    ])
    assert text == "# TYPE queue_depth gauge\nqueue_depth 7\n"


def test_histogram_buckets_are_cumulative_with_inf():
    text = render_prometheus([
        {"kind": "histogram", "name": "lat.ms", "labels": {"tenant": "web"},
         "count": 4, "sum": 70.0, "buckets": {"0": 2, "2": 1, "63": 1}},
    ])
    lines = text.splitlines()
    assert lines[0] == "# TYPE lat_ms histogram"
    assert 'lat_ms_bucket{tenant="web",le="1"} 2' in lines
    assert 'lat_ms_bucket{tenant="web",le="4"} 3' in lines
    # the unbounded log2 bucket folds into +Inf, which equals _count
    assert 'lat_ms_bucket{tenant="web",le="+Inf"} 4' in lines
    assert 'lat_ms_sum{tenant="web"} 70.0' in lines
    assert 'lat_ms_count{tenant="web"} 4' in lines


def test_families_group_many_label_sets_under_one_type_line():
    text = render_prometheus([
        {"kind": "counter", "name": "hits", "labels": {"op": "a"}, "value": 1},
        {"kind": "counter", "name": "hits", "labels": {"op": "b"}, "value": 2},
    ])
    assert text.count("# TYPE hits_total counter") == 1


def test_unknown_kinds_and_empty_snapshots_are_skipped():
    assert render_prometheus([]) == ""
    assert render_prometheus([{"kind": "summary", "name": "x",
                               "labels": {}, "value": 1}]) == ""


def test_live_registry_snapshot_passes_the_ci_checker():
    registry = MetricsRegistry()
    registry.counter("service.requests", op="put").inc(5)
    registry.counter("service.requests", op="stats").inc()
    registry.gauge("queue.depth").set(3)
    histogram = registry.histogram("service.ingest_ms", tenant="web")
    for value in (0.5, 3.0, 900.0, 2.0 ** 70):
        histogram.observe(value)
    text = render_prometheus(registry.snapshot())
    assert check_metrics_text(text) == []
