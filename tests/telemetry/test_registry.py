"""Metrics registry: bucket edges, label identity, thread safety, merge."""

import math
import threading

import pytest

from repro.telemetry import (
    MetricsRegistry,
    NullRegistry,
    bucket_bound,
    bucket_index,
    merge_snapshots,
)
from repro.telemetry.registry import MAX_BUCKET


@pytest.mark.parametrize("value,expected", [
    (-5, 0),
    (0, 0),
    (0.4, 0),
    (1, 0),
    (1.5, 1),
    (2, 1),
    (2.5, 2),
    (3, 2),
    (4, 2),
    (4.001, 3),
    (8, 3),
    (1024, 10),
    (float(2 ** 200), MAX_BUCKET),
])
def test_bucket_index_edges(value, expected):
    assert bucket_index(value) == expected


def test_bucket_index_bound_consistency():
    """Every value lands in a bucket whose bound covers it, and would
    not fit the previous bucket — the (2^(i-1), 2^i] contract."""
    for value in (1, 1.01, 2, 3, 5, 100, 1000.5, 65536):
        index = bucket_index(value)
        assert value <= bucket_bound(index)
        if index > 0:
            assert value > bucket_bound(index - 1)


def test_bucket_bound_overflow_is_inf():
    assert bucket_bound(MAX_BUCKET) == math.inf
    assert bucket_bound(MAX_BUCKET + 7) == math.inf


def test_labels_identify_metrics():
    registry = MetricsRegistry()
    registry.counter("farm.retries", shard=0).inc()
    registry.counter("farm.retries", shard=1).inc(4)
    registry.counter("farm.retries", shard=0).inc()
    assert registry.counter("farm.retries", shard=0).value == 2
    assert registry.counter("farm.retries", shard=1).value == 4
    assert len(registry) == 2
    # label order never splits a series
    assert registry.counter("x", a=1, b=2) is registry.counter("x", b=2, a=1)


def test_same_name_different_kind_coexist():
    registry = MetricsRegistry()
    registry.counter("thing").inc()
    registry.gauge("thing").set(7)
    assert len(registry) == 2
    assert registry.find("thing", kind="gauge")[0]["value"] == 7


def test_histogram_snapshot():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency_ms", op="decode")
    for value in (0.5, 1, 2, 3, 900):
        histogram.observe(value)
    snap = registry.find("latency_ms", kind="histogram", op="decode")[0]
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(906.5)
    assert snap["buckets"] == {"0": 2, "1": 1, "2": 1, "10": 1}


def test_registry_thread_safety_hammer():
    registry = MetricsRegistry()
    threads = 8
    rounds = 2000

    def hammer(seed: int) -> None:
        for i in range(rounds):
            registry.counter("hits", worker=seed % 2).inc()
            registry.gauge("level", worker=seed).set(i)
            registry.histogram("obs").observe(i % 37)

    pool = [threading.Thread(target=hammer, args=(seed,))
            for seed in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    assert registry.counter("hits", worker=0).value == rounds * threads / 2
    assert registry.counter("hits", worker=1).value == rounds * threads / 2
    histogram = registry.histogram("obs")
    assert histogram.count == rounds * threads
    assert sum(histogram.buckets.values()) == rounds * threads


def test_snapshot_deterministic_order():
    first, second = MetricsRegistry(), MetricsRegistry()
    first.counter("b").inc()
    first.counter("a", x=1).inc()
    second.counter("a", x=1).inc()
    second.counter("b").inc()
    names = lambda registry: [(e["name"], tuple(sorted(e["labels"].items())))
                              for e in registry.snapshot()]
    assert names(first) == names(second)


def test_merge_snapshots():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("events").inc(10)
    b.counter("events").inc(5)
    a.gauge("rss").set(100)
    b.gauge("rss").set(250)
    a.histogram("ms").observe(3)
    b.histogram("ms").observe(3)
    b.histogram("ms").observe(1000)
    merged = {(e["kind"], e["name"]): e
              for e in merge_snapshots([a.snapshot(), b.snapshot()])}
    assert merged[("counter", "events")]["value"] == 15
    assert merged[("gauge", "rss")]["value"] == 250  # max, not sum
    histogram = merged[("histogram", "ms")]
    assert histogram["count"] == 3
    assert histogram["buckets"]["2"] == 2
    assert histogram["buckets"]["10"] == 1


def test_null_registry_discards_and_shares():
    registry = NullRegistry()
    counter = registry.counter("anything", shard=3)
    counter.inc(99)
    assert counter.value == 0
    # shared singleton: no allocation per call site
    assert registry.counter("other") is counter
    registry.gauge("g").set(5)
    registry.histogram("h").observe(5)
    assert registry.snapshot() == []
    assert len(registry) == 0
