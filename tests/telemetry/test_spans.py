"""Span tracing: nesting, exception paths, JSONL round-trip, sessions."""

import json
import threading

import pytest

from repro import telemetry
from repro.telemetry import Telemetry, TelemetryRun, iter_records


def test_span_nesting_parent_ids(tmp_path):
    tele = Telemetry(str(tmp_path))
    with tele.span("outer") as outer:
        with tele.span("inner") as inner:
            with tele.span("leaf") as leaf:
                pass
        with tele.span("sibling") as sibling:
            pass
    tele.close()
    run = TelemetryRun.load(str(tmp_path))
    by_name = {span["name"]: span for span in run.spans}
    assert by_name["outer"]["parent"] is None
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert by_name["leaf"]["parent"] == by_name["inner"]["id"]
    assert by_name["sibling"]["parent"] == by_name["outer"]["id"]
    assert {outer.span_id, inner.span_id, leaf.span_id, sibling.span_id} == \
        {span["id"] for span in run.spans}


def test_span_exception_recorded_and_reraised(tmp_path):
    tele = Telemetry(str(tmp_path))
    with pytest.raises(ValueError):
        with tele.span("doomed"):
            raise ValueError("boom")
    with tele.span("fine"):
        pass
    tele.close()
    run = TelemetryRun.load(str(tmp_path))
    doomed = run.spans_named("doomed")[0]
    assert doomed["ok"] is False
    assert doomed["error"] == "ValueError"
    assert run.spans_named("fine")[0]["ok"] is True
    # the failed span unwound the stack: "fine" is not its child
    assert run.spans_named("fine")[0]["parent"] is None


def test_span_attrs_and_set(tmp_path):
    tele = Telemetry(str(tmp_path))
    with tele.span("work", shard=3) as span:
        span.set(events=1275)
    tele.close()
    run = TelemetryRun.load(str(tmp_path))
    assert run.spans_named("work")[0]["attrs"] == {"shard": 3, "events": 1275}


def test_spans_nest_per_thread(tmp_path):
    tele = Telemetry(str(tmp_path))
    barrier = threading.Barrier(2)

    def run_thread(name: str) -> None:
        barrier.wait()
        with tele.span(name):
            barrier.wait()

    pool = [threading.Thread(target=run_thread, args=(f"t{i}",))
            for i in range(2)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    tele.close()
    run = TelemetryRun.load(str(tmp_path))
    # concurrent same-level spans in different threads are both roots
    assert [span["parent"] for span in run.spans] == [None, None]


def test_jsonl_round_trip_and_meta(tmp_path):
    tele = Telemetry(str(tmp_path))
    tele.event("checkpoint", detail="after plan")
    tele.counter("things").inc(3)
    with tele.span("phase"):
        pass
    tele.close()
    records = list(iter_records(str(tmp_path)))
    assert records[0]["type"] == "meta"
    assert records[0]["version"] == 1
    assert records[-1]["type"] == "metrics"
    run = TelemetryRun.load(str(tmp_path))
    assert run.counter_value("things") == 3
    assert run.events[0]["name"] == "checkpoint"
    assert run.span_names() == ["phase"]
    totals = run.span_totals()
    assert totals["phase"]["calls"] == 1
    # every span also lands in the wall-time histogram
    assert run.find_metrics("span.wall_ms", kind="histogram", span="phase")


def test_reader_skips_torn_last_line(tmp_path):
    log = tmp_path / "telemetry.jsonl"
    log.write_text(json.dumps({"type": "span", "name": "ok", "id": 1}) +
                   "\n{\"type\": \"span\", \"na")
    run = TelemetryRun.load(str(tmp_path))
    assert run.span_names() == ["ok"]


def test_session_scoping_and_restore(tmp_path):
    assert telemetry.current() is telemetry.NULL
    with telemetry.session(str(tmp_path)) as tele:
        assert telemetry.current() is tele
        with telemetry.span("scoped"):
            pass
    assert telemetry.current() is telemetry.NULL
    run = TelemetryRun.load(str(tmp_path))
    assert run.span_names() == ["scoped"]
    assert run.metrics  # close() sealed the run with the snapshot


def test_null_telemetry_is_zero_cost_shared():
    null = telemetry.NULL
    assert not null.enabled
    span = null.span("anything", shard=1)
    assert span is null.span("other")  # one shared no-op span
    with span:
        pass
    null.counter("c").inc()
    null.gauge("g").set(1)
    null.histogram("h").observe(1)
    null.event("e")
    null.close()
    assert null.current_span_id() is None
    # module-level helpers route to NULL when no session is live
    assert telemetry.span("x") is span


def test_metrics_only_telemetry_without_sink():
    tele = Telemetry()  # no path: no event log
    with tele.span("quiet"):
        tele.counter("seen").inc()
    tele.close()
    assert tele.sink is None
    assert tele.registry.find("seen", kind="counter")[0]["value"] == 1
