"""benchmarks/results JSON envelope: the shared repro-bench/1 schema."""

import importlib.util
import json
import os

_CONFTEST = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, os.pardir, "benchmarks", "conftest.py")


def _load_bench_conftest():
    spec = importlib.util.spec_from_file_location("bench_conftest", _CONFTEST)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_save_result_wraps_payload_in_envelope(tmp_path, monkeypatch):
    conftest = _load_bench_conftest()
    monkeypatch.setattr(conftest, "_RESULTS_DIR", str(tmp_path))
    path = conftest.save_result("fig99_demo", {"series": [1, 2, 3]})
    with open(path) as stream:
        envelope = json.load(stream)
    assert envelope["schema"] == conftest.RESULT_SCHEMA == "repro-bench/1"
    assert envelope["bench"] == "fig99_demo"
    assert envelope["metrics"] == {"series": [1, 2, 3]}
    assert len(envelope["run_id"]) == 32
    assert envelope["timestamp"].endswith("+00:00")  # absolute, UTC
    assert isinstance(envelope["scale"], float)
    # git_sha is best-effort: a 40-hex string inside a checkout, else None
    sha = envelope["git_sha"]
    assert sha is None or (len(sha) == 40 and int(sha, 16) >= 0)


def test_two_runs_get_distinct_run_ids(tmp_path, monkeypatch):
    conftest = _load_bench_conftest()
    monkeypatch.setattr(conftest, "_RESULTS_DIR", str(tmp_path))
    first = json.load(open(conftest.save_result("a", {})))
    second = json.load(open(conftest.save_result("a", {})))
    assert first["run_id"] != second["run_id"]
