"""Trace contexts: ids, carriers, retroactive spans, zero-cost default."""

import json
import os
import threading

from repro import telemetry
from repro.telemetry import NULL, Telemetry, TelemetryRun, new_trace_id


def test_new_trace_id_is_16_hex():
    first, second = new_trace_id(), new_trace_id()
    assert len(first) == 16 and int(first, 16) >= 0
    assert first != second


def test_untraced_spans_have_no_trace_fields(tmp_path):
    """Without a trace scope, span records are exactly the classic shape."""
    tele = Telemetry(str(tmp_path))
    with tele.span("plain"):
        pass
    tele.close()
    span = TelemetryRun.load(str(tmp_path)).spans_named("plain")[0]
    assert set(span) == {"type", "name", "id", "parent", "start", "wall",
                         "cpu", "ok"}


def test_traced_spans_carry_trace_uid_parent(tmp_path):
    tele = Telemetry(str(tmp_path))
    with tele.trace() as scope:
        with tele.span("outer"):
            with tele.span("inner"):
                pass
    tele.close()
    run = TelemetryRun.load(str(tmp_path))
    outer = run.spans_named("outer")[0]
    inner = run.spans_named("inner")[0]
    assert outer["trace"] == inner["trace"] == scope.trace_id
    # uid namespace: pid, telemetry instance, span id — host-unique
    assert outer["uid"].startswith(f"{os.getpid():x}.")
    assert outer["uid"].endswith(f"-{outer['id']:x}")
    assert "parent_uid" not in outer         # root of the local tree
    assert inner["parent_uid"] == outer["uid"]


def test_carrier_roundtrip_links_remote_spans(tmp_path):
    """Server-side trace() seeded from a carrier parents to the client."""
    client = Telemetry(str(tmp_path / "client"))
    with client.trace():
        with client.span("client.put"):
            carrier = client.trace_carrier()
    client.close()
    assert carrier is not None and "id" in carrier and "parent" in carrier

    server = Telemetry(str(tmp_path / "server"))
    with server.trace(carrier["id"], carrier.get("parent")):
        with server.span("server.request"):
            pass
    server.close()

    put = TelemetryRun.load(str(tmp_path / "client")).spans_named(
        "client.put")[0]
    request = TelemetryRun.load(str(tmp_path / "server")).spans_named(
        "server.request")[0]
    assert request["trace"] == put["trace"] == carrier["id"]
    assert request["parent_uid"] == put["uid"] == carrier["parent"]


def test_trace_carrier_is_none_outside_a_scope():
    tele = Telemetry()
    assert tele.trace_carrier() is None
    tele.close()


def test_emit_span_records_retroactively(tmp_path):
    tele = Telemetry(str(tmp_path))
    with tele.trace() as scope:
        with tele.span("server.request"):
            uid = tele.emit_span("server.decode", tele.epoch + 0.5, 0.025,
                                 bytes=128)
    explicit = tele.emit_span("server.queue_wait", tele.epoch + 1.0, 0.75,
                              trace_id=scope.trace_id, parent_uid=uid,
                              ok=False)
    untraced = tele.emit_span("loose", tele.epoch, 0.1)
    tele.close()
    assert uid is not None and explicit is not None and untraced is None

    run = TelemetryRun.load(str(tmp_path))
    decode = run.spans_named("server.decode")[0]
    request = run.spans_named("server.request")[0]
    wait = run.spans_named("server.queue_wait")[0]
    loose = run.spans_named("loose")[0]
    assert decode["parent_uid"] == request["uid"]
    assert decode["start"] == 0.5 and decode["wall"] == 0.025
    assert decode["attrs"] == {"bytes": 128}
    assert wait["trace"] == scope.trace_id
    assert wait["parent_uid"] == uid
    assert wait["ok"] is False
    assert "trace" not in loose and "uid" not in loose
    # retroactive spans feed the same wall histogram as live spans
    names = {entry["labels"].get("span")
             for entry in run.metrics if entry["name"] == "span.wall_ms"}
    assert {"server.request", "server.decode", "server.queue_wait",
            "loose"} <= names


def test_trace_scopes_are_thread_local(tmp_path):
    tele = Telemetry(str(tmp_path))
    ids = {}

    def worker(name):
        with tele.trace() as scope:
            with tele.span(name):
                pass
            ids[name] = scope.trace_id

    threads = [threading.Thread(target=worker, args=(f"t{i}",))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    tele.close()
    assert len(set(ids.values())) == 4
    run = TelemetryRun.load(str(tmp_path))
    for name, trace_id in ids.items():
        assert run.spans_named(name)[0]["trace"] == trace_id


def test_two_telemetries_in_one_process_never_share_uids(tmp_path):
    """Same-pid client+server logs must not collide in the uid space."""
    first = Telemetry(str(tmp_path / "a"))
    second = Telemetry(str(tmp_path / "b"))
    with first.trace():
        with first.span("x"):
            pass
    with second.trace():
        with second.span("y"):
            pass
    first.close()
    second.close()
    x = TelemetryRun.load(str(tmp_path / "a")).spans_named("x")[0]
    y = TelemetryRun.load(str(tmp_path / "b")).spans_named("y")[0]
    assert x["id"] == y["id"] == 1       # per-instance counters both at 1
    assert x["uid"] != y["uid"]          # ...but the uids differ


def test_null_telemetry_trace_surface_is_noop():
    with NULL.trace("dead", "beef"):
        assert NULL.trace_carrier() is None
        assert NULL.emit_span("x", 0.0, 1.0) is None


def test_module_level_conveniences_route_to_current(tmp_path):
    assert telemetry.trace_carrier() is None     # NULL default
    with telemetry.session(str(tmp_path)) as tele:
        with telemetry.trace():
            carrier = telemetry.trace_carrier()
            assert carrier is not None
            telemetry.emit_span("conv", tele.epoch, 0.001)
    run = TelemetryRun.load(str(tmp_path))
    assert run.spans_named("conv")[0]["trace"] == carrier["id"]


def test_traced_log_is_valid_jsonl(tmp_path):
    tele = Telemetry(str(tmp_path))
    with tele.trace():
        with tele.span("a"):
            pass
    tele.close()
    with open(tele.sink.path, "r", encoding="utf-8") as stream:
        for line in stream:
            json.loads(line)
