"""Self-overhead accounting: measure, derive rows, render from data alone."""

import pytest

from repro.telemetry.overhead import (
    DEFAULT_TOOLS,
    measure_overhead,
    overhead_rows,
    render_overhead_report,
)


@pytest.fixture(scope="module")
def metrics():
    tele = measure_overhead("352.nab", threads=2, scale=0.4,
                            tools=("nulgrind", "aprof-rms", "aprof-trms"),
                            repeats=2)
    return tele.registry.snapshot()


def test_measure_covers_every_configuration(metrics):
    tools = {entry["labels"]["tool"]
             for entry in metrics if entry["name"] == "overhead.runs"}
    assert tools == {"native", *DEFAULT_TOOLS}
    for entry in metrics:
        if entry["name"] == "overhead.runs":
            assert entry["value"] == 2


def test_overhead_rows_shape(metrics):
    rows = overhead_rows(metrics)
    by_tool = {row[0]: row for row in rows}
    assert set(by_tool) == {"native", *DEFAULT_TOOLS}
    assert by_tool["native"][2] == pytest.approx(1.0)
    for tool, seconds, slowdown, space, blocks in rows:
        assert seconds > 0 and slowdown > 0
        assert blocks == by_tool["native"][4]  # same work under every tool
    # the profilers keep shadow state, the native run has none
    assert by_tool["aprof-trms"][3] > 0
    assert by_tool["native"][3] == 0


def test_render_report_from_snapshot_alone(metrics):
    report = render_overhead_report(metrics)
    assert "native" in report and "aprof-trms" in report
    assert "slowdown" in report
    assert "Table 1" in report  # the trms-vs-rms comparison line


def test_render_report_without_measurements():
    assert "no overhead measurements" in render_overhead_report([])
