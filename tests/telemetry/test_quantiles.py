"""The shared log2-bucket quantile estimator."""

import math

from repro.telemetry.registry import (
    MAX_BUCKET,
    Histogram,
    NullHistogram,
    bucket_bound,
    bucket_counts,
    quantile_from_buckets,
    quantiles_from_buckets,
)


def test_bucket_counts_maps_values_to_log2_buckets():
    assert bucket_counts([]) == {}
    assert bucket_counts([0.5, 1.0, 2.0, 3.0, 1000.0]) == {0: 2, 1: 1,
                                                           2: 1, 10: 1}


def test_quantile_of_nothing_is_zero():
    assert quantile_from_buckets({}, 0, 0.5) == 0.0
    assert quantile_from_buckets({}, 10, 0.5) == 0.0
    assert quantile_from_buckets({0: 1}, 0, 0.5) == 0.0


def test_quantile_interpolates_inside_a_bucket():
    buckets = {1: 4}                     # four observations in (1, 2]
    assert quantile_from_buckets(buckets, 4, 0.25) == 1.25
    assert quantile_from_buckets(buckets, 4, 0.50) == 1.5
    assert quantile_from_buckets(buckets, 4, 1.00) == 2.0


def test_quantile_walks_cumulative_counts():
    buckets = {0: 2, 2: 1, 3: 1}         # ranks 1-2 in (-inf,1], 3 in (2,4]
    assert quantile_from_buckets(buckets, 4, 0.5) <= 1.0
    p75 = quantile_from_buckets(buckets, 4, 0.75)
    assert 2.0 < p75 <= 4.0
    p100 = quantile_from_buckets(buckets, 4, 1.0)
    assert 4.0 < p100 <= 8.0


def test_overflow_bucket_reports_its_lower_bound():
    value = quantile_from_buckets({MAX_BUCKET: 1}, 1, 0.99)
    assert value == bucket_bound(MAX_BUCKET - 1)
    assert math.isfinite(value)


def test_string_keys_match_snapshot_serialization():
    """Metric snapshots serialize bucket indexes as strings."""
    assert quantile_from_buckets({"0": 1, "1": 1}, 2, 1.0) == \
        quantile_from_buckets({0: 1, 1: 1}, 2, 1.0) == 2.0


def test_quantiles_are_monotone_in_the_fraction():
    buckets = bucket_counts([1, 3, 7, 20, 90, 400, 401, 1000, 5000, 5001])
    fractions = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
    values = quantiles_from_buckets(buckets, 10, fractions)
    assert values == sorted(values)


def test_histogram_quantile_uses_the_shared_estimator():
    histogram = Histogram("t", ())
    for value in (1.0, 2.0, 4.0, 8.0, 1000.0):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    assert histogram.quantile(0.95) == quantile_from_buckets(
        snapshot["buckets"], snapshot["count"], 0.95)
    assert histogram.quantile(0.95) > 100


def test_null_histogram_quantile_is_zero():
    assert NullHistogram().quantile(0.99) == 0.0
