"""Tests for ASCII rendering, reports and figure builders."""

import io

import pytest

from repro.core import ProfileDatabase
from repro.reporting import (
    bars,
    dump_points,
    external_input_curve,
    induced_breakdown,
    parse_points,
    render_report,
    richness_curve,
    scatter,
    table,
    thread_input_curve,
    volume_curve,
    worst_case_series,
)


def sample_db():
    db = ProfileDatabase()
    db.add_activation("f", 1, size=2, cost=10, induced_thread=1)
    db.add_activation("f", 1, size=2, cost=30)
    db.add_activation("f", 2, size=5, cost=50, induced_external=2)
    db.add_activation("g", 1, size=1, cost=4)
    db.global_induced_thread = 1
    db.global_induced_external = 2
    return db


# -- ascii ------------------------------------------------------------------------


def test_scatter_renders_extremes():
    chart = scatter([(1, 1), (10, 100)], width=20, height=5, title="t")
    assert "t" in chart
    assert "100" in chart and "1" in chart
    assert chart.count("*") == 2


def test_scatter_empty():
    assert "(no points)" in scatter([])


def test_scatter_single_point():
    chart = scatter([(5, 7)], width=10, height=4)
    assert chart.count("*") == 1


def test_table_alignment():
    rendered = table(["name", "value"], [["a", 1], ["long-name", 22]])
    lines = rendered.splitlines()
    assert lines[0].startswith("name")
    assert len({len(line) for line in lines[:2]}) == 1


def test_bars():
    rendered = bars([("x", 50.0), ("y", 100.0)], width=10, unit="%")
    assert "##########" in rendered
    assert "#####" in rendered


def test_bars_empty():
    assert "(no data)" in bars([])


# -- report -----------------------------------------------------------------------


def test_render_report_merged():
    report = render_report(sample_db(), title="session")
    assert "session" in report
    assert "f" in report and "g" in report
    assert "induced split" in report
    assert "33.3% thread / 66.7% external" in report


def test_render_report_per_thread():
    report = render_report(sample_db(), merged=False)
    # per-thread rows: f appears for threads 1 and 2
    assert report.count("f") >= 2


def test_dump_and_parse_points_roundtrip():
    db = sample_db()
    buffer = io.StringIO()
    count = dump_points(db, buffer)
    assert count == 3   # (f,1,2), (f,2,5), (g,1,1)
    buffer.seek(0)
    rebuilt = parse_points(buffer)
    for profile in db:
        twin = rebuilt.profile(profile.routine, profile.thread)
        assert twin is not None
        assert twin.calls == profile.calls
        for size, stats in profile.points.items():
            twin_stats = twin.points[size]
            assert twin_stats.calls == stats.calls
            assert twin_stats.cost_min == stats.cost_min
            assert twin_stats.cost_max == stats.cost_max
            assert twin_stats.cost_sum == stats.cost_sum


def test_parse_points_many_calls_preserves_sum():
    db = ProfileDatabase()
    for cost in (1, 5, 9, 9, 100):
        db.add_activation("r", 1, size=3, cost=cost)
    buffer = io.StringIO()
    dump_points(db, buffer)
    buffer.seek(0)
    rebuilt = parse_points(buffer)
    stats = rebuilt.profile("r", 1).points[3]
    assert stats.calls == 5
    assert stats.cost_min == 1
    assert stats.cost_max == 100
    assert stats.cost_sum == 124


# -- figures -----------------------------------------------------------------------


def test_worst_case_series_merges_threads():
    series = worst_case_series(sample_db(), "f")
    assert series == [(2, 30), (5, 50)]
    assert worst_case_series(sample_db(), "missing") == []


def test_richness_and_volume_curves():
    rms_db = ProfileDatabase()
    trms_db = ProfileDatabase()
    rms_db.add_activation("f", 1, 1, 1)
    rms_db.add_activation("f", 1, 1, 1)
    trms_db.add_activation("f", 1, 2, 1)
    trms_db.add_activation("f", 1, 3, 1)
    richness = richness_curve(rms_db, trms_db)
    assert richness == [(100.0, 1.0)]   # 2 trms points vs 1 rms point
    volume = volume_curve(rms_db, trms_db)
    assert volume == [(100.0, pytest.approx(1 - 2 / 5))]


def test_induced_breakdown_sorted_by_thread_share():
    db_a = ProfileDatabase()
    db_a.global_induced_thread = 9
    db_a.global_induced_external = 1
    db_b = ProfileDatabase()
    db_b.global_induced_thread = 1
    db_b.global_induced_external = 9
    rows = induced_breakdown({"b": db_b, "a": db_a})
    assert [row[0] for row in rows] == ["a", "b"]
    assert rows[0][1] == pytest.approx(90.0)


def test_per_routine_input_curves():
    db = sample_db()
    thread_curve = thread_input_curve(db)
    external_curve = external_input_curve(db)
    assert len(thread_curve) == len(external_curve) == 1   # only routine f
    assert thread_curve[0][1] + external_curve[0][1] == pytest.approx(100.0)
