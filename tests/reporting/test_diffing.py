"""Tests for profile diffing (regression detection)."""

import pytest

from repro.core import ProfileDatabase
from repro.reporting import diff_databases, render_diff

SIZES = (4, 8, 16, 32, 64)


def db_from(routines):
    db = ProfileDatabase()
    for name, fn in routines.items():
        for size in SIZES:
            db.add_activation(name, 1, size, int(fn(size)))
    return db


def by_routine(diffs):
    return {diff.routine: diff for diff in diffs}


def test_detects_asymptotic_regression():
    old = db_from({"parse": lambda n: 10 * n})
    new = db_from({"parse": lambda n: n * n})
    diff = by_routine(diff_databases(old, new))["parse"]
    assert diff.verdict == "regressed"
    assert diff.old_growth == "O(n)"
    assert diff.new_growth == "O(n^2)"


def test_detects_asymptotic_improvement():
    old = db_from({"sort": lambda n: n * n})
    new = db_from({"sort": lambda n: 12 * n})
    assert by_routine(diff_databases(old, new))["sort"].verdict == "improved"


def test_constant_factor_slowdown():
    old = db_from({"scan": lambda n: 10 * n})
    new = db_from({"scan": lambda n: 25 * n})
    diff = by_routine(diff_databases(old, new))["scan"]
    assert diff.verdict == "slower"
    assert diff.cost_ratio == pytest.approx(2.5, rel=0.1)


def test_constant_factor_speedup():
    old = db_from({"scan": lambda n: 30 * n})
    new = db_from({"scan": lambda n: 10 * n})
    assert by_routine(diff_databases(old, new))["scan"].verdict == "faster"


def test_unchanged_within_tolerance():
    old = db_from({"f": lambda n: 10 * n})
    new = db_from({"f": lambda n: 11 * n})
    assert by_routine(diff_databases(old, new))["f"].verdict == "unchanged"


def test_added_and_removed_routines():
    old = db_from({"gone": lambda n: n})
    new = db_from({"fresh": lambda n: n})
    diffs = by_routine(diff_databases(old, new))
    assert diffs["gone"].verdict == "removed"
    assert diffs["fresh"].verdict == "added"


def test_unfittable_routines_skipped():
    old = ProfileDatabase()
    new = ProfileDatabase()
    old.add_activation("thin", 1, 1, 1)
    new.add_activation("thin", 1, 1, 1)
    assert diff_databases(old, new) == []


def test_ordering_puts_regressions_first():
    old = db_from({
        "bad": lambda n: n,
        "meh": lambda n: 10 * n,
        "good": lambda n: n * n,
    })
    new = db_from({
        "bad": lambda n: n * n,      # regressed
        "meh": lambda n: 20 * n,     # slower
        "good": lambda n: 5 * n,     # improved
    })
    verdicts = [diff.verdict for diff in diff_databases(old, new)]
    assert verdicts == ["regressed", "slower", "improved"]


def test_render_diff():
    old = db_from({"parse": lambda n: n})
    new = db_from({"parse": lambda n: n * n})
    rendered = render_diff(old, new)
    assert "Profile diff" in rendered
    assert "regressed" in rendered


def test_thin_routine_classifies_as_added_not_degenerate_fit():
    """< 3 distinct RMS values never produce a curve, whatever min_points."""
    old = db_from({"f": lambda n: 10 * n})
    new = ProfileDatabase()
    for size in (4, 8):                       # two points fit every basis
        new.add_activation("f", 1, size, 10 * size)
        new.add_activation("thin", 1, size, size * size)
    diffs = by_routine(diff_databases(old, new, min_points=1))
    assert diffs["f"].verdict == "removed"    # 2 < 3 even with min_points=1
    assert "thin" not in diffs                # unfittable on both sides? absent
    # and the mirror direction is consistent
    diffs = by_routine(diff_databases(new, old, min_points=1))
    assert diffs["f"].verdict == "added"
    assert diffs["f"].old_growth is None
    assert diffs["f"].new_growth == "O(n)"


def test_zero_cost_side_yields_none_ratio_and_renders():
    """A vanishing old prediction leaves the ratio None, not infinite."""
    old = ProfileDatabase()
    new = ProfileDatabase()
    for size in SIZES:
        old.add_activation("z", 1, size, 0)
        new.add_activation("z", 1, size, size * size)
    (diff,) = diff_databases(old, new)
    assert diff.verdict == "regressed"        # judged by class rank alone
    assert diff.cost_ratio is None
    rendered = render_diff(old, new)
    assert "regressed" in rendered
    assert "-" in rendered                    # None ratio renders as a dash


def test_classify_pair_handles_none_ratio():
    from repro.reporting.diffing import classify_pair

    assert classify_pair(1, 2, None) == "regressed"
    assert classify_pair(2, 1, None) == "improved"
    assert classify_pair(1, 1, None) == "unchanged"
    assert classify_pair(1, 1, 2.0) == "slower"
    assert classify_pair(1, 1, 0.4) == "faster"
    assert classify_pair(1, 1, 1.1) == "unchanged"


def test_severity_order_is_shared_vocabulary():
    from repro.reporting.diffing import SEVERITY

    assert sorted(SEVERITY, key=SEVERITY.get) == [
        "regressed", "slower", "added", "removed",
        "unchanged", "faster", "improved",
    ]


def test_end_to_end_catches_a_planted_regression():
    """Two versions of real profiled code: v2 grows a hidden quadratic."""
    from repro.core import EventBus, RmsProfiler
    from repro.pytrace import TraceSession, traced

    def profile_version(version):
        profiler = RmsProfiler(keep_activations=True)
        session = TraceSession(tools=EventBus([profiler]))

        @traced
        def lookup(table, count, key):
            if version == 1:
                return table[key]            # O(1) indexed access
            for i in range(count):           # v2: accidental linear scan
                if table[i] == key:
                    return True
            return False

        @traced
        def load(table, n):
            hits = 0
            for i in range(n):
                if lookup(table, n, i):
                    hits += 1
            return hits

        with session:
            for n in (4, 8, 16, 32, 48):
                load(session.array(n, fill=1), n)
        return profiler.db

    diffs = by_routine(diff_databases(profile_version(1), profile_version(2)))
    assert diffs["load"].verdict == "regressed"
