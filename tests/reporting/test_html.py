"""Tests for the HTML report renderer."""

import pytest

from repro.core import ProfileDatabase
from repro.reporting import render_html_report, svg_scatter


def sample_db():
    db = ProfileDatabase()
    for size in (2, 4, 8, 16):
        db.add_activation("worker", 1, size, size * size, induced_thread=size // 2)
        db.add_activation("<root:1>", 1, size, size)
    db.add_activation("tiny", 2, 1, 1)
    db.global_induced_thread = 15
    return db


def test_svg_scatter_contains_points_and_axes():
    svg = svg_scatter([(1, 1), (2, 4), (3, 9)])
    assert svg.startswith("<svg")
    assert svg.count("<circle") == 3
    assert svg.count("<line") == 2
    assert "9" in svg    # y-max label


def test_svg_scatter_empty():
    assert svg_scatter([]) == '<svg width="320" height="200"></svg>'


def test_svg_scatter_single_point_no_division_error():
    svg = svg_scatter([(5, 5)])
    assert svg.count("<circle") == 1


def test_html_report_structure():
    html = render_html_report(sample_db(), title="my <session>")
    assert html.startswith("<!DOCTYPE html>")
    assert "my &lt;session&gt;" in html           # escaped title
    assert "worker" in html
    assert "<svg" in html                          # at least one plot
    assert "bottleneck ranking" in html
    assert "100.0% thread" in html
    assert html.count("<figure>") >= 1


def test_html_report_handles_single_point_routines():
    db = ProfileDatabase()
    db.add_activation("once", 1, 3, 3)
    html = render_html_report(db)
    assert "once" in html
    assert "No multi-point routines" in html


def test_html_report_escapes_routine_names():
    db = ProfileDatabase()
    for size in (1, 2, 3, 4):
        db.add_activation("a<b>&c", 1, size, size)
    html = render_html_report(db)
    assert "a&lt;b&gt;&amp;c" in html
    assert "a<b>&c" not in html


def test_html_report_end_to_end_from_profiler():
    from repro.core import EventBus, TrmsProfiler
    from repro.vm import programs

    profiler = TrmsProfiler()
    programs.producer_consumer(12).run(tools=EventBus([profiler]))
    html = render_html_report(profiler.db, metric="trms")
    assert "consumer" in html and "producer" in html
