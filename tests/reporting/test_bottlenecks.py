"""Tests for the asymptotic bottleneck ranking."""

import pytest

from repro.core import ProfileDatabase
from repro.reporting import rank_bottlenecks, render_bottlenecks


def db_with(routines):
    """routines: name -> callable(size) giving the worst-case cost."""
    db = ProfileDatabase()
    for name, fn in routines.items():
        for size in (4, 8, 16, 32, 64):
            db.add_activation(name, 1, size, int(fn(size)))
    return db


def test_ranks_quadratic_above_linear():
    db = db_with({
        "linear": lambda n: 100 * n,          # big constant, gentle growth
        "quadratic": lambda n: n * n,         # small today, explosive later
    })
    ranked = rank_bottlenecks(db)
    assert [item.routine for item in ranked] == ["quadratic", "linear"]
    assert ranked[0].growth == "O(n^2)"
    assert ranked[1].growth == "O(n)"


def test_projection_ratio_reflects_growth():
    db = db_with({"quadratic": lambda n: n * n, "constant": lambda n: 7})
    ranked = {item.routine: item for item in rank_bottlenecks(db)}
    # 10x input -> ~100x cost for the quadratic routine
    assert 50 < ranked["quadratic"].projection_ratio < 150
    assert ranked["constant"].projection_ratio < 2.0


def test_min_points_filter():
    db = ProfileDatabase()
    for size in (1, 2):
        db.add_activation("thin", 1, size, size)
    assert rank_bottlenecks(db, min_points=4) == []
    assert len(rank_bottlenecks(db, min_points=2)) == 1


def test_ties_broken_by_projected_cost():
    db = db_with({
        "small_linear": lambda n: n,
        "big_linear": lambda n: 1000 * n,
    })
    ranked = rank_bottlenecks(db)
    assert ranked[0].routine == "big_linear"


def test_render_contains_rows_and_limit():
    db = db_with({f"r{i}": (lambda k: (lambda n: (i + 1) * n))(i) for i in range(15)})
    rendered = render_bottlenecks(db, limit=5)
    assert "Asymptotic bottleneck ranking" in rendered
    # header + separator + 5 rows + title
    assert len(rendered.strip().splitlines()) == 3 + 5


def test_works_on_context_keyed_databases():
    db = ProfileDatabase()
    for size in (4, 8, 16, 32):
        db.add_activation("main;f;parse", 1, size, size * size)
        db.add_activation("main;g;parse", 1, size, size)
    ranked = rank_bottlenecks(db)
    assert ranked[0].routine == "main;f;parse"
    assert ranked[0].growth == "O(n^2)"
