"""Cross-process trace assembly, rendering, and the `repro trace` CLI."""

import io

from repro.cli import main as cli_main
from repro.reporting.tracing import (
    assemble_traces,
    load_trace_spans,
    render_trace_waterfall,
    render_traces_html,
    slowest,
)
from repro.telemetry import Telemetry


def run_cli(*argv):
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


def build_logs(tmp_path, uploads=1):
    """Client + server logs joined by carriers, like a real upload."""
    client_dir, server_dir = tmp_path / "cli-tele", tmp_path / "srv-tele"
    client = Telemetry(str(client_dir))
    server = Telemetry(str(server_dir))
    trace_ids = []
    for _ in range(uploads):
        with client.trace() as scope:
            trace_ids.append(scope.trace_id)
            with client.span("client.put"):
                carrier = client.trace_carrier()
                with server.trace(carrier["id"], carrier.get("parent")):
                    with server.span("server.request"):
                        with server.span("server.execute"):
                            with server.span("server.ingest", ok=True):
                                pass
    client.close()
    server.close()
    return str(client_dir), str(server_dir), trace_ids


def test_two_logs_assemble_into_one_tree(tmp_path):
    client_dir, server_dir, trace_ids = build_logs(tmp_path)
    traces = assemble_traces(load_trace_spans([client_dir, server_dir]))
    assert sorted(traces) == sorted(trace_ids)
    trace = traces[trace_ids[0]]
    assert trace.is_single_tree()
    assert trace.sources == ["cli-tele", "srv-tele"]
    walk = [(span.name, depth) for span, depth in trace.ordered()]
    assert walk == [("client.put", 0), ("server.request", 1),
                    ("server.execute", 2), ("server.ingest", 3)]


def test_spans_are_rebased_onto_the_wall_clock(tmp_path):
    client_dir, server_dir, _ = build_logs(tmp_path)
    spans = load_trace_spans([client_dir, server_dir])
    starts = [span.start for span in spans]
    # raw record offsets are near zero; rebased starts are epoch-scale
    assert all(start > 1e9 for start in starts)
    assert max(starts) - min(starts) < 60.0


def test_missing_parents_make_extra_roots(tmp_path):
    tele = Telemetry(str(tmp_path / "tele"))
    with tele.trace() as scope:
        tele.emit_span("orphan.a", tele.epoch, 0.1, parent_uid="dead-1")
        tele.emit_span("orphan.b", tele.epoch + 0.2, 0.1, parent_uid="dead-2")
    tele.close()
    traces = assemble_traces(load_trace_spans([str(tmp_path / "tele")]))
    trace = traces[scope.trace_id]
    assert not trace.is_single_tree()
    assert len(trace.roots) == 2
    assert "2 roots (incomplete join)" in render_trace_waterfall(trace)


def test_slowest_orders_by_duration(tmp_path):
    tele = Telemetry(str(tmp_path / "tele"))
    for name, wall in (("fast", 0.1), ("slow", 0.9), ("mid", 0.5)):
        with tele.trace():
            tele.emit_span(name, tele.epoch, wall)
    tele.close()
    traces = assemble_traces(load_trace_spans([str(tmp_path / "tele")]))
    picked = slowest(traces, 2)
    assert [trace.spans[0].name for trace in picked] == ["slow", "mid"]
    assert slowest(traces, 0) == []
    assert len(slowest(traces, 99)) == 3


def test_waterfall_renders_axis_sources_and_errors(tmp_path):
    tele = Telemetry(str(tmp_path / "tele"))
    with tele.trace() as scope:
        with tele.span("request"):
            tele.emit_span("ingest", tele.epoch + 0.01, 0.05, ok=False)
    tele.close()
    traces = assemble_traces(load_trace_spans([str(tmp_path / "tele")]))
    text = render_trace_waterfall(traces[scope.trace_id])
    assert f"trace {scope.trace_id}" in text
    assert "2 span(s)" in text and "[tree]" in text
    assert "request" in text and "  ingest" in text    # depth indent
    assert "#" in text and "@tele" in text
    assert "ERROR" in text


def test_html_rendering_contains_timelines(tmp_path):
    client_dir, server_dir, trace_ids = build_logs(tmp_path)
    traces = assemble_traces(load_trace_spans([client_dir, server_dir]))
    html = render_traces_html(list(traces.values()), title="t & t")
    assert "<svg" in html
    assert trace_ids[0] in html
    assert "t &amp; t" in html
    assert render_traces_html([]).count("no traces found") == 1


def test_cli_trace_renders_waterfalls(tmp_path):
    client_dir, server_dir, trace_ids = build_logs(tmp_path, uploads=3)
    code, output = run_cli("trace", client_dir, server_dir)
    assert code == 0
    assert "3 trace(s) across 2 log(s); rendering 3" in output
    assert output.count("client.put") == 3

    code, output = run_cli("trace", client_dir, server_dir, "--slowest", "1")
    assert code == 0
    assert "rendering 1" in output

    code, output = run_cli("trace", client_dir, server_dir,
                           "--trace-id", trace_ids[1])
    assert code == 0
    assert f"trace {trace_ids[1]}" in output

    code, output = run_cli("trace", client_dir, "--trace-id", "nope")
    assert code == 2
    assert "error" in output


def test_cli_trace_html_and_assertions(tmp_path):
    client_dir, server_dir, _ = build_logs(tmp_path)
    html_path = tmp_path / "traces.html"
    code, output = run_cli("trace", client_dir, server_dir,
                           "--html", str(html_path), "--assert-linked", "4")
    assert code == 0
    assert "assertion ok" in output
    assert "<svg" in html_path.read_text(encoding="utf-8")

    code, output = run_cli("trace", client_dir, server_dir,
                           "--assert-linked", "99")
    assert code == 1
    assert "assertion failed" in output

    # the client log alone is a partial trace: linked, but only 1 span
    code, output = run_cli("trace", client_dir, "--assert-linked", "2")
    assert code == 1


def test_cli_trace_without_traced_spans(tmp_path):
    tele = Telemetry(str(tmp_path / "tele"))
    with tele.span("untraced"):
        pass
    tele.close()
    code, output = run_cli("trace", str(tmp_path / "tele"))
    assert code == 0
    assert "no traced spans" in output
    code, _ = run_cli("trace", str(tmp_path / "tele"), "--assert-linked", "1")
    assert code == 1
