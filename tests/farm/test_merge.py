"""Merge semantics: associativity, commutativity, exactness, persistence."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProfileDatabase
from repro.farm import (
    ProfileDumpError,
    copy_database,
    load_profile,
    merge_databases,
    merge_into,
    save_profile,
)

from .util import comparable


def activation_strategy():
    return st.tuples(
        st.sampled_from(["f", "g", "name with space", "tab\tname"]),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=9),      # size
        st.integers(min_value=0, max_value=50),     # cost
        st.integers(min_value=0, max_value=4),      # induced (thread)
        st.integers(min_value=0, max_value=4),      # induced (external)
    )


def database_strategy():
    return st.lists(activation_strategy(), min_size=0, max_size=25).map(build_db)


def build_db(activations):
    db = ProfileDatabase()
    for routine, thread, size, cost, ind_thread, ind_external in activations:
        db.add_activation(routine, thread, size, cost, ind_thread, ind_external)
        db.global_induced_thread += ind_thread
        db.global_induced_external += ind_external
    return db


def snap(db):
    return comparable(db) + (db.sizes_lower_bound,)


@settings(max_examples=100, deadline=None)
@given(database_strategy(), database_strategy(), database_strategy())
def test_merge_is_associative(a, b, c):
    left = merge_databases([merge_databases([a, b]), c])
    right = merge_databases([a, merge_databases([b, c])])
    assert snap(left) == snap(right)


@settings(max_examples=100, deadline=None)
@given(database_strategy(), database_strategy())
def test_merge_is_commutative(a, b):
    assert snap(merge_databases([a, b])) == snap(merge_databases([b, a]))


@settings(max_examples=60, deadline=None)
@given(st.lists(activation_strategy(), min_size=0, max_size=30),
       st.integers(min_value=1, max_value=4))
def test_sharded_merge_equals_single_database(activations, parts):
    """Splitting activations across databases and merging reconstructs
    the database built in one go — the farm's merge-across-shards case."""
    shards = [activations[index::parts] for index in range(parts)]
    merged = merge_databases([build_db(shard) for shard in shards])
    assert snap(merged) == snap(build_db(activations))


@settings(max_examples=50, deadline=None)
@given(database_strategy())
def test_empty_database_is_identity(db):
    empty = ProfileDatabase()
    assert snap(merge_databases([db, empty])) == snap(db)
    assert snap(merge_databases([empty, db])) == snap(db)


@settings(max_examples=50, deadline=None)
@given(database_strategy(), database_strategy())
def test_merge_into_does_not_mutate_source(a, b):
    before = snap(b)
    merge_into(a, b)
    assert snap(b) == before
    # and the merged copy is independent: mutating the result leaves b alone
    a.add_activation("f", 1, 3, 7)
    assert snap(b) == before


def test_lower_bound_flag_ors_across_merges():
    sampled = build_db([("f", 1, 2, 3, 0, 0)])
    sampled.sizes_lower_bound = True
    exact = build_db([("f", 1, 2, 4, 0, 0)])
    assert merge_databases([exact, sampled]).sizes_lower_bound
    assert merge_databases([sampled, exact]).sizes_lower_bound
    assert not merge_databases([exact, exact]).sizes_lower_bound


def test_copy_database_is_deep():
    db = build_db([("f", 1, 2, 3, 1, 0)])
    clone = copy_database(db)
    clone.add_activation("f", 1, 2, 99)
    assert db.profile("f", 1).calls == 1
    assert clone.profile("f", 1).calls == 2


@settings(max_examples=80, deadline=None)
@given(database_strategy(), st.booleans())
def test_save_load_roundtrip_is_exact(db, lower_bound):
    db.sizes_lower_bound = lower_bound
    dump = io.StringIO()
    save_profile(db, dump)
    dump.seek(0)
    assert snap(load_profile(dump)) == snap(db)


def test_load_rejects_bad_header():
    with pytest.raises(ProfileDumpError, match="not a profile dump"):
        load_profile(io.StringIO("something\nelse\n"))


def test_load_reports_bad_line():
    text = "repro-profile 1\nF lower_bound=0\nG not numbers\n"
    with pytest.raises(ProfileDumpError, match="line 3"):
        load_profile(io.StringIO(text))


def test_load_rejects_point_before_profile():
    text = "repro-profile 1\nS 1 1 1 1 1 1\n"
    with pytest.raises(ProfileDumpError, match="before any profile"):
        load_profile(io.StringIO(text))


def test_merged_runs_enrich_the_plot():
    """Two runs at different sizes: the merged plot has both points —
    the cross-run aggregation the online profiler cannot do."""
    run_small = build_db([("f", 1, 4, 10, 0, 0)])
    run_large = build_db([("f", 1, 9, 55, 0, 0), ("f", 1, 4, 12, 0, 0)])
    merged = merge_databases([run_small, run_large])
    profile = merged.profile("f", 1)
    assert profile.worst_case_points() == [(4, 12), (9, 55)]
    assert profile.points[4].calls == 2
    assert profile.points[4].cost_min == 10
