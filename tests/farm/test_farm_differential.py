"""Differential tests: the farm's contract is bit-exactness.

Farm-analysed profiles (any shard plan, in-process or multiprocess,
either analysis kernel) must equal the online ``TrmsProfiler`` on every
registered workload suite, the flat and classic kernels must dump
byte-identically, and merged per-run profiles must equal the merge of
the online results.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.farm import (
    analyze_events,
    analyze_file,
    merge_databases,
    plan_shards,
    read_trace_meta,
    save_profile,
)
from repro.workloads import all_benchmarks

from ..core.util import events_strategy
from .util import comparable, online_db, record_benchmark_v2

ALL_NAMES = [bench.name for bench in all_benchmarks()]
#: one entry per kernel family, both suites — the multiprocess subset
POOLED_NAMES = ["350.md", "367.imagick", "376.kdtree", "dedup", "canneal", "vips"]

KERNELS = ("flat", "classic")


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("name", ALL_NAMES)
def test_farm_equals_online_on_every_benchmark(name, kernel, tmp_path):
    """In-process farm (full shard/decode/merge machinery) vs online."""
    path = tmp_path / f"{name}.rpt2"
    events = record_benchmark_v2(name, path, threads=4, scale=0.4)
    result = analyze_file(str(path), jobs=1, keep_activations=True, kernel=kernel)
    assert comparable(result.db) == comparable(online_db(events))
    assert result.stats.kernel == kernel


@pytest.mark.parametrize("name", ALL_NAMES)
def test_kernel_dumps_byte_identical_on_every_benchmark(name, tmp_path):
    """The flat and classic kernels must agree to the *byte* in their
    profile dumps — the equality the CI gate re-checks via SHA-256."""
    path = tmp_path / f"{name}.rpt2"
    record_benchmark_v2(name, path, threads=4, scale=0.4)
    dumps = {}
    for kernel in KERNELS:
        result = analyze_file(str(path), jobs=1, kernel=kernel)
        stream = io.StringIO()
        save_profile(result.db, stream)
        dumps[kernel] = stream.getvalue()
    assert dumps["flat"] == dumps["classic"]


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("name", POOLED_NAMES)
def test_multiprocess_farm_equals_online(name, kernel, tmp_path):
    path = tmp_path / f"{name}.rpt2"
    events = record_benchmark_v2(name, path, threads=6, scale=0.5)
    result = analyze_file(str(path), jobs=3, keep_activations=True, kernel=kernel)
    assert comparable(result.db) == comparable(online_db(events))
    # every shard really ran on the pool, no silent degradation
    assert all(outcome.where == "pool" for outcome in result.stats.outcomes)
    assert result.stats.fallbacks == 0


def test_farm_exact_under_any_jobs_count(tmp_path):
    """Shard plans differ with the job count; the profile must not."""
    path = tmp_path / "md.rpt2"
    events = record_benchmark_v2("350.md", path, threads=6, scale=0.5)
    reference = comparable(online_db(events))
    for jobs in (1, 2, 5, 16):
        result = analyze_file(str(path), jobs=jobs, keep_activations=True)
        assert comparable(result.db) == reference, f"jobs={jobs}"


def test_farm_context_sensitive_equals_online(tmp_path):
    path = tmp_path / "kdtree.rpt2"
    events = record_benchmark_v2("376.kdtree", path, threads=4, scale=0.5)
    result = analyze_file(str(path), jobs=2, context_sensitive=True,
                          keep_activations=True)
    assert comparable(result.db) == \
        comparable(online_db(events, context_sensitive=True))


def test_skewed_plan_is_exact(tmp_path):
    """dedup's pipeline stages are uneven; force tiny chunks so the
    planner has boundaries to cut, then check both strategies' output."""
    path = tmp_path / "dedup.rpt2"
    events = record_benchmark_v2("dedup", path, threads=4, scale=0.5,
                                 chunk_events=32)
    with open(path, "rb") as stream:
        meta = read_trace_meta(stream)
    plan = plan_shards(meta, 3)
    result = analyze_file(str(path), jobs=3, keep_activations=True)
    assert comparable(result.db) == comparable(online_db(events)), plan.strategy


@settings(max_examples=60, deadline=None)
@given(events_strategy(max_ops=100), st.sampled_from([4, 64]),
       st.sampled_from(KERNELS))
def test_farm_equals_online_on_arbitrary_streams(events, chunk_events, kernel):
    result = analyze_events(events, jobs=1, chunk_events=chunk_events,
                            keep_activations=True, kernel=kernel)
    assert comparable(result.db) == comparable(online_db(events))


def test_merged_runs_equal_merged_online(tmp_path):
    """merge(farm(A), farm(B)) == merge(online(A), online(B))."""
    farm_dbs, online_dbs = [], []
    for index, scale in enumerate((0.4, 0.7)):
        path = tmp_path / f"run{index}.rpt2"
        events = record_benchmark_v2("372.smithwa", path, threads=4, scale=scale)
        farm_dbs.append(analyze_file(str(path), jobs=2).db)
        online_dbs.append(online_db(events))
    merged_farm = merge_databases(farm_dbs)
    merged_online = merge_databases(online_dbs)
    assert comparable(merged_farm)[:2] == comparable(merged_online)[:2]


def test_v1_trace_is_converted_and_exact(tmp_path):
    """analyze_file accepts a v1 text trace (converts to v2 internally)."""
    from repro.core import TraceWriter, read_trace
    from repro.workloads import benchmark as get_benchmark

    path = tmp_path / "run.trace"
    with open(path, "w") as stream:
        writer = TraceWriter(stream)
        get_benchmark("358.botsalgn").run(tools=writer, threads=4, scale=0.5)
    with open(path) as stream:
        events = read_trace(stream)
    result = analyze_file(str(path), jobs=2, keep_activations=True)
    assert comparable(result.db) == comparable(online_db(events))
    assert path.exists()  # the conversion used a temp file, not the input
