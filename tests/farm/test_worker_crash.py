"""Failure-policy tests: crashes, errors, hangs, and dead pools.

The farm's contract is that failures cost time, never correctness:
every scenario here must still produce the exact online profile.
"""

import pytest

from repro.farm import analyze_file
from repro.farm.worker import ShardTask, run_shard

from .util import comparable, online_db, record_benchmark_v2


@pytest.fixture
def recorded(tmp_path):
    path = tmp_path / "trace.rpt2"
    events = record_benchmark_v2("350.md", path, threads=4, scale=0.4)
    return str(path), comparable(online_db(events))


def test_worker_crash_is_retried(recorded, tmp_path):
    path, reference = recorded
    sentinel = str(tmp_path / "crashed-once")
    result = analyze_file(
        path, jobs=2, keep_activations=True, retries=2,
        faults={0: ("crash-once", sentinel)},
    )
    assert comparable(result.db) == reference
    assert result.stats.retries >= 1
    assert result.stats.pool_failures >= 1
    by_id = {outcome.shard_id: outcome for outcome in result.stats.outcomes}
    assert by_id[0].attempts >= 2


def test_persistent_crash_falls_back_inline(recorded):
    path, reference = recorded
    result = analyze_file(
        path, jobs=2, keep_activations=True, retries=1,
        faults={0: ("crash-always",)},
    )
    assert comparable(result.db) == reference
    assert result.stats.fallbacks >= 1
    by_id = {outcome.shard_id: outcome for outcome in result.stats.outcomes}
    assert by_id[0].where == "inline"


def test_worker_exception_is_retried_then_falls_back(recorded):
    path, reference = recorded
    # "error" faults raise on every attempt: exhaust retries, go inline
    result = analyze_file(
        path, jobs=2, keep_activations=True, retries=1,
        faults={0: ("error",)},
    )
    assert comparable(result.db) == reference
    assert result.stats.retries >= 1
    assert result.stats.fallbacks >= 1


def test_hung_worker_times_out_and_falls_back(recorded):
    path, reference = recorded
    result = analyze_file(
        path, jobs=2, keep_activations=True, retries=0, timeout=0.3,
        faults={0: ("hang", 1.5)},
    )
    assert comparable(result.db) == reference
    assert result.stats.fallbacks >= 1
    assert result.stats.pool_failures >= 1


def test_dead_pool_degrades_to_inline(recorded, monkeypatch):
    path, reference = recorded

    def broken_pool(*args, **kwargs):
        raise OSError("no processes for you")

    monkeypatch.setattr("concurrent.futures.ProcessPoolExecutor", broken_pool)
    messages = []
    result = analyze_file(path, jobs=4, keep_activations=True,
                          progress=messages.append)
    assert comparable(result.db) == reference
    assert result.stats.pool_failures == 1
    assert result.stats.fallbacks == len(result.stats.outcomes)
    assert all(outcome.where == "inline" for outcome in result.stats.outcomes)
    assert any("inline" in message for message in messages)


def test_inline_execution_strips_faults(recorded, tmp_path):
    """Fallback execution must never re-trigger the injected fault."""
    path, reference = recorded
    result = analyze_file(
        path, jobs=2, keep_activations=True, retries=0,
        faults={0: ("crash-always",), 1: ("crash-always",)},
    )
    assert comparable(result.db) == reference
    assert all(outcome.where == "inline" for outcome in result.stats.outcomes)


def test_run_shard_fault_vocabulary(tmp_path, recorded):
    path, _ = recorded
    with pytest.raises(RuntimeError, match="injected"):
        run_shard(ShardTask(path, 0, (1,), (0,), fault=("error",)))
    with pytest.raises(ValueError, match="unknown fault"):
        run_shard(ShardTask(path, 0, (1,), (0,), fault=("nonsense",)))
