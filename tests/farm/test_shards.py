"""Shard-planning properties: exhaustive, disjoint, chunk-complete."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Event, EventKind
from repro.farm import plan_shards, read_trace_meta, write_binary_trace

from ..core.util import events_strategy


def meta_of(events, chunk_events=8):
    buffer = io.BytesIO()
    write_binary_trace(events, buffer, chunk_events=chunk_events)
    buffer.seek(0)
    return read_trace_meta(buffer)


@settings(max_examples=80, deadline=None)
@given(events_strategy(max_ops=100), st.integers(min_value=1, max_value=6))
def test_plan_covers_every_thread_exactly_once(events, jobs):
    meta = meta_of(events)
    plan = plan_shards(meta, jobs)
    seen = []
    for shard in plan.shards:
        seen.extend(shard.threads)
    assert sorted(seen) == sorted(meta.thread_totals())
    assert len(plan.shards) <= jobs


@settings(max_examples=60, deadline=None)
@given(events_strategy(max_ops=100), st.integers(min_value=1, max_value=4))
def test_shard_chunks_are_sufficient(events, jobs):
    """A shard's chunk set contains every write chunk and every chunk
    with one of its threads' events — what the worker's exactness needs."""
    meta = meta_of(events, chunk_events=4)
    plan = plan_shards(meta, jobs)
    for shard in plan.shards:
        mine = set(shard.threads)
        chunk_set = set(shard.chunk_indices)
        for index, chunk in enumerate(meta.chunks):
            if chunk.writes or mine & set(chunk.thread_counts):
                assert index in chunk_set


def test_single_job_single_shard():
    events = [Event(EventKind.READ, thread, thread) for thread in (1, 2, 3)] * 5
    plan = plan_shards(meta_of(events), 1)
    assert len(plan.shards) == 1
    assert plan.shards[0].threads == (1, 2, 3)
    assert plan.strategy == "by-thread"


def test_balanced_threads_use_thread_strategy():
    events = []
    for _ in range(30):
        for thread in (1, 2, 3, 4):
            events.append(Event(EventKind.READ, thread, thread))
    plan = plan_shards(meta_of(events), 2)
    assert plan.strategy == "by-thread"
    assert len(plan.shards) == 2
    loads = sorted(shard.events for shard in plan.shards)
    assert loads == [60, 60]


def test_skewed_trace_falls_back_to_chunk_ranges():
    # thread 1 owns ~90% of all events: LPT over threads degenerates
    events = [Event(EventKind.READ, 1, index) for index in range(180)]
    for thread in (2, 3, 4):
        events.append(Event(EventKind.READ, thread, thread))
    plan = plan_shards(meta_of(events, chunk_events=16), 3)
    assert plan.strategy == "by-chunks"
    seen = sorted(thread for shard in plan.shards for thread in shard.threads)
    assert seen == [1, 2, 3, 4]


def test_empty_trace_plans_no_shards():
    plan = plan_shards(meta_of([]), 4)
    assert plan.strategy == "empty"
    assert plan.shards == []
    assert plan.total_events() == 0


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        plan_shards(meta_of([]), 0)
