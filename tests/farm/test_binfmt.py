"""Property and unit tests for the v2 binary trace format."""

import io
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Event, EventKind, write_trace
from repro.farm import (
    BinaryTraceError,
    BinaryTraceWriter,
    convert_v1_to_v2,
    convert_v2_to_v1,
    is_binary_trace,
    iter_binary_trace,
    read_binary_trace,
    read_trace_meta,
    write_binary_trace,
)
from repro.farm.binfmt import decode_chunk, iter_positioned

from ..core.util import events_strategy


def roundtrip(events, chunk_events=64):
    buffer = io.BytesIO()
    count = write_binary_trace(events, buffer, chunk_events=chunk_events)
    assert count == len(events)
    buffer.seek(0)
    return read_binary_trace(buffer)


@settings(max_examples=100, deadline=None)
@given(events_strategy(), st.sampled_from([1, 3, 64, 4096]))
def test_arbitrary_streams_roundtrip(events, chunk_events):
    assert roundtrip(events, chunk_events) == events


@settings(max_examples=60, deadline=None)
@given(events_strategy(max_ops=80))
def test_v1_v2_v1_conversion_is_lossless(events):
    v1_original = io.StringIO()
    write_trace(events, v1_original)

    v1_original.seek(0)
    v2 = io.BytesIO()
    convert_v1_to_v2(v1_original, v2, chunk_events=16)
    v2.seek(0)
    v1_again = io.StringIO()
    convert_v2_to_v1(v2, v1_again)
    assert v1_again.getvalue() == v1_original.getvalue()


@settings(max_examples=60, deadline=None)
@given(events_strategy(max_ops=90), st.sampled_from([1, 7, 32]))
def test_chunk_metadata_invariants(events, chunk_events):
    buffer = io.BytesIO()
    write_binary_trace(events, buffer, chunk_events=chunk_events)
    buffer.seek(0)
    meta = read_trace_meta(buffer)

    assert meta.event_count == len(events)
    assert sum(chunk.events for chunk in meta.chunks) == len(events)
    # chunk positions tile the global position space contiguously
    position = 0
    for chunk in meta.chunks:
        assert chunk.first_pos == position
        assert 0 < chunk.events <= chunk_events
        assert sum(chunk.thread_counts.values()) == chunk.events
        expected_writes = sum(
            1 for event in events[position:position + chunk.events]
            if event.kind in (EventKind.WRITE, EventKind.KERNEL_WRITE)
        )
        assert chunk.writes == expected_writes
        position += chunk.events
    assert position == len(events)
    # whole-trace thread totals match the event stream
    totals = {}
    for event in events:
        totals[event.thread] = totals.get(event.thread, 0) + 1
    assert meta.thread_totals() == totals


@settings(max_examples=40, deadline=None)
@given(events_strategy(max_ops=90))
def test_random_access_chunk_decode(events):
    """Decoding one chunk yields exactly that slice of the stream."""
    buffer = io.BytesIO()
    write_binary_trace(events, buffer, chunk_events=8)
    buffer.seek(0)
    meta = read_trace_meta(buffer)
    for chunk in meta.chunks:
        decoded = list(decode_chunk(buffer, chunk, meta.names))
        assert [pair[1] for pair in decoded] == \
            events[chunk.first_pos:chunk.first_pos + chunk.events]
        assert [pair[0] for pair in decoded] == \
            list(range(chunk.first_pos, chunk.first_pos + chunk.events))


def test_iter_positioned_selected_chunks():
    events = [Event(EventKind.READ, 1, addr) for addr in range(20)]
    buffer = io.BytesIO()
    write_binary_trace(events, buffer, chunk_events=5)
    buffer.seek(0)
    meta = read_trace_meta(buffer)
    assert len(meta.chunks) == 4
    picked = [meta.chunks[1], meta.chunks[3]]
    pairs = list(iter_positioned(buffer, meta, picked))
    assert [position for position, _ in pairs] == list(range(5, 10)) + list(range(15, 20))


def test_routine_names_interned_and_restored():
    names = ["f", "weird\tname", "multi\nline", "unicode·routine", "f"]
    events = []
    for name in names:
        events.append(Event(EventKind.CALL, 1, name))
        events.append(Event(EventKind.RETURN, 1, None))
    assert roundtrip(events) == events
    buffer = io.BytesIO()
    write_binary_trace(events, buffer)
    buffer.seek(0)
    meta = read_trace_meta(buffer)
    assert len(meta.names) == 4  # "f" interned once


def test_empty_trace_roundtrip():
    buffer = io.BytesIO()
    assert write_binary_trace([], buffer) == 0
    buffer.seek(0)
    meta = read_trace_meta(buffer)
    assert meta.event_count == 0 and meta.chunks == [] and meta.names == []
    buffer.seek(0)
    assert read_binary_trace(buffer) == []


def test_writer_close_is_idempotent_and_seals():
    buffer = io.BytesIO()
    writer = BinaryTraceWriter(buffer)
    writer.on_call(1, "f")
    writer.close()
    writer.close()
    with pytest.raises(BinaryTraceError, match="sealed"):
        writer.on_return(1)


def test_bad_magic_rejected():
    with pytest.raises(BinaryTraceError, match="bad magic"):
        read_trace_meta(io.BytesIO(b"NOTATRACE" * 10))


def test_unsealed_file_rejected():
    buffer = io.BytesIO()
    writer = BinaryTraceWriter(buffer, chunk_events=2)
    for addr in range(6):
        writer.on_read(1, addr)
    # no close(): chunks exist but footer/trailer are missing
    buffer.seek(0)
    with pytest.raises(BinaryTraceError):
        read_trace_meta(buffer)


def test_is_binary_trace_sniffing(tmp_path):
    v2 = tmp_path / "trace.rpt2"
    with open(v2, "wb") as stream:
        write_binary_trace([Event(EventKind.COST, 1, 5)], stream)
    v1 = tmp_path / "trace.v1"
    with open(v1, "w") as stream:
        write_trace([Event(EventKind.COST, 1, 5)], stream)
    assert is_binary_trace(str(v2))
    assert not is_binary_trace(str(v1))
    assert not is_binary_trace(str(tmp_path / "missing"))


def test_negative_and_large_arguments_roundtrip():
    events = [
        Event(EventKind.READ, -5, 2**62),
        Event(EventKind.WRITE, 3, -(2**40)),
        Event(EventKind.COST, 0, 0),
    ]
    assert roundtrip(events) == events


# -- live-writer additions: flush visibility, durability, torn tails ----------


def test_truncated_chunk_is_typed_and_recoverable():
    """An unsealed (or torn) trace raises :class:`TruncatedChunk` — the
    recoverable subtype a tailer catches — not a generic format error."""
    from repro.farm import TruncatedChunk

    assert issubclass(TruncatedChunk, BinaryTraceError)

    buffer = io.BytesIO()
    writer = BinaryTraceWriter(buffer, chunk_events=2)
    for addr in range(6):
        writer.on_read(1, addr)
    # no close(): the trailer never lands
    buffer.seek(0)
    with pytest.raises(TruncatedChunk, match="writer still running"):
        read_trace_meta(buffer)

    # a sealed trace cut mid-trailer is equally recoverable
    whole = io.BytesIO()
    write_binary_trace([Event(EventKind.COST, 1, 5)], whole)
    torn = io.BytesIO(whole.getvalue()[:-4])
    with pytest.raises(TruncatedChunk):
        read_trace_meta(torn)

    # a bare magic (writer opened, nothing sealed yet) is also "not yet"
    with pytest.raises(TruncatedChunk, match="unsealed"):
        read_trace_meta(io.BytesIO(b"RPTRACE2"))


def test_sealed_chunks_are_flushed_at_seal_time(tmp_path):
    """``_flush_chunk`` must push bytes to the OS: a separate reader sees
    every sealed chunk while the writer is still open."""
    path = tmp_path / "live.rpt2"
    with open(path, "wb") as stream:
        writer = BinaryTraceWriter(stream, chunk_events=4)
        for addr in range(11):
            writer.on_read(1, addr)
        # two chunks sealed (8 events), 3 events still buffered
        size_mid_flight = os.path.getsize(path)
        assert size_mid_flight >= len(b"RPTRACE2") + 2 * 4 * 17
        writer.close()
    assert os.path.getsize(path) > size_mid_flight


def test_durable_flag_survives_simulated_crash(tmp_path):
    """``durable=True`` fsyncs each seal; killing the process after a
    seal must leave the chunk on disk (simulated: never close())."""
    path = tmp_path / "crash.rpt2"
    stream = open(path, "wb")
    writer = BinaryTraceWriter(stream, chunk_events=4, durable=True)
    writer.on_call(1, "victim")
    for addr in range(7):
        writer.on_read(1, addr)
    stream.close()      # the "crash": no writer.close(), no footer
    with open(path, "rb") as reopened:
        with pytest.raises(BinaryTraceError):
            read_trace_meta(reopened)
    assert os.path.getsize(path) >= len(b"RPTRACE2") + 4 * 17


def test_names_sidecar_flushes_before_chunk(tmp_path):
    """Any name a sealed chunk references is already readable from the
    sidecar — the invariant the live tailer's decoder depends on."""
    from repro.core.tracefile import unescape_name
    from repro.farm import live_names_path

    path = str(tmp_path / "live.rpt2")
    with open(path, "wb") as stream, \
            open(live_names_path(path), "w", encoding="utf-8") as names:
        writer = BinaryTraceWriter(stream, chunk_events=2, names_stream=names)
        writer.on_call(1, "solver solve")      # space needs escaping
        writer.on_return(1)                     # seals chunk 1
        with open(live_names_path(path), "r", encoding="utf-8") as sidecar:
            flushed = [unescape_name(line.rstrip("\n")) for line in sidecar]
        assert flushed == ["solver solve"]
        writer.on_call(1, "second")
        writer.close()
    with open(live_names_path(path), "r", encoding="utf-8") as sidecar:
        flushed = [unescape_name(line.rstrip("\n")) for line in sidecar]
    assert flushed == ["solver solve", "second"]
