"""Shared helpers for farm tests: v2 recording and comparable snapshots."""

from __future__ import annotations

from repro.core import TrmsProfiler, replay
from repro.farm import BinaryTraceWriter, read_binary_trace
from repro.workloads import benchmark


def record_benchmark_v2(name, path, threads=4, scale=0.5, chunk_events=256):
    """Record one benchmark execution straight to a v2 file; return events."""
    with open(path, "wb") as stream:
        writer = BinaryTraceWriter(stream, chunk_events=chunk_events)
        benchmark(name).run(tools=writer, threads=threads, scale=scale)
        writer.close()
    with open(path, "rb") as stream:
        return read_binary_trace(stream)


def online_db(events, **kwargs):
    """The ground truth: the online TRMS profiler over the same events."""
    profiler = TrmsProfiler(keep_activations=True, **kwargs)
    replay(events, profiler)
    return profiler.db


def comparable(db):
    """Order-insensitive, exact snapshot of a profile database."""
    profiles = {}
    for profile in db:
        points = {
            size: (stats.calls, stats.cost_min, stats.cost_max,
                   stats.cost_sum, stats.cost_sumsq)
            for size, stats in profile.points.items()
        }
        profiles[(profile.routine, profile.thread)] = (
            points, profile.calls, profile.size_sum, profile.cost_sum,
            profile.induced_thread_sum, profile.induced_external_sum,
        )
    return profiles, db.total_induced(), sorted(db.activations)
