"""Tests for the benchmark suite registry and kernel characters."""

import pytest

from repro.core import EventBus, induced_split, input_volume
from repro.tools import Helgrind
from repro.workloads import PARSEC, SPEC_OMP, all_benchmarks, benchmark
from repro.workloads import kernels


def test_spec_suite_has_the_twelve_table1_rows():
    assert len(SPEC_OMP) == 12
    assert set(SPEC_OMP) == {
        "350.md", "351.bwaves", "352.nab", "358.botsalgn", "359.botsspar",
        "360.ilbdc", "362.fma3d", "367.imagick", "370.mgrid331",
        "371.applu331", "372.smithwa", "376.kdtree",
    }


def test_parsec_suite_members():
    assert {"dedup", "fluidanimate", "vips", "blackscholes", "canneal"} <= set(PARSEC)


def test_benchmark_lookup():
    assert benchmark("350.md").suite == "spec-omp2012"
    assert benchmark("vips").suite == "parsec"
    with pytest.raises(KeyError):
        benchmark("400.perlbench")


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
def test_every_benchmark_runs_and_profiles(bench):
    rms_db, trms_db, machine = bench.profile(threads=2, scale=0.5)
    assert machine.stats.total_blocks > 0
    assert trms_db.total_size_sum() >= rms_db.total_size_sum()
    # Inequality 1 => input volume in [0, 1)
    volume = input_volume(rms_db, trms_db)
    assert 0.0 <= volume < 1.0


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
def test_every_benchmark_is_race_free(bench):
    """The suites model race-free programs (fork/join or semaphored
    pipelines); helgrind must stay quiet on all of them."""
    helgrind = Helgrind()
    bench.run(tools=EventBus([helgrind]), threads=3, scale=0.5)
    assert helgrind.report()["races"] == []


def test_thread_count_scales_worker_threads():
    small = benchmark("350.md").run(threads=2, scale=0.5)
    large = benchmark("350.md").run(threads=6, scale=0.5)
    assert large.stats.threads_spawned > small.stats.threads_spawned


def test_scale_scales_work():
    small = benchmark("352.nab").run(threads=2, scale=0.5)
    large = benchmark("352.nab").run(threads=2, scale=2.0)
    assert large.stats.total_blocks > 2 * small.stats.total_blocks


def test_spec_benchmarks_are_mostly_thread_induced():
    """The Figure 17 cluster: SPEC OMP entries lean on thread input."""
    thread_dominant = 0
    for bench in SPEC_OMP.values():
        _, trms_db, _ = bench.profile(threads=4, scale=0.8)
        thread_pct, _ = induced_split(trms_db)
        if thread_pct >= 69.0:
            thread_dominant += 1
    assert thread_dominant >= 10


def test_external_dominant_benchmarks_exist():
    _, trms_db, _ = benchmark("blackscholes").profile(threads=4, scale=1.0)
    thread_pct, external_pct = induced_split(trms_db)
    assert external_pct > thread_pct


def test_dedup_pipeline_mixes_both_kinds():
    _, trms_db, _ = benchmark("dedup").profile(threads=4, scale=1.0)
    thread_pct, external_pct = induced_split(trms_db)
    assert thread_pct > 0 and external_pct > 0


def test_pairwise_cost_scales_quadratically():
    def blocks(n):
        scenario = kernels.pairwise_forces(2, n, iters=1)
        machine = scenario.run()
        return machine.stats.total_blocks

    assert blocks(40) / blocks(20) > 3.0


def test_gather_locked_variant_acquires_locks():
    from repro.tools import Nulgrind

    class LockCounter(Nulgrind):
        def __init__(self):
            super().__init__()
            self.acquires = 0

        def on_lock_acquire(self, thread, lock_id):
            self.acquires += 1

    counter = LockCounter()
    kernels.gather_scatter(2, 16, 10, locked=True).run(tools=EventBus([counter]))
    assert counter.acquires > 0


def test_dp_matrix_output_is_deterministic():
    a = kernels.dp_matrix(2, 8, 8)
    b = kernels.dp_matrix(2, 8, 8)
    ma, mb = a.run(), b.run()
    base = kernels.SRC_BASE
    stride = 8
    assert ma.memory_block(base, 64) == mb.memory_block(base, 64)
