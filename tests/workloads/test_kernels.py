"""Direct unit tests for the kernel templates and their barrier."""

import pytest

from repro.core import EventBus, TrmsProfiler
from repro.tools import Helgrind
from repro.vm import Machine, assemble
from repro.workloads import kernels


def test_barrier_synchronises_iterations():
    """Without the barrier, a fast worker could lap a slow one; with it,
    each ping-pong iteration sees the previous one's writes — verified
    through the stencil's final values being schedule-independent."""
    results = []
    for timeslice in (2, 7, 50):
        scenario = kernels.stencil_sweep(3, 30, iters=4, radius=1)
        machine = scenario.run(timeslice=timeslice)
        src = machine.memory_block(kernels.SRC_BASE, 30)
        dst = machine.memory_block(kernels.DST_BASE, 30)
        results.append((src, dst))
    assert results[0] == results[1] == results[2]


def test_barrier_degenerate_single_thread():
    scenario = kernels.stencil_sweep(1, 20, iters=3)
    machine = scenario.run(timeslice=5)
    assert machine.stats.total_blocks > 0


def test_barrier_absent_for_single_iteration():
    scenario = kernels.task_loop(3, 9, 4, iters=1)
    assert "barrier" not in scenario.asm
    scenario.run()


def test_barrier_present_for_multi_iteration_pools():
    scenario = kernels.stencil_sweep(3, 20, iters=2)
    assert "func barrier" in scenario.asm
    helgrind = Helgrind()
    scenario.run(tools=EventBus([helgrind]), timeslice=3)
    assert helgrind.report()["races"] == []


def test_allgather_reads_span_all_strips():
    scenario = kernels.allgather_sweep(4, 64, iters=2, samples=16)
    trms = TrmsProfiler(keep_activations=True)
    scenario.run(tools=EventBus([trms]), timeslice=9)
    regions = [a for a in trms.db.activations if a.routine == "work_region"]
    assert len(regions) == 8
    # second-iteration regions absorb other workers' writes
    induced = [a.induced_thread for a in regions]
    assert sum(induced) > 0


def test_tree_build_search_depth_is_logarithmic():
    scenario = kernels.tree_build(2, 256, 20)
    trms = TrmsProfiler(keep_activations=True)
    scenario.run(tools=EventBus([trms]))
    searches = [a for a in trms.db.activations if a.routine == "search"]
    assert searches
    # outermost searches read at most ~log2(256)+1 cells
    assert max(a.size for a in searches) <= 10


def test_monte_carlo_externals_load_portfolio():
    scenario = kernels.monte_carlo(2, 12, 5, externals=True)
    trms = TrmsProfiler(keep_activations=True)
    scenario.run(tools=EventBus([trms]))
    assert trms.db.total_induced()[1] >= 12   # every path parameter


def test_device_filter_drains_full_image():
    scenario = kernels.device_filter(3, 48)
    machine = scenario.run(timeslice=7)
    assert len(machine.devices["image_out"].values) == 48


def test_reduction_results_are_deterministic():
    first = kernels.reduction_kernel(3, 60).run(timeslice=4)
    second = kernels.reduction_kernel(3, 60).run(timeslice=19)
    base = kernels.OUT_BASE
    assert first.memory_block(base, 3) == second.memory_block(base, 3)


def test_pool_asm_worker_contract_registers_preserved():
    """The skeleton's reserved registers survive a work_region that
    clobbers everything else — verified by iteration completion."""
    work = """
    func work_region:
        const r0, 1
        const r1, 2
        const r2, 3
        const r3, 4
        const r4, 5
        const r5, 6
        const r6, 7
        const r7, 8
        const r8, 9
        const r10, 11
        const r11, 12
        const r12, 13
        const r13, 14
        const r14, 15
        const r1, 999
        add r1, r15, r9          ; index + iteration still intact
        const r2, 2000
        add r2, r2, r15
        store r2, 0, r1
        ret
    """
    fill = """
    func fill:
        ret
    """
    asm = kernels.pool_asm(3, 4, work, fill)
    machine = Machine(assemble(asm), timeslice=3)
    machine.run()
    # final iteration (r9 = 3) recorded per worker: index + 3
    assert machine.memory_block(2000, 3) == [0 + 3, 1 + 3, 2 + 3]
