"""Server behaviour: lifecycle, idempotency, rejection paths, HTTP."""

import json
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import (
    ProfileServer,
    ServiceClient,
    ServiceError,
    recv_frame,
)

from .util import profile_dump_bytes, running_server


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def spool_files(server, tenant):
    spool = os.path.join(server.tenants.path(tenant), "spool")
    if not os.path.isdir(spool):
        return []
    return os.listdir(spool)


def test_ping_and_stats_on_one_connection(tmp_path):
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port) as client:
            assert client.ping()["ok"] is True
            stats = client.stats()
            assert stats["queue_depth"] == 0
            assert stats["jobs_in_flight"] == 0
            assert stats["draining"] is False
            assert client.tenants() == []


def test_put_wait_ingests_and_is_queryable(tmp_path):
    dump = profile_dump_bytes({"alpha": lambda n: 2 * n})
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port, tenant="web") as client:
            reply = client.put_bytes(dump, run_id="run-1", git_sha="abc",
                                     timestamp="2026-08-01T00:00:00+00:00",
                                     wait=True)
            assert reply["status"] == "done"
            assert reply["run_id"] == "run-1"
            assert reply["duplicate"] is False
            runs = client.runs()
            assert [run["run_id"] for run in runs] == ["run-1"]
            assert runs[0]["git_sha"] == "abc"
            job = client.job(reply["job"])
            assert job["status"] == "done"
            assert client.tenants() == ["web"]
        # the spooled artefact is removed once the job is terminal
        assert wait_for(lambda: spool_files(server, "web") == [])


def test_duplicate_upload_rejected_at_door(tmp_path):
    dump = profile_dump_bytes({"alpha": lambda n: 2 * n})
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port) as client:
            first = client.put_bytes(dump, wait=True)
            assert first["status"] == "done"
            again = client.put_bytes(dump)
            assert again["duplicate"] is True
            assert again["status"] == "duplicate"
            assert again["run_id"] == first["run_id"]
            # the duplicate never reached the spool or the queue (the
            # first upload's spool file is removed once its job is done)
            assert wait_for(lambda: spool_files(server, "default") == [])
            assert len(client.runs()) == 1
        found = server.registry.find("service.uploads.duplicate")
        assert found and found[0]["value"] == 1


def test_duplicate_by_explicit_run_id(tmp_path):
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port) as client:
            one = profile_dump_bytes({"a": lambda n: n})
            other = profile_dump_bytes({"b": lambda n: n * n})
            client.put_bytes(one, run_id="same", wait=True)
            reply = client.put_bytes(other, run_id="same")
            assert reply["duplicate"] is True
            assert len(client.runs()) == 1


def test_malformed_envelope_fails_job_with_recorded_error(tmp_path):
    payload = b'{"schema": "bogus", "metrics": {}}\n'
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port) as client:
            reply = client.put_bytes(payload, wait=True)
            assert reply["status"] == "failed"
            assert "repro-bench/1" in reply["error"]
            assert reply["attempts"] == 2          # default: one retry
            assert client.runs() == []
        assert wait_for(lambda: spool_files(server, "default") == [])
        found = server.registry.find("service.jobs.failed")
        assert found and found[0]["value"] == 1


def test_empty_payload_rejected(tmp_path):
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port) as client:
            with pytest.raises(ServiceError, match="empty upload"):
                client.put_bytes(b"")


def test_unknown_op_keeps_connection_alive(tmp_path):
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client.request({"op": "nope"})
            assert client.ping()["ok"] is True


def test_invalid_tenant_rejected(tmp_path):
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port,
                           tenant="../escape") as client:
            with pytest.raises(ServiceError, match="invalid tenant"):
                client.put_bytes(b"data")
        assert not (tmp_path / "escape").exists()


def test_garbage_frame_gets_error_reply_and_close(tmp_path):
    with running_server(tmp_path) as server:
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5.0)
        try:
            sock.sendall(b"XXXXJUNKJUNKJUNKJUNK")
            header, _payload = recv_frame(sock)
            assert header["ok"] is False
            assert "magic" in header["error"]
            # the server hangs up: clean EOF or a reset, nothing more
            try:
                assert sock.recv(1) == b""
            except ConnectionResetError:
                pass
        finally:
            sock.close()


def test_queue_full_pushes_back(tmp_path):
    release = threading.Event()
    with running_server(tmp_path, workers=1, capacity=1) as server:
        original = server.queue.handler

        def blocking(job):
            release.wait(10.0)
            return original(job)

        server.queue.handler = blocking
        try:
            with ServiceClient(server.host, server.port) as client:
                client.put_bytes(profile_dump_bytes({"a": lambda n: n}))
                assert wait_for(lambda: server.queue.in_flight() == 1
                                and server.queue.depth() == 0)
                client.put_bytes(profile_dump_bytes({"b": lambda n: n}))
                with pytest.raises(ServiceError) as raised:
                    client.put_bytes(profile_dump_bytes({"c": lambda n: n}))
                assert raised.value.header["status"] == "rejected"
                assert raised.value.header["reason"] == "queue_full"
        finally:
            release.set()
        found = server.registry.find("service.uploads.rejected",
                                     reason="queue_full")
        assert found and found[0]["value"] == 1


def test_stop_drains_queued_jobs(tmp_path):
    server = ProfileServer(str(tmp_path / "tenants"), workers=1)
    server.start()
    try:
        with ServiceClient(server.host, server.port) as client:
            for index in range(5):
                client.put_bytes(
                    profile_dump_bytes({f"r{index}": lambda n: n}),
                    run_id=f"run-{index}")
        assert server.stop() is True
    finally:
        server.stop()
    # every accepted upload was analysed before shutdown completed
    store = server.tenants.store("default")
    try:
        assert sorted(info.run_id for info in store.runs()) == [
            f"run-{index}" for index in range(5)]
    finally:
        store.close()


def test_shutdown_op_stops_accepting_connections(tmp_path):
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port) as client:
            reply = client.shutdown()
            assert reply["ok"] is True

        def refused():
            try:
                sock = socket.create_connection(
                    (server.host, server.port), timeout=0.2)
            except OSError:
                return True
            sock.close()
            return False

        assert wait_for(refused)


def test_sigterm_drains_in_flight_jobs(tmp_path):
    old_term = signal.getsignal(signal.SIGTERM)
    old_int = signal.getsignal(signal.SIGINT)
    server = ProfileServer(str(tmp_path / "tenants"), workers=1)
    server.start()
    try:
        server.install_signal_handlers()
        original = server.queue.handler

        def slow(job):
            time.sleep(0.2)
            return original(job)

        server.queue.handler = slow
        with ServiceClient(server.host, server.port) as client:
            client.put_bytes(profile_dump_bytes({"a": lambda n: n}),
                             run_id="inflight")
        assert wait_for(lambda: server.queue.in_flight() == 1)
        threading.Timer(0.05, os.kill, (os.getpid(), signal.SIGTERM)).start()
        assert server.serve_forever() is True       # drained, not dropped
        store = server.tenants.store("default")
        try:
            assert store.has_run("inflight")
        finally:
            store.close()
    finally:
        server.stop()
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)


def test_http_fallback_serves_dashboards(tmp_path):
    dump = profile_dump_bytes({"alpha": lambda n: 2 * n})
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port, tenant="web") as client:
            client.put_bytes(dump, run_id="run-1", wait=True)
        base = f"http://{server.host}:{server.port}"
        index = urllib.request.urlopen(f"{base}/").read().decode()
        assert "web" in index
        stats = json.loads(urllib.request.urlopen(f"{base}/stats").read())
        assert stats["tenants"] == ["web"]
        runs = json.loads(
            urllib.request.urlopen(f"{base}/web/runs").read())
        assert [run["run_id"] for run in runs] == ["run-1"]
        html = urllib.request.urlopen(f"{base}/web").read().decode()
        assert "web" in html and html.lstrip().startswith("<!")
        with pytest.raises(urllib.error.HTTPError) as raised:
            urllib.request.urlopen(f"{base}/No-Such-Tenant")
        assert raised.value.code == 404
