"""Job queue semantics: capacity, retries, timeouts, drain, close."""

import threading
import time

import pytest

from repro.service import (
    DONE,
    FAILED,
    QUEUED,
    Job,
    JobQueue,
    QueueClosed,
    QueueFull,
)


def make_job(queue, kind="noop", params=None):
    return Job(queue.next_job_id(), "default", kind, "", params or {})


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_jobs_run_and_record_result():
    seen = []

    def handler(job):
        seen.append(job.kind)
        return {"kind": job.kind}

    queue = JobQueue(handler, workers=2)
    try:
        jobs = [make_job(queue, kind=f"k{i}") for i in range(4)]
        for job in jobs:
            queue.submit(job)
        for job in jobs:
            assert job.done_event.wait(5.0)
            assert job.status == DONE
            assert job.result == {"kind": job.kind}
            assert job.snapshot()["status"] == DONE
        assert sorted(seen) == ["k0", "k1", "k2", "k3"]
    finally:
        queue.close()


def test_capacity_overflow_raises_queue_full():
    release = threading.Event()

    def handler(job):
        release.wait(5.0)
        return {}

    queue = JobQueue(handler, workers=1, capacity=2)
    try:
        queue.submit(make_job(queue))
        # Wait until the worker holds the first job, then fill the queue.
        assert wait_for(lambda: queue.in_flight() == 1 and queue.depth() == 0)
        queue.submit(make_job(queue))
        queue.submit(make_job(queue))
        with pytest.raises(QueueFull):
            queue.submit(make_job(queue))
    finally:
        release.set()
        queue.close()


def test_failed_job_is_retried():
    attempts = []

    def handler(job):
        attempts.append(job.attempts)
        if len(attempts) == 1:
            raise RuntimeError("flake")
        return {}

    queue = JobQueue(handler, workers=1, retries=1)
    try:
        job = make_job(queue)
        queue.submit(job)
        assert job.done_event.wait(5.0)
        assert job.status == DONE
        assert job.error is None
        assert len(attempts) == 2
    finally:
        queue.close()


def test_exhausted_retries_marks_failed():
    def handler(job):
        raise RuntimeError("always broken")

    queue = JobQueue(handler, workers=1, retries=1)
    try:
        job = make_job(queue)
        queue.submit(job)
        assert job.done_event.wait(5.0)
        assert job.status == FAILED
        assert "always broken" in job.error
        assert job.attempts == 2
    finally:
        queue.close()


def test_queue_wait_timeout_fails_stale_job_without_running():
    ran = []
    release = threading.Event()

    def handler(job):
        if job.kind == "blocker":
            release.wait(5.0)
        else:
            ran.append(job.job_id)
        return {}

    queue = JobQueue(handler, workers=1, timeout=0.05)
    try:
        queue.submit(make_job(queue, kind="blocker"))
        stale = make_job(queue)
        queue.submit(stale)
        time.sleep(0.2)
        release.set()
        assert stale.done_event.wait(5.0)
        assert stale.status == FAILED
        assert "timed out" in stale.error
        assert stale.job_id not in ran
    finally:
        queue.close()


def test_status_lookup():
    queue = JobQueue(lambda job: {}, workers=1)
    try:
        job = make_job(queue)
        queue.submit(job)
        assert job.done_event.wait(5.0)
        found = queue.status(job.job_id)
        assert found is job
        assert found.status == DONE
        assert queue.status("j999999") is None
    finally:
        queue.close()


def test_drain_waits_for_in_flight_jobs():
    started = threading.Event()

    def handler(job):
        started.set()
        time.sleep(0.2)
        return {"slept": True}

    queue = JobQueue(handler, workers=1)
    job = make_job(queue)
    queue.submit(job)
    assert started.wait(5.0)
    assert queue.drain(deadline=5.0) is True
    assert job.status == DONE
    assert job.result == {"slept": True}
    with pytest.raises(QueueClosed):
        queue.submit(make_job(queue))


def test_failed_drain_leaves_pending_jobs_unrun():
    release = threading.Event()
    ran = []

    def handler(job):
        if job.kind == "blocker":
            release.wait(5.0)
        ran.append(job.kind)
        return {}

    queue = JobQueue(handler, workers=1)
    queue.submit(make_job(queue, kind="blocker"))
    assert wait_for(lambda: queue.in_flight() == 1)
    pending = make_job(queue, kind="pending")
    queue.submit(pending)
    # Unblock the in-flight job shortly after the drain deadline expires.
    threading.Timer(0.3, release.set).start()
    assert queue.drain(deadline=0.1) is False
    assert wait_for(lambda: "blocker" in ran)
    time.sleep(0.1)
    # The queued job must never execute after a failed drain.
    assert pending.status == QUEUED
    assert "pending" not in ran
    queue.close()


def test_close_is_idempotent():
    queue = JobQueue(lambda job: {}, workers=1)
    queue.close()
    queue.close()
    with pytest.raises(QueueClosed):
        queue.submit(make_job(queue))


def test_observer_sees_lifecycle():
    events = []

    def observer(what, job):
        events.append(what)

    queue = JobQueue(lambda job: {}, workers=1, observer=observer)
    try:
        job = make_job(queue)
        queue.submit(job)
        assert job.done_event.wait(5.0)
        assert wait_for(lambda: DONE in events)
        assert QUEUED in events
    finally:
        queue.close()
