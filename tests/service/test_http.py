"""The HTTP fallback: routes, verb handling, /metrics, /slo."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceClient
from tools.check_metrics import check_metrics_text

from .util import profile_dump_bytes, running_server


def raw_http(server, method, path="/"):
    """One raw request, returned as (status, headers, body)."""
    sock = socket.create_connection((server.host, server.port), timeout=10.0)
    try:
        sock.sendall(f"{method} {path} HTTP/1.1\r\n"
                     f"Host: test\r\n\r\n".encode("utf-8"))
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    finally:
        sock.close()
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("utf-8", "replace").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body


def test_index_stats_tenant_routes(tmp_path):
    dump = profile_dump_bytes({"alpha": lambda n: 2 * n})
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port, tenant="web") as client:
            client.put_bytes(dump, run_id="run-1", wait=True)
        base = f"http://{server.host}:{server.port}"
        index = urllib.request.urlopen(f"{base}/").read().decode()
        assert "web" in index and "/metrics" in index and "/slo" in index
        assert "SLO burn" in index          # the per-tenant burn table
        stats = json.loads(urllib.request.urlopen(f"{base}/stats").read())
        assert stats["tenants"] == ["web"]
        assert "web" in stats["slo"]
        report = urllib.request.urlopen(f"{base}/web/report").read().decode()
        assert "alpha" in report
        alerts = json.loads(urllib.request.urlopen(f"{base}/web/alerts").read())
        assert isinstance(alerts, list)


def test_unknown_tenant_and_view_are_404(tmp_path):
    with running_server(tmp_path) as server:
        base = f"http://{server.host}:{server.port}"
        with pytest.raises(urllib.error.HTTPError) as raised:
            urllib.request.urlopen(f"{base}/No-Such-Tenant")
        assert raised.value.code == 404
        with ServiceClient(server.host, server.port, tenant="web") as client:
            client.ping()
            client.runs()       # creates the tenant store
        with pytest.raises(urllib.error.HTTPError) as raised:
            urllib.request.urlopen(f"{base}/web/nonsense")
        assert raised.value.code == 404


def test_bad_request_line_is_400(tmp_path):
    with running_server(tmp_path) as server:
        sock = socket.create_connection((server.host, server.port),
                                        timeout=10.0)
        try:
            sock.sendall(b"GET \r\n\r\n")    # verb but no target
            data = sock.recv(65536)
        finally:
            sock.close()
        assert data.split(b"\r\n", 1)[0] == b"HTTP/1.1 400 Bad Request"


def test_head_returns_headers_without_body(tmp_path):
    with running_server(tmp_path) as server:
        get_status, get_headers, get_body = raw_http(server, "GET", "/stats")
        status, headers, body = raw_http(server, "HEAD", "/stats")
        assert get_status == status == 200
        assert body == b""
        assert int(headers["content-length"]) == len(get_body)
        assert headers["content-type"] == get_headers["content-type"]


@pytest.mark.parametrize("method", ["POST", "PUT", "DELETE", "OPTIONS",
                                    "PATCH"])
def test_unsupported_verbs_answer_405(tmp_path, method):
    """The _peek_kind fix: non-GET verbs must not hit the wire decoder."""
    with running_server(tmp_path) as server:
        status, headers, _body = raw_http(server, method, "/stats")
        assert status == 405
        assert headers["allow"] == "GET, HEAD"


def test_metrics_route_renders_valid_prometheus(tmp_path):
    dump = profile_dump_bytes({"alpha": lambda n: 2 * n})
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port, tenant="web") as client:
            client.put_bytes(dump, wait=True)
        status, headers, body = raw_http(server, "GET", "/metrics")
    assert status == 200
    assert headers["content-type"].startswith("text/plain; version=0.0.4")
    text = body.decode("utf-8")
    assert check_metrics_text(text) == []
    assert "service_requests_total" in text
    assert "service_ingest_ms_bucket" in text
    assert 'le="+Inf"' in text
    # the SLO snapshot is exported as gauges alongside the raw registry
    assert 'service_slo_latency_p99_ms{tenant="web"}' in text


def test_slo_route_reports_burn_state(tmp_path):
    dump = profile_dump_bytes({"alpha": lambda n: 2 * n})
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port, tenant="web") as client:
            client.put_bytes(dump, wait=True)
        base = f"http://{server.host}:{server.port}"
        slo = json.loads(urllib.request.urlopen(f"{base}/slo").read())
    assert set(slo) == {"web"}
    state = slo["web"]
    assert state["ingests"] == 1
    assert state["failed"] == 0 and state["shed"] == 0
    assert state["latency_ms"]["p99"] >= state["latency_ms"]["p50"] > 0
    assert set(state["burn"]) == {"latency_p99", "error", "shed"}
