"""Tenant slug validation and per-tenant store isolation."""

import os

import pytest

from repro.observatory import HISTORY_FILENAME, ingest_bytes
from repro.service import DEFAULT_TENANT, TenantError, TenantManager, validate_tenant

from .util import profile_dump_bytes


@pytest.mark.parametrize("name", [
    "default",
    "web-frontend",
    "t0.x_y",
    "a",
    "0numeric",
    "a" * 64,
])
def test_valid_tenant_names(name):
    assert validate_tenant(name) == name


@pytest.mark.parametrize("name", [
    "",
    "Web",
    "UPPER",
    "-leading-dash",
    ".leading-dot",
    "_leading-underscore",
    "has space",
    "a/b",
    "../escape",
    "a..b",
    "a" * 65,
    None,
    42,
])
def test_invalid_tenant_names(name):
    with pytest.raises(TenantError):
        validate_tenant(name)


def test_traversal_never_touches_filesystem(tmp_path):
    manager = TenantManager(str(tmp_path / "tenants"))
    try:
        with pytest.raises(TenantError):
            manager.path("../outside")
        with pytest.raises(TenantError):
            manager.store("../outside")
        assert not (tmp_path / "outside").exists()
    finally:
        manager.close()


def test_stores_are_isolated(tmp_path):
    manager = TenantManager(str(tmp_path / "tenants"))
    try:
        alpha = manager.store("alpha")
        beta = manager.store("beta")
        assert alpha is not beta
        ingest_bytes(alpha, profile_dump_bytes({"r": lambda n: n}),
                     run_id="run-a")
        assert alpha.has_run("run-a")
        assert not beta.has_run("run-a")
        assert len(beta) == 0
        assert (tmp_path / "tenants" / "alpha" / HISTORY_FILENAME).exists()
        assert (tmp_path / "tenants" / "beta" / HISTORY_FILENAME).exists()
    finally:
        manager.close()


def test_store_is_cached_per_tenant(tmp_path):
    manager = TenantManager(str(tmp_path / "tenants"))
    try:
        assert manager.store("alpha") is manager.store("alpha")
        assert manager.lock("alpha") is manager.lock("alpha")
        assert manager.lock("alpha") is not manager.lock("beta")
    finally:
        manager.close()


def test_gc_is_per_tenant(tmp_path):
    manager = TenantManager(str(tmp_path / "tenants"))
    try:
        alpha = manager.store("alpha")
        beta = manager.store("beta")
        for index in range(3):
            dump = profile_dump_bytes({"r": lambda n: (index + 1) * n})
            ingest_bytes(alpha, dump, run_id=f"a-{index}",
                         timestamp=f"2026-08-0{index + 1}T00:00:00+00:00")
            ingest_bytes(beta, dump, run_id=f"b-{index}",
                         timestamp=f"2026-08-0{index + 1}T00:00:00+00:00")
        assert alpha.gc(keep=1) == 2
        assert len(alpha) == 1
        assert len(beta) == 3            # untouched by alpha's compaction
        assert [info.run_id for info in beta.runs()] == ["b-0", "b-1", "b-2"]
    finally:
        manager.close()


def test_tenants_listing_unions_disk_and_memory(tmp_path):
    root = tmp_path / "tenants"
    manager = TenantManager(str(root))
    try:
        manager.store("opened")
        os.makedirs(root / "ondisk")
        os.makedirs(root / "NotATenant")      # invalid slug: ignored
        (root / "afile").write_text("not a dir")
        assert manager.tenants() == ["ondisk", "opened"]
        assert DEFAULT_TENANT not in manager.tenants()
    finally:
        manager.close()
