"""Framing tests: round trips, ceilings, truncation, garbage."""

import socket
import struct

import pytest

from repro.service import MAGIC, MAX_HEADER_BYTES, WireError, recv_frame, send_frame


def pair():
    return socket.socketpair()


def test_round_trip_header_and_payload():
    left, right = pair()
    try:
        send_frame(left, {"op": "put", "tenant": "web"}, b"\x00\x01binary")
        header, payload = recv_frame(right)
        assert header == {"op": "put", "tenant": "web"}
        assert payload == b"\x00\x01binary"
    finally:
        left.close()
        right.close()


def test_empty_payload_round_trip():
    left, right = pair()
    try:
        send_frame(left, {"op": "ping"})
        header, payload = recv_frame(right)
        assert header["op"] == "ping"
        assert payload == b""
    finally:
        left.close()
        right.close()


def test_many_frames_on_one_connection():
    left, right = pair()
    try:
        for index in range(5):
            send_frame(left, {"seq": index}, bytes([index]) * index)
        for index in range(5):
            header, payload = recv_frame(right)
            assert header["seq"] == index
            assert payload == bytes([index]) * index
    finally:
        left.close()
        right.close()


def test_clean_eof_returns_none_when_allowed():
    left, right = pair()
    left.close()
    try:
        assert recv_frame(right, eof_ok=True) is None
        with pytest.raises(WireError):
            recv_frame(right)
    finally:
        right.close()


def test_bad_magic_raises():
    left, right = pair()
    try:
        left.sendall(struct.pack("!4sII", b"HTTP", 2, 0) + b"{}")
        with pytest.raises(WireError, match="magic"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_oversized_header_rejected_before_allocation():
    left, right = pair()
    try:
        left.sendall(struct.pack("!4sII", MAGIC, MAX_HEADER_BYTES + 1, 0))
        with pytest.raises(WireError, match="header length"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_truncated_frame_raises():
    left, right = pair()
    try:
        left.sendall(struct.pack("!4sII", MAGIC, 10, 0) + b"{}")
        left.close()
        with pytest.raises(WireError, match="mid-frame"):
            recv_frame(right)
    finally:
        right.close()


def test_non_object_header_raises():
    left, right = pair()
    try:
        body = b"[1, 2]"
        left.sendall(struct.pack("!4sII", MAGIC, len(body), 0) + body)
        with pytest.raises(WireError, match="not a JSON object"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_send_refuses_oversized_payload():
    left, right = pair()
    try:
        with pytest.raises(WireError, match="payload too large"):
            send_frame(left, {"op": "put"},
                       b"\x00" * ((64 << 20) + 1))
    finally:
        left.close()
        right.close()
