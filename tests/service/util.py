"""Shared helpers: running servers and synthetic upload artefacts."""

import contextlib
import io

from repro.core import ProfileDatabase
from repro.farm import save_profile
from repro.service import ProfileServer

SIZES = (4, 8, 16, 32, 64)


def profile_dump_bytes(routines, sizes=SIZES):
    """A ``repro-profile 1`` dump (bytes) of synthetic cost functions."""
    db = ProfileDatabase()
    for name, cost_fn in routines.items():
        for size in sizes:
            db.add_activation(name, 1, size, int(cost_fn(size)))
    stream = io.StringIO()
    save_profile(db, stream)
    return stream.getvalue().encode("utf-8")


def drifting_dumps(runs=4, degrade_from=2):
    """Dump bytes per run: ``victim`` turns quadratic at ``degrade_from``."""
    dumps = []
    for index in range(runs):
        quadratic = index >= degrade_from
        dumps.append(profile_dump_bytes({
            "stable": lambda n: 10 * n,
            "victim": (lambda n: n * n) if quadratic else (lambda n: 3 * n),
        }))
    return dumps


@contextlib.contextmanager
def running_server(tmp_path, **kwargs):
    """A started :class:`ProfileServer` over ``tmp_path/tenants``."""
    server = ProfileServer(str(tmp_path / "tenants"), **kwargs)
    server.start()
    try:
        yield server
    finally:
        server.stop()
