"""The acceptance criterion: online ingestion == offline ingestion.

Profiles uploaded through the server must produce *byte-identical*
observatory rows — and identical drift alerts — to the same files
ingested with ``repro observe ingest``, under 100 concurrent clients
with zero dropped and zero duplicated runs.
"""

import io
import os
import threading

from repro import telemetry
from repro.cli import main as cli_main
from repro.observatory import HISTORY_FILENAME, ObservatoryStore, detect_drift
from repro.reporting.tracing import assemble_traces, load_trace_spans
from repro.service import ServiceClient, build_envelope, slap

from .util import profile_dump_bytes, running_server

CLIENTS = 100
BASE_MTIME = 1_700_000_000


def write_fleet(tmp_path, count=CLIENTS, degrade_from=None):
    """``count`` distinct dump files with strictly increasing mtimes.

    ``victim`` turns quadratic from index ``degrade_from`` on (default:
    the last fifth of the runs), so drift alerts have something to say.
    """
    if degrade_from is None:
        degrade_from = count - max(1, count // 5)
    tmp_path.mkdir(parents=True, exist_ok=True)
    paths = []
    for index in range(count):
        quadratic = index >= degrade_from
        dump = profile_dump_bytes({
            "stable": lambda n: 10 * n + index,       # distinct bytes per run
            "victim": (lambda n: n * n) if quadratic else (lambda n: 3 * n),
        })
        path = tmp_path / f"run{index:03d}.prof"
        path.write_bytes(dump)
        os.utime(path, (BASE_MTIME + index, BASE_MTIME + index))
        paths.append(str(path))
    return paths


def history_rows(root):
    """Sorted data rows of a store's ``history.jsonl`` (meta line dropped)."""
    with open(os.path.join(root, HISTORY_FILENAME), "rb") as stream:
        lines = stream.read().splitlines()
    return sorted(line for line in lines if b'"type": "run"' in line)


def test_server_matches_observe_ingest_under_100_clients(tmp_path):
    paths = write_fleet(tmp_path / "dumps")

    # offline: the one-shot CLI, one process-wide store
    offline_root = str(tmp_path / "offline")
    out = io.StringIO()
    code = cli_main(["observe", "ingest", *paths, "--store", offline_root],
                    out=out)
    assert code == 0, out.getvalue()

    # online: one upload per concurrent client, against one tenant —
    # with tracing ON, so the byte-identity assertions below also prove
    # that trace contexts never leak into the profile store
    replies = []
    failures = []
    tele_root = str(tmp_path / "tele")
    with telemetry.session(tele_root):
        with running_server(tmp_path, workers=4,
                            capacity=2 * CLIENTS) as server:
            barrier = threading.Barrier(CLIENTS)

            def upload(path):
                try:
                    with ServiceClient(server.host, server.port,
                                       tenant="fleet") as client:
                        barrier.wait(timeout=30.0)
                        replies.append(client.put_file(path, wait=True))
                except Exception as error:  # noqa: BLE001 - for the assert
                    failures.append(f"{path}: {error}")

            threads = [threading.Thread(target=upload, args=(path,))
                       for path in paths]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            online_root = server.tenants.path("fleet")

    assert failures == []
    assert len(replies) == CLIENTS                       # zero dropped
    assert all(reply["status"] == "done" for reply in replies)
    assert not any(reply["duplicate"] for reply in replies)
    assert len({reply["run_id"] for reply in replies}) == CLIENTS

    # byte-identical rows (order differs under concurrency; content not)
    offline = history_rows(offline_root)
    online = history_rows(online_root)
    assert len(offline) == CLIENTS
    assert online == offline

    # and identical alert feeds
    with ObservatoryStore(offline_root) as store:
        offline_alerts = detect_drift(store)
    with ObservatoryStore(online_root) as store:
        online_alerts = detect_drift(store)
    assert offline_alerts == online_alerts
    assert any(alert.routine == "victim" for alert in offline_alerts)

    # every upload left one complete cross-layer trace in the log
    traces = assemble_traces(load_trace_spans([tele_root]))
    puts = [trace for trace in traces.values()
            if any(span.name == "client.put" for span in trace.spans)]
    assert len(puts) == CLIENTS
    for trace in puts:
        assert trace.is_single_tree()
        assert len(trace.spans) >= 6
        names = {span.name for span in trace.spans}
        assert {"client.put", "server.request", "server.queue_wait",
                "server.execute", "server.ingest"} <= names


def test_slap_swarm_counts_and_envelope(tmp_path):
    with running_server(tmp_path, workers=4, capacity=512) as server:
        report = slap(server.host, server.port, tenant="swarm",
                      clients=8, uploads_per_client=4,
                      duplicate_ratio=0.5, seed=7, wait=True)
        store_root = server.tenants.path("swarm")

    assert report.errors == 0
    assert report.rejected == 0
    assert report.accepted + report.duplicates == report.uploads
    assert report.duplicates > 0        # ratio 0.5 over 24 eligible sends
    assert len(report.latencies_ms) == report.uploads
    assert report.p99_ms >= report.p50_ms > 0.0

    # the store holds exactly the accepted (unique) runs: no duplicates
    with ObservatoryStore(store_root) as store:
        assert len(store) == report.accepted

    rendered = report.render()
    assert "accepted" in rendered and "p99" in rendered

    # the swarm pulled the server's SLO state for its tenant post-run
    assert report.slo is not None
    assert report.slo["ingests"] >= report.accepted
    assert report.slo["error_rate"] == 0.0
    assert "server slo burn" in rendered

    envelope = build_envelope(report, run_id="slap-test", git_sha="sha")
    assert envelope["schema"] == "repro-bench/1"
    assert envelope["bench"] == "service_slap"
    assert envelope["metrics"]["accepted"] == report.accepted
    assert envelope["metrics"]["slo"]["error_rate"] == 0.0
    gate = envelope["metrics"]["gate"]
    assert gate["latency_ms"]["put_p99"] == report.p99_ms
    assert gate["throughput"]["uploads_per_s"] == report.uploads_per_second
    assert gate["slo"] == {"error_burn": 0.0, "shed_burn": 0.0}
    assert gate["ratios"] == {}
