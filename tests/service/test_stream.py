"""The ``put_stream`` op: live checkpoints through the service."""

import urllib.request

import pytest

from repro.core import ProfileDatabase
from repro.service import ServiceClient, ServiceError
from repro.streaming import SnapshotWriter
from tools.check_metrics import check_metrics_text

from .util import running_server


def checkpoint_dir(tmp_path, stream_id="cafe0123beef", seqs=1, closed=False):
    """A real checkpoint directory with ``seqs`` emitted snapshots."""
    directory = str(tmp_path / f"ckpt-{stream_id}")
    writer = SnapshotWriter(directory, stream_id)
    db = ProfileDatabase()
    for seq in range(1, seqs + 1):
        for size in (4, 8, 16, 32, 64):
            db.add_activation("hot", 1, size, size * size)
            if seq > 1:
                db.add_activation("late", 1, size, 3 * size)
        writer.emit(db, events_analyzed=1000 * seq, events_behind=40,
                    lag_ms=12.5, events_per_s=50_000.0,
                    closed=closed and seq == seqs,
                    timestamp=f"2026-08-07T00:00:{seq:02d}")
    return directory


def test_put_stream_ingests_and_supersedes(tmp_path):
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port, tenant="web") as client:
            first = checkpoint_dir(tmp_path, seqs=1)
            reply = client.put_stream(first, wait=True)
            assert reply["ok"] and reply["op"] == "put_stream"
            assert reply["run_id"] == "stream-cafe0123beef"
            assert reply["seq"] == 1
            runs = client.runs()
            assert [run["run_id"] for run in runs] == ["stream-cafe0123beef"]

            # checkpoint #2 of the same stream supersedes, not appends
            second = checkpoint_dir(tmp_path, seqs=2, closed=True)
            reply = client.put_stream(second, wait=True)
            assert reply["seq"] == 2
            runs = client.runs()
            assert len(runs) == 1
            assert runs[0]["routines"] == 2          # "late" arrived


def test_put_stream_exposes_streaming_gauges(tmp_path):
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port, tenant="web") as client:
            client.put_stream(checkpoint_dir(tmp_path), wait=True)
        base = f"http://{server.host}:{server.port}"
        text = urllib.request.urlopen(f"{base}/metrics").read().decode()
    assert check_metrics_text(text) == []
    assert 'streaming_checkpoint_lag_ms{tenant="web"} 12.5' in text
    assert 'streaming_events_behind{tenant="web"} 40' in text


def test_put_stream_rejects_bad_requests(tmp_path):
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port, tenant="web") as client:
            with pytest.raises(ServiceError, match="stream id"):
                client.request({"op": "put_stream", "tenant": "web",
                                "stream": {}}, b"profile bytes")
            with pytest.raises(ServiceError, match="empty"):
                client.request({"op": "put_stream", "tenant": "web",
                                "stream": {"id": "abc"}}, b"")


def test_put_stream_respects_explicit_run_id(tmp_path):
    with running_server(tmp_path) as server:
        with ServiceClient(server.host, server.port, tenant="web") as client:
            reply = client.put_stream(checkpoint_dir(tmp_path),
                                      run_id="nightly-live", wait=True)
            assert reply["run_id"] == "nightly-live"
            assert [run["run_id"] for run in client.runs()] == ["nightly-live"]
