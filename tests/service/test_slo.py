"""SLO tracker: windows, quantiles, burn rates, alerts, aging."""

from repro.service import SloTargets, SloTracker


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def tracker(clock, **kwargs):
    kwargs.setdefault("window_seconds", 100.0)
    kwargs.setdefault("slices", 10)
    return SloTracker(clock=clock, **kwargs)


def test_empty_tracker_snapshots_nothing():
    assert tracker(FakeClock()).snapshot() == {}


def test_latency_quantiles_and_counts():
    clock = FakeClock()
    slo = tracker(clock)
    for latency in (1.0, 2.0, 4.0, 8.0, 1000.0):
        slo.record_ingest("web", latency)
    state = slo.snapshot()["web"]
    assert state["ingests"] == 5
    assert state["failed"] == 0 and state["shed"] == 0
    assert state["error_rate"] == 0.0 and state["shed_rate"] == 0.0
    assert state["latency_ms"]["p50"] <= state["latency_ms"]["p95"] \
        <= state["latency_ms"]["p99"]
    assert state["latency_ms"]["p99"] > 100      # dominated by the outlier


def test_error_burn_and_alert():
    clock = FakeClock()
    slo = tracker(clock, targets=SloTargets(p99_ms=1e9, error_budget=0.10))
    for index in range(10):
        slo.record_ingest("web", 1.0, ok=(index > 0))   # 1/10 failed
    state = slo.snapshot()["web"]
    assert state["error_rate"] == 0.1
    assert state["burn"]["error"] == 1.0
    assert "error_burn" in state["alerts"]
    assert "latency_p99_burn" not in state["alerts"]


def test_shed_rate_counts_against_offered():
    clock = FakeClock()
    slo = tracker(clock, targets=SloTargets(p99_ms=1e9, shed_budget=0.5))
    for _ in range(3):
        slo.record_ingest("web", 1.0)
    slo.record_shed("web")
    state = slo.snapshot()["web"]
    assert state["shed"] == 1
    assert state["shed_rate"] == 0.25            # 1 shed / 4 offered
    assert state["burn"]["shed"] == 0.5
    assert state["alerts"] == []


def test_latency_burn_alert():
    clock = FakeClock()
    slo = tracker(clock, targets=SloTargets(p99_ms=10.0))
    slo.record_ingest("web", 500.0)
    state = slo.snapshot()["web"]
    assert state["burn"]["latency_p99"] >= 1.0
    assert "latency_p99_burn" in state["alerts"]


def test_observations_age_out_of_the_window():
    clock = FakeClock()
    slo = tracker(clock)                 # 100s window, 10s slices
    slo.record_ingest("web", 5.0, ok=False)
    clock.advance(50.0)
    slo.record_ingest("web", 5.0)
    assert slo.snapshot()["web"]["ingests"] == 2
    assert slo.snapshot()["web"]["failed"] == 1
    clock.advance(75.0)                  # first ingest now out of window
    state = slo.snapshot()["web"]
    assert state["ingests"] == 1
    assert state["failed"] == 0
    clock.advance(200.0)                 # everything aged out
    state = slo.snapshot()["web"]
    assert state["ingests"] == 0
    assert state["latency_ms"]["p99"] == 0.0
    assert state["alerts"] == []


def test_tenants_are_isolated():
    clock = FakeClock()
    slo = tracker(clock)
    slo.record_ingest("a", 1.0)
    slo.record_ingest("b", 1.0, ok=False)
    snapshot = slo.snapshot()
    assert sorted(snapshot) == ["a", "b"]
    assert snapshot["a"]["failed"] == 0
    assert snapshot["b"]["failed"] == 1
