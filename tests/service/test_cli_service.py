"""CLI surface: ``repro serve`` (subprocess), ``repro slap``, stdin ingest."""

import io
import json
import os
import signal
import subprocess
import sys

import pytest

from repro.cli import main
from repro.observatory import ObservatoryStore
from repro.service import ServiceClient

from .util import profile_dump_bytes, running_server

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class PipedStdin:
    """Just enough of ``sys.stdin`` for ``observe ingest -``."""

    def __init__(self, data: bytes):
        self.buffer = io.BytesIO(data)


def test_observe_ingest_from_stdin(tmp_path, monkeypatch):
    store_dir = str(tmp_path / "obs")
    dump = profile_dump_bytes({"f": lambda n: 7 * n})

    monkeypatch.setattr(sys, "stdin", PipedStdin(dump))
    code, out = run_cli("observe", "ingest", "-", "--store", store_dir,
                        "--run-id", "piped")
    assert code == 0, out
    assert "-: ingested as piped" in out

    # without --run-id the digest of the piped bytes keys idempotency
    monkeypatch.setattr(sys, "stdin", PipedStdin(dump))
    code, out = run_cli("observe", "ingest", "-", "--store", store_dir)
    assert code == 0, out
    monkeypatch.setattr(sys, "stdin", PipedStdin(dump))
    code, out = run_cli("observe", "ingest", "-", "--store", store_dir)
    assert code == 0, out
    assert "already known (skipped)" in out

    with ObservatoryStore(store_dir) as store:
        assert len(store) == 2
        assert store.has_run("piped")


def test_observe_ingest_rejects_double_stdin(tmp_path):
    code, out = run_cli("observe", "ingest", "-", "-",
                        "--store", str(tmp_path / "obs"))
    assert code == 2
    assert "at most once" in out


def test_slap_cli_writes_envelope(tmp_path):
    envelope_path = str(tmp_path / "slap.json")
    with running_server(tmp_path, workers=2, capacity=256) as server:
        code, out = run_cli(
            "slap", "--host", server.host, "--port", str(server.port),
            "--clients", "4", "--uploads", "3", "--duplicate-ratio", "0",
            "--wait", "--json", envelope_path)
    assert code == 0, out
    assert "slap: 4 client(s) x 3 upload(s)" in out
    assert "wrote repro-bench/1 envelope" in out
    with open(envelope_path, "r", encoding="utf-8") as stream:
        envelope = json.load(stream)
    assert envelope["schema"] == "repro-bench/1"
    assert envelope["bench"] == "service_slap"
    assert envelope["metrics"]["accepted"] == 12
    assert envelope["metrics"]["gate"]["latency_ms"]["put_p99"] > 0


def test_slap_cli_unreachable_server_fails(tmp_path):
    # connect failures are tallied per client; a swarm with zero
    # successful uploads is a failed run (exit 1)
    code, out = run_cli("slap", "--port", "1", "--clients", "1",
                        "--uploads", "1")
    assert code == 1
    assert "errors     1" in out


def test_serve_subprocess_sigterm_drains(tmp_path):
    """Boot the real server process, upload, SIGTERM mid-flight, exit 0."""
    root = str(tmp_path / "tenants")
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", root,
         "--workers", "1", "--drain-timeout", "20"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        banner = process.stdout.readline()
        assert banner.startswith("serving on "), banner
        port = int(banner.split()[2].rsplit(":", 1)[1])

        with ServiceClient("127.0.0.1", port) as client:
            assert client.ping()["ok"] is True
            client.put_bytes(profile_dump_bytes({"a": lambda n: n}),
                             run_id="first", wait=True)
            # leave one job in flight, then ask for a graceful stop
            client.put_bytes(profile_dump_bytes({"b": lambda n: n * n}),
                             run_id="second")
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=30.0)
        assert process.returncode == 0, out
        assert "shutdown: drained" in out
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)

    # the in-flight upload was analysed, not dropped
    with ObservatoryStore(os.path.join(root, "default")) as store:
        assert store.has_run("first")
        assert store.has_run("second")


@pytest.mark.parametrize("flag", [("--clients", "0"), ("--uploads", "0")])
def test_slap_cli_validates_counts(flag):
    code, out = run_cli("slap", "--port", "9", *flag)
    assert code == 2
    assert "must be >= 1" in out
