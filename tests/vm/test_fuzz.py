"""Property tests: generated guest programs through the whole stack.

Hypothesis builds random (but well-formed) straight-line and looping
guest programs; the properties check that the assembler accepts what it
should, the machine executes deterministically, and instrumentation is
transparent (native and fully-tooled runs end in identical states).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.tools import TOOL_NAMES, make_tool
from repro.vm import Machine, assemble

REGS = list(range(1, 13))   # leave r0 and r13-r15 out of the fuzz pool


@st.composite
def straightline_program(draw):
    """A random branch-free program of arithmetic, loads and stores."""
    lines = ["func main:"]
    # seed a few registers
    for reg in (1, 2, 3):
        lines.append(f"    const r{reg}, {draw(st.integers(-50, 50))}")
    count = draw(st.integers(min_value=1, max_value=30))
    for _ in range(count):
        op = draw(st.sampled_from(["add", "sub", "mul", "addi", "muli",
                                   "mov", "const", "store", "load"]))
        rd = draw(st.sampled_from(REGS))
        ra = draw(st.sampled_from(REGS))
        rb = draw(st.sampled_from(REGS))
        if op in ("add", "sub", "mul"):
            lines.append(f"    {op} r{rd}, r{ra}, r{rb}")
        elif op in ("addi", "muli"):
            lines.append(f"    {op} r{rd}, r{ra}, {draw(st.integers(-9, 9))}")
        elif op == "mov":
            lines.append(f"    mov r{rd}, r{ra}")
        elif op == "const":
            lines.append(f"    const r{rd}, {draw(st.integers(-99, 99))}")
        elif op == "store":
            addr = draw(st.integers(0, 31))
            lines.append(f"    const r{rd}, {addr}")
            lines.append(f"    store r{rd}, 0, r{ra}")
        elif op == "load":
            addr = draw(st.integers(0, 31))
            lines.append(f"    const r{rd}, {addr}")
            lines.append(f"    load r{ra}, r{rd}, 0")
    lines.append("    ret")
    return "\n".join(lines)


@settings(max_examples=80, deadline=None)
@given(straightline_program())
def test_generated_programs_assemble_and_run(asm):
    machine = Machine(assemble(asm), max_steps=100_000)
    machine.run()
    assert machine.stats.total_blocks >= 1


@settings(max_examples=60, deadline=None)
@given(straightline_program())
def test_generated_programs_are_deterministic(asm):
    program = assemble(asm)
    first = Machine(program, max_steps=100_000)
    second = Machine(program, max_steps=100_000)
    first.run()
    second.run()
    assert first.memory == second.memory
    assert first.stats.total_instructions == second.stats.total_instructions


@settings(max_examples=40, deadline=None)
@given(straightline_program())
def test_instrumentation_transparency_on_generated_programs(asm):
    program = assemble(asm)
    native = Machine(program, max_steps=100_000)
    native.run()
    tools = EventBus([make_tool(name) for name in TOOL_NAMES])
    instrumented = Machine(program, tools=tools, max_steps=100_000)
    instrumented.run()
    assert native.memory == instrumented.memory
    assert native.stats.total_blocks == instrumented.stats.total_blocks


@settings(max_examples=40, deadline=None)
@given(straightline_program())
def test_profilers_agree_on_generated_programs(asm):
    """rms <= trms activation by activation, even on fuzzed guests."""
    program = assemble(asm)
    rms = RmsProfiler(keep_activations=True)
    trms = TrmsProfiler(keep_activations=True)
    Machine(program, tools=EventBus([rms, trms]), max_steps=100_000).run()
    assert len(rms.db.activations) == len(trms.db.activations)
    for rms_record, trms_record in zip(rms.db.activations, trms.db.activations):
        assert rms_record.routine == trms_record.routine
        assert rms_record.size <= trms_record.size
        assert rms_record.cost == trms_record.cost
