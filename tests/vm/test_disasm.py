"""Tests for the disassembler: readable output, reassemblable output."""

import pytest

from repro.core import EventBus, RmsProfiler
from repro.vm import assemble, disassemble, programs
from repro.workloads import kernels


def roundtrip_equivalent(program):
    """Disassembled text must reassemble to the same instruction streams."""
    text = disassemble(program)
    twin = assemble(text, entry=program.entry)
    assert set(twin.functions) == set(program.functions)
    for name, function in program.functions.items():
        assert twin.functions[name].instructions == function.instructions
        assert twin.functions[name].leaders == function.leaders
    return text


def test_simple_roundtrip():
    program = assemble("""
    func main:
        const r1, 5
    top:
        beq r1, r0, end
        addi r1, r1, -1
        jmp top
    end:
        ret
    """)
    text = roundtrip_equivalent(program)
    assert "func main:" in text
    assert "beq r1, r0, L" in text


def test_label_at_end_of_function():
    program = assemble("""
    func main:
        jmp end
    end:
    """)
    text = roundtrip_equivalent(program)
    assert text.rstrip().endswith(":")


@pytest.mark.parametrize("build", [
    programs.figure_1a,
    lambda: programs.producer_consumer(4),
    lambda: programs.merge_sort([3, 1, 2]),
    lambda: programs.matmul(3),
    lambda: kernels.pairwise_forces(3, 12, iters=2),
    lambda: kernels.thread_pipeline(6),
], ids=["fig1a", "prodcons", "mergesort", "matmul", "pairwise", "pipeline"])
def test_real_programs_roundtrip(build):
    roundtrip_equivalent(build().program)


def test_reassembled_program_runs_identically():
    scenario = programs.merge_sort([9, 4, 7, 1, 8, 2])
    original = scenario.program
    twin = assemble(disassemble(original), entry=original.entry)
    from repro.vm import Machine

    first = Machine(original)
    first.poke(programs.DATA_BASE, [9, 4, 7, 1, 8, 2])
    first.run()
    second = Machine(twin)
    second.poke(programs.DATA_BASE, [9, 4, 7, 1, 8, 2])
    second.run()
    assert first.memory == second.memory
    assert first.stats.total_blocks == second.stats.total_blocks
