"""Unit tests for the assembler."""

import pytest

from repro.vm import AsmError, assemble


def test_assembles_minimal_program():
    program = assemble("""
    func main:
        const r1, 5
        ret
    """)
    main = program.function("main")
    assert len(main) == 2
    assert main.instructions[0].op == "const"
    assert main.instructions[0].a == 1
    assert main.instructions[0].b == 5


def test_labels_resolve_to_indices():
    program = assemble("""
    func main:
        jmp end
        nop
    end:
        ret
    """)
    main = program.function("main")
    assert main.instructions[0].op == "jmp"
    assert main.instructions[0].a == 2
    assert main.labels == {"end": 2}


def test_negative_immediates():
    program = assemble("""
    func main:
        addi r1, r1, -3
        load r2, r1, -1
        ret
    """)
    main = program.function("main")
    assert main.instructions[0].c == -3
    assert main.instructions[1].c == -1


def test_comments_and_blank_lines_ignored():
    program = assemble("""
    ; a comment
    func main:
        nop      ; trailing comment
        # another comment style

        ret
    """)
    assert len(program.function("main")) == 2


def test_leaders_function_entry_and_after_terminators():
    program = assemble("""
    func main:
        const r1, 1
        call f
        const r2, 2
        jmp end
        nop
    end:
        ret
    func f:
        ret
    """)
    main = program.function("main")
    # entry(0), after call(2), after jmp(4), jmp target 'end'(5)
    assert main.leaders == {0, 2, 4, 5}
    assert program.function("f").leaders == {0}


def test_branch_targets_are_leaders():
    program = assemble("""
    func main:
        const r1, 3
    top:
        beq r1, r1, top
        ret
    """)
    assert 1 in program.function("main").leaders


@pytest.mark.parametrize(
    "snippet, message",
    [
        ("nop", "outside any function"),
        ("func main:\n    frobnicate r1", "unknown opcode"),
        ("func main:\n    const r1", "expects 2 operand"),
        ("func main:\n    const r99, 1", "out of range"),
        ("func main:\n    const rX, 1", "expected register"),
        ("func main:\n    const r1, abc", "expected integer"),
        ("func main:\n    jmp nowhere\n    ret", "undefined label"),
        ("func main:\n    call ghost", "undefined function"),
        ("func main:\n    ret\nfunc main:\n    ret", "duplicate function"),
        ("func main:\nl:\nl:\n    ret", "duplicate label"),
        ("func main\n    ret", "must end with"),
    ],
)
def test_assembly_errors(snippet, message):
    with pytest.raises(AsmError, match=message):
        assemble(snippet)


def test_missing_entry_function():
    with pytest.raises(AsmError, match="no entry function"):
        assemble("func helper:\n    ret")


def test_custom_entry():
    program = assemble("func start:\n    ret", entry="start")
    assert program.entry == "start"


def test_error_carries_line_number():
    try:
        assemble("func main:\n    bogus r1")
    except AsmError as error:
        assert "line 2" in str(error)
    else:
        pytest.fail("expected AsmError")


def test_spawn_target_validated():
    with pytest.raises(AsmError, match="undefined function"):
        assemble("""
        func main:
            spawn r1, ghost, r0
            ret
        """)


def test_label_at_end_of_function():
    program = assemble("""
    func main:
        jmp end
    end:
    """)
    # label points one past the last instruction: legal, handled by the
    # machine as an implicit return
    assert program.function("main").instructions[0].a == 1
