"""Unit tests for the VM interpreter, scheduler and synchronization."""

import pytest

from repro.core import EventKind, TraceConsumer
from repro.vm import (
    DeadlockError,
    DeviceError,
    InputDevice,
    Machine,
    OutputDevice,
    VMError,
    assemble,
)


class EventLog(TraceConsumer):
    def __init__(self):
        self.log = []

    def on_call(self, thread, routine):
        self.log.append(("call", thread, routine))

    def on_return(self, thread):
        self.log.append(("return", thread))

    def on_read(self, thread, addr):
        self.log.append(("read", thread, addr))

    def on_write(self, thread, addr):
        self.log.append(("write", thread, addr))

    def on_kernel_read(self, thread, addr):
        self.log.append(("kread", thread, addr))

    def on_kernel_write(self, thread, addr):
        self.log.append(("kwrite", thread, addr))

    def on_thread_switch(self, thread):
        self.log.append(("switch", thread))

    def on_cost(self, thread, units):
        self.log.append(("cost", thread, units))

    def on_lock_acquire(self, thread, lock_id):
        self.log.append(("acquire", thread, lock_id))

    def on_lock_release(self, thread, lock_id):
        self.log.append(("release", thread, lock_id))

    def on_thread_create(self, parent, child):
        self.log.append(("create", parent, child))

    def on_thread_join(self, parent, child):
        self.log.append(("join", parent, child))


def run(asm, devices=None, pokes=(), tools=None, **kwargs):
    machine = Machine(assemble(asm), tools=tools, devices=devices, **kwargs)
    for base, values in pokes:
        machine.poke(base, values)
    machine.run()
    return machine


def test_arithmetic_and_store():
    machine = run("""
    func main:
        const r1, 6
        const r2, 7
        mul r3, r1, r2
        const r4, 100
        store r4, 0, r3
        ret
    """)
    assert machine.memory[100] == 42


def test_all_arithmetic_ops():
    machine = run("""
    func main:
        const r1, 17
        const r2, 5
        add r3, r1, r2
        sub r4, r1, r2
        mul r5, r1, r2
        div r6, r1, r2
        mod r7, r1, r2
        addi r8, r1, 3
        muli r9, r1, -2
        const r10, 200
        store r10, 0, r3
        store r10, 1, r4
        store r10, 2, r5
        store r10, 3, r6
        store r10, 4, r7
        store r10, 5, r8
        store r10, 6, r9
        ret
    """)
    assert machine.memory_block(200, 7) == [22, 12, 85, 3, 2, 20, -34]


def test_division_by_zero_traps():
    with pytest.raises(VMError, match="division by zero"):
        run("""
        func main:
            const r1, 1
            div r2, r1, r0
            ret
        """)


def test_load_default_zero_and_poke():
    machine = run(
        """
        func main:
            const r1, 300
            load r2, r1, 0
            load r3, r1, 1
            const r4, 400
            store r4, 0, r2
            store r4, 1, r3
            ret
        """,
        pokes=[(300, [9])],
    )
    assert machine.memory_block(400, 2) == [9, 0]


def test_branches():
    machine = run("""
    func main:
        const r1, 0
        const r2, 10
    loop:
        bge r1, r2, done
        addi r1, r1, 1
        jmp loop
    done:
        const r3, 500
        store r3, 0, r1
        ret
    """)
    assert machine.memory[500] == 10


def test_call_return_events_and_nesting():
    log = EventLog()
    run(
        """
        func main:
            call outer
            ret
        func outer:
            call inner
            ret
        func inner:
            ret
        """,
        tools=log,
    )
    calls = [entry for entry in log.log if entry[0] in ("call", "return")]
    assert calls == [
        ("call", 1, "main"),
        ("call", 1, "outer"),
        ("call", 1, "inner"),
        ("return", 1),
        ("return", 1),
        ("return", 1),
    ]


def test_halt_unwinds_all_frames():
    log = EventLog()
    run(
        """
        func main:
            call deep
            ret
        func deep:
            halt
        """,
        tools=log,
    )
    returns = [entry for entry in log.log if entry[0] == "return"]
    assert len(returns) == 2   # deep and main


def test_implicit_return_at_function_end():
    log = EventLog()
    run(
        """
        func main:
            call f
            ret
        func f:
            nop
        """,
        tools=log,
    )
    assert ("return", 1) in log.log


def test_alloc_returns_disjoint_blocks():
    machine = run("""
    func main:
        alloci r1, 10
        alloci r2, 10
        sub r3, r2, r1
        const r4, 700
        store r4, 0, r3
        ret
    """)
    assert machine.memory[700] == 10


def test_spawn_join_and_thread_events():
    log = EventLog()
    machine = run(
        """
        func main:
            const r1, 5
            spawn r2, child, r1
            join r2
            ret
        func child:
            const r3, 800
            store r3, 0, r0     ; child sees its spawn argument in r0
            ret
        """,
        tools=log,
    )
    assert machine.memory[800] == 5
    assert ("create", 1, 2) in log.log
    assert ("join", 1, 2) in log.log
    assert ("call", 2, "child") in log.log


def test_join_blocks_until_child_finishes():
    machine = run("""
    func main:
        spawn r2, slow, r0
        join r2
        const r1, 900
        load r3, r1, 0
        const r4, 901
        store r4, 0, r3
        ret
    func slow:
        const r5, 0
        const r6, 200
    loop:
        bge r5, r6, done
        addi r5, r5, 1
        jmp loop
    done:
        const r1, 900
        const r2, 77
        store r1, 0, r2
        ret
    """, timeslice=5)
    # main's read of cell 900 must observe the child's write
    assert machine.memory[901] == 77


def test_lock_mutual_exclusion_and_events():
    log = EventLog()
    machine = run(
        """
        func main:
            spawn r2, bump, r0
            spawn r3, bump, r0
            join r2
            join r3
            ret
        func bump:
            const r9, 50
            const r13, 0
            const r1, 600
        loop:
            ble r9, r13, done
            lock m
            load r2, r1, 0
            addi r2, r2, 1
            store r1, 0, r2
            unlock m
            addi r9, r9, -1
            jmp loop
        done:
            ret
        """,
        tools=log,
        timeslice=3,
    )
    assert machine.memory[600] == 100
    acquires = [entry for entry in log.log if entry[0] == "acquire"]
    releases = [entry for entry in log.log if entry[0] == "release"]
    assert len(acquires) == len(releases) == 100


def test_relock_same_thread_is_an_error():
    with pytest.raises(VMError, match="re-locking"):
        run("""
        func main:
            lock m
            lock m
            ret
        """)


def test_unlock_not_held_is_an_error():
    with pytest.raises(VMError, match="does not hold"):
        run("""
        func main:
            unlock m
            ret
        """)


def test_deadlock_detection():
    with pytest.raises(DeadlockError):
        run("""
        func main:
            semdown never
            ret
        """)


def test_two_lock_deadlock_detected():
    with pytest.raises(DeadlockError):
        run("""
        func main:
            lock a
            spawn r2, other, r0
            yield
            lock b
            ret
        func other:
            lock b
            yield
            lock a
            ret
        """, timeslice=1)


def test_semaphores_order_producer_before_consumer():
    machine = run("""
    func main:
        spawn r2, consumer, r0
        spawn r3, producer, r0
        join r2
        join r3
        ret
    func producer:
        const r1, 650
        const r2, 123
        store r1, 0, r2
        semup ready
        ret
    func consumer:
        semdown ready
        const r1, 650
        load r2, r1, 0
        const r3, 651
        store r3, 0, r2
        ret
    """, timeslice=2)
    assert machine.memory[651] == 123


def test_sysread_short_read_and_events():
    log = EventLog()
    machine = run(
        """
        func main:
            alloci r1, 8
            const r2, 8
            sysread r3, r1, r2, dev
            const r4, 660
            store r4, 0, r3
            ret
        """,
        devices={"dev": InputDevice([10, 20, 30])},
        tools=log,
    )
    assert machine.memory[660] == 3   # short read at EOF
    kwrites = [entry for entry in log.log if entry[0] == "kwrite"]
    assert len(kwrites) == 3


def test_syswrite_drains_memory_to_device():
    log = EventLog()
    device = OutputDevice()
    run(
        """
        func main:
            const r1, 670
            const r2, 3
            syswrite r1, r2, out
            ret
        """,
        devices={"out": device},
        pokes=[(670, [1, 2, 3])],
        tools=log,
    )
    assert device.values == [1, 2, 3]
    kreads = [entry for entry in log.log if entry[0] == "kread"]
    assert [entry[2] for entry in kreads] == [670, 671, 672]


def test_missing_device_raises():
    with pytest.raises(DeviceError):
        run("""
        func main:
            const r1, 0
            const r2, 1
            sysread r3, r1, r2, ghost
            ret
        """)


def test_wrong_direction_device_raises():
    with pytest.raises(DeviceError):
        run(
            """
            func main:
                const r1, 0
                const r2, 1
                syswrite r1, r2, dev
                ret
            """,
            devices={"dev": InputDevice([1])},
        )


def test_cost_events_count_basic_blocks():
    log = EventLog()
    machine = run(
        """
        func main:
            const r1, 0
            const r2, 4
        loop:
            bge r1, r2, done
            addi r1, r1, 1
            jmp loop
        done:
            ret
        """,
        tools=log,
    )
    costs = sum(entry[2] for entry in log.log if entry[0] == "cost")
    assert costs == machine.stats.total_blocks
    # entry block once, loop-head 5 times, body 4 times, done once
    assert costs == 1 + 5 + 4 + 1


def test_native_mode_runs_without_tools():
    machine = run("""
    func main:
        const r1, 100
        const r2, 1
        store r1, 0, r2
        ret
    """)
    assert machine.memory[100] == 1
    assert machine.stats.total_blocks > 0


def test_thread_switch_events_precede_thread_activity():
    log = EventLog()
    run(
        """
        func main:
            spawn r2, child, r0
            join r2
            ret
        func child:
            nop
            ret
        """,
        tools=log,
        timeslice=1,
    )
    seen = set()
    current = None
    for entry in log.log:
        if entry[0] == "switch":
            current = entry[1]
            seen.add(current)
        elif entry[0] in ("call", "return", "read", "write", "cost"):
            assert entry[1] == current   # events only from the running thread


def test_step_limit():
    with pytest.raises(VMError, match="instruction limit"):
        run("""
        func main:
        loop:
            jmp loop
        """, max_steps=1000)


def test_machine_cannot_run_twice():
    machine = Machine(assemble("func main:\n    ret"))
    machine.run()
    with pytest.raises(VMError, match="already ran"):
        machine.run()


def test_invalid_timeslice():
    with pytest.raises(ValueError):
        Machine(assemble("func main:\n    ret"), timeslice=0)


def test_stats_per_thread():
    machine = run("""
    func main:
        spawn r2, child, r0
        join r2
        ret
    func child:
        nop
        ret
    """)
    assert machine.stats.threads_spawned == 2
    assert set(machine.stats.blocks_by_thread) == {1, 2}
    assert machine.stats.total_blocks == sum(machine.stats.blocks_by_thread.values())


def test_input_device_exhaustion_accounting():
    device = InputDevice([1, 2, 3])
    assert not device.exhausted
    assert device.remaining() == 3
    assert device.read(2) == [1, 2]
    assert device.remaining() == 1
    assert device.read(5) == [3]
    assert device.exhausted
    assert device.read(1) == []


def test_input_device_rejects_negative_read():
    with pytest.raises(DeviceError):
        InputDevice([1]).read(-1)


def test_instruction_cost_model():
    from repro.core import InstructionCost

    log = EventLog()
    machine = Machine(assemble("""
    func main:
        const r1, 1
        const r2, 2
        add r3, r1, r2
        ret
    """), tools=log, cost_model=InstructionCost())
    machine.run()
    costs = sum(entry[2] for entry in log.log if entry[0] == "cost")
    assert costs == machine.stats.total_instructions
    assert costs == 4


def test_default_cost_model_is_basic_blocks():
    log = EventLog()
    machine = Machine(assemble("""
    func main:
        const r1, 1
        const r2, 2
        ret
    """), tools=log)
    machine.run()
    costs = sum(entry[2] for entry in log.log if entry[0] == "cost")
    assert costs == machine.stats.total_blocks == 1
