"""Tests for the guest program library: functional correctness plus the
paper's expected rms/trms values on each figure scenario."""

import pytest

from repro.core import EventBus, RmsProfiler, TrmsProfiler
from repro.vm import programs


def profile(scenario, **machine_kwargs):
    trms = TrmsProfiler(keep_activations=True)
    rms = RmsProfiler(keep_activations=True)
    scenario.run(tools=EventBus([trms, rms]), **machine_kwargs)
    return rms, trms


def only(profiler, routine):
    matches = [a for a in profiler.db.activations if a.routine == routine]
    assert len(matches) == 1, (routine, matches)
    return matches[0]


def test_figure_1a_values():
    rms, trms = profile(programs.figure_1a())
    assert only(rms, "f").size == 1
    f = only(trms, "f")
    assert f.size == 2
    assert f.induced_thread == 1
    assert f.induced_external == 0


def test_figure_1b_values():
    rms, trms = profile(programs.figure_1b())
    assert only(rms, "f").size == 1
    assert only(rms, "h").size == 1
    assert only(trms, "f").size == 2
    h = only(trms, "h")
    assert h.size == 1
    assert h.induced_thread == 1


@pytest.mark.parametrize("items", [1, 7, 32])
def test_producer_consumer_values(items):
    rms, trms = profile(programs.producer_consumer(items))
    assert only(rms, "consumer").size == 1
    consumer = only(trms, "consumer")
    assert consumer.size == items
    assert consumer.induced_thread == items
    consume_sizes = [a.size for a in trms.db.activations if a.routine == "consumeData"]
    assert consume_sizes == [1] * items


@pytest.mark.parametrize("iterations", [1, 5, 16])
def test_buffered_read_values(iterations):
    rms, trms = profile(programs.buffered_read(iterations))
    assert only(rms, "externalRead").size == 1
    external = only(trms, "externalRead")
    assert external.size == iterations
    assert external.induced_external == iterations
    assert external.induced_thread == 0


def test_insertion_sort_sorts_and_reads_n_cells():
    values = [9, 1, 8, 2, 7, 3, 6, 4, 5]
    scenario = programs.insertion_sort(values)
    rms, trms = profile(scenario)   # scenario.check validates sortedness
    assert only(rms, "insertion_sort").size == len(values)
    assert only(trms, "insertion_sort").size == len(values)


def test_insertion_sort_cost_grows_quadratically():
    costs = {}
    for n in (8, 16, 32):
        scenario = programs.insertion_sort(list(range(n, 0, -1)))   # worst case
        _, trms = profile(scenario)
        costs[n] = only(trms, "insertion_sort").cost
    # doubling n should roughly quadruple the cost on reversed input
    assert costs[16] / costs[8] > 3.0
    assert costs[32] / costs[16] > 3.0


def test_binary_search_logarithmic_input():
    values = list(range(0, 512, 2))
    scenario = programs.binary_search(values, target=2)   # worst-ish probe path
    rms, _ = profile(scenario)
    size = only(rms, "binary_search").size
    assert 1 <= size <= 10   # ~log2(256) probes


def test_binary_search_missing_target():
    scenario = programs.binary_search([1, 3, 5], target=4)
    scenario.run()   # check() asserts the result is -1


def test_sum_array_reads_everything_once():
    values = list(range(50))
    rms, trms = profile(programs.sum_array(values))
    assert only(rms, "sum_array").size == 50
    assert only(trms, "sum_array").size == 50


def test_matmul_reads_both_operands():
    n = 5
    rms, _ = profile(programs.matmul(n))
    assert only(rms, "matmul").size == 2 * n * n


def test_parallel_sum_workers_have_thread_induced_input():
    workers, chunk = 4, 8
    _, trms = profile(programs.parallel_sum(workers, chunk), timeslice=7)
    slices = [a for a in trms.db.activations if a.routine == "sum_slice"]
    assert len(slices) == workers
    for record in slices:
        assert record.size == chunk
        assert record.induced_thread == chunk
        assert record.induced_external == 0


def test_locked_increment_is_exact():
    programs.locked_increment(3, 10).run(timeslice=4)


def test_racy_increment_runs():
    machine = programs.racy_increment(2, 4).run(timeslice=2)
    # with the yield-per-round schedule the lost-update race may or may
    # not manifest, but the cell is written by both threads
    assert machine.memory.get(600, 0) >= 1


def test_scenarios_are_reusable():
    scenario = programs.figure_1a()
    scenario.run()
    scenario.run()   # fresh Machine each time


@pytest.mark.parametrize("n", [0, 1, 2, 3, 9, 33, 64])
def test_merge_sort_sorts(n):
    import random

    rng = random.Random(n)
    values = [rng.randrange(1000) for _ in range(n)]
    if n > 0:
        programs.merge_sort(values).run()   # check() verifies sortedness


def test_merge_sort_rms_is_n_and_cost_linearithmic():
    values = list(range(64, 0, -1))
    rms, trms = profile(programs.merge_sort(values))
    record = only(rms, "merge_sort")
    assert record.size == 64          # scratch writes never count as input
    small = only_cost(programs.merge_sort(list(range(16, 0, -1))))
    big = only_cost(programs.merge_sort(list(range(64, 0, -1))))
    # 4x input, ~4*log ratio ~ 4*(6/4) = 6x <= ratio <= quadratic would be 16x
    assert 4.0 < big / small < 10.0


def only_cost(scenario):
    from repro.core import EventBus, RmsProfiler

    profiler = RmsProfiler(keep_activations=True)
    scenario.run(tools=EventBus([profiler]))
    return [a for a in profiler.db.activations if a.routine == "merge_sort"][0].cost


@pytest.mark.parametrize("n", [1, 5, 20, 60, 100])
def test_hash_table_inserts_all_keys(n):
    programs.hash_table(n).run()   # check() verifies count and occupancy


def test_hash_table_amortized_insert_profile():
    """Median insert stays O(1)-ish while rehashes spike linearly."""
    from repro.core import EventBus, RmsProfiler

    profiler = RmsProfiler(keep_activations=True)
    programs.hash_table(100).run(tools=EventBus([profiler]))
    inserts = [a for a in profiler.db.activations if a.routine == "ht_insert"]
    grows = [a for a in profiler.db.activations if a.routine == "ht_grow"]
    costs = sorted(a.cost for a in inserts)
    median = costs[len(costs) // 2]
    assert median <= 8                       # typical insert: few probes
    assert max(costs) > 10 * median          # rehash spikes stand out
    # each rehash reads the whole table: input and cost double in step
    assert len(grows) >= 3
    sizes = [a.size for a in grows]
    assert all(b > 1.5 * a for a, b in zip(sizes, sizes[1:]))
    # grow cost is linear in its input
    from repro.curvefit import classify_growth

    assert classify_growth([(a.size, a.cost) for a in grows]) in ("O(n)", "O(n log n)")


def test_hash_table_frees_old_tables():
    from repro.core import EventBus
    from repro.tools import Memcheck

    tool = Memcheck()
    programs.hash_table(50).run(tools=EventBus([tool]))
    report = tool.report()
    assert report["errors"] == []
    assert report["frees"] >= 3              # one per rehash
    assert len(report["leaks"]) == 1         # only the live table remains
