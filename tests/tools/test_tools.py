"""Tests for the comparator tools: each must actually do its analysis."""

import pytest

from repro.core import EventBus
from repro.tools import (
    Callgrind,
    Helgrind,
    Memcheck,
    Nulgrind,
    TOOL_NAMES,
    make_tool,
)
from repro.vm import InputDevice, Machine, assemble, programs


def run(asm, tool, devices=None, pokes=()):
    machine = Machine(assemble(asm), tools=tool, devices=devices)
    for base, values in pokes:
        machine.poke(base, values)
    machine.run()
    return machine


# -- registry -----------------------------------------------------------------


def test_make_tool_builds_every_registered_tool():
    for name in TOOL_NAMES:
        tool = make_tool(name)
        assert tool is not make_tool(name)   # fresh instances


def test_make_tool_unknown():
    with pytest.raises(KeyError):
        make_tool("massif")


# -- nulgrind ------------------------------------------------------------------


def test_nulgrind_counts_events():
    tool = Nulgrind()
    run("""
    func main:
        const r1, 100
        store r1, 0, r1
        load r2, r1, 0
        ret
    """, tool)
    assert tool.report()["events"] > 0


# -- memcheck ------------------------------------------------------------------


def test_memcheck_flags_uninitialised_read():
    tool = Memcheck()
    run("""
    func main:
        const r1, 100
        load r2, r1, 0      ; cell 100 never written
        ret
    """, tool)
    kinds = [kind for kind, _, addr in tool.report()["errors"]]
    assert "uninitialised-read" in kinds


def test_memcheck_accepts_initialised_read():
    tool = Memcheck()
    run("""
    func main:
        const r1, 100
        const r2, 5
        store r1, 0, r2
        load r3, r1, 0
        ret
    """, tool)
    assert tool.report()["errors"] == []


def test_memcheck_kernel_fill_defines_memory():
    tool = Memcheck()
    run(
        """
        func main:
            alloci r1, 4
            const r2, 4
            sysread r3, r1, r2, dev
            load r4, r1, 0
            ret
        """,
        tool,
        devices={"dev": InputDevice([1, 2, 3, 4])},
    )
    assert tool.report()["errors"] == []
    assert tool.report()["heap_blocks"] == 1
    assert tool.report()["heap_cells"] == 4


def test_memcheck_flags_heap_overrun():
    tool = Memcheck()
    run("""
    func main:
        alloci r1, 2
        const r2, 9
        store r1, 5, r2     ; 3 cells past the end of the allocation
        ret
    """, tool)
    kinds = [kind for kind, _, addr in tool.report()["errors"]]
    assert "invalid-access" in kinds


def test_memcheck_flags_undefined_syscall_param():
    from repro.vm import OutputDevice

    tool = Memcheck()
    run(
        """
        func main:
            alloci r1, 2
            const r2, 2
            syswrite r1, r2, out   ; sending never-written cells
            ret
        """,
        tool,
        devices={"out": OutputDevice()},
    )
    kinds = [kind for kind, _, addr in tool.report()["errors"]]
    assert "uninitialised-syscall-param" in kinds


def test_memcheck_errors_deduplicated_per_address():
    tool = Memcheck()
    run("""
    func main:
        const r1, 100
        load r2, r1, 0
        load r2, r1, 0
        load r2, r1, 0
        ret
    """, tool)
    assert len(tool.report()["errors"]) == 1


def test_memcheck_mark_defined_for_preloaded_data():
    tool = Memcheck()
    scenario = programs.sum_array([1, 2, 3])
    scenario.run(tools=EventBus([tool]))
    assert tool.report()["errors"] == []


def test_memcheck_space_grows_with_footprint():
    tool = Memcheck()
    run("""
    func main:
        const r1, 100
        const r2, 0
        const r3, 50
    loop:
        bge r2, r3, done
        add r4, r1, r2
        store r4, 0, r2
        addi r2, r2, 1
        jmp loop
    done:
        ret
    """, tool)
    # bit-packed A/V states: 2 bits per tracked cell
    assert tool.space_bytes() >= 50 // 8


# -- callgrind ------------------------------------------------------------------


def test_callgrind_builds_call_graph():
    tool = Callgrind()
    run("""
    func main:
        call a
        call a
        call b
        ret
    func a:
        call b
        ret
    func b:
        ret
    """, tool)
    report = tool.report()
    assert report["edges"][("main", "a")] == 2
    assert report["edges"][("main", "b")] == 1
    assert report["edges"][("a", "b")] == 2
    assert report["calls"]["b"] == 3
    assert report["edges"][(None, "main")] == 1


def test_callgrind_inclusive_ge_exclusive():
    tool = Callgrind()
    run("""
    func main:
        const r1, 0
        const r2, 5
    loop:
        bge r1, r2, done
        call leaf
        addi r1, r1, 1
        jmp loop
    done:
        ret
    func leaf:
        nop
        ret
    """, tool)
    report = tool.report()
    for routine in report["inclusive"]:
        assert report["inclusive"][routine] >= report["exclusive"][routine]
    assert report["inclusive"]["main"] == sum(report["exclusive"].values())


def test_callgrind_recursion_counts_outermost_once():
    tool = Callgrind()
    run("""
    func main:
        const r0, 4
        call rec
        ret
    func rec:
        const r13, 0
        ble r0, r13, base
        addi r0, r0, -1
        call rec
        ret
    base:
        ret
    """, tool)
    report = tool.report()
    assert report["calls"]["rec"] == 5
    # inclusive cost of rec counted once (outermost), so it cannot
    # exceed main's inclusive cost
    assert report["inclusive"]["rec"] <= report["inclusive"]["main"]


def test_callgrind_top_functions():
    tool = Callgrind()
    run("""
    func main:
        call busy
        ret
    func busy:
        const r1, 0
        const r2, 20
    loop:
        bge r1, r2, done
        addi r1, r1, 1
        jmp loop
    done:
        ret
    """, tool)
    top = tool.top_functions(1)
    assert top[0][0] == "main"


# -- helgrind -------------------------------------------------------------------


def test_helgrind_flags_racy_increment():
    tool = Helgrind()
    programs.racy_increment(2, 5).run(tools=EventBus([tool]), timeslice=2)
    assert len(tool.report()["races"]) >= 1
    race = tool.report()["races"][0]
    assert race.addr == 600


def test_helgrind_quiet_on_locked_increment():
    tool = Helgrind()
    programs.locked_increment(3, 6).run(tools=EventBus([tool]), timeslice=2)
    assert tool.report()["races"] == []


def test_helgrind_quiet_on_semaphore_ordering():
    tool = Helgrind()
    programs.producer_consumer(12).run(tools=EventBus([tool]), timeslice=3)
    assert tool.report()["races"] == []


def test_helgrind_quiet_on_fork_join():
    tool = Helgrind()
    programs.parallel_sum(3, 6).run(tools=EventBus([tool]), timeslice=4)
    assert tool.report()["races"] == []


def test_helgrind_flags_unordered_write_write():
    tool = Helgrind()
    run("""
    func main:
        spawn r2, w, r0
        spawn r3, w, r0
        join r2
        join r3
        ret
    func w:
        const r1, 640
        const r5, 1
        store r1, 0, r5
        ret
    """, tool)
    races = tool.report()["races"]
    assert len(races) == 1
    assert races[0].kind in ("write-after-write", "write-after-read")


def test_helgrind_join_creates_order():
    tool = Helgrind()
    run("""
    func main:
        spawn r2, w, r0
        join r2
        const r1, 640
        load r4, r1, 0      ; ordered by join: no race
        ret
    func w:
        const r1, 640
        const r5, 1
        store r1, 0, r5
        ret
    """, tool)
    assert tool.report()["races"] == []


def test_helgrind_races_deduplicated_per_address():
    tool = Helgrind()
    programs.racy_increment(2, 8).run(tools=EventBus([tool]), timeslice=1)
    addresses = [race.addr for race in tool.report()["races"]]
    assert len(addresses) == len(set(addresses))


# -- cachegrind -----------------------------------------------------------------


def test_cachegrind_sequential_scan_exploits_lines():
    from repro.tools import CacheConfig, Cachegrind

    tool = Cachegrind(l1=CacheConfig(sets=8, ways=2, line_cells=4))
    run("""
    func main:
        const r1, 0
        const r2, 64
    loop:
        bge r1, r2, done
        const r3, 4096
        add r3, r3, r1
        load r4, r3, 0
        addi r1, r1, 1
        jmp loop
    done:
        ret
    """, tool)
    report = tool.report()
    # a sequential scan misses once per 4-cell line: ~25% miss rate
    assert report["l1_accesses"] == 64
    assert 14 <= report["l1_misses"] <= 18


def test_cachegrind_hot_cell_hits():
    from repro.tools import Cachegrind

    tool = Cachegrind()
    run("""
    func main:
        const r1, 100
        const r2, 0
        const r3, 50
    loop:
        bge r2, r3, done
        load r4, r1, 0
        addi r2, r2, 1
        jmp loop
    done:
        ret
    """, tool)
    report = tool.report()
    assert report["l1_misses"] == 1       # one cold miss, then hits
    assert report["l1_miss_rate"] < 0.05


def test_cachegrind_attributes_misses_to_routines():
    from repro.tools import CacheConfig, Cachegrind

    tool = Cachegrind(l1=CacheConfig(sets=2, ways=1, line_cells=1))
    run("""
    func main:
        call hot
        call cold
        ret
    func hot:
        const r1, 100
        load r2, r1, 0
        load r2, r1, 0
        ret
    func cold:
        const r1, 200
        const r2, 0
        const r3, 8
    loop:
        bge r2, r3, done
        add r4, r1, r2
        load r5, r4, 0
        addi r2, r2, 1
        jmp loop
    done:
        ret
    """, tool)
    worst = dict(tool.worst_routines())
    assert worst["cold"] > worst.get("hot", 0)


def test_cachegrind_ll_catches_l1_victims():
    from repro.tools import CacheConfig, Cachegrind

    # tiny L1, big LL: revisiting a working set slightly larger than L1
    # misses in L1 but hits in LL
    tool = Cachegrind(
        l1=CacheConfig(sets=2, ways=1, line_cells=1),
        ll=CacheConfig(sets=64, ways=4, line_cells=1),
    )
    run("""
    func main:
        const r5, 0
        const r6, 4
    outer:
        bge r5, r6, done
        const r1, 100
        const r2, 0
        const r3, 6
    inner:
        bge r2, r3, onext
        add r4, r1, r2
        load r7, r4, 0
        addi r2, r2, 1
        jmp inner
    onext:
        addi r5, r5, 1
        jmp outer
    done:
        ret
    """, tool)
    report = tool.report()
    assert report["l1_misses"] > report["ll_misses"]
    assert report["ll_misses"] <= 6        # cold misses only


def test_cachegrind_registered_as_extension_tool():
    from repro.tools import TOOL_NAMES

    tool = make_tool("cachegrind")
    assert tool.name == "cachegrind"
    # the Table 1 column set stays the paper's
    assert "cachegrind" not in TOOL_NAMES


def test_cache_config_validation():
    from repro.tools import CacheConfig

    with pytest.raises(ValueError):
        CacheConfig(sets=0)


# -- memcheck: heap lifecycle ------------------------------------------------------


def test_memcheck_use_after_free():
    tool = Memcheck()
    run("""
    func main:
        alloci r1, 4
        const r2, 9
        store r1, 0, r2
        free r1
        load r3, r1, 0      ; use after free
        ret
    """, tool)
    kinds = [kind for kind, _, _ in tool.report()["errors"]]
    assert "invalid-access" in kinds


def test_memcheck_double_free():
    tool = Memcheck()
    run("""
    func main:
        alloci r1, 2
        free r1
        free r1
        ret
    """, tool)
    kinds = [kind for kind, _, _ in tool.report()["errors"]]
    assert "double-free" in kinds


def test_memcheck_invalid_free():
    tool = Memcheck()
    run("""
    func main:
        const r1, 12345
        free r1             ; never allocated
        ret
    """, tool)
    kinds = [kind for kind, _, _ in tool.report()["errors"]]
    assert "invalid-free" in kinds


def test_memcheck_clean_alloc_free_cycle():
    tool = Memcheck()
    run("""
    func main:
        alloci r1, 3
        const r2, 1
        store r1, 0, r2
        load r3, r1, 0
        free r1
        ret
    """, tool)
    report = tool.report()
    assert report["errors"] == []
    assert report["frees"] == 1
    assert report["leaks"] == []


def test_memcheck_leak_summary():
    tool = Memcheck()
    run("""
    func main:
        alloci r1, 3
        alloci r2, 5
        free r1
        ret
    """, tool)
    leaks = tool.report()["leaks"]
    assert len(leaks) == 1
    assert leaks[0][1] == 5   # the unfreed 5-cell block


def test_memcheck_origin_tracking():
    tool = Memcheck(track_origins=True)
    run("""
    func main:
        const r1, 100
        const r2, 5
        store r1, 0, r2
        ret
    """, tool)
    origin = tool.origin_of(100)
    assert origin is not None
    thread, store_number = origin
    assert thread == 1
    assert store_number >= 1
    assert tool.origin_of(999) is None


def test_memcheck_origin_off_by_default():
    tool = Memcheck()
    run("""
    func main:
        const r1, 100
        store r1, 0, r1
        ret
    """, tool)
    assert tool.origin_of(100) is None
