"""The CI /metrics checker: valid payloads pass, each invariant trips."""

from tools.check_metrics import check_metrics_text, main

VALID = """\
# TYPE service_requests_total counter
service_requests_total{op="put"} 5
# TYPE queue_depth gauge
queue_depth 2
# TYPE lat_ms histogram
lat_ms_bucket{le="1"} 2
lat_ms_bucket{le="4"} 3
lat_ms_bucket{le="+Inf"} 4
lat_ms_sum 70.0
lat_ms_count 4
"""


def test_valid_payload_has_no_problems():
    assert check_metrics_text(VALID) == []


def test_empty_payload_is_a_problem():
    assert check_metrics_text("") == ["no samples found"]
    assert check_metrics_text("# HELP nothing here\n") == ["no samples found"]


def test_sample_without_type_declaration():
    problems = check_metrics_text("mystery_metric 1\n")
    assert any("no TYPE" in problem for problem in problems)


def test_counter_without_total_suffix():
    text = "# TYPE hits counter\nhits 3\n"
    problems = check_metrics_text(text)
    assert any("_total" in problem for problem in problems)


def test_bad_metric_name_and_bad_value():
    problems = check_metrics_text(
        "# TYPE 9bad counter\n# TYPE ok_total counter\nok_total nope\n")
    assert any("bad metric name" in problem for problem in problems)
    assert any("bad sample value" in problem for problem in problems)


def test_malformed_type_and_labels():
    problems = check_metrics_text(
        '# TYPE x wrongkind\n# TYPE y_total counter\ny_total{oops} 1\n')
    assert any("malformed TYPE" in problem for problem in problems)
    assert any("unparseable labels" in problem for problem in problems)


def test_non_cumulative_buckets_are_flagged():
    text = ("# TYPE lat histogram\n"
            'lat_bucket{le="1"} 5\n'
            'lat_bucket{le="4"} 3\n'
            'lat_bucket{le="+Inf"} 5\n'
            "lat_sum 9\nlat_count 5\n")
    problems = check_metrics_text(text)
    assert any("not cumulative" in problem for problem in problems)


def test_missing_inf_bucket_is_flagged():
    text = ("# TYPE lat histogram\n"
            'lat_bucket{le="1"} 1\n'
            "lat_sum 1\nlat_count 1\n")
    problems = check_metrics_text(text)
    assert any('+Inf' in problem for problem in problems)


def test_inf_bucket_must_equal_count():
    text = ("# TYPE lat histogram\n"
            'lat_bucket{le="+Inf"} 3\n'
            "lat_sum 9\nlat_count 5\n")
    problems = check_metrics_text(text)
    assert any("!= _count" in problem for problem in problems)


def test_histogram_series_checked_per_label_set():
    text = ("# TYPE lat histogram\n"
            'lat_bucket{tenant="a",le="1"} 1\n'
            'lat_bucket{tenant="a",le="+Inf"} 1\n'
            'lat_count{tenant="a"} 1\n'
            'lat_bucket{tenant="b",le="1"} 9\n'
            'lat_bucket{tenant="b",le="+Inf"} 9\n'
            'lat_count{tenant="b"} 9\n'
            'lat_sum{tenant="a"} 1\nlat_sum{tenant="b"} 9\n')
    assert check_metrics_text(text) == []


def test_main_reads_file_and_reports(tmp_path, capsys):
    good = tmp_path / "good.txt"
    good.write_text(VALID, encoding="utf-8")
    assert main([str(good)]) == 0
    assert "ok (" in capsys.readouterr().out

    bad = tmp_path / "bad.txt"
    bad.write_text("mystery 1\n", encoding="utf-8")
    assert main([str(bad)]) == 1
    assert "no TYPE" in capsys.readouterr().err


def test_main_reads_stdin(monkeypatch, capsys):
    import io
    monkeypatch.setattr("sys.stdin", io.StringIO(VALID))
    assert main(["-"]) == 0
    capsys.readouterr()


def test_main_usage_error():
    assert main([]) == 2
    assert main(["a", "b"]) == 2
