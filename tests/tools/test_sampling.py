"""Tests for the burst-sampling shim."""

import pytest

from repro.core import EventBus, RmsProfiler
from repro.tools import Nulgrind, SamplingShim
from repro.vm import programs


def test_identity_at_period_one():
    full = RmsProfiler(keep_activations=True)
    sampled_inner = RmsProfiler(keep_activations=True)
    shim = SamplingShim(sampled_inner, period=1)
    programs.sum_array(list(range(40))).run(tools=EventBus([full, shim]))
    assert [tuple(a) for a in full.db.activations] == [
        tuple(a) for a in sampled_inner.db.activations
    ]
    assert shim.forwarded == shim.seen


def test_sampling_reduces_memory_events_proportionally():
    inner = Nulgrind()
    shim = SamplingShim(inner, period=4, burst=1)
    programs.sum_array(list(range(64))).run(tools=EventBus([shim]))
    assert shim.seen > 0
    assert abs(shim.forwarded - shim.seen / 4) <= 2


def test_sampled_rms_underestimates_but_scales_back():
    full = RmsProfiler(keep_activations=True)
    inner = RmsProfiler(keep_activations=True)
    shim = SamplingShim(inner, period=5, burst=1)
    programs.sum_array(list(range(100))).run(tools=EventBus([full, shim]))
    true_size = [a for a in full.db.activations if a.routine == "sum_array"][0].size
    sampled = [a for a in inner.db.activations if a.routine == "sum_array"][0].size
    assert sampled < true_size
    corrected = sampled * shim.scale()
    assert abs(corrected - true_size) / true_size < 0.35


def test_structure_survives_sampling():
    """Calls/returns/costs are never dropped: activation lists match."""
    full = RmsProfiler(keep_activations=True)
    inner = RmsProfiler(keep_activations=True)
    shim = SamplingShim(inner, period=7)
    programs.producer_consumer(10).run(tools=EventBus([full, shim]))
    assert [(a.routine, a.thread, a.cost) for a in full.db.activations] == [
        (a.routine, a.thread, a.cost) for a in inner.db.activations
    ]


def test_kernel_events_never_sampled():
    inner = RmsProfiler(keep_activations=True)
    shim = SamplingShim(inner, period=1000)
    programs.buffered_read(8).run(tools=EventBus([shim]))
    # externalRead's input flows through kernel/kernel-adjacent reads;
    # the thread's explicit b[0] loads may be dropped, but the kernel
    # fill events always arrive
    assert shim.seen > 0


def test_validation():
    inner = Nulgrind()
    with pytest.raises(ValueError):
        SamplingShim(inner, period=0)
    with pytest.raises(ValueError):
        SamplingShim(inner, period=2, burst=3)


def test_alloc_and_free_pass_through_shim():
    from repro.tools import Memcheck, SamplingShim
    from repro.vm import Machine, assemble

    inner = Memcheck()
    shim = SamplingShim(inner, period=50)
    machine = Machine(assemble("""
    func main:
        alloci r1, 2
        free r1
        free r1
        ret
    """), tools=shim)
    machine.run()
    kinds = [kind for kind, _, _ in inner.report()["errors"]]
    assert "double-free" in kinds        # the hints were never sampled away
