"""Gate tests: envelope comparison, summary artifact, observatory hook."""

import io
import json
import os

from repro.observatory import ObservatoryStore, record_from_profile_db
from tools.bench_gate import SUMMARY_SCHEMA, compare_envelopes, run_gate

SIZES = (4, 8, 16, 32, 64)


def envelope(run_id, ratios, scale=1.0, bench="kernel"):
    return {
        "schema": "repro-bench/1",
        "run_id": run_id,
        "git_sha": "cafe1234",
        "timestamp": "2026-08-01T00:00:00+00:00",
        "bench": bench,
        "scale": scale,
        "metrics": {"gate": {"scale": scale, "ratios": dict(ratios)}},
    }


def write_envelope(directory, name, payload):
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream)
    return path


def gate_dirs(tmp_path, baseline_ratios, fresh_ratios, name="kernel.json"):
    baselines = str(tmp_path / "baselines")
    results = str(tmp_path / "results")
    write_envelope(baselines, name, envelope("base-1", baseline_ratios))
    write_envelope(results, name, envelope("fresh-1", fresh_ratios))
    return results, baselines


def profile_db(cost_fn):
    from repro.core import ProfileDatabase

    db = ProfileDatabase()
    for size in SIZES:
        db.add_activation("hot", 1, size, int(cost_fn(size)))
    return db


def test_clean_gate_writes_ok_summary(tmp_path):
    results, baselines = gate_dirs(tmp_path, {"speedup": 2.0}, {"speedup": 2.1})
    summary_path = str(tmp_path / "summary.json")
    out = io.StringIO()
    code = run_gate(results, baselines_dir=baselines,
                    summary_path=summary_path, out=out)
    assert code == 0
    assert "all baselines hold" in out.getvalue()
    with open(summary_path, encoding="utf-8") as stream:
        summary = json.load(stream)
    assert summary["schema"] == SUMMARY_SCHEMA
    assert summary["ok"] is True
    assert summary["problems"] == []
    (compared,) = summary["compared"]
    assert compared["status"] == "ok"
    assert compared["baseline_run_id"] == "base-1"
    assert compared["fresh_run_id"] == "fresh-1"


def test_regression_fails_and_lands_in_summary(tmp_path):
    results, baselines = gate_dirs(tmp_path, {"speedup": 2.0}, {"speedup": 1.0})
    summary_path = str(tmp_path / "summary.json")
    out = io.StringIO()
    code = run_gate(results, baselines_dir=baselines, tolerance=0.25,
                    summary_path=summary_path, out=out)
    assert code == 1
    assert "FAIL" in out.getvalue()
    with open(summary_path, encoding="utf-8") as stream:
        summary = json.load(stream)
    assert summary["ok"] is False
    (compared,) = summary["compared"]
    assert compared["status"] == "fail"
    assert any("speedup" in violation for violation in compared["violations"])


def test_missing_fresh_envelope_is_a_problem(tmp_path):
    results, baselines = gate_dirs(tmp_path, {"speedup": 2.0}, {"speedup": 2.0})
    os.remove(os.path.join(results, "kernel.json"))
    out = io.StringIO()
    code = run_gate(results, baselines_dir=baselines,
                    summary_path=str(tmp_path / "s.json"), out=out)
    assert code == 1
    assert "no fresh envelope" in out.getvalue()


def test_compare_envelopes_scale_mismatch():
    base = envelope("b", {"speedup": 2.0}, scale=1.0)
    fresh = envelope("f", {"speedup": 2.0}, scale=2.0)
    (problem,) = compare_envelopes(base, fresh, "kernel.json", 0.25)
    assert "scales differ" in problem


def test_gate_ingests_envelopes_into_observatory(tmp_path):
    results, baselines = gate_dirs(tmp_path, {"speedup": 2.0}, {"speedup": 2.1})
    # the gate's own summary artifact in the results dir must be skipped
    write_envelope(results, "bench_gate_summary.json",
                   {"schema": SUMMARY_SCHEMA, "ok": True})
    observatory = str(tmp_path / "obs")
    out = io.StringIO()
    code = run_gate(results, baselines_dir=baselines,
                    summary_path=str(tmp_path / "s.json"),
                    observatory=observatory, out=out)
    assert code == 0
    assert "1 envelope(s) ingested" in out.getvalue()
    store = ObservatoryStore(observatory)
    (info,) = store.runs()
    assert info.run_id == "fresh-1"
    with open(tmp_path / "s.json", encoding="utf-8") as stream:
        summary = json.load(stream)
    assert summary["observatory"]["ingested"] == ["fresh-1"]
    assert summary["observatory"]["drift_gated"] is False

    # second run: idempotent by run id
    out = io.StringIO()
    run_gate(results, baselines_dir=baselines,
             summary_path=str(tmp_path / "s.json"),
             observatory=observatory, out=out)
    assert "1 already known" in out.getvalue()


def test_fail_on_drift_trips_on_regressed_history(tmp_path):
    observatory = str(tmp_path / "obs")
    store = ObservatoryStore(observatory)
    store.add_run(record_from_profile_db(
        profile_db(lambda n: 10 * n), run_id="old",
        timestamp="2026-07-01T00:00:00+00:00"))
    store.add_run(record_from_profile_db(
        profile_db(lambda n: n * n), run_id="new",
        timestamp="2026-07-02T00:00:00+00:00"))
    store.close()

    results, baselines = gate_dirs(tmp_path, {"speedup": 2.0}, {"speedup": 2.1})
    summary_path = str(tmp_path / "s.json")
    out = io.StringIO()
    code = run_gate(results, baselines_dir=baselines,
                    summary_path=summary_path,
                    observatory=observatory, fail_on_drift=True, out=out)
    assert code == 1
    text = out.getvalue()
    assert "hot regressed O(n) -> O(n^2)" in text
    assert "growth-class drift" in text
    with open(summary_path, encoding="utf-8") as stream:
        summary = json.load(stream)
    assert summary["ok"] is False
    assert summary["observatory"]["drift_gated"] is True
    assert summary["observatory"]["drift_regressions"] == 1
    (alert,) = [a for a in summary["observatory"]["alerts"]
                if a["verdict"] == "regressed"]
    assert alert["routine"] == "hot"

    # without the gate flag the drift is reported but does not fail
    out = io.StringIO()
    code = run_gate(results, baselines_dir=baselines,
                    summary_path=summary_path,
                    observatory=observatory, fail_on_drift=False, out=out)
    assert code == 0
    assert "hot regressed" in out.getvalue()


def test_rebaseline_skips_non_envelope_json(tmp_path):
    results = str(tmp_path / "results")
    baselines = str(tmp_path / "baselines")
    write_envelope(results, "kernel.json", envelope("r1", {"speedup": 2.0}))
    write_envelope(results, "bench_gate_summary.json",
                   {"schema": SUMMARY_SCHEMA, "ok": True})
    write_envelope(results, "no_gate.json",
                   {"schema": "repro-bench/1", "run_id": "r2", "metrics": {}})
    out = io.StringIO()
    code = run_gate(results, baselines_dir=baselines, rebaseline=True, out=out)
    assert code == 0
    assert sorted(os.listdir(baselines)) == ["kernel.json"]


def latency_envelope(run_id, p99, bench="service_slap"):
    payload = envelope(run_id, {}, bench=bench)
    payload["metrics"]["gate"]["latency_ms"] = {"put_p99": p99}
    return payload


def test_latency_growth_past_tolerance_fails():
    base = latency_envelope("b", 10.0)
    fresh = latency_envelope("f", 14.0)
    (problem,) = compare_envelopes(base, fresh, "slap.json", 0.25)
    assert "latency_ms.put_p99 grew" in problem
    assert "40.0%" in problem


def test_latency_within_tolerance_passes():
    base = latency_envelope("b", 10.0)
    fresh = latency_envelope("f", 12.0)
    assert compare_envelopes(base, fresh, "slap.json", 0.25) == []


def test_latency_improvement_passes():
    base = latency_envelope("b", 10.0)
    fresh = latency_envelope("f", 2.0)
    assert compare_envelopes(base, fresh, "slap.json", 0.25) == []


def test_missing_latency_key_is_a_problem():
    base = latency_envelope("b", 10.0)
    fresh = envelope("f", {})
    (problem,) = compare_envelopes(base, fresh, "slap.json", 0.25)
    assert "latency_ms.put_p99 missing" in problem


def test_latency_gate_end_to_end(tmp_path):
    baselines = str(tmp_path / "baselines")
    results = str(tmp_path / "results")
    write_envelope(baselines, "slap.json", latency_envelope("base-1", 10.0))
    write_envelope(results, "slap.json", latency_envelope("fresh-1", 40.0))
    out = io.StringIO()
    code = run_gate(results, baselines_dir=baselines, tolerance=0.25,
                    summary_path=str(tmp_path / "s.json"), out=out)
    assert code == 1
    assert "latency_ms.put_p99 grew" in out.getvalue()


def test_no_baselines_is_a_failure(tmp_path):
    results = str(tmp_path / "results")
    write_envelope(results, "kernel.json", envelope("r1", {"speedup": 2.0}))
    out = io.StringIO()
    code = run_gate(results, baselines_dir=str(tmp_path / "missing"),
                    summary_path=str(tmp_path / "s.json"), out=out)
    assert code == 1
    assert "no baselines" in out.getvalue()
