"""Span-based tracing and the process-wide telemetry handle.

A *span* wraps one phase of the pipeline::

    with telemetry.span("analyze.shard", shard=3):
        ...

and records, on exit, a JSONL line with the span's name, id, parent id
(spans nest per thread), start offset from the run epoch, wall and CPU
seconds, attributes, and whether the body raised.  Span bodies are
never altered: exceptions propagate, and the profile computation a span
surrounds cannot observe the span — the differential tests hold the
telemetry layer to bit-identical profile output either way.

The module also owns the **current telemetry** of the process.  It
defaults to :data:`NULL`, whose spans are one shared no-op context
manager and whose metrics are shared no-op singletons — enabling the
instrumentation points sprinkled through the profiler, farm and CLI to
stay in place at effectively zero cost.  ``configure()`` swaps in a
live :class:`Telemetry`; the ``session()`` context manager scopes one
(the CLI's ``--telemetry DIR`` uses it).

**Distributed traces.**  Span ids are small per-process integers —
enough for nesting inside one log, useless for joining the client and
server halves of one service request recorded into *different* logs by
*different* processes.  A *trace context* adds the cross-process
layer: inside ``with telemetry.trace(trace_id, parent_uid):`` every
span additionally carries a globally meaningful identity —
``trace`` (the 16-hex trace id), ``uid``
(``<pid>.<instance>-<span_id>``, unique per host even when several
telemetry runs share one process) and ``parent_uid`` (the uid of the
enclosing span, *or the remote parent* the context was seeded with).  ``trace_carrier()``
exports the current position as a small dict the service puts in every
``repro-wire/1`` header; the receiving process seeds its own
``trace()`` scope from it, and ``repro trace`` later joins the logs on
``trace``/``uid``/``parent_uid``.  ``emit_span()`` records a span
*after the fact* from explicit timings — for phases measured outside a
``with`` block (frame decode, queue wait).  With no active trace
context, span records are byte-identical to what they always were.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Dict, List, Optional

from .jsonl import JsonlSink, resolve_log_path
from .registry import MetricsRegistry, NullRegistry

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "new_trace_id",
    "configure",
    "disable",
    "current",
    "session",
    "span",
    "event",
    "counter",
    "gauge",
    "histogram",
    "trace",
    "trace_carrier",
    "emit_span",
]


def new_trace_id() -> str:
    """A fresh 16-hex trace id (random, collision-safe across hosts)."""
    return os.urandom(8).hex()


_instance_lock = threading.Lock()
_instance_count = 0


def _next_instance() -> int:
    """Distinct number per Telemetry of this process (uid namespace)."""
    global _instance_count
    with _instance_lock:
        _instance_count += 1
        return _instance_count


class _TraceScope:
    """One activation of a trace context on one thread (re-entrant)."""

    __slots__ = ("_telemetry", "trace_id", "parent_uid", "uid_stack")

    def __init__(self, telemetry: "Telemetry", trace_id: Optional[str],
                 parent_uid: Optional[str]):
        self._telemetry = telemetry
        self.trace_id = trace_id or new_trace_id()
        self.parent_uid = parent_uid
        self.uid_stack: List[str] = []

    def __enter__(self) -> "_TraceScope":
        self._telemetry._trace_stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._telemetry._trace_stack()
        if stack and stack[-1] is self:
            stack.pop()


class _Span:
    """Context manager for one span of one :class:`Telemetry`."""

    __slots__ = ("_telemetry", "name", "attrs", "span_id", "parent",
                 "trace_id", "uid", "parent_uid", "_wall0", "_cpu0", "_start")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict):
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent: Optional[int] = None
        self.trace_id: Optional[str] = None
        self.uid: Optional[str] = None
        self.parent_uid: Optional[str] = None

    def set(self, **attrs) -> "_Span":
        """Attach attributes discovered while the span body runs."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        telemetry = self._telemetry
        self.span_id = telemetry._next_id()
        stack = telemetry._stack()
        self.parent = stack[-1] if stack else None
        stack.append(self.span_id)
        scope = telemetry._trace_top()
        if scope is not None:
            self.trace_id = scope.trace_id
            self.uid = telemetry._make_uid(self.span_id)
            self.parent_uid = (scope.uid_stack[-1] if scope.uid_stack
                               else scope.parent_uid)
            scope.uid_stack.append(self.uid)
        self._start = time.time() - telemetry.epoch
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        telemetry = self._telemetry
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        stack = telemetry._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent,
            "start": round(self._start, 6),
            "wall": round(wall, 6),
            "cpu": round(cpu, 6),
            "ok": exc_type is None,
        }
        if self.uid is not None:
            scope = telemetry._trace_top()
            if scope is not None and scope.uid_stack \
                    and scope.uid_stack[-1] == self.uid:
                scope.uid_stack.pop()
            record["trace"] = self.trace_id
            record["uid"] = self.uid
            if self.parent_uid is not None:
                record["parent_uid"] = self.parent_uid
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        telemetry.emit(record)
        # every span also feeds the wall-time histogram, so metric data
        # alone can answer "where did the time go" without the span log
        telemetry.registry.histogram("span.wall_ms", span=self.name).observe(
            wall * 1000.0)


class Telemetry:
    """A live telemetry run: one registry plus an optional JSONL sink."""

    enabled = True

    def __init__(self, path: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = JsonlSink(resolve_log_path(path)) if path else None
        self.epoch = time.time()
        # span ids are small per-instance integers; the uid prefix keeps
        # them host-unique even when one process runs several telemetries
        # (the pid alone is not enough for e.g. in-process server tests)
        self._uid_prefix = f"{os.getpid():x}.{_next_instance():x}"
        self._id_lock = threading.Lock()
        self._last_id = 0
        self._local = threading.local()
        self._closed = False
        self.emit({
            "type": "meta", "version": 1, "epoch": round(self.epoch, 3),
            "pid": os.getpid(),
        })

    # -- span plumbing ------------------------------------------------------

    def _next_id(self) -> int:
        with self._id_lock:
            self._last_id += 1
            return self._last_id

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- trace-context plumbing ---------------------------------------------

    def _trace_stack(self) -> List[_TraceScope]:
        stack = getattr(self._local, "trace_stack", None)
        if stack is None:
            stack = self._local.trace_stack = []
        return stack

    def _trace_top(self) -> Optional[_TraceScope]:
        stack = getattr(self._local, "trace_stack", None)
        return stack[-1] if stack else None

    def _make_uid(self, span_id: int) -> str:
        return f"{self._uid_prefix}-{span_id:x}"

    def trace(self, trace_id: Optional[str] = None,
              parent_uid: Optional[str] = None) -> _TraceScope:
        """Activate a trace context on this thread (``with`` target).

        Without arguments a fresh trace id is minted (the client side);
        with the ``id``/``parent`` of a received carrier the local
        spans continue the remote trace (the server side).
        """
        return _TraceScope(self, trace_id, parent_uid)

    def trace_carrier(self) -> Optional[Dict]:
        """The current trace position as a wire-able ``{id, parent}`` dict.

        ``None`` when no trace context is active on this thread — the
        caller attaches nothing and the request travels untraced.
        """
        scope = self._trace_top()
        if scope is None:
            return None
        parent = scope.uid_stack[-1] if scope.uid_stack else scope.parent_uid
        carrier: Dict = {"id": scope.trace_id}
        if parent is not None:
            carrier["parent"] = parent
        return carrier

    def emit_span(
        self,
        name: str,
        start_time: float,
        wall: float,
        cpu: float = 0.0,
        trace_id: Optional[str] = None,
        parent_uid: Optional[str] = None,
        ok: bool = True,
        **attrs,
    ) -> Optional[str]:
        """Record a span measured outside a ``with`` block; returns its uid.

        ``start_time`` is absolute (``time.time()``); the record stores
        it relative to the run epoch like every live span.  Trace
        identity defaults to the active trace context (explicit
        ``trace_id``/``parent_uid`` override it — the retroactive
        linkage the service uses for frame decode and queue wait).
        """
        span_id = self._next_id()
        record = {
            "type": "span",
            "name": name,
            "id": span_id,
            "parent": None,
            "start": round(start_time - self.epoch, 6),
            "wall": round(max(0.0, wall), 6),
            "cpu": round(max(0.0, cpu), 6),
            "ok": ok,
        }
        uid: Optional[str] = None
        scope = self._trace_top()
        if trace_id is None and scope is not None:
            trace_id = scope.trace_id
            if parent_uid is None:
                parent_uid = (scope.uid_stack[-1] if scope.uid_stack
                              else scope.parent_uid)
        if trace_id is not None:
            uid = self._make_uid(span_id)
            record["trace"] = trace_id
            record["uid"] = uid
            if parent_uid is not None:
                record["parent_uid"] = parent_uid
        if attrs:
            record["attrs"] = attrs
        self.emit(record)
        self.registry.histogram("span.wall_ms", span=name).observe(
            max(0.0, wall) * 1000.0)
        return uid

    # -- public surface -----------------------------------------------------

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def event(self, name: str, **fields) -> None:
        self.emit({"type": "event", "name": name,
                   "start": round(time.time() - self.epoch, 6), **fields})

    def emit(self, record: Dict) -> None:
        """Write one raw record to the sink (no-op without a sink).

        The farm coordinator uses this to re-emit span and heartbeat
        records harvested from worker heartbeat files.
        """
        if self.sink is not None:
            self.sink.write(record)

    def counter(self, name: str, **labels):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels):
        return self.registry.histogram(name, **labels)

    def close(self) -> None:
        """Seal the run: write the metrics snapshot, close the sink."""
        if self._closed:
            return
        self._closed = True
        self.emit({"type": "metrics", "metrics": self.registry.snapshot()})
        if self.sink is not None:
            self.sink.close()


class _NullSpan:
    """The shared do-nothing span (also usable as a plain ``with`` target)."""

    __slots__ = ()
    name = None
    span_id = 0
    parent = None

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_REGISTRY = NullRegistry()


class NullTelemetry:
    """Disabled telemetry: every operation is a shared no-op."""

    enabled = False
    sink = None
    registry = _NULL_REGISTRY

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields) -> None:
        pass

    def emit(self, record: Dict) -> None:
        pass

    def counter(self, name: str, **labels):
        return _NULL_REGISTRY.counter(name)

    def gauge(self, name: str, **labels):
        return _NULL_REGISTRY.gauge(name)

    def histogram(self, name: str, **labels):
        return _NULL_REGISTRY.histogram(name)

    def current_span_id(self) -> Optional[int]:
        return None

    def trace(self, trace_id: Optional[str] = None,
              parent_uid: Optional[str] = None) -> _NullSpan:
        return _NULL_SPAN

    def trace_carrier(self) -> Optional[Dict]:
        return None

    def emit_span(self, name: str, start_time: float, wall: float,
                  cpu: float = 0.0, trace_id: Optional[str] = None,
                  parent_uid: Optional[str] = None, ok: bool = True,
                  **attrs) -> Optional[str]:
        return None

    def close(self) -> None:
        pass


NULL = NullTelemetry()

_current: "Telemetry | NullTelemetry" = NULL


def configure(path: Optional[str] = None,
              registry: Optional[MetricsRegistry] = None) -> Telemetry:
    """Install (and return) a live telemetry as the process current.

    ``path`` may be a run directory (the log becomes
    ``<path>/telemetry.jsonl``) or an explicit ``.jsonl`` file; with no
    path the run is metrics-only (no event log).
    """
    global _current
    telemetry = Telemetry(path, registry=registry)
    _current = telemetry
    return telemetry


def disable() -> None:
    """Close any live telemetry and restore the no-op default."""
    global _current
    _current.close()
    _current = NULL


def current() -> "Telemetry | NullTelemetry":
    return _current


@contextlib.contextmanager
def session(path: Optional[str] = None,
            registry: Optional[MetricsRegistry] = None):
    """Scoped telemetry: configure on entry, close and restore on exit."""
    global _current
    previous = _current
    telemetry = Telemetry(path, registry=registry)
    _current = telemetry
    try:
        yield telemetry
    finally:
        telemetry.close()
        _current = previous


# -- module-level conveniences (route to the current telemetry) -------------

def span(name: str, **attrs):
    return _current.span(name, **attrs)


def event(name: str, **fields) -> None:
    _current.event(name, **fields)


def counter(name: str, **labels):
    return _current.counter(name, **labels)


def gauge(name: str, **labels):
    return _current.gauge(name, **labels)


def histogram(name: str, **labels):
    return _current.histogram(name, **labels)


def trace(trace_id: Optional[str] = None, parent_uid: Optional[str] = None):
    return _current.trace(trace_id, parent_uid)


def trace_carrier() -> Optional[Dict]:
    return _current.trace_carrier()


def emit_span(name: str, start_time: float, wall: float, **kwargs):
    return _current.emit_span(name, start_time, wall, **kwargs)
