"""The telemetry event log: JSONL writing, reading, and run loading.

A telemetry *run* is one file, ``telemetry.jsonl``, inside a run
directory.  One JSON object per line, every record carrying a ``type``:

* ``meta`` — first line: format version, epoch, pid, argv;
* ``span`` — one completed span: name, ids, start offset, wall/CPU
  seconds, attributes, ok/error status;
* ``heartbeat`` — periodic worker progress (shard, phase, events, RSS);
* ``event`` — point-in-time annotations;
* ``metrics`` — the registry snapshot, written when the run closes.

Appending lines is crash-tolerant: a run that dies mid-flight leaves a
readable prefix (the reader skips a torn last line), unlike a single
JSON document.  The sink is lock-guarded and **pid-fenced**: a file
handle inherited across ``fork`` into a farm worker silently refuses to
write, so worker telemetry can only arrive through the heartbeat
channel the coordinator owns.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterator, List, Optional

__all__ = [
    "TELEMETRY_FILENAME",
    "JsonlSink",
    "iter_records",
    "resolve_log_path",
    "TelemetryRun",
]

TELEMETRY_FILENAME = "telemetry.jsonl"


def resolve_log_path(path: str) -> str:
    """Map a run directory to its log file; pass explicit files through.

    Anything that is not an explicit ``.jsonl`` file is a run directory
    — including one that does not exist yet (``--telemetry DIR`` must
    create ``DIR/telemetry.jsonl``, not a file named ``DIR``).
    """
    if path.endswith(".jsonl") and not os.path.isdir(path):
        return path
    return os.path.join(path, TELEMETRY_FILENAME)


class JsonlSink:
    """Serialized JSONL writer for one telemetry run."""

    def __init__(self, path: str):
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self.path = path
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._stream = open(path, "w", encoding="utf-8")

    def write(self, record: Dict) -> None:
        if os.getpid() != self._pid:  # forked child: not our log
            return
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._stream.closed:
                return
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if not self._stream.closed and os.getpid() == self._pid:
                self._stream.close()


def iter_records(path: str) -> Iterator[Dict]:
    """Yield every well-formed record of a telemetry log.

    A torn final line (interrupted run) is skipped rather than raised:
    partial observability of a crashed run is the whole point.
    """
    with open(resolve_log_path(path), "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record


class TelemetryRun:
    """One loaded telemetry log, indexed for rendering and assertions."""

    def __init__(self, records: List[Dict], path: Optional[str] = None):
        self.path = path
        self.records = records
        self.meta: Dict = {}
        self.spans: List[Dict] = []
        self.heartbeats: List[Dict] = []
        self.events: List[Dict] = []
        self.metrics: List[Dict] = []
        for record in records:
            kind = record.get("type")
            if kind == "meta":
                self.meta = record
            elif kind == "span":
                self.spans.append(record)
            elif kind == "heartbeat":
                self.heartbeats.append(record)
            elif kind == "event":
                self.events.append(record)
            elif kind == "metrics":
                self.metrics = record.get("metrics", [])

    @classmethod
    def load(cls, path: str) -> "TelemetryRun":
        resolved = resolve_log_path(path)
        return cls(list(iter_records(resolved)), path=resolved)

    # -- span access --------------------------------------------------------

    def span_names(self) -> List[str]:
        return sorted({span["name"] for span in self.spans})

    def spans_named(self, name: str) -> List[Dict]:
        return [span for span in self.spans if span["name"] == name]

    def children_of(self, span_id: Optional[int]) -> List[Dict]:
        return [span for span in self.spans if span.get("parent") == span_id]

    def span_totals(self) -> Dict[str, Dict]:
        """Per span name: call count, total wall, total CPU, max wall."""
        totals: Dict[str, Dict] = {}
        for span in self.spans:
            entry = totals.setdefault(
                span["name"], {"calls": 0, "wall": 0.0, "cpu": 0.0, "max_wall": 0.0})
            entry["calls"] += 1
            entry["wall"] += span.get("wall", 0.0)
            entry["cpu"] += span.get("cpu", 0.0)
            entry["max_wall"] = max(entry["max_wall"], span.get("wall", 0.0))
        return totals

    # -- metrics access -----------------------------------------------------

    def find_metrics(self, name: str, kind: Optional[str] = None, **labels) -> List[Dict]:
        wanted = set(labels.items())
        found = []
        for entry in self.metrics:
            if entry.get("name") != name:
                continue
            if kind is not None and entry.get("kind") != kind:
                continue
            if not wanted <= set(entry.get("labels", {}).items()):
                continue
            found.append(entry)
        return found

    def counter_value(self, name: str, **labels) -> int:
        return sum(entry["value"]
                   for entry in self.find_metrics(name, kind="counter", **labels))

    # -- heartbeat access ---------------------------------------------------

    def heartbeats_by_shard(self) -> Dict[int, List[Dict]]:
        shards: Dict[int, List[Dict]] = {}
        for beat in self.heartbeats:
            shards.setdefault(beat.get("shard", -1), []).append(beat)
        return shards
