"""Prometheus text exposition of a metrics-registry snapshot.

:func:`render_prometheus` turns the JSON-ready snapshot of a
:class:`~repro.telemetry.registry.MetricsRegistry` into the Prometheus
text exposition format (version 0.0.4) that every standard scraper
understands — the ``/metrics`` route of ``repro serve`` renders it on
demand straight from the server's live registry.

The mapping is mechanical and lossless:

* metric names are sanitized into the ``[a-zA-Z_:][a-zA-Z0-9_:]*``
  grammar (dots become underscores: ``service.ingest_ms`` →
  ``service_ingest_ms``); counters additionally get the conventional
  ``_total`` suffix;
* labels pass through with escaped values;
* the fixed log2 histograms become cumulative ``_bucket`` series:
  bucket ``i`` (observations in ``(2**(i-1), 2**i]``) contributes a
  ``le="2**i"`` bound, plus the mandatory ``le="+Inf"`` bucket, plus
  the ``_sum`` / ``_count`` pair.  Fixed boundaries mean the exposed
  buckets are stable across processes and scrapes — exactly what
  Prometheus' ``histogram_quantile`` needs.

``tools/check_metrics.py`` validates the rendered output in CI (name
grammar, cumulative monotonicity, ``+Inf`` == ``_count``).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Tuple

from .registry import bucket_bound

__all__ = ["CONTENT_TYPE", "metric_name", "escape_label", "render_prometheus"]

#: the Content-Type a /metrics response must declare
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """``name`` sanitized into the Prometheus metric-name grammar."""
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_label(value: object) -> str:
    """A label value escaped for the text exposition format."""
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _label_text(labels: Dict, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = [(metric_name(str(key)), escape_label(value))
             for key, value in sorted(labels.items())]
    items.extend(extra)
    if not items:
        return ""
    return "{" + ",".join(f'{key}="{value}"' for key, value in items) + "}"


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value == math.inf:
            return "+Inf"
        if value != value:  # NaN
            return "NaN"
        return repr(value)
    if isinstance(value, int):
        return str(value)
    return "0"


def _le_text(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    return f"{bound:g}"


def render_prometheus(snapshot: List[Dict]) -> str:
    """The registry snapshot in Prometheus text exposition format.

    ``snapshot`` is what ``MetricsRegistry.snapshot()`` (or
    ``merge_snapshots``) returns; entries sharing a name form one
    metric family (one ``# TYPE`` line, many labeled samples).
    """
    families: Dict[Tuple[str, str], List[Dict]] = {}
    order: List[Tuple[str, str]] = []
    for entry in snapshot:
        kind = entry.get("kind")
        if kind not in ("counter", "gauge", "histogram"):
            continue
        exposed = metric_name(str(entry.get("name", "")))
        if kind == "counter" and not exposed.endswith("_total"):
            exposed += "_total"
        key = (exposed, kind)
        if key not in families:
            families[key] = []
            order.append(key)
        families[key].append(entry)

    lines: List[str] = []
    for exposed, kind in order:
        lines.append(f"# TYPE {exposed} {kind}")
        for entry in families[(exposed, kind)]:
            labels = entry.get("labels") or {}
            if kind in ("counter", "gauge"):
                lines.append(f"{exposed}{_label_text(labels)} "
                             f"{_format_value(entry.get('value', 0))}")
                continue
            # histogram: cumulative buckets over the fixed log2 bounds
            buckets = sorted((int(index), int(count))
                             for index, count in
                             (entry.get("buckets") or {}).items())
            cumulative = 0
            for index, count in buckets:
                cumulative += count
                bound = bucket_bound(index)
                if bound == math.inf:
                    continue        # folded into the +Inf bucket below
                lines.append(
                    f"{exposed}_bucket"
                    f"{_label_text(labels, (('le', _le_text(bound)),))} "
                    f"{cumulative}")
            count_total = int(entry.get("count", cumulative))
            lines.append(
                f"{exposed}_bucket{_label_text(labels, (('le', '+Inf'),))} "
                f"{count_total}")
            lines.append(f"{exposed}_sum{_label_text(labels)} "
                         f"{_format_value(float(entry.get('sum', 0.0)))}")
            lines.append(f"{exposed}_count{_label_text(labels)} "
                         f"{count_total}")
    return "\n".join(lines) + ("\n" if lines else "")
