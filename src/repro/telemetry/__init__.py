"""Telemetry: how the profiling pipeline observes *itself*.

The paper's evaluation is a set of meta-measurements (Table 1's
slowdowns, events/second, memory overhead); this package gives the
reproduction the machinery to make such measurements first-class on
every run instead of once per paper:

* :mod:`repro.telemetry.registry` — lock-safe counters, gauges and
  fixed log-bucket histograms, usable from the online profiler and
  from farm workers alike;
* :mod:`repro.telemetry.spans` — nested span tracing (wall + CPU) and
  the process-wide current telemetry (``configure`` / ``session`` /
  no-op ``NULL`` default);
* :mod:`repro.telemetry.jsonl` — the ``telemetry.jsonl`` event-log
  format, its reader, and :class:`TelemetryRun` (what ``repro stats``
  loads);
* :mod:`repro.telemetry.overhead` — Table-1-style self-overhead runs
  (``repro overhead``), reported from telemetry data alone.

Two contracts, both enforced by tests: telemetry is **zero-cost when
disabled** (the default telemetry is a shared no-op), and telemetry
**never perturbs profiles** — the farm differential suite asserts
bit-identical output with telemetry on and off.  See docs/TELEMETRY.md.
"""

from .jsonl import TELEMETRY_FILENAME, JsonlSink, TelemetryRun, iter_records, resolve_log_path
from .prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .prometheus import render_prometheus
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    bucket_bound,
    bucket_counts,
    bucket_index,
    merge_snapshots,
    quantile_from_buckets,
    quantiles_from_buckets,
)
from .spans import (
    NULL,
    NullTelemetry,
    Telemetry,
    configure,
    counter,
    current,
    disable,
    emit_span,
    event,
    gauge,
    histogram,
    new_trace_id,
    session,
    span,
    trace,
    trace_carrier,
)

__all__ = [
    "TELEMETRY_FILENAME",
    "JsonlSink",
    "TelemetryRun",
    "iter_records",
    "resolve_log_path",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "bucket_bound",
    "bucket_counts",
    "bucket_index",
    "merge_snapshots",
    "quantile_from_buckets",
    "quantiles_from_buckets",
    "NULL",
    "NullTelemetry",
    "Telemetry",
    "configure",
    "counter",
    "current",
    "disable",
    "emit_span",
    "event",
    "gauge",
    "histogram",
    "new_trace_id",
    "session",
    "span",
    "trace",
    "trace_carrier",
]
