"""Lock-safe metrics registry: counters, gauges, log-bucket histograms.

The registry is the telemetry layer's aggregation primitive.  It is
deliberately tiny and dependency-free so it can live in two very
different places at once:

* inside the *online* profiler and the farm coordinator, where it must
  never perturb the profiled computation (no I/O on the hot path, one
  short-held lock per update);
* inside farm worker processes, whose registries never cross the
  process boundary directly — workers report through heartbeat files
  and the coordinator re-aggregates.

Metrics are identified by ``(name, labels)``; labels are arbitrary
keyword arguments (``registry.counter("farm.retries", shard=3)``), so
per-shard and per-tool series coexist under one metric name.

Histograms use **fixed log-scale buckets**: bucket ``i`` counts
observations in ``(2**(i-1), 2**i]`` (bucket 0 is ``(-inf, 1]``, the
last bucket is unbounded).  Fixed boundaries make histograms from
different runs — or different processes — mergeable by plain addition,
the same discipline the profile merge layer follows.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "bucket_index",
    "bucket_bound",
    "bucket_counts",
    "quantile_from_buckets",
    "quantiles_from_buckets",
    "merge_snapshots",
]

#: histogram buckets beyond this index collapse into one overflow bucket
MAX_BUCKET = 63

LabelItems = Tuple[Tuple[str, object], ...]


def bucket_index(value: float) -> int:
    """The fixed log-scale bucket of ``value``.

    ``0`` for anything ≤ 1 (including negatives: telemetry observes
    durations and sizes, where sub-unit values are all "tiny"), then one
    bucket per power of two, capped at :data:`MAX_BUCKET`.
    """
    if value <= 1:
        return 0
    ceiling = math.ceil(value)
    return min(MAX_BUCKET, (int(ceiling) - 1).bit_length())


def bucket_bound(index: int) -> float:
    """Inclusive upper bound of bucket ``index`` (``inf`` for the last)."""
    if index >= MAX_BUCKET:
        return math.inf
    return float(2 ** index)


def bucket_counts(values) -> Dict[int, int]:
    """The log2 bucket counts of an iterable of raw observations."""
    buckets: Dict[int, int] = {}
    for value in values:
        index = bucket_index(value)
        buckets[index] = buckets.get(index, 0) + 1
    return buckets


def quantile_from_buckets(buckets, count: int, fraction: float) -> float:
    """Estimate one quantile from log2 bucket counts.

    The shared estimator behind every p50/p95/p99 the repo reports from
    histogram data (``repro slap``, the service SLO tracker): find the
    bucket holding the nearest-rank observation and interpolate linearly
    inside its ``(lower, upper]`` range.  Accepts bucket keys as ints or
    strings (metric snapshots serialize them as strings).  Exact to
    within one bucket width by construction — the price of mergeable
    fixed buckets over raw samples.
    """
    if count <= 0 or not buckets:
        return 0.0
    ordered = sorted((int(index), int(n)) for index, n in buckets.items())
    rank = min(count, max(1, math.ceil(fraction * count)))
    cumulative = 0
    for index, n in ordered:
        if n <= 0:
            continue
        if cumulative + n >= rank:
            lower = 0.0 if index == 0 else bucket_bound(index - 1)
            upper = bucket_bound(index)
            if upper == math.inf:       # unbounded overflow bucket:
                return lower            # report its (huge) lower bound
            position = (rank - cumulative) / n
            return lower + position * (upper - lower)
        cumulative += n
    return bucket_bound(ordered[-1][0])


def quantiles_from_buckets(buckets, count: int, fractions) -> List[float]:
    """`quantile_from_buckets` over several fractions (monotone result)."""
    return [quantile_from_buckets(buckets, count, fraction)
            for fraction in fractions]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_lock", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that goes up and down (RSS, queue depth, space bytes)."""

    __slots__ = ("name", "labels", "_lock", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self.value = 0

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def add(self, amount) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed log-scale bucket histogram (see module docstring)."""

    __slots__ = ("name", "labels", "_lock", "buckets", "count", "total")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = bucket_index(value)
        with self._lock:
            self.buckets[index] = self.buckets.get(index, 0) + 1
            self.count += 1
            self.total += value

    def quantile(self, fraction: float) -> float:
        """Estimated quantile of the observations (log2-bucket resolution)."""
        with self._lock:
            return quantile_from_buckets(self.buckets, self.count, fraction)

    def snapshot(self) -> Dict:
        with self._lock:
            buckets = {str(index): count
                       for index, count in sorted(self.buckets.items())}
            return {"kind": self.kind, "name": self.name,
                    "labels": dict(self.labels), "count": self.count,
                    "sum": self.total, "buckets": buckets}


class MetricsRegistry:
    """Get-or-create home of every metric of one process/run.

    Creation is serialized on one registry lock; each metric then
    guards its own updates, so hot counters in different subsystems
    never contend with each other.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, str, LabelItems], object] = {}

    def _get(self, factory, name: str, labels: Dict):
        key = (factory.kind, name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = factory(name, key[2])
                    self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> List[Dict]:
        """Every metric as a JSON-ready dict, deterministically ordered."""
        with self._lock:
            metrics = list(self._metrics.items())
        metrics.sort(key=lambda item: (item[0][1], item[0][0], item[0][2]))
        return [metric.snapshot() for _, metric in metrics]

    def find(self, name: str, kind: Optional[str] = None, **labels) -> List[Dict]:
        """Snapshots of the metrics matching ``name`` (and labels subset)."""
        wanted = set(labels.items())
        found = []
        for entry in self.snapshot():
            if entry["name"] != name:
                continue
            if kind is not None and entry["kind"] != kind:
                continue
            if not wanted <= set(entry["labels"].items()):
                continue
            found.append(entry)
        return found


def merge_snapshots(snapshots) -> List[Dict]:
    """Merge metric snapshot lists (counters/sums add, gauges take max).

    The coordinator uses this to fold worker-reported metrics into the
    run's registry view; fixed histogram buckets make the merge exact.
    """
    merged: Dict[Tuple[str, str, LabelItems], Dict] = {}
    for snapshot in snapshots:
        for entry in snapshot:
            key = (entry["kind"], entry["name"],
                   tuple(sorted(entry["labels"].items())))
            into = merged.get(key)
            if into is None:
                merged[key] = {**entry, "labels": dict(entry["labels"]),
                               **({"buckets": dict(entry["buckets"])}
                                  if entry["kind"] == "histogram" else {})}
                continue
            if entry["kind"] == "counter":
                into["value"] += entry["value"]
            elif entry["kind"] == "gauge":
                into["value"] = max(into["value"], entry["value"])
            else:
                into["count"] += entry["count"]
                into["sum"] += entry["sum"]
                for index, count in entry["buckets"].items():
                    into["buckets"][index] = into["buckets"].get(index, 0) + count
    return [merged[key] for key in sorted(merged, key=lambda k: (k[1], k[0], k[2]))]


class NullCounter:
    """No-op counter: the disabled-telemetry fast path."""

    __slots__ = ()
    kind = "counter"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class NullGauge:
    __slots__ = ()
    kind = "gauge"
    value = 0

    def set(self, value) -> None:
        pass

    def add(self, amount) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    kind = "histogram"
    count = 0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, fraction: float) -> float:
        return 0.0


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry whose metrics all discard their updates.

    Shared singletons make ``telemetry.counter(...).inc()`` allocation-
    free when telemetry is off — the zero-cost-when-disabled contract.
    """

    def counter(self, name: str, **labels) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels) -> NullHistogram:
        return _NULL_HISTOGRAM

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> List[Dict]:
        return []

    def find(self, name: str, kind: Optional[str] = None, **labels) -> List[Dict]:
        return []
