"""Self-overhead accounting: measure the profiler with the profiler off.

The paper's Table 1 is a meta-measurement — how much slower and heavier
is a run *under* each tool than native.  ``repro overhead`` reproduces
that discipline for this codebase: it runs one benchmark natively
(``tools=None``) and under a set of analysis tools, records every
observation into a telemetry registry, and renders the slowdown/space
report **from the telemetry data alone** — the renderer only ever sees
a metrics snapshot, so a saved ``telemetry.jsonl`` from another machine
renders identically.

Metric names (all gauges/counters under the ``overhead.`` prefix):

* ``overhead.wall_seconds{tool,repeat}`` — wall time of one run;
* ``overhead.space_bytes{tool}`` — peak analysis (shadow) state;
* ``overhead.blocks{tool}`` — basic blocks executed (work sanity check);
* ``overhead.runs{tool}`` — runs performed.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from .spans import Telemetry, current

__all__ = ["DEFAULT_TOOLS", "measure_overhead", "render_overhead_report"]

#: default tool set: the no-analysis floor plus the paper's two profilers
DEFAULT_TOOLS = ("nulgrind", "aprof-rms", "aprof-trms")

NATIVE = "native"


def measure_overhead(
    bench_name: str,
    threads: int = 4,
    scale: float = 1.0,
    tools: Sequence[str] = DEFAULT_TOOLS,
    repeats: int = 3,
    telemetry: Optional[Telemetry] = None,
) -> Telemetry:
    """Run ``bench_name`` native and under ``tools``; return the telemetry.

    Uses the current telemetry when one is live so the observations land
    in the session's event log; otherwise spins up a private metrics-only
    run (overhead accounting must work without ``--telemetry``).
    """
    from ..tools import make_tool
    from ..workloads import benchmark

    tele = telemetry if telemetry is not None else current()
    if not tele.enabled:
        tele = Telemetry()
    bench = benchmark(bench_name)

    bench.run(tools=None, threads=threads, scale=scale)  # warm-up
    with tele.span("overhead.bench", benchmark=bench_name,
                   threads=threads, scale=scale, repeats=repeats):
        for config in (NATIVE, *tools):
            for repeat in range(max(1, repeats)):
                tool = None if config == NATIVE else make_tool(config)
                with tele.span("overhead.run", tool=config, repeat=repeat):
                    started = time.perf_counter()
                    machine = bench.run(tools=tool, threads=threads, scale=scale)
                    wall = time.perf_counter() - started
                tele.gauge("overhead.wall_seconds",
                           tool=config, repeat=repeat).set(round(wall, 6))
                tele.counter("overhead.runs", tool=config).inc()
                blocks_gauge = tele.gauge("overhead.blocks", tool=config)
                blocks_gauge.set(max(blocks_gauge.value,
                                     machine.stats.total_blocks))
                if tool is not None:
                    space = tele.gauge("overhead.space_bytes", tool=config)
                    space.set(max(space.value, tool.space_bytes()))
    return tele


def _by_tool(metrics: List[Dict], name: str) -> Dict[str, List[Dict]]:
    grouped: Dict[str, List[Dict]] = {}
    for entry in metrics:
        if entry.get("name") == name:
            grouped.setdefault(entry["labels"]["tool"], []).append(entry)
    return grouped

def overhead_rows(metrics: List[Dict]) -> List[Tuple]:
    """Table-1-style rows from a metrics snapshot: one per configuration.

    Each row: ``(tool, best_seconds, slowdown_vs_native, space_bytes,
    blocks)``.  Best-of-N wall time, like the paper's methodology, so a
    single noisy repeat cannot manufacture overhead.
    """
    walls = _by_tool(metrics, "overhead.wall_seconds")
    spaces = _by_tool(metrics, "overhead.space_bytes")
    blocks = _by_tool(metrics, "overhead.blocks")
    if NATIVE not in walls:
        return []
    best = {tool: min(entry["value"] for entry in entries)
            for tool, entries in walls.items()}
    native = max(best[NATIVE], 1e-9)
    rows = []
    for tool in sorted(best, key=lambda name: (best[name], name)):
        rows.append((
            tool,
            best[tool],
            best[tool] / native,
            spaces.get(tool, [{"value": 0}])[0]["value"],
            blocks.get(tool, [{"value": 0}])[0]["value"],
        ))
    return rows


def render_overhead_report(metrics: List[Dict], title: str = "") -> str:
    """Render the slowdown/space table from a metrics snapshot alone."""
    from ..reporting.ascii_charts import table

    rows = overhead_rows(metrics)
    if not rows:
        return "no overhead measurements in this telemetry run\n"
    rendered = []
    for tool, seconds, slowdown, space, block_count in rows:
        rendered.append([
            tool,
            f"{seconds * 1000:.1f}ms",
            f"{slowdown:.2f}x",
            f"{space / 1024:.1f} KiB" if space else "-",
            block_count,
        ])
    headers = ["tool", "best wall", "slowdown", "analysis state", "blocks"]
    report = table(headers, rendered,
                   title=title or "self-overhead vs native (best of N)")
    by_name = {row[0]: row for row in rows}
    if "aprof-rms" in by_name and "aprof-trms" in by_name:
        ratio = by_name["aprof-trms"][1] / max(by_name["aprof-rms"][1], 1e-9)
        report += (f"trms over rms: {100 * (ratio - 1):+.0f}% run time "
                   f"(paper, Table 1: +38%)\n")
    return report
