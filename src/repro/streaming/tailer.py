"""Chunk tailer: follow a growing v2 trace, chunk by sealed chunk.

A live recorder (``repro record --live``) flushes every sealed chunk
to the OS the moment it is full (:meth:`BinaryTraceWriter._flush_chunk`
now syncs — PR satellite), so the bytes of a growing trace are always
``magic · sealed chunks · [partial tail]`` and, once the writer calls
``close``, ``· footer · trailer``.  The tailer turns that into a pull
API:

* :meth:`ChunkTailer.poll` parses and returns every *complete* chunk
  that appeared since the last poll (bounded per poll — backpressure,
  see below), leaving a partial trailing chunk alone to be re-polled;
* routine names arrive through the live sidecar
  (:func:`repro.farm.binfmt.live_names_path`): the writer appends each
  newly interned name *before* flushing the chunk that first uses it,
  so :attr:`names` always covers every delivered chunk;
* each poll first looks for the seal; once the trailer lands, the
  footer becomes the authoritative chunk index and name table, the
  remaining chunks drain, and :attr:`sealed` flips;
* :meth:`finish` is the end-of-stream check: on a file whose writer
  died mid-flush it raises :class:`~repro.farm.binfmt.TruncatedChunk`
  — typed and *recoverable*: everything delivered before the tear is a
  valid prefix.

Backpressure: ``max_chunks_per_poll`` bounds how much a single poll
may decode, so a tailer that woke up far behind the writer drains in
bounded-memory slices instead of swallowing the backlog whole;
:attr:`stalls` counts polls that hit the bound and
:meth:`pending_events_estimate` sizes the backlog (the
``streaming.events_behind`` gauge).
"""

from __future__ import annotations

import os
from typing import IO, List, Optional

from .. import telemetry
from ..core.tracefile import unescape_name
from ..farm.binfmt import (
    BINARY_MAGIC,
    BinaryTraceError,
    ChunkColumns,
    ChunkMeta,
    TraceMeta,
    TruncatedChunk,
    _CHUNK_FIXED,
    _RECORD_BYTES,
    _THREAD_COUNT,
    _TRAILER,
    decode_chunk_columns,
    live_names_path,
    read_trace_meta,
)

__all__ = ["ChunkTailer", "DEFAULT_MAX_CHUNKS_PER_POLL"]

DEFAULT_MAX_CHUNKS_PER_POLL = 64


class ChunkTailer:
    """Incrementally parse a growing v2 trace into sealed chunks.

    Args:
        path: the trace file (may not exist yet).
        names_path: the live names sidecar; defaults to
            ``path + ".names"``.  Optional — without it the tailer only
            learns names when the footer lands.
        max_chunks_per_poll: backpressure bound; at most this many
            chunks are parsed and returned per :meth:`poll`.
    """

    def __init__(
        self,
        path: str,
        names_path: Optional[str] = None,
        max_chunks_per_poll: int = DEFAULT_MAX_CHUNKS_PER_POLL,
    ):
        if max_chunks_per_poll <= 0:
            raise ValueError("max_chunks_per_poll must be positive")
        self.path = path
        self.names_path = live_names_path(path) if names_path is None else names_path
        self.max_chunks_per_poll = max_chunks_per_poll
        #: routine names seen so far (sidecar prefix, or full footer table)
        self.names: List[str] = []
        #: every chunk delivered so far, in trace order
        self.chunks: List[ChunkMeta] = []
        #: footer metadata, set once the seal is observed
        self.meta: Optional[TraceMeta] = None
        self.sealed = False
        self.events_seen = 0
        #: polls that were cut short by ``max_chunks_per_poll``
        self.stalls = 0
        self._stream: Optional[IO[bytes]] = None
        self._offset = 0              # next unparsed byte (0 = magic unchecked)
        self._next_pos = 0            # global position the next chunk must start at
        self._names_offset = 0        # consumed bytes of the sidecar
        self._pending: List[ChunkMeta] = []   # sealed-footer chunks not yet delivered
        self._tail_size = 0           # file size at the last poll

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "ChunkTailer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def drained(self) -> bool:
        """True once the trace is sealed and every chunk was delivered."""
        return self.sealed and not self._pending

    # -- polling -----------------------------------------------------------------

    def _open(self) -> Optional[IO[bytes]]:
        if self._stream is None:
            try:
                self._stream = open(self.path, "rb")
            except FileNotFoundError:
                return None
        return self._stream

    def refresh_names(self) -> int:
        """Pull newly flushed names from the sidecar; returns new count."""
        if self.sealed:
            return 0
        try:
            with open(self.names_path, "r", encoding="utf-8") as stream:
                stream.seek(self._names_offset)
                block = stream.read()
        except FileNotFoundError:
            return 0
        added = 0
        consumed = 0
        for line in block.splitlines(keepends=True):
            if not line.endswith("\n"):
                break  # torn tail line: re-read next poll
            self.names.append(unescape_name(line[:-1]))
            consumed += len(line.encode("utf-8"))
            added += 1
        self._names_offset += consumed
        return added

    def _check_seal(self, stream: IO[bytes], size: int) -> bool:
        """Look for a valid trailer+footer; adopt it when present."""
        if size < len(BINARY_MAGIC) + _TRAILER.size:
            return False
        try:
            meta = read_trace_meta(stream)
        except BinaryTraceError:
            return False
        # The footer's chunk index is authoritative: queue everything we
        # have not yet delivered (matched by global position).
        self.meta = meta
        self.names = list(meta.names)
        self._pending = [c for c in meta.chunks if c.first_pos >= self._next_pos]
        self.sealed = True
        return True

    def _parse_unsealed(self, stream: IO[bytes], size: int, budget: int) -> List[ChunkMeta]:
        """Sequentially parse complete chunks between offset and EOF."""
        fresh: List[ChunkMeta] = []
        while budget > 0:
            offset = self._offset
            if offset + _CHUNK_FIXED.size > size:
                break
            stream.seek(offset)
            fixed = stream.read(_CHUNK_FIXED.size)
            if len(fixed) != _CHUNK_FIXED.size:
                break
            payload_bytes, events, first_pos, writes, n_threads = _CHUNK_FIXED.unpack(fixed)
            if (events <= 0 or n_threads <= 0
                    or payload_bytes != events * _RECORD_BYTES
                    or first_pos != self._next_pos):
                # Not a chunk header: either the footer is being written
                # (the seal will resolve it next poll) or the file is
                # torn (finish() reports that).  Stop without progress.
                break
            header_size = _CHUNK_FIXED.size + _THREAD_COUNT.size * n_threads
            if offset + header_size + payload_bytes > size:
                break  # partial trailing chunk: re-poll later
            raw = stream.read(_THREAD_COUNT.size * n_threads)
            if len(raw) != _THREAD_COUNT.size * n_threads:
                break
            counts = {thread: count for thread, count in _THREAD_COUNT.iter_unpack(raw)}
            if sum(counts.values()) != events:
                break  # implausible header: treat like a non-chunk
            chunk = ChunkMeta(offset, offset + header_size, payload_bytes,
                              events, first_pos, writes, counts)
            fresh.append(chunk)
            self._offset = offset + header_size + payload_bytes
            self._next_pos = chunk.last_pos
            budget -= 1
        return fresh

    def poll(self) -> List[ChunkColumns]:
        """Deliver every complete chunk that appeared since last poll.

        Returns decoded :class:`ChunkColumns` in trace order (at most
        ``max_chunks_per_poll`` of them).  An empty list means either
        no new sealed chunk yet (re-poll later) or, if :attr:`drained`,
        end of stream.
        """
        stream = self._open()
        if stream is None:
            return []
        size = os.fstat(stream.fileno()).st_size
        self._tail_size = size
        if self._offset == 0:
            if size < len(BINARY_MAGIC):
                return []
            stream.seek(0)
            if stream.read(len(BINARY_MAGIC)) != BINARY_MAGIC:
                raise BinaryTraceError(f"{self.path}: not a binary trace (bad magic)")
            self._offset = len(BINARY_MAGIC)
        budget = self.max_chunks_per_poll
        with telemetry.span("stream.tail", path=os.path.basename(self.path)) as tail_span:
            if not self.sealed:
                self.refresh_names()
                if not self._check_seal(stream, size):
                    fresh = self._parse_unsealed(stream, size, budget)
                else:
                    fresh = []
            else:
                fresh = []
            if self.sealed and self._pending:
                take = min(budget, len(self._pending))
                fresh = self._pending[:take]
                self._pending = self._pending[take:]
            if len(fresh) == budget and (self._pending or self._offset < size):
                self.stalls += 1
            columns: List[ChunkColumns] = []
            for chunk in fresh:
                with telemetry.span("stream.decode", events=chunk.events):
                    columns.append(decode_chunk_columns(stream, chunk))
            self.chunks.extend(fresh)
            self.events_seen += sum(chunk.events for chunk in fresh)
            tail_span.set(chunks=len(columns), sealed=self.sealed)
        return columns

    # -- accounting --------------------------------------------------------------

    def pending_events_estimate(self) -> int:
        """Approximate events on disk not yet delivered (the backlog)."""
        if self.sealed:
            return sum(chunk.events for chunk in self._pending)
        pending_bytes = max(0, self._tail_size - max(self._offset, len(BINARY_MAGIC)))
        return pending_bytes // _RECORD_BYTES

    def finish(self) -> None:
        """Assert end of stream; raise on a torn tail.

        Call when the producer is known to be gone.  A clean seal (or a
        bare magic-only file) passes; leftover bytes that never became
        a chunk or a seal raise :class:`TruncatedChunk` — the typed,
        recoverable signal that everything already delivered is a valid
        prefix of the interrupted run.
        """
        self.poll()
        if self.sealed:
            return
        leftover = self._tail_size - max(self._offset, len(BINARY_MAGIC))
        if self._tail_size and self._offset == 0:
            leftover = self._tail_size  # never even saw a full magic
        if leftover > 0:
            raise TruncatedChunk(
                f"{self.path}: unsealed trace with {leftover} torn trailing "
                f"byte(s) after {self.events_seen} delivered event(s) — "
                "writer killed mid-flush?")
        if self.events_seen or self._tail_size:
            raise TruncatedChunk(
                f"{self.path}: trace was never sealed (no footer/trailer); "
                f"{self.events_seen} event(s) delivered form a valid prefix")
