"""``repro watch``: a live ASCII dashboard over streaming checkpoints.

Renders the newest checkpoint of a stream directory as a terminal
page: stream health (events analysed / behind, throughput, checkpoint
lag), then the top routines by *fitted growth class* — superlinear
classes float to the top because an asymptotic blowup mid-run is
exactly what a live profile exists to catch — each with its worst-case
cost sparkline.  Pure rendering: the CLI owns the refresh loop and the
optional co-tailing session.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.profile_data import ProfileDatabase
from ..curvefit.selection import select_model
from ..observatory.ingest import MIN_FIT_POINTS
from ..reporting.ascii_charts import sparkline

__all__ = ["render_watch", "routine_rows"]

_UNFIT = "~"   # fewer distinct sizes than any model needs


def routine_rows(
    db: ProfileDatabase, top: int = 10
) -> List[Tuple[str, str, int, int, str]]:
    """Top routines as ``(name, growth, calls, cost, sparkline)`` rows.

    Ranked by growth class (superlinear first), then by total cost —
    the watch-list ordering of "what is about to hurt".
    """
    merged = db.merged()
    fitted = []
    for routine in sorted(merged):
        profile = merged[routine]
        points = profile.worst_case_points()
        model, order = _UNFIT, -1
        if len(points) >= MIN_FIT_POINTS:
            try:
                selection = select_model(points)
                model = selection.name
                order = selection.best.model.order
            except ValueError:
                pass
        trend = sparkline([cost for _, cost in points[-24:]]) if points else ""
        fitted.append((order, (routine, model, profile.calls,
                               profile.cost_sum, trend)))
    fitted.sort(key=lambda item: (-item[0], -item[1][3], item[1][0]))
    return [row for _, row in fitted[:top]]


def _humanise(value: float) -> str:
    for bound, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= bound:
            return f"{value / bound:.1f}{suffix}"
    return f"{value:.0f}" if value == int(value) else f"{value:.1f}"


def render_watch(
    manifest: Dict,
    db: ProfileDatabase,
    top: int = 10,
    width: int = 78,
) -> str:
    """One full dashboard frame (trailing newline included)."""
    state = "closed" if manifest.get("closed") else "live"
    title = (f"repro watch — stream {manifest.get('stream_id', '?')} "
             f"· checkpoint #{manifest.get('seq', 0)} · {state}")
    lines = [title, "=" * min(width, max(len(title), 40))]
    lines.append(
        "events analyzed {:>10}   behind ~{:<8} throughput {:>9} ev/s".format(
            _humanise(manifest.get("events_analyzed", 0)),
            _humanise(manifest.get("events_behind", 0)),
            _humanise(manifest.get("events_per_s", 0.0)),
        ))
    lines.append(
        "checkpoint lag {:>8.1f} ms   stalls {:<9} emitted {}".format(
            float(manifest.get("lag_ms", 0.0)),
            manifest.get("stalls", 0),
            manifest.get("timestamp", "?"),
        ))
    lines.append("")
    rows = routine_rows(db, top=top)
    name_w = max([len("routine")] + [min(len(r[0]), 36) for r in rows])
    header = (f"{'routine':<{name_w}}  {'growth':<10} {'calls':>9} "
              f"{'cost':>12}  trend")
    lines.append(header)
    lines.append("-" * min(width, len(header) + 24))
    if not rows:
        lines.append("(no completed activations yet)")
    for routine, model, calls, cost, trend in rows:
        shown = routine if len(routine) <= 36 else routine[:33] + "..."
        growth = model if model != _UNFIT else "~"
        lines.append(
            f"{shown:<{name_w}}  {growth:<10} {_humanise(calls):>9} "
            f"{_humanise(cost):>12}  {trend}")
    return "\n".join(lines) + "\n"
