"""Live-profile observability: analyse the trace *while* it records.

The batch pipeline (record → seal → analyze) leaves a run invisible
until its trace file closes; a production firehose cannot wait that
long.  This package closes the gap, ROADMAP's "streaming analysis"
item:

* :mod:`repro.streaming.tailer` — :class:`ChunkTailer` follows a
  growing v2 trace chunk by sealed chunk (live names sidecar, torn
  tails typed as :class:`~repro.farm.binfmt.TruncatedChunk`,
  per-poll backpressure bounds);
* :mod:`repro.streaming.engine` — :class:`StreamingAnalyzer` keeps one
  whole-trace :class:`~repro.core.flatkernel.FlatAnalyzer` alive across
  polls ("merge as you go"); :class:`LiveProfileSession` glues tailer,
  analyzer and snapshots into one drive-able loop;
* :mod:`repro.streaming.snapshot` — :class:`SnapshotWriter` emits
  atomic, sequence-numbered partial ``repro-profile 1`` checkpoints
  (delta-encoded vs the previous snapshot where profitable) plus the
  ``CURRENT.json`` manifest that carries lag metrics;
* :mod:`repro.streaming.watch` — the ``repro watch`` ASCII dashboard
  (top routines by fitted growth class, throughput, checkpoint lag).

Contract, enforced by the streaming differential suite: once the trace
seals, the final streamed profile is **byte-identical** to batch
``repro analyze --kernel flat`` under *any* chunk-arrival schedule.
See docs/STREAMING.md.
"""

from .engine import (
    DEFAULT_CHECKPOINT_EVENTS,
    LiveProfileSession,
    StreamingAnalyzer,
    stream_id_for,
)
from .snapshot import (
    DELTA_MAGIC,
    MANIFEST_NAME,
    STREAM_SCHEMA,
    CheckpointInfo,
    SnapshotWriter,
    checkpoint_dump_bytes,
    load_checkpoint,
    load_manifest,
)
from .tailer import DEFAULT_MAX_CHUNKS_PER_POLL, ChunkTailer
from .watch import render_watch, routine_rows

__all__ = [
    "DEFAULT_CHECKPOINT_EVENTS",
    "DEFAULT_MAX_CHUNKS_PER_POLL",
    "DELTA_MAGIC",
    "MANIFEST_NAME",
    "STREAM_SCHEMA",
    "CheckpointInfo",
    "ChunkTailer",
    "LiveProfileSession",
    "SnapshotWriter",
    "StreamingAnalyzer",
    "checkpoint_dump_bytes",
    "load_checkpoint",
    "load_manifest",
    "render_watch",
    "routine_rows",
    "stream_id_for",
]
