"""Incremental analysis engine: the flat kernel fed by the tailer.

Streaming is "merge as you go": the exact associativity of the profile
merge (:mod:`repro.farm.merge`) means a prefix of chunks analysed now
plus the rest analysed later equals the batch run.  Concretely the
engine keeps one whole-trace :class:`~repro.core.flatkernel.FlatAnalyzer`
(``threads=None`` lazy mode) alive across polls and feeds it sealed
``ChunkColumns`` in trace order, so the final database — after
``finish()`` when the trace seals — is *bit-identical* to
``repro analyze --kernel flat`` (the streaming differential suite
compares the dumps byte for byte).

Bounded memory and backpressure: the analyzer's running state is the
same per-thread stacks + latest-access tables the batch kernel keeps —
streaming adds no history.  What *can* grow without bound is the
backlog between writer and reader; the session caps work per poll
(``max_chunks_per_poll``), holds back chunks whose routine names have
not yet arrived through the sidecar (bounded by ``max_held_chunks``,
after which polling pauses — backpressure), and accounts for all of it
(:attr:`StreamingAnalyzer.events_fed`, ``events_behind``, stall
counts) in every checkpoint manifest and the
``streaming.checkpoint_lag_ms`` / ``streaming.events_behind`` gauges.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import List, Optional

from .. import telemetry
from ..core.events import EventKind
from ..core.flatkernel import FlatAnalyzer
from ..core.profile_data import ProfileDatabase
from ..farm.binfmt import ChunkColumns, TruncatedChunk
from .snapshot import CheckpointInfo, SnapshotWriter
from .tailer import DEFAULT_MAX_CHUNKS_PER_POLL, ChunkTailer

__all__ = [
    "StreamingAnalyzer",
    "LiveProfileSession",
    "DEFAULT_CHECKPOINT_EVENTS",
    "stream_id_for",
]

DEFAULT_CHECKPOINT_EVENTS = 65536
_CALL = int(EventKind.CALL)


def stream_id_for(trace_path: str) -> str:
    """A stable stream id for a trace path (stable run ids downstream)."""
    digest = hashlib.sha256(os.path.abspath(trace_path).encode("utf-8"))
    return digest.hexdigest()[:12]


class StreamingAnalyzer:
    """A :class:`FlatAnalyzer` with a growable name table and tallies."""

    def __init__(self, context_sensitive: bool = False):
        self.db = ProfileDatabase()
        self.names: List[str] = []
        self.analyzer = FlatAnalyzer(None, self.names, self.db,
                                     context_sensitive=context_sensitive)
        self.events_fed = 0
        self.chunks_fed = 0
        self.finished = False

    def extend_names(self, names: List[str]) -> None:
        """Adopt a longer prefix-consistent name table from the tailer."""
        if len(names) > len(self.names):
            self.names.extend(names[len(self.names):])

    def max_call_id(self, columns: ChunkColumns) -> int:
        """Largest routine id the chunk's CALL records reference."""
        worst = -1
        for kind, arg in zip(columns.kinds, columns.args):
            if kind == _CALL and arg > worst:
                worst = arg
        return worst

    def feed(self, columns: ChunkColumns) -> None:
        with telemetry.span("stream.feed", events=columns.events,
                            first_pos=columns.first_pos):
            self.analyzer.feed(columns)
        self.events_fed += columns.events
        self.chunks_fed += 1

    def finish(self) -> ProfileDatabase:
        """Unwind pending activations; the database is now the batch result."""
        if not self.finished:
            self.analyzer.finish()
            self.finished = True
        return self.db


class LiveProfileSession:
    """Tail one growing trace into periodic profile checkpoints.

    Glues tailer → analyzer → snapshot writer.  Drive it with
    :meth:`step` (one poll; returns chunks consumed) and
    :meth:`finalize`, or let :meth:`run` loop until the trace seals.
    Checkpoints are cut every ``checkpoint_events`` fed events or
    ``checkpoint_seconds`` of wall time, whichever comes first, and
    once more — ``closed`` — after the final ``finish()``.
    """

    def __init__(
        self,
        trace_path: str,
        checkpoint_dir: str,
        stream_id: Optional[str] = None,
        checkpoint_events: int = DEFAULT_CHECKPOINT_EVENTS,
        checkpoint_seconds: float = 2.0,
        context_sensitive: bool = False,
        max_chunks_per_poll: int = DEFAULT_MAX_CHUNKS_PER_POLL,
        max_held_chunks: int = 256,
        full_every: int = 8,
    ):
        self.trace_path = trace_path
        self.stream_id = stream_id or stream_id_for(trace_path)
        self.checkpoint_events = checkpoint_events
        self.checkpoint_seconds = checkpoint_seconds
        self.tailer = ChunkTailer(trace_path, max_chunks_per_poll=max_chunks_per_poll)
        self.analyzer = StreamingAnalyzer(context_sensitive=context_sensitive)
        self.snapshots = SnapshotWriter(checkpoint_dir, self.stream_id,
                                        full_every=full_every)
        self.max_held_chunks = max_held_chunks
        self.checkpoints: List[CheckpointInfo] = []
        #: per-checkpoint freshness lag samples (ms) — bench fodder
        self.lag_samples_ms: List[float] = []
        self.hold_stalls = 0
        self.finalized = False
        self._held: List[ChunkColumns] = []
        self._since_checkpoint = 0
        self._oldest_unsnapshotted: Optional[float] = None
        self._last_checkpoint_at = time.perf_counter()
        self._started = time.perf_counter()

    # -- plumbing ----------------------------------------------------------------

    def _feed_ready(self) -> int:
        """Feed held chunks whose names have arrived; returns count fed."""
        fed = 0
        known = len(self.analyzer.names)
        while self._held and self.analyzer.max_call_id(self._held[0]) < known:
            columns = self._held.pop(0)
            self.analyzer.feed(columns)
            fed += 1
            if self._oldest_unsnapshotted is None:
                self._oldest_unsnapshotted = time.perf_counter()
            self._since_checkpoint += columns.events
        return fed

    def step(self) -> int:
        """One poll: tail, resolve names, feed; returns chunks consumed."""
        if len(self._held) >= self.max_held_chunks:
            # Names starved while chunks piled up: stop pulling bytes
            # until the sidecar (or the footer) catches up.
            self.hold_stalls += 1
            self.tailer.refresh_names()
            polled: List[ChunkColumns] = []
        else:
            polled = self.tailer.poll()
        self.analyzer.extend_names(self.tailer.names)
        self._held.extend(polled)
        consumed = self._feed_ready()
        due_events = self._since_checkpoint >= self.checkpoint_events
        due_time = (self._since_checkpoint > 0
                    and time.perf_counter() - self._last_checkpoint_at
                    >= self.checkpoint_seconds)
        if due_events or due_time:
            self.checkpoint()
        return consumed

    def checkpoint(self, closed: bool = False) -> CheckpointInfo:
        """Materialise the current partial profile as the next snapshot."""
        now = time.perf_counter()
        lag_ms = ((now - self._oldest_unsnapshotted) * 1000.0
                  if self._oldest_unsnapshotted is not None else 0.0)
        events_behind = (self.tailer.pending_events_estimate()
                         + sum(held.events for held in self._held))
        elapsed = max(now - self._started, 1e-9)
        events_per_s = self.analyzer.events_fed / elapsed
        with telemetry.span("stream.snapshot", closed=closed) as snap_span:
            info = self.snapshots.emit(
                self.analyzer.db,
                events_analyzed=self.analyzer.events_fed,
                events_behind=events_behind,
                lag_ms=lag_ms,
                events_per_s=events_per_s,
                closed=closed,
                timestamp=time.strftime("%Y-%m-%dT%H:%M:%S"),
                extra={
                    "trace": os.path.basename(self.trace_path),
                    "stalls": self.tailer.stalls + self.hold_stalls,
                },
            )
            snap_span.set(seq=info.seq, delta=info.delta,
                          bytes=info.bytes_written)
        telemetry.gauge("streaming.checkpoint_lag_ms").set(round(lag_ms, 3))
        telemetry.gauge("streaming.events_behind").set(events_behind)
        self.checkpoints.append(info)
        self.lag_samples_ms.append(lag_ms)
        self._since_checkpoint = 0
        self._oldest_unsnapshotted = None
        self._last_checkpoint_at = now
        return info

    # -- termination -------------------------------------------------------------

    @property
    def drained(self) -> bool:
        return self.tailer.drained and not self._held

    def finalize(self) -> ProfileDatabase:
        """Drain, unwind, and emit the final ``closed`` checkpoint.

        Raises :class:`~repro.farm.binfmt.TruncatedChunk` (after
        checkpointing what was recovered) when the trace never sealed —
        the recoverable-prefix contract.
        """
        if self.finalized:
            return self.analyzer.db
        while True:
            before = self.analyzer.chunks_fed
            self.step()
            if self.drained or self.analyzer.chunks_fed == before:
                break
        if self.drained:
            self.analyzer.finish()
            self.checkpoint(closed=True)
            self.finalized = True
            self.tailer.close()
            return self.analyzer.db
        try:
            self.tailer.finish()   # raises TruncatedChunk with the details
        except TruncatedChunk:
            self.checkpoint(closed=False)   # persist the recovered prefix
            self.tailer.close()
            raise
        # Nothing torn after all (e.g. the trace never materialised):
        # close out with whatever — possibly nothing — was analysed.
        self.analyzer.finish()
        self.checkpoint(closed=True)
        self.finalized = True
        self.tailer.close()
        return self.analyzer.db

    def run(self, poll_interval: float = 0.05,
            timeout: Optional[float] = None) -> ProfileDatabase:
        """Poll until the trace seals and drains, then finalize."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        while not (self.tailer.sealed and self.drained):
            consumed = self.step()
            if self.tailer.sealed and self.drained:
                break
            if not consumed:
                if deadline is not None and time.perf_counter() > deadline:
                    break
                time.sleep(poll_interval)
        return self.finalize()
