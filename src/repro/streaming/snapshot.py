"""Checkpoint emitter: periodic partial-profile snapshots, atomically.

While a trace streams, the incremental engine's
:class:`~repro.core.profile_data.ProfileDatabase` is a running partial
profile; this module materialises it for everything downstream (the
``repro watch`` dashboard, observatory ingest, ``put_stream`` uploads).
The design constraints:

* **Atomic + sequenced.**  Every checkpoint is written to a temp file
  and ``os.replace``\\ d into ``checkpoint-<seq>.profile`` (or
  ``.delta``); a ``CURRENT.json`` manifest — itself replaced atomically
  — names the newest sequence, its lag metrics, and the file chain a
  reader needs.  A reader never observes a half-written snapshot.

* **Delta-encoded where profitable** (Arafa et al.'s redundancy
  suppression, applied to snapshots): only the ``(routine, thread)``
  blocks whose stats changed since the previous checkpoint are written,
  under a ``repro-profile-delta 1`` header naming the base sequence.
  When the delta would not be smaller — early in a run nearly every
  block changes — a full ``repro-profile 1`` dump is written instead,
  and at least every ``full_every`` checkpoints regardless, to bound
  reader chain length.

* **Byte-compatible.**  Block text is produced by exactly the
  :func:`repro.farm.merge.save_profile` formatting rules, so
  :func:`checkpoint_dump_bytes` (base + deltas reassembled) is the very
  byte string ``save_profile`` would emit for the same database —
  that's what the streaming differential suite compares against batch
  ``repro analyze --kernel flat`` output.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..core.profile_data import ProfileDatabase
from ..core.tracefile import escape_name, unescape_name
from ..farm.merge import PROFILE_MAGIC, ProfileDumpError, load_profile

__all__ = [
    "MANIFEST_NAME",
    "STREAM_SCHEMA",
    "DELTA_MAGIC",
    "CheckpointInfo",
    "SnapshotWriter",
    "load_manifest",
    "checkpoint_dump_bytes",
    "load_checkpoint",
]

MANIFEST_NAME = "CURRENT.json"
STREAM_SCHEMA = "repro-stream/1"
DELTA_MAGIC = "repro-profile-delta 1"

_BlockKey = Tuple[str, int]


class CheckpointInfo(NamedTuple):
    """What :meth:`SnapshotWriter.emit` just wrote."""

    seq: int
    path: str
    delta: bool            #: True when the file is a delta, not a full dump
    bytes_written: int
    blocks_changed: int


def _profile_blocks(db: ProfileDatabase) -> Tuple[str, Dict[_BlockKey, str]]:
    """Split a database into save_profile-formatted text pieces.

    Returns ``(header, blocks)``: the ``F``/``G`` lines and one text
    block per ``(routine, thread)`` profile.  Concatenating
    ``PROFILE_MAGIC``, header and the blocks in sorted key order is
    byte-for-byte :func:`repro.farm.merge.save_profile` output — keep
    the formatting here in lockstep with that function.
    """
    header = (
        f"F lower_bound={int(db.sizes_lower_bound)}\n"
        f"G {db.global_induced_thread} {db.global_induced_external}\n"
    )
    blocks: Dict[_BlockKey, str] = {}
    for key, profile in db._profiles.items():
        lines = [
            f"P {escape_name(profile.routine)}\t{profile.thread}\t"
            f"{profile.induced_thread_sum}\t{profile.induced_external_sum}\n"
        ]
        for size in sorted(profile.points):
            stats = profile.points[size]
            lines.append(
                f"S {size} {stats.calls} {stats.cost_min} {stats.cost_max} "
                f"{stats.cost_sum} {stats.cost_sumsq}\n"
            )
        blocks[key] = "".join(lines)
    return header, blocks


def _assemble(header: str, blocks: Dict[_BlockKey, str]) -> str:
    """Full ``repro-profile 1`` text from header + blocks."""
    parts = [PROFILE_MAGIC + "\n", header]
    for key in sorted(blocks):
        parts.append(blocks[key])
    return "".join(parts)


def _atomic_write(path: str, text: str) -> int:
    tmp = path + ".tmp"
    data = text.encode("utf-8")
    with open(tmp, "wb") as stream:
        stream.write(data)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)
    return len(data)


class SnapshotWriter:
    """Emit sequence-numbered partial-profile checkpoints into a directory."""

    def __init__(self, directory: str, stream_id: str, full_every: int = 8):
        if full_every <= 0:
            raise ValueError("full_every must be positive")
        self.directory = directory
        self.stream_id = stream_id
        self.full_every = full_every
        self.seq = 0
        self._prev_header: Optional[str] = None
        self._prev_blocks: Dict[_BlockKey, str] = {}
        self._since_full = 0
        self._chain: List[str] = []   # files from the last full to the newest
        os.makedirs(directory, exist_ok=True)

    def emit(
        self,
        db: ProfileDatabase,
        events_analyzed: int,
        events_behind: int = 0,
        lag_ms: float = 0.0,
        events_per_s: float = 0.0,
        closed: bool = False,
        timestamp: str = "",
        extra: Optional[Dict] = None,
    ) -> CheckpointInfo:
        """Write checkpoint ``seq+1`` of ``db`` and repoint the manifest."""
        self.seq += 1
        header, blocks = _profile_blocks(db)
        changed = {
            key: text for key, text in blocks.items()
            if self._prev_blocks.get(key) != text
        }
        full_text = _assemble(header, blocks)
        delta_lines = [DELTA_MAGIC + "\n", f"B {self.seq - 1}\n", header]
        for key in sorted(changed):
            delta_lines.append(changed[key])
        delta_text = "".join(delta_lines)
        use_delta = (
            self._prev_header is not None
            and self._since_full < self.full_every
            and len(delta_text) < len(full_text)
        )
        name = f"checkpoint-{self.seq:06d}." + ("delta" if use_delta else "profile")
        path = os.path.join(self.directory, name)
        size = _atomic_write(path, delta_text if use_delta else full_text)
        if use_delta:
            self._since_full += 1
            self._chain.append(name)
        else:
            self._since_full = 0
            self._chain = [name]
        self._prev_header = header
        self._prev_blocks = blocks
        manifest = {
            "schema": STREAM_SCHEMA,
            "stream_id": self.stream_id,
            "seq": self.seq,
            "file": name,
            "chain": list(self._chain),
            "closed": bool(closed),
            "events_analyzed": int(events_analyzed),
            "events_behind": int(events_behind),
            "lag_ms": round(float(lag_ms), 3),
            "events_per_s": round(float(events_per_s), 1),
            "timestamp": timestamp,
        }
        if extra:
            manifest.update(extra)
        _atomic_write(os.path.join(self.directory, MANIFEST_NAME),
                      json.dumps(manifest, sort_keys=True) + "\n")
        return CheckpointInfo(self.seq, path, use_delta, size, len(changed))


# -- reading ------------------------------------------------------------------


def load_manifest(directory: str) -> Dict:
    """Read and validate ``CURRENT.json`` of a checkpoint directory."""
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as stream:
        manifest = json.load(stream)
    if manifest.get("schema") != STREAM_SCHEMA:
        raise ProfileDumpError(
            f"{path}: not a {STREAM_SCHEMA} manifest "
            f"(schema {manifest.get('schema')!r})")
    return manifest


def _parse_blocks(lines: List[str], what: str) -> Tuple[str, Dict[_BlockKey, str]]:
    """Split dump body lines back into header text + keyed blocks."""
    header_lines: List[str] = []
    blocks: Dict[_BlockKey, str] = {}
    key: Optional[_BlockKey] = None
    for line in lines:
        if not line.strip():
            continue
        tag = line[:1]
        if tag in ("F", "G"):
            header_lines.append(line)
        elif tag == "P":
            name_text, thread_text = line[2:].split("\t")[:2]
            key = (unescape_name(name_text), int(thread_text))
            blocks[key] = line
        elif tag == "S":
            if key is None:
                raise ProfileDumpError(f"{what}: size point before any profile")
            blocks[key] += line
        else:
            raise ProfileDumpError(f"{what}: unknown record tag {tag!r}")
    return "".join(header_lines), blocks


def checkpoint_dump_bytes(directory: str, manifest: Optional[Dict] = None) -> bytes:
    """Reassemble the newest checkpoint as full ``repro-profile 1`` bytes.

    Reads the manifest's chain (one full dump plus any deltas layered on
    it) and returns exactly the bytes :func:`~repro.farm.merge.save_profile`
    would produce for the checkpointed database.
    """
    if manifest is None:
        manifest = load_manifest(directory)
    chain = manifest.get("chain") or [manifest["file"]]
    header: Optional[str] = None
    blocks: Dict[_BlockKey, str] = {}
    for index, name in enumerate(chain):
        path = os.path.join(directory, name)
        with open(path, "r", encoding="utf-8") as stream:
            first = stream.readline().rstrip("\n")
            lines = stream.readlines()
        if index == 0:
            if first != PROFILE_MAGIC:
                raise ProfileDumpError(
                    f"{path}: chain base is not a profile dump ({first!r})")
            header, blocks = _parse_blocks(lines, path)
        else:
            if first != DELTA_MAGIC:
                raise ProfileDumpError(f"{path}: not a profile delta ({first!r})")
            if not lines or not lines[0].startswith("B "):
                raise ProfileDumpError(f"{path}: delta missing base line")
            delta_header, changed = _parse_blocks(lines[1:], path)
            header = delta_header
            blocks.update(changed)
    if header is None:
        raise ProfileDumpError(f"{directory}: empty checkpoint chain")
    return _assemble(header, blocks).encode("utf-8")


def load_checkpoint(directory: str) -> Tuple[Dict, ProfileDatabase]:
    """Load the newest checkpoint: ``(manifest, partial ProfileDatabase)``."""
    import io

    manifest = load_manifest(directory)
    dump = checkpoint_dump_bytes(directory, manifest)
    db = load_profile(io.StringIO(dump.decode("utf-8")))
    return manifest, db
