"""minislap for the service: a concurrent upload swarm (``repro slap``).

The paper's MySQL experiments drive the server with mysqlslap;
:mod:`repro.minidb.slap` replays that against the in-process mini
database.  This module is the same idea against the *real* network
service: ``clients`` threads each open a :class:`ServiceClient` and
fire ``uploads`` artefacts at the server as fast as it acknowledges
them, measuring what a producer of profiling data actually pays — the
wall-clock latency of one ``put`` round trip (spool + enqueue, never
the analysis).

A configurable fraction of uploads are deliberate re-sends of an
earlier artefact, so the run also exercises (and counts) the server's
at-the-door duplicate rejection.  The report reduces to p50/p95/p99
upload latencies (the shared log2-bucket estimator — the same one the
server's SLO tracker uses), throughput, and
accepted/duplicate/rejected tallies; after the swarm the run fetches
the server's per-tenant SLO snapshot for its own tenant, so
:func:`build_envelope` can wrap both as a ``repro-bench/1`` envelope
whose ``gate.latency_ms`` and ``gate.slo`` sections
``tools/bench_gate.py`` gates on — the service is itself a benchmarked
workload under the regression gate, SLO burn included.
"""

from __future__ import annotations

import json
import random
import threading
import time
from typing import Dict, List, Optional

from ..telemetry.registry import bucket_counts, quantile_from_buckets
from .client import ServiceClient, ServiceError

__all__ = ["SlapReport", "slap", "synthetic_artefact", "build_envelope"]

SLAP_BENCH_NAME = "service_slap"


class SlapReport:
    """What a slap run did: tallies plus the full latency sample."""

    def __init__(self, clients: int, uploads_per_client: int):
        self.clients = clients
        self.uploads_per_client = uploads_per_client
        self.accepted = 0
        self.duplicates = 0
        self.rejected = 0          #: pushed back (queue full / draining)
        self.errors = 0            #: transport failures
        self.latencies_ms: List[float] = []
        self.wall_seconds = 0.0
        self.slo: Optional[Dict] = None    #: server-side SLO state post-run
        self._lock = threading.Lock()

    @property
    def uploads(self) -> int:
        return self.clients * self.uploads_per_client

    def percentile(self, fraction: float) -> float:
        """Estimated upload-latency percentile (ms), log2-bucket resolution.

        Uses the shared estimator from :mod:`repro.telemetry.registry`
        so slap-reported and server-SLO-reported quantiles agree in
        method, not just in spirit.
        """
        if not self.latencies_ms:
            return 0.0
        return quantile_from_buckets(bucket_counts(self.latencies_ms),
                                     len(self.latencies_ms), fraction)

    @property
    def p50_ms(self) -> float:
        return self.percentile(0.50)

    @property
    def p95_ms(self) -> float:
        return self.percentile(0.95)

    @property
    def p99_ms(self) -> float:
        return self.percentile(0.99)

    @property
    def uploads_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.latencies_ms) / self.wall_seconds

    def render(self) -> str:
        """The human report ``repro slap`` prints."""
        lines = [
            f"slap: {self.clients} client(s) x {self.uploads_per_client} "
            f"upload(s) in {self.wall_seconds:.3f}s "
            f"({self.uploads_per_second:.0f} uploads/s)",
            f"  accepted   {self.accepted}",
            f"  duplicate  {self.duplicates} (rejected at the door)",
            f"  rejected   {self.rejected} (queue pushback)",
            f"  errors     {self.errors}",
            f"  latency ms p50 {self.p50_ms:.2f}  p95 {self.p95_ms:.2f}  "
            f"p99 {self.p99_ms:.2f}",
        ]
        if self.slo:
            burn = self.slo.get("burn", {})
            alerts = self.slo.get("alerts", [])
            lines.append(
                f"  server slo burn: latency {burn.get('latency_p99', 0):.2f}"
                f"  error {burn.get('error', 0):.2f}"
                f"  shed {burn.get('shed', 0):.2f}"
                f"  alerts {', '.join(alerts) if alerts else '-'}")
        return "\n".join(lines) + "\n"


def synthetic_artefact(rng: random.Random, index: int, tag: str) -> bytes:
    """One unique, cheap-to-ingest ``repro-bench/1`` envelope."""
    envelope = {
        "schema": "repro-bench/1",
        "run_id": f"slap-{tag}-{index}-{rng.randrange(1 << 30):08x}",
        "bench": "slap-upload",
        "scale": 1.0,
        "metrics": {"payload": rng.randrange(1 << 16), "index": index},
    }
    return (json.dumps(envelope) + "\n").encode("utf-8")


def _client_worker(
    host: str, port: int, tenant: str, client_id: int, uploads: int,
    duplicate_ratio: float, seed: int, report: SlapReport,
    barrier: threading.Barrier, wait: bool,
) -> None:
    rng = random.Random(seed)
    artefacts = [synthetic_artefact(rng, index, f"{seed}-{client_id}")
                 for index in range(uploads)]
    sent: List[bytes] = []
    latencies: List[float] = []
    accepted = duplicates = rejected = errors = 0
    try:
        client = ServiceClient(host, port, tenant=tenant)
    except OSError:
        with report._lock:
            report.errors += uploads
        barrier.wait()
        return
    barrier.wait()          # all clients connect first, then fire together
    try:
        for artefact in artefacts:
            if sent and rng.random() < duplicate_ratio:
                artefact = rng.choice(sent)     # deliberate duplicate
            started = time.perf_counter()
            try:
                reply = client.put_bytes(artefact, wait=wait)
            except ServiceError as error:
                if error.header.get("status") == "rejected":
                    rejected += 1
                else:
                    errors += 1
                continue
            except OSError:
                errors += 1
                break
            latencies.append((time.perf_counter() - started) * 1000.0)
            if reply.get("duplicate") or reply.get("status") == "duplicate":
                duplicates += 1
            else:
                accepted += 1
                sent.append(artefact)
    finally:
        client.close()
        with report._lock:
            report.accepted += accepted
            report.duplicates += duplicates
            report.rejected += rejected
            report.errors += errors
            report.latencies_ms.extend(latencies)


def slap(
    host: str,
    port: int,
    tenant: str = "slap",
    clients: int = 8,
    uploads_per_client: int = 16,
    duplicate_ratio: float = 0.1,
    seed: int = 101,
    wait: bool = False,
) -> SlapReport:
    """Run the swarm; returns the filled :class:`SlapReport`."""
    report = SlapReport(clients, uploads_per_client)
    barrier = threading.Barrier(clients + 1)
    threads = []
    for client_id in range(clients):
        thread = threading.Thread(
            target=_client_worker,
            args=(host, port, tenant, client_id, uploads_per_client,
                  duplicate_ratio, seed + client_id, report, barrier, wait),
            name=f"slap-client-{client_id}",
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    barrier.wait()          # release the swarm
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    try:
        with ServiceClient(host, port, tenant=tenant) as client:
            report.slo = client.stats().get("slo", {}).get(tenant)
    except (OSError, ServiceError):
        report.slo = None       # server gone or too old to report SLOs
    return report


def build_envelope(
    report: SlapReport,
    run_id: Optional[str] = None,
    git_sha: str = "",
    timestamp: str = "",
) -> Dict:
    """The slap run as a ``repro-bench/1`` envelope for the bench gate.

    ``gate.latency_ms`` carries the p99 upload latency — the gate fails
    when it *grows* past tolerance (latency gates are inverted relative
    to ratio gates); ``gate.throughput`` carries uploads/s, gated only
    under ``--absolute`` like every machine-bound number; ``gate.slo``
    carries the server-reported burn rates, inverted like latency and
    additionally hard-failed when any burn reaches 1.0.
    """
    slo_metrics: Dict = {}
    gate_slo: Dict = {}
    if report.slo:
        burn = report.slo.get("burn", {})
        slo_metrics = {
            "latency_p99_ms": report.slo.get("latency_ms", {}).get("p99", 0.0),
            "error_rate": report.slo.get("error_rate", 0.0),
            "shed_rate": report.slo.get("shed_rate", 0.0),
            "alerts": len(report.slo.get("alerts", [])),
        }
        gate_slo = {"error_burn": burn.get("error", 0.0),
                    "shed_burn": burn.get("shed", 0.0)}
    return {
        "schema": "repro-bench/1",
        "run_id": run_id or f"slap-{int(time.time() * 1000):x}",
        "git_sha": git_sha,
        "timestamp": timestamp,
        "bench": SLAP_BENCH_NAME,
        "scale": float(report.clients),
        "metrics": {
            "clients": report.clients,
            "uploads_per_client": report.uploads_per_client,
            "accepted": report.accepted,
            "duplicates": report.duplicates,
            "rejected": report.rejected,
            "errors": report.errors,
            "wall_seconds": report.wall_seconds,
            "latency_ms": {
                "p50": report.p50_ms,
                "p95": report.p95_ms,
                "p99": report.p99_ms,
            },
            **({"slo": slo_metrics} if slo_metrics else {}),
            "gate": {
                "scale": float(report.clients),
                "ratios": {},
                "throughput": {"uploads_per_s": report.uploads_per_second},
                "latency_ms": {"put_p99": report.p99_ms},
                **({"slo": gate_slo} if gate_slo else {}),
            },
        },
    }
