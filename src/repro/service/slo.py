"""Per-tenant rolling-window SLO tracking for the profiling service.

The server's raw metrics (``service.*`` counters and histograms) are
cumulative since boot — fine for rates over a scrape interval, useless
for "is tenant X healthy *right now*".  :class:`SloTracker` keeps a
short sliding window per tenant, sliced into fixed-width time slices so
old observations age out without per-observation timestamps:

* ingest latency as log2 bucket counts (the registry's fixed buckets),
  reported as p50/p95/p99 via the shared quantile estimator;
* error rate (failed ingests / ingests) against an error budget;
* queue-shed rate (rejected or queue-expired uploads / offered
  uploads) against a shed budget.

Each rate is also expressed as a **burn rate** — the observed rate
divided by its budget, the standard SRE framing: burn 1.0 means the
tenant is consuming exactly its budget, burn ≥ 1.0 for long enough
means the SLO will be violated.  Latency burns are p99 over the target
p99.  Any burn ≥ 1.0 raises a named alert in the snapshot; the
``stats`` op, the HTTP dashboard, ``/metrics`` gauges and the slap
envelope all surface the same snapshot, and ``tools/bench_gate.py``
can gate a CI run on the slap-reported burns.

The tracker is lock-protected and cheap (a dict update per ingest); it
is always on in the server — unlike spans it never touches profile
data, only service bookkeeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from ..telemetry.registry import bucket_index, quantiles_from_buckets

__all__ = ["SloTargets", "SloTracker"]


class SloTargets:
    """The service-level objectives a tenant is held to."""

    __slots__ = ("p99_ms", "error_budget", "shed_budget")

    def __init__(self, p99_ms: float = 500.0, error_budget: float = 0.01,
                 shed_budget: float = 0.05):
        self.p99_ms = float(p99_ms)
        self.error_budget = float(error_budget)
        self.shed_budget = float(shed_budget)

    def as_dict(self) -> Dict:
        return {"p99_ms": self.p99_ms, "error_budget": self.error_budget,
                "shed_budget": self.shed_budget}


class _Slice:
    """One time slice of one tenant's window (plain counters)."""

    __slots__ = ("started", "ingests", "failed", "shed", "buckets")

    def __init__(self, started: float):
        self.started = started
        self.ingests = 0
        self.failed = 0
        self.shed = 0
        self.buckets: Dict[int, int] = {}


class _TenantWindow:
    __slots__ = ("slices",)

    def __init__(self) -> None:
        self.slices: List[_Slice] = []


class SloTracker:
    """Sliding-window SLO state for every tenant of one server."""

    def __init__(self, window_seconds: float = 300.0, slices: int = 10,
                 targets: Optional[SloTargets] = None,
                 clock: Callable[[], float] = time.monotonic):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if slices < 1:
            raise ValueError("need at least one slice")
        self.window_seconds = float(window_seconds)
        self.slice_seconds = self.window_seconds / slices
        self.targets = targets if targets is not None else SloTargets()
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantWindow] = {}

    # -- recording ----------------------------------------------------------

    def _slice(self, tenant: str, now: float) -> _Slice:
        window = self._tenants.get(tenant)
        if window is None:
            window = self._tenants[tenant] = _TenantWindow()
        slices = window.slices
        if not slices or now - slices[-1].started >= self.slice_seconds:
            slices.append(_Slice(now))
        horizon = now - self.window_seconds
        while slices and slices[0].started + self.slice_seconds < horizon:
            slices.pop(0)
        return slices[-1]

    def record_ingest(self, tenant: str, latency_ms: float,
                      ok: bool = True) -> None:
        """One completed ingest attempt (successful or failed)."""
        now = self._clock()
        with self._lock:
            piece = self._slice(tenant, now)
            piece.ingests += 1
            if not ok:
                piece.failed += 1
            index = bucket_index(latency_ms)
            piece.buckets[index] = piece.buckets.get(index, 0) + 1

    def record_shed(self, tenant: str) -> None:
        """One upload shed before ingest (queue full or queue-wait expiry)."""
        now = self._clock()
        with self._lock:
            self._slice(tenant, now).shed += 1

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Per-tenant SLO state: quantiles, rates, burns, alerts."""
        now = self._clock()
        horizon = now - self.window_seconds
        targets = self.targets
        with self._lock:
            tenants = {tenant: list(window.slices)
                       for tenant, window in self._tenants.items()}
        out: Dict[str, Dict] = {}
        for tenant, slices in sorted(tenants.items()):
            ingests = failed = shed = 0
            buckets: Dict[int, int] = {}
            for piece in slices:
                if piece.started + self.slice_seconds < horizon:
                    continue
                ingests += piece.ingests
                failed += piece.failed
                shed += piece.shed
                for index, count in piece.buckets.items():
                    buckets[index] = buckets.get(index, 0) + count
            offered = ingests + shed
            p50, p95, p99 = quantiles_from_buckets(
                buckets, ingests, (0.50, 0.95, 0.99))
            error_rate = failed / ingests if ingests else 0.0
            shed_rate = shed / offered if offered else 0.0
            latency_burn = p99 / targets.p99_ms if targets.p99_ms > 0 else 0.0
            error_burn = (error_rate / targets.error_budget
                          if targets.error_budget > 0 else 0.0)
            shed_burn = (shed_rate / targets.shed_budget
                         if targets.shed_budget > 0 else 0.0)
            alerts = []
            if ingests and latency_burn >= 1.0:
                alerts.append("latency_p99_burn")
            if error_burn >= 1.0 and failed:
                alerts.append("error_burn")
            if shed_burn >= 1.0 and shed:
                alerts.append("shed_burn")
            out[tenant] = {
                "window_seconds": self.window_seconds,
                "targets": targets.as_dict(),
                "ingests": ingests,
                "failed": failed,
                "shed": shed,
                "latency_ms": {"p50": round(p50, 3), "p95": round(p95, 3),
                               "p99": round(p99, 3)},
                "error_rate": round(error_rate, 6),
                "shed_rate": round(shed_rate, 6),
                "burn": {"latency_p99": round(latency_burn, 4),
                         "error": round(error_burn, 4),
                         "shed": round(shed_burn, 4)},
                "alerts": alerts,
            }
        return out
