"""The bounded async job queue behind the ingestion server.

Uploads are acknowledged as soon as they are spooled and enqueued —
the Metz & Lencevicius discipline of keeping instrumentation cost off
the measured path: the client's upload latency covers a socket write
and a queue append, never a curve fit.  The actual work (farm
analysis, power-law fitting, store appends) happens on worker threads
that drain the queue.

Semantics, all enforced by ``tests/service/test_jobs.py``:

* **bounded**: the queue holds at most ``capacity`` jobs; a submit
  beyond that raises :class:`QueueFull` so the server can push back
  ("rejected: queue full") instead of buffering without limit;
* **status tracking**: every job walks ``queued -> running ->
  done | failed``; :meth:`JobQueue.status` is queryable at any time
  and terminal jobs are kept in a bounded ring of recent history;
* **retries**: a handler exception re-runs the job up to ``retries``
  extra times before it fails (the error of the *last* attempt is
  recorded);
* **timeouts**: a job that waited in the queue past its deadline is
  failed without running — under overload the server sheds stale work
  rather than analysing uploads nobody is waiting for any more;
* **graceful drain**: :meth:`drain` stops intake, waits for queued and
  in-flight jobs to finish (bounded by a deadline), then stops the
  workers — the SIGTERM path of ``repro serve``.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "QueueFull",
    "QueueClosed",
    "Job",
    "JobQueue",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: terminal jobs remembered for status queries after completion
HISTORY_LIMIT = 1024


class QueueFull(Exception):
    """The bounded queue is at capacity — the upload must be rejected."""


class QueueClosed(Exception):
    """The queue no longer accepts work (draining or stopped)."""


class Job:
    """One unit of ingestion work and its tracked lifecycle."""

    def __init__(self, job_id: str, tenant: str, kind: str,
                 path: str = "", params: Optional[Dict] = None):
        self.job_id = job_id
        self.tenant = tenant
        self.kind = kind
        self.path = path                  #: spooled artefact (owned by the job)
        self.params: Dict = params or {}
        self.status = QUEUED
        self.attempts = 0
        self.error: Optional[str] = None
        self.result: Optional[Dict] = None
        #: trace continuation set by the server when the upload was traced:
        #: ``{"id", "parent", "enqueued_time"}`` — the worker re-activates
        #: the trace context from it so async spans join the request tree
        self.trace: Optional[Dict] = None
        #: True when the job failed without running (queue-wait expiry) —
        #: the SLO tracker counts these as shed, not as ingest errors
        self.shed = False
        self.enqueued_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done_event = threading.Event()

    def snapshot(self) -> Dict:
        """The job as a JSON-safe status dict (what the wire returns)."""
        waited = (self.started_at - self.enqueued_at
                  if self.started_at is not None else None)
        ran = (self.finished_at - self.started_at
               if self.finished_at is not None and self.started_at is not None
               else None)
        return {
            "job": self.job_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "result": self.result,
            "queue_seconds": None if waited is None else round(waited, 6),
            "run_seconds": None if ran is None else round(ran, 6),
        }


class JobQueue:
    """Worker threads draining a bounded job queue (see module docstring).

    ``handler(job)`` performs the work and returns the JSON-safe result
    dict stored on the job; it may raise to trigger a retry.
    """

    def __init__(
        self,
        handler: Callable[[Job], Dict],
        workers: int = 2,
        capacity: int = 64,
        retries: int = 1,
        timeout: Optional[float] = None,
        observer: Optional[Callable[[str, Job], None]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.handler = handler
        self.capacity = capacity
        self.retries = max(0, retries)
        self.timeout = timeout
        self.observer = observer
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._pending: collections.deque = collections.deque()
        self._jobs: Dict[str, Job] = {}
        self._order: collections.deque = collections.deque()
        self._in_flight = 0
        self._accepting = True
        self._stopped = False
        self._counter = 0
        self._workers: List[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(target=self._work, daemon=True,
                                      name=f"ingest-worker-{index}")
            thread.start()
            self._workers.append(thread)

    # -- intake --------------------------------------------------------------

    def next_job_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"j{self._counter:06d}"

    def submit(self, job: Job) -> Job:
        """Enqueue ``job``; :class:`QueueFull` / :class:`QueueClosed` on refusal."""
        with self._lock:
            if not self._accepting:
                raise QueueClosed("queue is draining")
            if len(self._pending) >= self.capacity:
                raise QueueFull(
                    f"queue at capacity ({self.capacity} job(s) pending)")
            job.enqueued_at = time.monotonic()
            self._pending.append(job)
            self._remember(job)
            self._not_empty.notify()
        self._notify("queued", job)
        return job

    def _remember(self, job: Job) -> None:
        self._jobs[job.job_id] = job
        self._order.append(job.job_id)
        while len(self._order) > HISTORY_LIMIT:
            stale = self._order.popleft()
            staled = self._jobs.get(stale)
            if staled is not None and staled.status in (DONE, FAILED):
                del self._jobs[stale]
            else:           # still live: keep it queryable
                self._order.append(stale)
                break

    # -- queries -------------------------------------------------------------

    def status(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    # -- workers -------------------------------------------------------------

    def _work(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._stopped:
                    self._not_empty.wait()
                if self._stopped:
                    return
                job = self._pending.popleft()
                self._in_flight += 1
                job.started_at = time.monotonic()
            try:
                self._run(job)
            finally:
                with self._lock:
                    self._in_flight -= 1
                    if not self._pending and not self._in_flight:
                        self._idle.notify_all()
                job.done_event.set()
                self._notify(job.status, job)

    def _run(self, job: Job) -> None:
        waited = (job.started_at or job.enqueued_at) - job.enqueued_at
        if self.timeout is not None and waited > self.timeout:
            job.status = FAILED
            job.shed = True
            job.error = (f"timed out after {waited:.3f}s in queue "
                         f"(timeout {self.timeout}s)")
            job.finished_at = time.monotonic()
            return
        job.status = RUNNING
        for attempt in range(self.retries + 1):
            job.attempts = attempt + 1
            try:
                job.result = self.handler(job)
            except Exception as error:  # noqa: BLE001 - boundary by design
                job.error = f"{type(error).__name__}: {error}"
                if attempt < self.retries:
                    self._notify("retry", job)
                    continue
                job.status = FAILED
            else:
                job.status = DONE
                job.error = None
            break
        job.finished_at = time.monotonic()

    def _notify(self, what: str, job: Job) -> None:
        if self.observer is not None:
            try:
                self.observer(what, job)
            except Exception:   # noqa: BLE001 - observers never break the queue
                pass

    # -- shutdown ------------------------------------------------------------

    def drain(self, deadline: Optional[float] = None) -> bool:
        """Stop intake, wait for all work to finish, stop the workers.

        Returns ``True`` when the queue fully emptied before the
        ``deadline`` (seconds); on ``False`` the workers are stopped
        anyway and any still-pending jobs stay queued, never run.
        """
        limit = None if deadline is None else time.monotonic() + deadline
        drained = True
        with self._lock:
            self._accepting = False
            while self._pending or self._in_flight:
                remaining = None if limit is None else limit - time.monotonic()
                if remaining is not None and remaining <= 0:
                    drained = False
                    break
                self._idle.wait(timeout=remaining)
            self._stopped = True
            self._not_empty.notify_all()
        for thread in self._workers:
            thread.join(timeout=5.0)
        return drained

    def close(self) -> None:
        """Immediate stop: no drain wait (pending jobs never run)."""
        with self._lock:
            self._accepting = False
            self._stopped = True
            self._pending.clear()
            self._not_empty.notify_all()
        for thread in self._workers:
            thread.join(timeout=5.0)
