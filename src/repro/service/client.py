"""The client half of the wire protocol: what uploaders link against.

:class:`ServiceClient` wraps one TCP connection to a ``repro serve``
instance and exposes the protocol ops as methods.  It is deliberately
thin — the whole point of the service split is that clients do no
analysis: ``put_file`` reads bytes off disk and writes them to a
socket, nothing more, so instrumented production processes can ship
their traces with near-zero overhead (the Metz & Lencevicius
requirement that profiling stays off the measured path).

The client is also what the load generator (:mod:`repro.service.slap`)
hammers the server with, so every method returns the parsed response
header (plus the payload where one is defined) rather than printing.

When telemetry is live, every request runs inside a fresh **trace
context**: the client records a ``client.<op>`` span and attaches the
trace carrier to the wire header, so the server's spans for the same
request land in its own log under the same trace id — ``repro trace``
joins the two halves.  With telemetry disabled (the default) no trace
is minted and headers are byte-identical to before.
"""

from __future__ import annotations

import os
import socket
from datetime import datetime, timezone
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from .tenants import DEFAULT_TENANT
from .wire import recv_frame, send_frame

__all__ = ["ServiceError", "ServiceClient", "mtime_iso"]


class ServiceError(Exception):
    """The server answered ``ok: false`` (the reply header is attached)."""

    def __init__(self, header: Dict):
        super().__init__(str(header.get("error") or "service error"))
        self.header = header


def mtime_iso(path: str) -> str:
    """A file's mtime as ISO-8601 — the timestamp offline ingestion uses.

    Sending it with an upload keeps server-side ingestion byte-identical
    to ``repro observe ingest`` of the same file.
    """
    try:
        mtime = os.path.getmtime(path)
    except OSError:
        return ""
    return datetime.fromtimestamp(mtime, tz=timezone.utc).isoformat()


class ServiceClient:
    """One connection to the ingestion server (usable as a context manager)."""

    def __init__(self, host: str, port: int, tenant: str = DEFAULT_TENANT,
                 timeout: Optional[float] = 30.0):
        self.tenant = tenant
        self.sock = socket.create_connection((host, port), timeout=timeout)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------------

    def request(self, header: Dict, payload: bytes = b"") -> Tuple[Dict, bytes]:
        """One round trip; raises :class:`ServiceError` on ``ok: false``."""
        tele = telemetry.current()
        if not tele.enabled:
            return self._round_trip(header, payload)
        op = str(header.get("op") or "request")
        with tele.trace():
            with tele.span(f"client.{op}", tenant=header.get("tenant")) as sp:
                carrier = tele.trace_carrier()
                if carrier is not None:
                    header = dict(header)
                    header["trace"] = carrier
                reply_header, reply_payload = self._round_trip(header, payload)
                sp.set(bytes_out=len(payload), bytes_in=len(reply_payload))
                return reply_header, reply_payload

    def _round_trip(self, header: Dict, payload: bytes) -> Tuple[Dict, bytes]:
        send_frame(self.sock, header, payload)
        reply = recv_frame(self.sock)
        assert reply is not None        # recv_frame raises on EOF here
        reply_header, reply_payload = reply
        if not reply_header.get("ok"):
            raise ServiceError(reply_header)
        return reply_header, reply_payload

    # -- ops -----------------------------------------------------------------

    def ping(self) -> Dict:
        return self.request({"op": "ping"})[0]

    def put_bytes(
        self,
        data: bytes,
        run_id: Optional[str] = None,
        git_sha: str = "",
        timestamp: str = "",
        scale: float = 0.0,
        wait: bool = False,
        wait_timeout: Optional[float] = None,
    ) -> Dict:
        """Upload one in-memory artefact; returns the ack/job header."""
        return self.request({
            "op": "put", "tenant": self.tenant, "run_id": run_id,
            "git_sha": git_sha, "timestamp": timestamp, "scale": scale,
            "wait": wait, "wait_timeout": wait_timeout,
        }, data)[0]

    def put_file(self, path: str, wait: bool = False, **kwargs) -> Dict:
        """Upload a file, stamping its mtime unless a timestamp is given."""
        with open(path, "rb") as stream:
            data = stream.read()
        kwargs.setdefault("timestamp", mtime_iso(path))
        return self.put_bytes(data, wait=wait, **kwargs)

    def put_stream(
        self,
        checkpoint_dir: str,
        run_id: Optional[str] = None,
        git_sha: str = "",
        scale: float = 0.0,
        wait: bool = False,
        wait_timeout: Optional[float] = None,
    ) -> Dict:
        """Upload the current checkpoint of a live stream directory.

        Reads ``CURRENT.json`` plus the checkpoint chain written by
        :class:`repro.streaming.SnapshotWriter`, reassembles the full
        ``repro-profile 1`` dump and ships it with the stream's lag
        bookkeeping so the server can expose ``streaming.*`` gauges.
        """
        from ..streaming import checkpoint_dump_bytes, load_manifest

        manifest = load_manifest(checkpoint_dir)
        data = checkpoint_dump_bytes(checkpoint_dir, manifest)
        stream = {
            "id": manifest.get("stream_id") or manifest.get("id") or "",
            "seq": manifest.get("seq", 0),
            "events_analyzed": manifest.get("events_analyzed", 0),
            "events_behind": manifest.get("events_behind", 0),
            "lag_ms": manifest.get("lag_ms", 0.0),
            "events_per_s": manifest.get("events_per_s", 0.0),
            "closed": bool(manifest.get("closed", False)),
            "timestamp": manifest.get("timestamp", ""),
        }
        return self.request({
            "op": "put_stream", "tenant": self.tenant, "run_id": run_id,
            "stream": stream, "git_sha": git_sha, "scale": scale,
            "wait": wait, "wait_timeout": wait_timeout,
        }, data)[0]

    def job(self, job_id: str) -> Dict:
        return self.request({"op": "job", "job": job_id})[0]

    def runs(self) -> List[Dict]:
        return self.request({"op": "runs", "tenant": self.tenant})[0]["runs"]

    def alerts(self, tolerance: float = 1.30,
               ascii_feed: bool = False) -> Tuple[List[Dict], str]:
        header, payload = self.request({
            "op": "alerts", "tenant": self.tenant, "tolerance": tolerance,
            "format": "ascii" if ascii_feed else "json",
        })
        return header["alerts"], payload.decode("utf-8")

    def report(self, fmt: str = "ascii", tolerance: float = 1.30,
               limit: int = 20) -> str:
        _header, payload = self.request({
            "op": "report", "tenant": self.tenant, "format": fmt,
            "tolerance": tolerance, "limit": limit,
        })
        return payload.decode("utf-8")

    def stats(self) -> Dict:
        return self.request({"op": "stats"})[0]

    def tenants(self) -> List[str]:
        return self.request({"op": "tenants"})[0]["tenants"]

    def shutdown(self) -> Dict:
        """Ask the server to drain and stop (the admin/CI path)."""
        return self.request({"op": "shutdown"})[0]
