"""Multi-tenant namespacing of the observatory store.

One server hosts many projects; each tenant owns an isolated
:class:`~repro.observatory.store.ObservatoryStore` rooted at
``<root>/<tenant>/`` — separate ``history.jsonl``, separate minidb
engine, separate gc.  Nothing is shared across tenants except the
process, so a tenant's compaction, drift detection or run history can
never observe another's.

Tenant names are validated against a strict slug grammar *before* they
touch the filesystem — a tenant name is an untrusted wire input, and
the grammar (lowercase alphanumerics, ``.``, ``_``, ``-``; must start
alphanumeric; at most 64 chars) makes path traversal unrepresentable
rather than filtered.

Every store access goes through the tenant's re-entrant lock
(:meth:`TenantManager.lock`): the store itself is a single-writer
structure, so the service serialises per tenant while different
tenants proceed in parallel on different worker threads.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Dict, List

from ..observatory import ObservatoryStore

__all__ = ["TENANT_RE", "DEFAULT_TENANT", "TenantError", "TenantManager"]

#: the slug grammar of a valid tenant name
TENANT_RE = re.compile(r"^[a-z0-9][a-z0-9._-]{0,63}$")

DEFAULT_TENANT = "default"


class TenantError(ValueError):
    """An invalid tenant name (never touches the filesystem)."""


def validate_tenant(name: str) -> str:
    """Return ``name`` when it is a valid tenant slug, else raise."""
    if not isinstance(name, str) or not TENANT_RE.match(name):
        raise TenantError(
            f"invalid tenant name {name!r} (want: lowercase slug "
            f"[a-z0-9][a-z0-9._-]*, at most 64 chars)")
    if ".." in name:
        raise TenantError(f"invalid tenant name {name!r} ('..' not allowed)")
    return name


class TenantManager:
    """Lazily-opened, lock-guarded per-tenant observatory stores."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._guard = threading.Lock()
        self._stores: Dict[str, ObservatoryStore] = {}
        self._locks: Dict[str, threading.RLock] = {}

    def lock(self, tenant: str) -> threading.RLock:
        """The tenant's store lock (created on first use)."""
        tenant = validate_tenant(tenant)
        with self._guard:
            lock = self._locks.get(tenant)
            if lock is None:
                lock = self._locks[tenant] = threading.RLock()
            return lock

    def path(self, tenant: str) -> str:
        return os.path.join(self.root, validate_tenant(tenant))

    def store(self, tenant: str) -> ObservatoryStore:
        """The tenant's store, opened (and replayed) on first access.

        Callers must hold :meth:`lock` for any read or write — the
        store is not internally synchronised.
        """
        tenant = validate_tenant(tenant)
        with self._guard:
            store = self._stores.get(tenant)
        if store is not None:
            return store
        opened = ObservatoryStore(self.path(tenant))
        with self._guard:
            # another thread may have raced the open; keep the first
            store = self._stores.setdefault(tenant, opened)
        if store is not opened:
            opened.close()
        return store

    def tenants(self) -> List[str]:
        """Every tenant present on disk or opened in memory, sorted."""
        names = set(self._stores)
        try:
            for name in os.listdir(self.root):
                if (TENANT_RE.match(name)
                        and os.path.isdir(os.path.join(self.root, name))):
                    names.add(name)
        except OSError:
            pass
        return sorted(names)

    def close(self) -> None:
        with self._guard:
            for store in self._stores.values():
                store.close()
            self._stores.clear()
