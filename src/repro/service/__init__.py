"""Profiling-as-a-service: the long-lived ingestion server and its clients.

The batch pipeline (record → analyze → fit → observe) ends in a
one-shot CLI; this package keeps the analysis side *always on*, the
ROADMAP's production-service shape:

* :mod:`repro.service.wire` — the ``repro-wire/1`` length-prefixed
  framing (JSON header + raw artefact payload, hard size ceilings);
* :mod:`repro.service.jobs` — the bounded async job queue: worker
  threads, queued/running/done/failed tracking, retries, queue-wait
  timeouts, graceful drain;
* :mod:`repro.service.tenants` — per-tenant observatory stores under
  one root, validated slug names, per-tenant locking;
* :mod:`repro.service.server` — the thread-per-client TCP server
  (``repro serve``): async ``put`` ingestion with at-the-door
  duplicate rejection, read-side ``runs``/``alerts``/``report`` ops,
  an HTTP ``GET``/``HEAD`` fallback for browsers and scrapers
  (including Prometheus ``/metrics``), self-metrics, distributed
  trace continuation, SIGTERM drain;
* :mod:`repro.service.slo` — per-tenant rolling-window SLO tracking
  (latency quantiles, error/shed budgets, burn-rate alerts);
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin
  uploader library (mints the trace context each request travels in
  when telemetry is live);
* :mod:`repro.service.slap` — the minislap swarm (``repro slap``):
  concurrent upload load generation reported as p50/p99 latency,
  duplicate/rejected tallies and the server's own SLO burn in a
  ``repro-bench/1`` envelope the bench gate consumes.

Contract: a profile ingested through the server produces exactly the
observatory rows and alerts that ``repro observe ingest`` of the same
file produces — the service adds availability, never meaning.  See
docs/SERVICE.md.
"""

from .client import ServiceClient, ServiceError, mtime_iso
from .jobs import DONE, FAILED, QUEUED, RUNNING, Job, JobQueue, QueueClosed, QueueFull
from .server import ProfileServer
from .slap import SlapReport, build_envelope, slap, synthetic_artefact
from .slo import SloTargets, SloTracker
from .tenants import DEFAULT_TENANT, TENANT_RE, TenantError, TenantManager, validate_tenant
from .wire import (
    MAGIC,
    MAX_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    WIRE_SCHEMA,
    WireError,
    recv_frame,
    send_frame,
)

__all__ = [
    "ServiceClient",
    "ServiceError",
    "mtime_iso",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "Job",
    "JobQueue",
    "QueueClosed",
    "QueueFull",
    "ProfileServer",
    "SlapReport",
    "SloTargets",
    "SloTracker",
    "build_envelope",
    "slap",
    "synthetic_artefact",
    "DEFAULT_TENANT",
    "TENANT_RE",
    "TenantError",
    "TenantManager",
    "validate_tenant",
    "MAGIC",
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "WIRE_SCHEMA",
    "WireError",
    "recv_frame",
    "send_frame",
]
