"""The long-lived ingestion server behind ``repro serve``.

A thread-per-client TCP server (the architecture
:mod:`repro.minidb.protocol` models in miniature, here over real
sockets) that turns the one-shot observatory CLI into
profiling-as-a-service:

* **write side** — ``put`` uploads any artefact the observatory
  ingests (``repro-profile 1`` dumps, TSV point dumps, v2 binary
  traces, ``telemetry.jsonl`` logs, ``repro-bench/1`` envelopes).
  Uploads are spooled, acknowledged, and analysed *asynchronously* by
  the bounded :class:`~repro.service.jobs.JobQueue` — the client pays
  for a socket write, never for a farm analysis or a curve fit.
  Duplicate uploads are rejected at the door by content digest
  (idempotent ingest, before any analysis), and a full queue pushes
  back instead of buffering without bound;
* **read side** — ``runs`` / ``alerts`` / ``report`` / ``stats`` serve
  the run history, the drift-alert feed and the fleet dashboards
  (JSON, ASCII or HTML) straight from the per-tenant stores;
* **tenancy** — every operation names a tenant; each tenant owns an
  isolated store under ``<root>/<tenant>/``
  (:mod:`repro.service.tenants`);
* **self-observation** — queue depth, jobs in flight, ingest latency
  histograms and per-op request counters land in the server's own
  metrics registry (the ``stats`` op returns a snapshot) and mirror
  into the process telemetry when ``--telemetry`` is live; a
  :class:`~repro.service.slo.SloTracker` keeps per-tenant rolling
  SLO state (latency quantiles, error/shed burn rates) surfaced via
  ``stats``, ``/slo`` and ``/metrics``;
* **distributed tracing** — when an upload's wire header carries a
  trace context (``{"trace": {"id", "parent"}}``, attached by
  :class:`~repro.service.client.ServiceClient` under live telemetry),
  the server continues the trace: ``server.request`` wraps the
  dispatch, retroactive ``server.accept`` / ``server.decode`` spans
  cover the socket work, ``server.spool`` the disk write, and the
  worker adds ``server.queue_wait`` / ``server.execute`` /
  ``server.ingest`` under the same trace id — ``repro trace`` joins
  the client and server logs into one waterfall.  Untraced requests
  (telemetry off, old clients) take the exact pre-trace code path;
* **lifecycle** — ``start`` binds, ``serve_forever`` accepts until a
  shutdown is requested; SIGTERM/SIGINT (or the ``shutdown`` op) stop
  intake, drain queued and in-flight jobs to completion (bounded by
  ``drain_timeout``), then close the stores.

The same port also answers plain HTTP ``GET``/``HEAD`` (sniffed from
the first bytes; other verbs get 405): ``/`` (tenant index),
``/stats`` (JSON), ``/metrics`` (Prometheus text exposition), ``/slo``
(JSON), ``/<tenant>`` (HTML dashboard),
``/<tenant>/report|alerts|runs`` — so a browser or a scraper can watch
a store the wire protocol feeds.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..observatory import artefact_suffix, detect_drift, ingest_path, ingest_stream_dump
from ..telemetry.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from ..telemetry.prometheus import render_prometheus
from ..telemetry.registry import MetricsRegistry
from .jobs import DONE, FAILED, Job, JobQueue, QueueClosed, QueueFull
from .slo import SloTargets, SloTracker
from .tenants import DEFAULT_TENANT, TenantError, TenantManager, validate_tenant
from .wire import MAGIC, WireError, recv_frame, send_frame

__all__ = ["ProfileServer"]

#: ops a request header may name
_OPS = ("ping", "put", "put_stream", "job", "runs", "alerts", "report",
        "stats", "tenants", "shutdown")

#: HTTP verbs the sniffer recognizes (only GET/HEAD are served; the
#: rest answer 405 instead of dying on the wire magic check)
_HTTP_VERBS = (b"GET ", b"HEAD ", b"POST ", b"PUT ", b"DELETE ",
               b"OPTIONS ", b"PATCH ", b"TRACE ")


class ProfileServer:
    """One always-on ingestion server over one tenant root directory."""

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        capacity: int = 64,
        retries: int = 1,
        timeout: Optional[float] = None,
        drain_timeout: float = 30.0,
        top_k: int = 10,
        slo_window: float = 300.0,
        slo_targets: Optional[SloTargets] = None,
    ):
        self.root = root
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.top_k = top_k
        self.tenants = TenantManager(root)
        self.registry = MetricsRegistry()
        self.slo = SloTracker(window_seconds=slo_window, targets=slo_targets)
        self.queue = JobQueue(
            self._execute, workers=workers, capacity=capacity,
            retries=retries, timeout=timeout, observer=self._observe,
        )
        self._listener: Optional[socket.socket] = None
        self._shutdown = threading.Event()
        self._drained = threading.Event()
        self._clients_lock = threading.Lock()
        self._clients: Dict[int, socket.socket] = {}
        self._client_seq = 0

    # -- metrics -------------------------------------------------------------

    def _bump(self, name: str, amount: int = 1, **labels) -> None:
        self.registry.counter(name, **labels).inc(amount)
        telemetry.counter(name, **labels).inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)
        telemetry.gauge(name).set(value)

    def _observe_ms(self, name: str, milliseconds: float, **labels) -> None:
        self.registry.histogram(name, **labels).observe(milliseconds)
        telemetry.histogram(name, **labels).observe(milliseconds)

    def _observe(self, what: str, job: Job) -> None:
        """Queue observer: gauges, outcome counters, SLOs, spool cleanup."""
        self._gauge("service.queue.depth", self.queue.depth())
        self._gauge("service.jobs.in_flight", self.queue.in_flight())
        if what == "retry":
            self._bump("service.jobs.retries")
            return
        if what not in (DONE, FAILED):
            return
        self._bump(f"service.jobs.{what}")
        latency_ms = 0.0
        if job.started_at is not None and job.finished_at is not None:
            latency_ms = (job.finished_at - job.started_at) * 1000.0
            self._observe_ms("service.ingest_ms", latency_ms,
                             tenant=job.tenant)
        if job.shed:
            self.slo.record_shed(job.tenant)
        else:
            self.slo.record_ingest(job.tenant, latency_ms, ok=(what == DONE))
        trace = job.trace
        if trace is not None and job.started_at is not None:
            # the queue wait is only known once a worker picked the job
            # up (or expired it) — record it retroactively into the trace
            telemetry.emit_span(
                "server.queue_wait", trace.get("enqueued_time", 0.0),
                job.started_at - job.enqueued_at,
                trace_id=trace.get("id"), parent_uid=trace.get("parent"),
                ok=not job.shed, job=job.job_id, tenant=job.tenant)
        if job.path:
            try:
                os.unlink(job.path)
            except OSError:
                pass

    # -- job execution (worker threads) --------------------------------------

    def _execute(self, job: Job) -> Dict:
        trace = job.trace
        tele = telemetry.current()
        if trace is None or not tele.enabled:
            return self._ingest_job(job)
        # continue the upload's trace on this worker thread: the spans
        # land in the server log with the request span as their parent
        with tele.trace(trace.get("id"), trace.get("parent")):
            with tele.span("server.execute", tenant=job.tenant,
                           job=job.job_id):
                return self._ingest_job(job)

    def _ingest_job(self, job: Job) -> Dict:
        params = job.params
        with telemetry.span("server.ingest", tenant=job.tenant):
            with self.tenants.lock(job.tenant):
                store = self.tenants.store(job.tenant)
                if job.kind == "stream":
                    with open(job.path, "rb") as stream:
                        data = stream.read()
                    result = ingest_stream_dump(
                        store, data, params.get("stream") or {},
                        run_id=params.get("run_id"),
                        git_sha=params.get("git_sha") or "",
                        scale=float(params.get("scale") or 0.0),
                        top_k=int(params.get("top_k") or self.top_k),
                    )
                else:
                    result = ingest_path(
                        store, job.path,
                        run_id=params.get("run_id"),
                        git_sha=params.get("git_sha") or "",
                        timestamp=params.get("timestamp") or "-",
                        scale=float(params.get("scale") or 0.0),
                        top_k=int(params.get("top_k") or self.top_k),
                    )
        if not result.ingested:
            self._bump("service.uploads.duplicate")
        return {
            "run_id": result.run_id,
            "source": result.source,
            "ingested": result.ingested,
            "detail": result.detail,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and start accepting in a background thread."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        thread = threading.Thread(target=self._accept_loop, daemon=True,
                                  name="service-accept")
        thread.start()
        self._accept_thread = thread
        return self.host, self.port

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (main thread only)."""
        def handler(signum, frame):  # noqa: ARG001
            self.request_shutdown()

        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)

    def request_shutdown(self) -> None:
        """Flip the shutdown flag and wake the accept loop (idempotent)."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def serve_forever(self) -> bool:
        """Block until shutdown is requested, then drain; True iff drained."""
        self._shutdown.wait()
        return self._finish()

    def _finish(self) -> bool:
        drained = self.queue.drain(self.drain_timeout)
        self._drained.set()
        with self._clients_lock:
            sockets = list(self._clients.values())
            self._clients.clear()
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self.tenants.close()
        return drained

    def stop(self) -> bool:
        """Request shutdown and drain synchronously (the test path)."""
        self.request_shutdown()
        if self._drained.is_set():
            return True
        return self._finish()

    # -- accept / per-client loops -------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        if listener is None:
            return
        while not self._shutdown.is_set():
            try:
                sock, _address = listener.accept()
            except OSError:
                return              # listener closed: shutting down
            with self._clients_lock:
                self._client_seq += 1
                client_id = self._client_seq
                self._clients[client_id] = sock
            thread = threading.Thread(
                target=self._serve_client, args=(sock, client_id),
                daemon=True, name=f"service-client-{client_id}",
            )
            thread.start()

    def _forget(self, client_id: int) -> None:
        with self._clients_lock:
            self._clients.pop(client_id, None)

    def _serve_client(self, sock: socket.socket, client_id: int) -> None:
        accepted_time = time.time()
        accept_wall0 = time.perf_counter()
        first_frame = True
        try:
            kind = self._peek_kind(sock)
            if kind == "http":
                self._serve_http(sock)
                return
            while not self._shutdown.is_set():
                recv_time = time.time()
                recv_wall0 = time.perf_counter()
                try:
                    frame = recv_frame(sock, eof_ok=True)
                except WireError as error:
                    self._bump("service.requests.malformed")
                    self._reply_error(sock, str(error))
                    return
                recv_wall = time.perf_counter() - recv_wall0
                if frame is None:
                    return
                header, payload = frame
                accept_wall = (recv_wall0 - accept_wall0) if first_frame else None
                keep_going = self._dispatch(
                    sock, header, payload,
                    accepted_time=accepted_time if first_frame else None,
                    accept_wall=accept_wall,
                    recv_time=recv_time, recv_wall=recv_wall)
                first_frame = False
                if not keep_going:
                    return
        except OSError:
            pass                    # client went away mid-conversation
        finally:
            self._forget(client_id)
            try:
                sock.close()
            except OSError:
                pass

    def _peek_kind(self, sock: socket.socket) -> str:
        """``http`` when the first bytes spell an HTTP verb, else ``wire``."""
        try:
            head = sock.recv(8, socket.MSG_PEEK)
        except OSError:
            return "wire"
        if head[: len(MAGIC)] == MAGIC:
            return "wire"
        if any(head[: len(verb)] == verb for verb in _HTTP_VERBS):
            return "http"
        return "wire"

    def _dispatch(self, sock: socket.socket, header: Dict, payload: bytes,
                  accepted_time: Optional[float], accept_wall: Optional[float],
                  recv_time: float, recv_wall: float) -> bool:
        """Handle one frame, continuing the client's trace when it sent one."""
        carrier = header.get("trace")
        tele = telemetry.current()
        if not (isinstance(carrier, dict) and carrier.get("id")
                and tele.enabled):
            return self._handle(sock, header, payload)
        with tele.trace(str(carrier["id"]), carrier.get("parent")):
            with tele.span("server.request", op=header.get("op")):
                # the socket work happened before the trace id was known;
                # link it retroactively under the request span
                if accepted_time is not None and accept_wall is not None:
                    tele.emit_span("server.accept", accepted_time, accept_wall)
                tele.emit_span("server.decode", recv_time, recv_wall,
                               bytes=len(payload))
                return self._handle(sock, header, payload)

    # -- request dispatch ----------------------------------------------------

    def _reply(self, sock: socket.socket, header: Dict,
               payload: bytes = b"") -> None:
        try:
            send_frame(sock, header, payload)
        except (OSError, WireError):
            pass                    # client is gone; nothing to salvage

    def _reply_error(self, sock: socket.socket, message: str, **extra) -> None:
        self._reply(sock, {"ok": False, "error": message, **extra})

    def _handle(self, sock: socket.socket, header: Dict,
                payload: bytes) -> bool:
        """Serve one request; False ends the connection."""
        op = header.get("op")
        if op not in _OPS:
            self._bump("service.requests.malformed")
            self._reply_error(sock, f"unknown op {op!r}")
            return True
        self._bump("service.requests", op=op)
        try:
            handler = getattr(self, f"_op_{op}")
            return handler(sock, header, payload)
        except TenantError as error:
            self._reply_error(sock, str(error))
            return True
        except Exception as error:  # noqa: BLE001 - connection boundary
            self._reply_error(
                sock, f"internal error: {type(error).__name__}: {error}")
            return True

    def _tenant_of(self, header: Dict) -> str:
        return validate_tenant(str(header.get("tenant") or DEFAULT_TENANT))

    def _op_ping(self, sock, header, payload) -> bool:
        self._reply(sock, {"ok": True, "op": "ping"})
        return True

    def _op_shutdown(self, sock, header, payload) -> bool:
        self._reply(sock, {"ok": True, "op": "shutdown",
                           "draining": self.queue.depth()
                           + self.queue.in_flight()})
        self.request_shutdown()
        return False

    def _op_put(self, sock, header, payload) -> bool:
        tenant = self._tenant_of(header)
        if not payload:
            self._bump("service.uploads.rejected", reason="empty")
            self._reply_error(sock, "empty upload payload")
            return True
        digest = hashlib.sha256(payload).hexdigest()[:32]
        run_id = str(header.get("run_id") or "") or digest
        with self.tenants.lock(tenant):
            known = self.tenants.store(tenant).has_run(run_id)
        if known:
            # Arafa-style redundancy suppression at the door: the
            # duplicate never reaches the spool, the queue or a worker.
            self._bump("service.uploads.duplicate")
            self._reply(sock, {"ok": True, "op": "put", "tenant": tenant,
                               "run_id": run_id, "status": "duplicate",
                               "duplicate": True})
            return True
        job_id = self.queue.next_job_id()
        spool_dir = os.path.join(self.tenants.path(tenant), "spool")
        os.makedirs(spool_dir, exist_ok=True)
        path = os.path.join(
            spool_dir, f"{job_id}-{digest[:8]}{artefact_suffix(payload)}")
        with telemetry.span("server.spool", tenant=tenant,
                            bytes=len(payload)):
            with open(path, "wb") as stream:
                stream.write(payload)
        job = Job(job_id, tenant, "ingest", path=path, params={
            "run_id": run_id if header.get("run_id") else None,
            "git_sha": str(header.get("git_sha") or ""),
            "timestamp": str(header.get("timestamp") or ""),
            "scale": float(header.get("scale") or 0.0),
            "top_k": int(header.get("top_k") or self.top_k),
        })
        carrier = telemetry.trace_carrier()
        if carrier is not None:
            # hand the trace across the queue: the worker re-activates it
            job.trace = {"id": carrier.get("id"),
                         "parent": carrier.get("parent"),
                         "enqueued_time": time.time()}
        try:
            self.queue.submit(job)
        except (QueueFull, QueueClosed) as error:
            os.unlink(path)
            reason = ("draining" if isinstance(error, QueueClosed)
                      else "queue_full")
            self._bump("service.uploads.rejected", reason=reason)
            self.slo.record_shed(tenant)
            self._reply_error(sock, str(error), status="rejected",
                              reason=reason)
            return True
        self._gauge("service.queue.depth", self.queue.depth())
        self._bump("service.uploads.accepted")
        if header.get("wait"):
            # inline mode: block this client thread until the job is
            # terminal (workers still do the analysis)
            wait = header.get("wait_timeout")
            job.done_event.wait(None if wait is None else float(wait))
        self._reply(sock, {"ok": True, "op": "put", "tenant": tenant,
                           "run_id": job.result.get("run_id", run_id)
                           if job.result else run_id,
                           "duplicate": bool(job.result
                                             and not job.result["ingested"]),
                           **job.snapshot()})
        return True

    def _op_put_stream(self, sock, header, payload) -> bool:
        """Ingest one live-stream checkpoint (superseding by stream id).

        Unlike ``put`` there is no at-the-door run-id rejection: every
        checkpoint of a stream *shares* its run id on purpose, and each
        upload replaces the previous partial run (an unchanged
        checkpoint is still an idempotent no-op downstream).  The
        manifest's lag metrics land on ``/metrics`` as per-tenant
        ``streaming.*`` gauges, so remote dashboards see stream health
        without touching the producer host.
        """
        tenant = self._tenant_of(header)
        stream = header.get("stream") or {}
        stream_id = str(stream.get("id") or stream.get("stream_id") or "")
        if not payload:
            self._bump("service.uploads.rejected", reason="empty")
            self._reply_error(sock, "empty stream checkpoint payload")
            return True
        if not stream_id:
            self._bump("service.uploads.rejected", reason="no_stream_id")
            self._reply_error(sock, "put_stream without a stream id")
            return True
        run_id = str(header.get("run_id") or "") or f"stream-{stream_id}"
        for gauge_name, key in (("streaming.checkpoint_lag_ms", "lag_ms"),
                                ("streaming.events_behind", "events_behind")):
            value = float(stream.get(key) or 0.0)
            self.registry.gauge(gauge_name, tenant=tenant).set(value)
            telemetry.gauge(gauge_name, tenant=tenant).set(value)
        job_id = self.queue.next_job_id()
        spool_dir = os.path.join(self.tenants.path(tenant), "spool")
        os.makedirs(spool_dir, exist_ok=True)
        path = os.path.join(spool_dir, f"{job_id}-{stream_id[:8]}.profile")
        with telemetry.span("server.spool", tenant=tenant,
                            bytes=len(payload), stream=stream_id):
            with open(path, "wb") as handle:
                handle.write(payload)
        job = Job(job_id, tenant, "stream", path=path, params={
            "run_id": run_id if header.get("run_id") else None,
            "git_sha": str(header.get("git_sha") or ""),
            "scale": float(header.get("scale") or 0.0),
            "top_k": int(header.get("top_k") or self.top_k),
            "stream": {
                "id": stream_id,
                "seq": int(stream.get("seq") or 0),
                "events_analyzed": int(stream.get("events_analyzed") or 0),
                "events_behind": int(stream.get("events_behind") or 0),
                "lag_ms": float(stream.get("lag_ms") or 0.0),
                "events_per_s": float(stream.get("events_per_s") or 0.0),
                "closed": bool(stream.get("closed")),
                "timestamp": str(stream.get("timestamp") or ""),
            },
        })
        carrier = telemetry.trace_carrier()
        if carrier is not None:
            job.trace = {"id": carrier.get("id"),
                         "parent": carrier.get("parent"),
                         "enqueued_time": time.time()}
        try:
            self.queue.submit(job)
        except (QueueFull, QueueClosed) as error:
            os.unlink(path)
            reason = ("draining" if isinstance(error, QueueClosed)
                      else "queue_full")
            self._bump("service.uploads.rejected", reason=reason)
            self.slo.record_shed(tenant)
            self._reply_error(sock, str(error), status="rejected",
                              reason=reason)
            return True
        self._gauge("service.queue.depth", self.queue.depth())
        self._bump("service.uploads.stream")
        if header.get("wait"):
            wait = header.get("wait_timeout")
            job.done_event.wait(None if wait is None else float(wait))
        self._reply(sock, {"ok": True, "op": "put_stream", "tenant": tenant,
                           "run_id": run_id, "stream_id": stream_id,
                           "seq": int(stream.get("seq") or 0),
                           **job.snapshot()})
        return True

    def _op_job(self, sock, header, payload) -> bool:
        job = self.queue.status(str(header.get("job") or ""))
        if job is None:
            self._reply_error(sock, f"unknown job {header.get('job')!r}")
            return True
        self._reply(sock, {"ok": True, "op": "job", **job.snapshot()})
        return True

    def _op_runs(self, sock, header, payload) -> bool:
        tenant = self._tenant_of(header)
        with self.tenants.lock(tenant):
            store = self.tenants.store(tenant)
            runs = [info._asdict() for info in store.runs()]
        self._reply(sock, {"ok": True, "op": "runs", "tenant": tenant,
                           "runs": runs})
        return True

    def _op_alerts(self, sock, header, payload) -> bool:
        tenant = self._tenant_of(header)
        tolerance = float(header.get("tolerance") or 1.30)
        with self.tenants.lock(tenant):
            store = self.tenants.store(tenant)
            alerts = detect_drift(store, tolerance=tolerance)
        body = b""
        if header.get("format") == "ascii":
            from ..observatory import render_alert_feed

            body = render_alert_feed(alerts).encode("utf-8")
        self._reply(sock, {"ok": True, "op": "alerts", "tenant": tenant,
                           "alerts": [alert._asdict() for alert in alerts]},
                    body)
        return True

    def _op_report(self, sock, header, payload) -> bool:
        from ..observatory import render_observatory_html, render_observatory_report

        tenant = self._tenant_of(header)
        tolerance = float(header.get("tolerance") or 1.30)
        fmt = str(header.get("format") or "ascii")
        if fmt not in ("ascii", "html"):
            self._reply_error(sock, f"unknown report format {fmt!r}")
            return True
        with self.tenants.lock(tenant):
            store = self.tenants.store(tenant)
            if fmt == "html":
                body = render_observatory_html(
                    store, tolerance=tolerance,
                    title=f"profile observatory: {tenant}")
            else:
                body = render_observatory_report(
                    store, tolerance=tolerance,
                    limit=int(header.get("limit") or 20))
        self._reply(sock, {"ok": True, "op": "report", "tenant": tenant,
                           "format": fmt}, body.encode("utf-8"))
        return True

    def _op_stats(self, sock, header, payload) -> bool:
        self._reply(sock, {"ok": True, "op": "stats", **self.stats()})
        return True

    def _op_tenants(self, sock, header, payload) -> bool:
        self._reply(sock, {"ok": True, "op": "tenants",
                           "tenants": self.tenants.tenants()})
        return True

    def stats(self) -> Dict:
        """The server's self-metrics (also the ``stats`` op body)."""
        return {
            "queue_depth": self.queue.depth(),
            "jobs_in_flight": self.queue.in_flight(),
            "tenants": self.tenants.tenants(),
            "draining": self._shutdown.is_set(),
            "metrics": self.registry.snapshot(),
            "slo": self.slo.snapshot(),
        }

    def _slo_metric_entries(self) -> List[Dict]:
        """The SLO snapshot as synthetic gauge entries for ``/metrics``."""
        entries: List[Dict] = []

        def gauge(name: str, tenant: str, value: float) -> None:
            entries.append({"kind": "gauge", "name": name,
                            "labels": {"tenant": tenant}, "value": value})

        for tenant, state in self.slo.snapshot().items():
            for quantile, value in state["latency_ms"].items():
                gauge(f"service.slo.latency_{quantile}_ms", tenant, value)
            gauge("service.slo.error_rate", tenant, state["error_rate"])
            gauge("service.slo.shed_rate", tenant, state["shed_rate"])
            for burn, value in state["burn"].items():
                gauge(f"service.slo.burn.{burn}", tenant, value)
            gauge("service.slo.alerts", tenant, len(state["alerts"]))
        return entries

    # -- read-only HTTP fallback ---------------------------------------------

    def _serve_http(self, sock: socket.socket) -> None:
        """One-shot ``GET``/``HEAD`` handler on the same port."""
        self._bump("service.requests", op="http")
        data = b""
        while b"\r\n\r\n" not in data and b"\n\n" not in data:
            chunk = sock.recv(4096)
            if not chunk or len(data) > (1 << 16):
                break
            data += chunk
        parts = data.split(None, 2)
        if len(parts) < 2:
            self._http_reply(sock, 400, "text/plain", b"bad request")
            return
        method = parts[0].decode("utf-8", "replace")
        target = parts[1].decode("utf-8", "replace")
        if method not in ("GET", "HEAD"):
            self._http_reply(sock, 405, "text/plain",
                             f"method {method} not allowed".encode("utf-8"),
                             extra_headers=(("Allow", "GET, HEAD"),))
            return
        try:
            status, ctype, body = self._http_route(target.split("?", 1)[0])
        except TenantError as error:
            status, ctype, body = 404, "text/plain", str(error).encode()
        except Exception as error:  # noqa: BLE001 - connection boundary
            status, ctype, body = (500, "text/plain",
                                   f"internal error: {error}".encode())
        self._http_reply(sock, status, ctype, body,
                         head_only=(method == "HEAD"))

    def _http_route(self, path: str) -> Tuple[int, str, bytes]:
        from ..observatory import render_observatory_html, render_observatory_report

        if path in ("/", ""):
            slo = self.slo.snapshot()
            rows = "".join(
                f'<li><a href="/{name}">{name}</a> '
                f'(<a href="/{name}/alerts">alerts</a>, '
                f'<a href="/{name}/runs">runs</a>)</li>'
                for name in self.tenants.tenants())
            slo_rows = "".join(
                f"<tr><td>{tenant}</td>"
                f"<td>{state['latency_ms']['p99']:.1f}</td>"
                f"<td>{state['burn']['latency_p99']:.2f}</td>"
                f"<td>{state['burn']['error']:.2f}</td>"
                f"<td>{state['burn']['shed']:.2f}</td>"
                f"<td>{', '.join(state['alerts']) or '-'}</td></tr>"
                for tenant, state in slo.items())
            slo_table = (
                "<h2>SLO burn (rolling window)</h2>"
                "<table border=1><tr><th>tenant</th><th>p99 ms</th>"
                "<th>latency burn</th><th>error burn</th>"
                "<th>shed burn</th><th>alerts</th></tr>"
                f"{slo_rows}</table>" if slo_rows else "")
            body = (f"<!DOCTYPE html><title>repro service</title>"
                    f"<h1>profile observatory service</h1>"
                    f"<ul>{rows or '<li>(no tenants yet)</li>'}</ul>"
                    f"{slo_table}"
                    f'<p><a href="/stats">server stats</a> &middot; '
                    f'<a href="/metrics">metrics</a> &middot; '
                    f'<a href="/slo">slo</a></p>')
            return 200, "text/html; charset=utf-8", body.encode("utf-8")
        if path == "/stats":
            return (200, "application/json",
                    json.dumps(self.stats(), sort_keys=True).encode("utf-8"))
        if path == "/metrics":
            snapshot = self.registry.snapshot() + self._slo_metric_entries()
            return (200, PROMETHEUS_CONTENT_TYPE,
                    render_prometheus(snapshot).encode("utf-8"))
        if path == "/slo":
            return (200, "application/json",
                    json.dumps(self.slo.snapshot(),
                               sort_keys=True).encode("utf-8"))
        parts = [part for part in path.split("/") if part]
        tenant = validate_tenant(parts[0])
        view = parts[1] if len(parts) > 1 else "html"
        with self.tenants.lock(tenant):
            store = self.tenants.store(tenant)
            if view == "html":
                return (200, "text/html; charset=utf-8",
                        render_observatory_html(
                            store, title=f"profile observatory: {tenant}"
                        ).encode("utf-8"))
            if view == "report":
                return (200, "text/plain; charset=utf-8",
                        render_observatory_report(store).encode("utf-8"))
            if view == "alerts":
                alerts = [alert._asdict() for alert in detect_drift(store)]
                return (200, "application/json",
                        json.dumps(alerts, sort_keys=True).encode("utf-8"))
            if view == "runs":
                runs = [info._asdict() for info in store.runs()]
                return (200, "application/json",
                        json.dumps(runs, sort_keys=True).encode("utf-8"))
        return 404, "text/plain", f"no such view {view!r}".encode("utf-8")

    def _http_reply(self, sock: socket.socket, status: int, ctype: str,
                    body: bytes,
                    extra_headers: Tuple[Tuple[str, str], ...] = (),
                    head_only: bool = False) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed",
                  500: "Internal Server Error"}.get(status, "OK")
        extras = "".join(f"{name}: {value}\r\n"
                         for name, value in extra_headers)
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extras}"
                f"Connection: close\r\n\r\n").encode("utf-8")
        try:
            sock.sendall(head + (b"" if head_only else body))
        except OSError:
            pass
