"""The ``repro-wire/1`` framing: length-prefixed request/response frames.

The service speaks a deliberately small binary protocol over TCP, in
the length-prefixed style of every production wire format (and of the
packet buffer :mod:`repro.minidb.protocol` models in miniature)::

    frame := magic(4) | header_len(u32) | payload_len(u32)
             | header JSON (UTF-8) | payload bytes

The **header** is a JSON object carrying the operation and its
metadata (``{"op": "put", "tenant": "web", ...}`` on requests,
``{"ok": true, ...}`` on responses); the **payload** is the raw
artefact — a ``repro-profile 1`` dump, a v2 binary trace, a
``telemetry.jsonl`` log or a ``repro-bench/1`` envelope on uploads, a
rendered dashboard on query responses.  Splitting metadata from bytes
keeps uploads cheap for clients: no base64, no re-encoding, the
artefact travels verbatim and the server digests exactly the bytes the
client read from disk (so content-digest run ids agree between online
and offline ingestion).

Both sides enforce hard size ceilings *before* allocating, so a
malformed or hostile length prefix is an error, never an allocation:
oversized or garbled frames raise :class:`WireError` and the server
drops the connection after a best-effort error reply.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional, Tuple

__all__ = [
    "WIRE_SCHEMA",
    "MAGIC",
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "WireError",
    "send_frame",
    "recv_frame",
]

WIRE_SCHEMA = "repro-wire/1"

#: every frame starts with these four bytes; anything else is not ours
MAGIC = b"RPW1"

_PREFIX = struct.Struct("!4sII")

#: ceilings enforced before any allocation happens
MAX_HEADER_BYTES = 1 << 20          # 1 MiB of JSON metadata
MAX_PAYLOAD_BYTES = 64 << 20        # 64 MiB artefact


class WireError(Exception):
    """A malformed, truncated or oversized frame."""


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly ``size`` bytes or raise :class:`WireError`."""
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise WireError(
                f"connection closed mid-frame ({size - remaining}/{size} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, header: Dict, payload: bytes = b"") -> None:
    """Send one frame: a JSON ``header`` plus an optional raw ``payload``."""
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise WireError(f"header too large ({len(header_bytes)} bytes)")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireError(f"payload too large ({len(payload)} bytes)")
    sock.sendall(_PREFIX.pack(MAGIC, len(header_bytes), len(payload))
                 + header_bytes + payload)


def recv_frame(sock: socket.socket,
               eof_ok: bool = False) -> Optional[Tuple[Dict, bytes]]:
    """Receive one frame; ``None`` on a clean EOF when ``eof_ok``.

    Raises :class:`WireError` on a bad magic, an oversized length
    prefix, a truncated frame, or a header that is not a JSON object.
    """
    first = sock.recv(1)
    if not first:
        if eof_ok:
            return None
        raise WireError("connection closed before a frame")
    prefix = first + _recv_exact(sock, _PREFIX.size - 1)
    magic, header_len, payload_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if header_len > MAX_HEADER_BYTES:
        raise WireError(f"header length {header_len} exceeds "
                        f"{MAX_HEADER_BYTES}")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise WireError(f"payload length {payload_len} exceeds "
                        f"{MAX_PAYLOAD_BYTES}")
    header_bytes = _recv_exact(sock, header_len)
    payload = _recv_exact(sock, payload_len) if payload_len else b""
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise WireError(f"unparseable frame header: {error}") from None
    if not isinstance(header, dict):
        raise WireError("frame header is not a JSON object")
    return header, payload
