"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the registered benchmarks (suite, name, description);
* ``profile <benchmark>`` — run a benchmark under the profilers and
  print the aprof-style report, optionally with the bottleneck ranking,
  a per-routine cost plot, and a machine-readable point dump;
* ``fit <dump> <routine>`` — re-load a point dump produced by
  ``profile --dump`` and name the routine's growth class.

The CLI works on the VM benchmark registry; profiling arbitrary Python
programs goes through the library API (see ``examples/quickstart.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import EventBus, RmsProfiler, TrmsProfiler
from .curvefit import select_model
from .reporting import render_bottlenecks, render_report, scatter
from .reporting.report import dump_points, parse_points
from .workloads import all_benchmarks, benchmark

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Input-sensitive profiling (aprof reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the registered benchmarks")

    profile = commands.add_parser("profile", help="profile one benchmark")
    profile.add_argument("benchmark", help="benchmark name (see `repro list`)")
    profile.add_argument("--threads", type=int, default=4)
    profile.add_argument("--scale", type=float, default=1.0)
    profile.add_argument("--metric", choices=["rms", "trms", "both"], default="both")
    profile.add_argument("--context", action="store_true",
                         help="calling-context-sensitive profiles")
    profile.add_argument("--bottlenecks", action="store_true",
                         help="append the asymptotic bottleneck ranking")
    profile.add_argument("--plot", metavar="ROUTINE",
                         help="render the worst-case cost plot of a routine")
    profile.add_argument("--dump", metavar="FILE",
                         help="write the trms plot points as TSV")
    profile.add_argument("--sample", type=int, default=1, metavar="K",
                         help="burst-sample 1 of every K memory reads "
                              "(sizes become lower bounds)")
    profile.add_argument("--html", metavar="FILE",
                         help="write a self-contained HTML report")

    fit = commands.add_parser("fit", help="fit a dumped cost plot")
    fit.add_argument("dump", help="TSV file produced by `profile --dump`")
    fit.add_argument("routine", help="routine to fit")

    record = commands.add_parser(
        "record", help="record a benchmark's event trace to a file"
    )
    record.add_argument("benchmark")
    record.add_argument("output", help="trace file to write")
    record.add_argument("--threads", type=int, default=4)
    record.add_argument("--scale", type=float, default=1.0)

    analyze = commands.add_parser(
        "analyze", help="run the profilers over a recorded trace"
    )
    analyze.add_argument("trace", help="file produced by `record`")
    analyze.add_argument("--metric", choices=["rms", "trms", "both"], default="both")
    analyze.add_argument("--context", action="store_true")

    return parser


def _cmd_list(out) -> int:
    for bench in all_benchmarks():
        out.write(f"{bench.suite:14s} {bench.name:16s} {bench.description}\n")
    return 0


def _cmd_profile(args, out) -> int:
    try:
        bench = benchmark(args.benchmark)
    except KeyError as error:
        out.write(f"error: {error.args[0]}\n")
        return 2
    profilers = {}
    if args.metric in ("rms", "both"):
        profilers["rms"] = RmsProfiler(context_sensitive=args.context)
    if args.metric in ("trms", "both"):
        profilers["trms"] = TrmsProfiler(context_sensitive=args.context)
    consumers = list(profilers.values())
    tools = EventBus(consumers)
    if args.sample > 1:
        from .tools import SamplingShim

        tools = SamplingShim(tools, period=args.sample)
    machine = bench.run(tools=tools, threads=args.threads, scale=args.scale)
    if args.sample > 1:
        out.write(f"note: read sampling 1/{args.sample} — input sizes are "
                  f"lower bounds\n")
    out.write(
        f"{bench.name}: {machine.stats.total_blocks} basic blocks, "
        f"{machine.stats.threads_spawned} threads\n\n"
    )
    for metric, profiler in profilers.items():
        out.write(render_report(profiler.db, title=f"{metric} profile of {bench.name}"))
        out.write("\n")
    reference = profilers.get("trms") or profilers["rms"]
    if args.bottlenecks:
        out.write(render_bottlenecks(reference.db))
        out.write("\n")
    if args.plot:
        profile = reference.db.merged().get(args.plot)
        if profile is None:
            out.write(f"error: no routine {args.plot!r} in the profile\n")
            return 2
        out.write(scatter(profile.worst_case_points(),
                          title=f"{args.plot} — worst-case cost plot"))
    if args.dump:
        with open(args.dump, "w") as stream:
            count = dump_points(reference.db, stream)
        out.write(f"wrote {count} plot points to {args.dump}\n")
    if args.html:
        from .reporting import render_html_report

        metric = "trms" if "trms" in profilers else "rms"
        with open(args.html, "w") as stream:
            stream.write(render_html_report(
                reference.db, title=f"{bench.name} — input-sensitive profile",
                metric=metric,
            ))
        out.write(f"wrote HTML report to {args.html}\n")
    return 0


def _cmd_record(args, out) -> int:
    from .core.tracefile import TraceWriter

    try:
        bench = benchmark(args.benchmark)
    except KeyError as error:
        out.write(f"error: {error.args[0]}\n")
        return 2
    with open(args.output, "w") as stream:
        writer = TraceWriter(stream)
        machine = bench.run(tools=writer, threads=args.threads, scale=args.scale)
    out.write(f"recorded {writer.events_written} events "
              f"({machine.stats.total_blocks} basic blocks) to {args.output}\n")
    return 0


def _cmd_analyze(args, out) -> int:
    from .core import replay
    from .core.tracefile import TraceFileError, iter_trace

    profilers = {}
    if args.metric in ("rms", "both"):
        profilers["rms"] = RmsProfiler(context_sensitive=args.context)
    if args.metric in ("trms", "both"):
        profilers["trms"] = TrmsProfiler(context_sensitive=args.context)
    try:
        with open(args.trace) as stream:
            replay(iter_trace(stream), EventBus(list(profilers.values())))
    except TraceFileError as error:
        out.write(f"error: {error}\n")
        return 2
    for metric, profiler in profilers.items():
        out.write(render_report(profiler.db, title=f"{metric} profile of {args.trace}"))
        out.write("\n")
    return 0


def _cmd_fit(args, out) -> int:
    with open(args.dump) as stream:
        db = parse_points(stream)
    profile = db.merged().get(args.routine)
    if profile is None:
        known = ", ".join(sorted(db.merged())[:8])
        out.write(f"error: no routine {args.routine!r} in {args.dump} (have: {known})\n")
        return 2
    points = profile.worst_case_points()
    if len(points) < 2:
        out.write(f"{args.routine}: only {len(points)} point(s); cannot fit\n")
        return 1
    selection = select_model(points)
    out.write(scatter(points, title=f"{args.routine} — worst-case cost plot"))
    out.write(f"{args.routine}: {selection.name} "
              f"(R^2 = {selection.best.r2:.3f}, {len(points)} points)\n")
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "fit":
        return _cmd_fit(args, out)
    if args.command == "record":
        return _cmd_record(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    return 2  # pragma: no cover - argparse enforces the choices
