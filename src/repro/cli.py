"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the registered benchmarks (suite, name, description);
* ``profile <benchmark>`` — run a benchmark under the profilers and
  print the aprof-style report, optionally with the bottleneck ranking,
  a per-routine cost plot, and a machine-readable point dump;
* ``fit <dump> <routine>`` — re-load a point dump (``profile --dump``
  TSV or an ``analyze``/``merge`` profile dump) and name the routine's
  growth class;
* ``record <benchmark> <file>`` — record one execution's event trace
  (chunked binary v2 by default, ``--format v1`` for the text format);
* ``analyze <trace>`` — run the profilers over a recorded trace;
  ``--jobs N`` farms the TRMS analysis out to N worker processes
  (exact: identical to the online profiler), ``--kernel`` picks the
  flat-array or classic analysis kernel (bit-identical, see
  ``docs/KERNEL.md``), ``--dump`` writes a mergeable profile dump;
* ``merge -o out.profile a.profile b.profile …`` — associatively merge
  profile dumps of several shards or several independent runs into one
  richer profile;
* ``overhead <benchmark>`` — measure the profilers' own slowdown and
  space against a native run (the paper's Table 1 discipline) and
  report from telemetry data alone;
* ``stats <run>`` — render the dashboard of a recorded telemetry run
  (span tree, worker heartbeats, metrics, overhead table), optionally
  as a self-contained HTML file;
* ``diff <old> <new>`` — classify per-routine asymptotic regressions
  between two profile dumps (``regressed``/``slower``/… — the cost-
  function diff of ``reporting.diffing``);
* ``observe {ingest,report,alerts,gc}`` — the profile observatory: a
  persistent history store over many runs, growth-rate drift alerts
  and fleet dashboards (``ingest -`` reads one artefact from stdin;
  see ``docs/OBSERVATORY.md``);
* ``serve`` — the long-lived ingestion server: accepts profile dumps,
  v2 traces, telemetry logs and bench envelopes over the
  ``repro-wire/1`` protocol into per-tenant observatory stores,
  analysing asynchronously on a bounded job queue (``docs/SERVICE.md``);
* ``slap`` — the minislap load generator: a swarm of concurrent
  clients hammering a running server, reported as p50/p99 upload
  latency, duplicate/rejected tallies and the server's SLO burn
  (optionally as a ``repro-bench/1`` envelope for the bench gate);
* ``trace`` — join client and server telemetry logs by trace id and
  render cross-process request waterfalls (``--slowest N`` picks the
  worst uploads; ``--html`` writes SVG timelines).

Every pipeline command accepts ``--telemetry DIR``: spans, heartbeats
and metrics of that invocation land in ``DIR/telemetry.jsonl`` for
``repro stats`` (see ``docs/TELEMETRY.md``).  Telemetry never changes
profile output — only observes it.

The CLI works on the VM benchmark registry; profiling arbitrary Python
programs goes through the library API (see ``examples/quickstart.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import telemetry
from .core import EventBus, RmsProfiler, TrmsProfiler
from .curvefit import select_model
from .reporting import render_bottlenecks, render_report, scatter
from .reporting.report import dump_points, parse_points
from .workloads import all_benchmarks, benchmark

__all__ = ["main", "build_parser"]


def _add_telemetry_option(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--telemetry", metavar="DIR",
        help="record spans/heartbeats/metrics to DIR/telemetry.jsonl "
             "(render with `repro stats DIR`)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Input-sensitive profiling (aprof reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the registered benchmarks")

    profile = commands.add_parser("profile", help="profile one benchmark")
    profile.add_argument("benchmark", help="benchmark name (see `repro list`)")
    profile.add_argument("--threads", type=int, default=4)
    profile.add_argument("--scale", type=float, default=1.0)
    profile.add_argument("--metric", choices=["rms", "trms", "both"], default="both")
    profile.add_argument("--context", action="store_true",
                         help="calling-context-sensitive profiles")
    profile.add_argument("--bottlenecks", action="store_true",
                         help="append the asymptotic bottleneck ranking")
    profile.add_argument("--plot", metavar="ROUTINE",
                         help="render the worst-case cost plot of a routine")
    profile.add_argument("--dump", metavar="FILE",
                         help="write the trms plot points as TSV")
    profile.add_argument("--sample", type=int, default=1, metavar="K",
                         help="burst-sample 1 of every K memory reads "
                              "(sizes become lower bounds)")
    profile.add_argument("--html", metavar="FILE",
                         help="write a self-contained HTML report")
    _add_telemetry_option(profile)

    fit = commands.add_parser("fit", help="fit a dumped cost plot")
    fit.add_argument("dump", help="TSV file produced by `profile --dump`")
    fit.add_argument("routine", help="routine to fit")
    _add_telemetry_option(fit)

    record = commands.add_parser(
        "record", help="record a benchmark's event trace to a file"
    )
    record.add_argument("benchmark")
    record.add_argument("output", help="trace file to write")
    record.add_argument("--threads", type=int, default=4)
    record.add_argument("--scale", type=float, default=1.0)
    record.add_argument("--format", choices=["v2", "v1"], default="v2",
                        help="v2: chunked binary (farm-ready); v1: text")
    record.add_argument("--chunk-events", type=int, default=4096, metavar="N",
                        help="events per v2 chunk (shard planning granularity)")
    record.add_argument("--live", metavar="DIR",
                        help="stream the trace while recording (v2 only): "
                             "flush every sealed chunk + names sidecar and "
                             "tail it into profile checkpoints under DIR "
                             "(watch them with `repro watch DIR`)")
    record.add_argument("--durable", action="store_true",
                        help="fsync every sealed chunk (power-loss durable "
                             "streaming at a throughput cost)")
    record.add_argument("--checkpoint-events", type=int, default=65536,
                        metavar="N", help="events between --live checkpoints")
    _add_telemetry_option(record)

    watch = commands.add_parser(
        "watch", help="live ASCII dashboard over streaming profile checkpoints"
    )
    watch.add_argument("target",
                       help="checkpoint directory (containing CURRENT.json), "
                            "or a growing v2 trace when --checkpoints is given")
    watch.add_argument("--checkpoints", metavar="DIR",
                       help="tail TARGET (a v2 trace) and emit checkpoints "
                            "into DIR while watching")
    watch.add_argument("--once", action="store_true",
                       help="render a single frame and exit")
    watch.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                       help="refresh period (default 1s)")
    watch.add_argument("--top", type=int, default=10, metavar="N",
                       help="routines shown (ranked by growth class, then cost)")
    watch.add_argument("--checkpoint-events", type=int, default=65536,
                       metavar="N",
                       help="events between checkpoints in --checkpoints mode")
    watch.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="give up waiting for new data after this long")
    _add_telemetry_option(watch)

    analyze = commands.add_parser(
        "analyze", help="run the profilers over a recorded trace"
    )
    analyze.add_argument("trace", help="file produced by `record` (v1 or v2)")
    analyze.add_argument("--metric", choices=["rms", "trms", "both"], default="both")
    analyze.add_argument("--context", action="store_true")
    analyze.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="farm the trms analysis out to N worker processes")
    analyze.add_argument("--kernel", choices=["auto", "flat", "classic"],
                         default="auto",
                         help="trms analysis kernel: flat (columnar "
                              "single-pass), classic (object-per-event "
                              "replay), auto = flat (bit-identical either way)")
    analyze.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                         help="per-shard worker timeout (with --jobs)")
    analyze.add_argument("--dump", metavar="FILE",
                         help="write a mergeable profile dump (see `merge`)")
    analyze.add_argument("--stats", action="store_true",
                         help="print the farm shard/throughput report")
    _add_telemetry_option(analyze)

    merge = commands.add_parser(
        "merge", help="merge profile dumps of several shards or runs"
    )
    merge.add_argument("inputs", nargs="+",
                       help="profile dumps produced by `analyze --dump`")
    merge.add_argument("-o", "--output", required=True,
                       help="merged profile dump to write")
    _add_telemetry_option(merge)

    overhead = commands.add_parser(
        "overhead",
        help="measure the profilers' own slowdown/space (Table 1 style)",
    )
    overhead.add_argument("benchmark", help="benchmark name (see `repro list`)")
    overhead.add_argument("--threads", type=int, default=4)
    overhead.add_argument("--scale", type=float, default=1.0)
    overhead.add_argument("--repeats", type=int, default=3, metavar="N",
                          help="runs per configuration (best-of-N wall time)")
    overhead.add_argument("--tools", default=None, metavar="A,B,…",
                          help="comma-separated tool list, or 'all' "
                               "(default: nulgrind,aprof-rms,aprof-trms)")
    _add_telemetry_option(overhead)

    stats = commands.add_parser(
        "stats", help="render the dashboard of a telemetry run"
    )
    stats.add_argument("run", help="run directory or telemetry.jsonl file")
    stats.add_argument("--html", metavar="FILE",
                       help="also write the dashboard as one HTML file")

    diff = commands.add_parser(
        "diff", help="asymptotic regressions between two profile dumps"
    )
    diff.add_argument("old", help="baseline profile dump (or TSV point dump)")
    diff.add_argument("new", help="candidate profile dump (or TSV point dump)")
    diff.add_argument("--min-points", type=int, default=4, metavar="N",
                      help="distinct plot points a growth fit needs (default 4)")
    diff.add_argument("--tolerance", type=float, default=1.30, metavar="T",
                      help="same-class cost ratio counted as slower/faster "
                           "(default 1.30)")
    diff.add_argument("--fail-on", metavar="V[,V…]", default=None,
                      help="exit 1 when any listed verdict appears "
                           "(e.g. regressed,slower)")

    observe = commands.add_parser(
        "observe",
        help="profile observatory: run history, drift alerts, dashboards",
    )
    observed = observe.add_subparsers(dest="observe_command", required=True)

    ingest = observed.add_parser(
        "ingest", help="ingest profile dumps / telemetry runs / bench envelopes"
    )
    ingest.add_argument("inputs", nargs="+",
                        help="profile dumps, TSV point dumps, v2 traces, "
                             "telemetry.jsonl runs or repro-bench/1 "
                             "envelopes; '-' reads one artefact from stdin")
    ingest.add_argument("--store", required=True, metavar="DIR",
                        help="observatory store directory")
    ingest.add_argument("--run-id", default=None,
                        help="run id override (single input only; default: "
                             "content digest / envelope run_id)")
    ingest.add_argument("--git-sha", default="", help="commit the run profiles")
    ingest.add_argument("--scale", type=float, default=0.0,
                        help="workload scale the run was taken at")
    ingest.add_argument("--top-k", type=int, default=10, metavar="K",
                        help="routines whose raw plot points are stored "
                             "(default 10)")

    report = observed.add_parser(
        "report", help="render the fleet dashboard of a store"
    )
    report.add_argument("--store", required=True, metavar="DIR")
    report.add_argument("--tolerance", type=float, default=1.30, metavar="T")
    report.add_argument("--limit", type=int, default=20, metavar="N",
                        help="trajectory rows in the ASCII dashboard")
    report.add_argument("--html", metavar="FILE",
                        help="also write the dashboard as one HTML file")

    alerts = observed.add_parser(
        "alerts", help="print the severity-ranked drift alert feed"
    )
    alerts.add_argument("--store", required=True, metavar="DIR")
    alerts.add_argument("--tolerance", type=float, default=1.30, metavar="T")
    alerts.add_argument("--fail-on", metavar="V[,V…]", default=None,
                        help="exit 1 when any listed verdict appears "
                             "(e.g. regressed or regressed,slower)")

    gc = observed.add_parser(
        "gc", help="compact the store, keeping only the newest runs"
    )
    gc.add_argument("--store", required=True, metavar="DIR")
    gc.add_argument("--keep", type=int, required=True, metavar="N",
                    help="number of newest runs to keep")

    serve = commands.add_parser(
        "serve",
        help="run the profiling service: multi-tenant ingestion over TCP",
    )
    serve.add_argument("--root", required=True, metavar="DIR",
                       help="tenant root (one observatory store per tenant)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = ephemeral, printed on start)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="ingestion worker threads (default 2)")
    serve.add_argument("--capacity", type=int, default=64, metavar="N",
                       help="bounded job-queue capacity (default 64)")
    serve.add_argument("--retries", type=int, default=1, metavar="N",
                       help="extra attempts for a failed ingest job (default 1)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="fail jobs that waited in queue past this deadline")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="how long shutdown waits for in-flight jobs "
                            "(default 30)")
    serve.add_argument("--slo-window", type=float, default=300.0,
                       metavar="SECONDS",
                       help="rolling SLO window per tenant (default 300)")
    serve.add_argument("--slo-p99-ms", type=float, default=500.0,
                       metavar="MS",
                       help="ingest latency p99 target (default 500)")
    serve.add_argument("--slo-error-budget", type=float, default=0.01,
                       metavar="R",
                       help="tolerated ingest error rate (default 0.01)")
    serve.add_argument("--slo-shed-budget", type=float, default=0.05,
                       metavar="R",
                       help="tolerated queue-shed rate (default 0.05)")
    _add_telemetry_option(serve)

    slap = commands.add_parser(
        "slap",
        help="minislap: hammer a running service with concurrent uploads",
    )
    slap.add_argument("--host", default="127.0.0.1")
    slap.add_argument("--port", type=int, required=True)
    slap.add_argument("--tenant", default="slap")
    slap.add_argument("--clients", type=int, default=8, metavar="N",
                      help="concurrent client threads (default 8)")
    slap.add_argument("--uploads", type=int, default=16, metavar="N",
                      help="uploads per client (default 16)")
    slap.add_argument("--duplicate-ratio", type=float, default=0.1,
                      metavar="R",
                      help="fraction of uploads that re-send an earlier "
                           "artefact (default 0.1)")
    slap.add_argument("--seed", type=int, default=101)
    slap.add_argument("--wait", action="store_true",
                      help="wait for each upload's ingest job to finish "
                           "(measures end-to-end instead of ack latency)")
    slap.add_argument("--json", metavar="FILE", default=None,
                      help="also write the repro-bench/1 envelope "
                           "(gate.latency_ms / gate.slo for "
                           "tools/bench_gate.py)")
    _add_telemetry_option(slap)

    trace = commands.add_parser(
        "trace",
        help="join telemetry logs by trace id into request waterfalls",
    )
    trace.add_argument("logs", nargs="+",
                       help="telemetry run directories or .jsonl files "
                            "(client-side and server-side)")
    trace.add_argument("--trace-id", default=None, metavar="ID",
                       help="render only this trace")
    trace.add_argument("--slowest", type=int, default=None, metavar="N",
                       help="render only the N longest traces")
    trace.add_argument("--html", metavar="FILE",
                       help="also write the traces as one HTML timeline page")
    trace.add_argument("--assert-linked", type=int, default=None, metavar="N",
                       help="exit 1 unless some trace is a single "
                            "cross-process tree of at least N spans")

    return parser


def _cmd_list(out) -> int:
    for bench in all_benchmarks():
        out.write(f"{bench.suite:14s} {bench.name:16s} {bench.description}\n")
    return 0


def _cmd_profile(args, out) -> int:
    try:
        bench = benchmark(args.benchmark)
    except KeyError as error:
        out.write(f"error: {error.args[0]}\n")
        return 2
    profilers = {}
    if args.metric in ("rms", "both"):
        profilers["rms"] = RmsProfiler(context_sensitive=args.context)
    if args.metric in ("trms", "both"):
        profilers["trms"] = TrmsProfiler(context_sensitive=args.context)
    consumers = list(profilers.values())
    tools = EventBus(consumers)
    if args.sample > 1:
        from .tools import SamplingShim

        tools = SamplingShim(tools, period=args.sample)
    with telemetry.span("profile", benchmark=bench.name, metric=args.metric,
                        threads=args.threads):
        machine = bench.run(tools=tools, threads=args.threads, scale=args.scale)
    if args.sample > 1:
        for profiler in profilers.values():
            profiler.db.sizes_lower_bound = True
        out.write(f"note: read sampling 1/{args.sample} — input sizes are "
                  f"lower bounds\n")
    out.write(
        f"{bench.name}: {machine.stats.total_blocks} basic blocks, "
        f"{machine.stats.threads_spawned} threads\n\n"
    )
    for metric, profiler in profilers.items():
        out.write(render_report(profiler.db, title=f"{metric} profile of {bench.name}"))
        out.write("\n")
    reference = profilers.get("trms") or profilers["rms"]
    if args.bottlenecks:
        out.write(render_bottlenecks(reference.db))
        out.write("\n")
    if args.plot:
        profile = reference.db.merged().get(args.plot)
        if profile is None:
            out.write(f"error: no routine {args.plot!r} in the profile\n")
            return 2
        out.write(scatter(profile.worst_case_points(),
                          title=f"{args.plot} — worst-case cost plot"))
    if args.dump:
        with open(args.dump, "w") as stream:
            count = dump_points(reference.db, stream)
        out.write(f"wrote {count} plot points to {args.dump}\n")
    if args.html:
        from .reporting import render_html_report

        metric = "trms" if "trms" in profilers else "rms"
        with open(args.html, "w") as stream:
            stream.write(render_html_report(
                reference.db, title=f"{bench.name} — input-sensitive profile",
                metric=metric,
            ))
        out.write(f"wrote HTML report to {args.html}\n")
    return 0


def _cmd_record(args, out) -> int:
    try:
        bench = benchmark(args.benchmark)
    except KeyError as error:
        out.write(f"error: {error.args[0]}\n")
        return 2
    live_dir = getattr(args, "live", None)
    if live_dir and args.format != "v2":
        out.write("error: --live requires the v2 trace format\n")
        return 2
    with telemetry.span("record", benchmark=bench.name,
                        format=args.format) as record_span:
        if args.format == "v2":
            import contextlib

            from .farm import BinaryTraceWriter, live_names_path

            with contextlib.ExitStack() as stack:
                stream = stack.enter_context(open(args.output, "wb"))
                names_stream = None
                session = None
                watcher = None
                if live_dir:
                    import threading

                    from .streaming import LiveProfileSession

                    names_stream = stack.enter_context(
                        open(live_names_path(args.output), "w"))
                    session = LiveProfileSession(
                        args.output, live_dir,
                        checkpoint_events=args.checkpoint_events,
                        checkpoint_seconds=0.5)
                    watcher = threading.Thread(
                        target=session.run, name="repro-live", daemon=True)
                writer = BinaryTraceWriter(
                    stream, chunk_events=args.chunk_events,
                    durable=getattr(args, "durable", False),
                    names_stream=names_stream)
                if watcher is not None:
                    watcher.start()
                machine = bench.run(tools=writer, threads=args.threads,
                                    scale=args.scale)
                writer.close()
                if watcher is not None:
                    watcher.join(timeout=60.0)
            chunks = f", {len(writer.chunks)} chunks"
            if session is not None:
                chunks += (f"; {len(session.checkpoints)} live checkpoint(s) "
                           f"in {live_dir}")
        else:
            from .core.tracefile import TraceWriter

            with open(args.output, "w") as stream:
                writer = TraceWriter(stream)
                machine = bench.run(tools=writer, threads=args.threads,
                                    scale=args.scale)
            chunks = ""
        record_span.set(events=writer.events_written)
    telemetry.counter("record.events").inc(writer.events_written)
    out.write(f"recorded {writer.events_written} events "
              f"({machine.stats.total_blocks} basic blocks{chunks}) to {args.output}\n")
    return 0


def _cmd_watch(args, out) -> int:
    import time as _time

    from .farm import TruncatedChunk
    from .streaming import (
        MANIFEST_NAME,
        LiveProfileSession,
        load_checkpoint,
        render_watch,
    )

    session = None
    if args.checkpoints:
        session = LiveProfileSession(
            args.target, args.checkpoints,
            checkpoint_events=args.checkpoint_events,
            checkpoint_seconds=max(args.interval, 0.1))
        directory = args.checkpoints
    else:
        directory = args.target

    def frame() -> Optional[str]:
        try:
            manifest, db = load_checkpoint(directory)
        except FileNotFoundError:
            return None
        return render_watch(manifest, db, top=args.top)

    deadline = (None if args.timeout is None
                else _time.monotonic() + args.timeout)

    if args.once:
        if session is not None:
            # Drain whatever is on disk right now, then cut one
            # checkpoint of it — mid-flight or final alike.
            while session.step():
                pass
            if session.drained:
                try:
                    session.finalize()
                except TruncatedChunk as error:
                    out.write(f"warning: {error}\n")
            else:
                session.checkpoint()
        text = frame()
        if text is None:
            out.write(f"error: no {MANIFEST_NAME} under {directory}\n")
            return 1
        out.write(text)
        return 0

    last = ""
    while True:
        if session is not None:
            consumed = session.step()
            if session.drained:
                try:
                    session.finalize()
                except TruncatedChunk as error:
                    out.write(f"warning: {error}\n")
        else:
            consumed = 0
        text = frame()
        if text is not None and text != last:
            out.write(text)
            last = text
        done = (session.finalized if session is not None
                else bool(text) and "· closed" in text.splitlines()[0])
        if done:
            return 0
        if deadline is not None and _time.monotonic() > deadline:
            if text is None:
                out.write(f"error: no {MANIFEST_NAME} under {directory} "
                          f"after {args.timeout:.1f}s\n")
                return 1
            return 0
        if not consumed:
            _time.sleep(args.interval if session is None else 0.05)


def _cmd_analyze(args, out) -> int:
    from .core import replay
    from .core.tracefile import TraceFileError, iter_trace
    from .farm import is_binary_trace, iter_binary_trace, save_profile

    def replay_trace(consumer, metric: str) -> None:
        with telemetry.span("analyze.replay", metric=metric):
            if is_binary_trace(args.trace):
                with open(args.trace, "rb") as stream:
                    replay(iter_binary_trace(stream), consumer)
            else:
                with open(args.trace) as stream:
                    replay(iter_trace(stream), consumer)

    kernel = getattr(args, "kernel", "auto")
    if kernel == "auto":
        kernel = "flat"
    # The flat kernel lives in the farm workers, so any non-classic trms
    # analysis routes through the farm engine — with --jobs 1 that is a
    # single inline shard, still bit-identical to the online replay.
    farm_trms = args.jobs > 1 or kernel == "flat"

    databases = {}
    try:
        if farm_trms:
            from .farm import analyze_file

            if args.metric in ("trms", "both"):
                result = analyze_file(
                    args.trace, jobs=args.jobs, context_sensitive=args.context,
                    timeout=args.timeout, progress=out.write, kernel=kernel,
                )
                databases["trms"] = result.db
                if args.stats:
                    from .reporting import render_farm_stats

                    out.write(render_farm_stats(result.stats))
                    out.write("\n")
            if args.metric in ("rms", "both"):
                if args.jobs > 1:
                    out.write("note: --jobs farms the trms analysis; "
                              "rms runs sequentially\n")
                profiler = RmsProfiler(context_sensitive=args.context)
                replay_trace(profiler, "rms")
                databases["rms"] = profiler.db
        else:
            profilers = {}
            if args.metric in ("rms", "both"):
                profilers["rms"] = RmsProfiler(context_sensitive=args.context)
            if args.metric in ("trms", "both"):
                profilers["trms"] = TrmsProfiler(context_sensitive=args.context)
            replay_trace(EventBus(list(profilers.values())), args.metric)
            databases = {metric: p.db for metric, p in profilers.items()}
    except (TraceFileError, OSError) as error:
        out.write(f"error: {error}\n")
        return 2
    for metric in ("rms", "trms"):
        if metric in databases:
            out.write(render_report(databases[metric],
                                    title=f"{metric} profile of {args.trace}"))
            out.write("\n")
    if args.dump:
        reference = databases.get("trms") or databases["rms"]
        with open(args.dump, "w") as stream:
            count = save_profile(reference, stream)
        out.write(f"wrote {count} profile points to {args.dump}\n")
    return 0


def _cmd_merge(args, out) -> int:
    from .farm import ProfileDumpError, load_profile, merge_databases, save_profile

    databases = []
    try:
        for path in args.inputs:
            with open(path) as stream:
                databases.append(load_profile(stream))
    except (ProfileDumpError, OSError) as error:
        out.write(f"error: {error}\n")
        return 2
    with telemetry.span("merge", inputs=len(databases)):
        merged = merge_databases(databases)
    with open(args.output, "w") as stream:
        count = save_profile(merged, stream)
    out.write(render_report(
        merged, title=f"merged profile of {len(databases)} run(s)"))
    if merged.sizes_lower_bound:
        out.write("note: a merged run used read sampling — input sizes are "
                  "lower bounds\n")
    out.write(f"wrote {count} profile points to {args.output}\n")
    return 0


def _cmd_fit(args, out) -> int:
    from .farm import is_profile_dump, load_profile

    if is_profile_dump(args.dump):
        with open(args.dump) as stream:
            db = load_profile(stream)
    else:
        with open(args.dump) as stream:
            db = parse_points(stream)
    profile = db.merged().get(args.routine)
    if profile is None:
        known = ", ".join(sorted(db.merged())[:8])
        out.write(f"error: no routine {args.routine!r} in {args.dump} (have: {known})\n")
        return 2
    points = profile.worst_case_points()
    if len(points) < 2:
        out.write(f"{args.routine}: only {len(points)} point(s); cannot fit\n")
        return 1
    with telemetry.span("fit.select", routine=args.routine,
                        points=len(points)):
        selection = select_model(points)
    out.write(scatter(points, title=f"{args.routine} — worst-case cost plot"))
    out.write(f"{args.routine}: {selection.name} "
              f"(R^2 = {selection.best.r2:.3f}, {len(points)} points)\n")
    return 0


def _cmd_overhead(args, out) -> int:
    from .telemetry.overhead import (
        DEFAULT_TOOLS, measure_overhead, render_overhead_report,
    )

    if args.tools is None:
        tools = DEFAULT_TOOLS
    elif args.tools == "all":
        from .tools import TOOL_NAMES

        tools = tuple(TOOL_NAMES)
    else:
        tools = tuple(name for name in args.tools.split(",") if name)
    try:
        tele = measure_overhead(
            args.benchmark, threads=args.threads, scale=args.scale,
            tools=tools, repeats=args.repeats,
        )
    except KeyError as error:
        out.write(f"error: {error.args[0]}\n")
        return 2
    out.write(render_overhead_report(
        tele.registry.snapshot(),
        title=f"self-overhead on {args.benchmark} "
              f"(best of {max(1, args.repeats)})"))
    return 0


def _load_profile_database(path: str):
    """A ProfileDatabase from a profile dump or a TSV point dump."""
    from .farm import is_profile_dump, load_profile

    if is_profile_dump(path):
        with open(path) as stream:
            return load_profile(stream)
    with open(path) as stream:
        return parse_points(stream)


def _parse_fail_on(spec: Optional[str], out) -> Optional[set]:
    if spec is None:
        return set()
    from .reporting.diffing import SEVERITY

    verdicts = {verdict.strip() for verdict in spec.split(",") if verdict.strip()}
    unknown = verdicts - set(SEVERITY)
    if unknown:
        out.write(f"error: unknown verdict(s) {', '.join(sorted(unknown))} "
                  f"(have: {', '.join(SEVERITY)})\n")
        return None
    return verdicts


def _cmd_diff(args, out) -> int:
    from .farm import ProfileDumpError
    from .reporting import diff_databases, render_diff

    fail_on = _parse_fail_on(args.fail_on, out)
    if fail_on is None:
        return 2
    try:
        old_db = _load_profile_database(args.old)
        new_db = _load_profile_database(args.new)
    except (ProfileDumpError, ValueError, OSError) as error:
        out.write(f"error: {error}\n")
        return 2
    with telemetry.span("diff", old=args.old, new=args.new):
        diffs = diff_databases(old_db, new_db, min_points=args.min_points,
                               tolerance=args.tolerance)
        out.write(render_diff(old_db, new_db, min_points=args.min_points,
                              tolerance=args.tolerance))
    tripped = sorted({diff.verdict for diff in diffs} & fail_on)
    if tripped:
        out.write(f"diff: failing on verdict(s): {', '.join(tripped)}\n")
        return 1
    return 0


def _cmd_observe(args, out) -> int:
    from .observatory import (
        ObservatoryStore,
        detect_drift,
        ingest_bytes,
        ingest_path,
        render_alert_feed,
        render_observatory_html,
        render_observatory_report,
    )

    if args.observe_command == "ingest":
        if args.run_id and len(args.inputs) > 1:
            out.write("error: --run-id needs exactly one input\n")
            return 2
        if args.inputs.count("-") > 1:
            out.write("error: stdin ('-') can appear at most once\n")
            return 2
        store = ObservatoryStore(args.store)
        failures = 0
        with telemetry.span("observe.ingest", inputs=len(args.inputs)):
            for path in args.inputs:
                try:
                    if path == "-":
                        # pipe mode: clients stream an artefact without a
                        # temp file (the service's inline-ingest sibling)
                        result = ingest_bytes(
                            store, sys.stdin.buffer.read(),
                            run_id=args.run_id, git_sha=args.git_sha,
                            scale=args.scale, top_k=args.top_k,
                        )
                    else:
                        result = ingest_path(
                            store, path, run_id=args.run_id,
                            git_sha=args.git_sha, scale=args.scale,
                            top_k=args.top_k,
                        )
                except (ValueError, OSError) as error:
                    out.write(f"error: {error}\n")
                    failures += 1
                    continue
                state = "ingested" if result.ingested else "already known (skipped)"
                out.write(f"{path}: {state} as {result.run_id} "
                          f"[{result.source}] — {result.detail}\n")
        out.write(f"store {args.store}: {len(store)} run(s)\n")
        return 1 if failures else 0

    store = ObservatoryStore(args.store)
    if args.observe_command == "report":
        with telemetry.span("observe.report", runs=len(store)):
            out.write(render_observatory_report(
                store, tolerance=args.tolerance, limit=args.limit))
        if args.html:
            with open(args.html, "w") as stream:
                stream.write(render_observatory_html(
                    store, tolerance=args.tolerance,
                    title=f"profile observatory: {args.store}"))
            out.write(f"wrote HTML dashboard to {args.html}\n")
        return 0
    if args.observe_command == "alerts":
        fail_on = _parse_fail_on(args.fail_on, out)
        if fail_on is None:
            return 2
        with telemetry.span("observe.alerts", runs=len(store)):
            alerts = detect_drift(store, tolerance=args.tolerance)
        out.write(render_alert_feed(alerts))
        tripped = sorted({alert.verdict for alert in alerts} & fail_on)
        if tripped:
            out.write(f"alerts: failing on verdict(s): {', '.join(tripped)}\n")
            return 1
        return 0
    if args.observe_command == "gc":
        if args.keep < 0:
            out.write("error: --keep must be >= 0\n")
            return 2
        dropped = store.gc(keep=args.keep)
        out.write(f"store {args.store}: dropped {dropped} run(s), "
                  f"{len(store)} left\n")
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_serve(args, out) -> int:
    from .service import ProfileServer, SloTargets

    server = ProfileServer(
        args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        capacity=args.capacity,
        retries=args.retries,
        timeout=args.job_timeout,
        drain_timeout=args.drain_timeout,
        slo_window=args.slo_window,
        slo_targets=SloTargets(
            p99_ms=args.slo_p99_ms,
            error_budget=args.slo_error_budget,
            shed_budget=args.slo_shed_budget,
        ),
    )
    host, port = server.start()
    try:
        server.install_signal_handlers()
    except ValueError:
        pass        # not the main thread (tests drive shutdown directly)
    out.write(f"serving on {host}:{port} (root {args.root}, "
              f"{args.workers} worker(s), queue capacity {args.capacity})\n")
    out.write("stop with SIGTERM/SIGINT for a graceful drain\n")
    if hasattr(out, "flush"):
        out.flush()     # line-oriented consumers (CI smoke) parse the port
    with telemetry.span("serve", root=args.root):
        drained = server.serve_forever()
    depth = server.queue.depth()
    out.write(f"shutdown: {'drained' if drained else 'drain timed out'} "
              f"({depth} job(s) abandoned)\n")
    return 0 if drained else 1


def _cmd_slap(args, out) -> int:
    from .service import build_envelope, slap

    if args.clients < 1 or args.uploads < 1:
        out.write("error: --clients and --uploads must be >= 1\n")
        return 2
    with telemetry.span("slap", clients=args.clients, uploads=args.uploads):
        try:
            report = slap(
                args.host, args.port, tenant=args.tenant,
                clients=args.clients, uploads_per_client=args.uploads,
                duplicate_ratio=args.duplicate_ratio, seed=args.seed,
                wait=args.wait,
            )
        except OSError as error:
            out.write(f"error: cannot reach {args.host}:{args.port} "
                      f"({error})\n")
            return 2
    out.write(report.render())
    if args.json:
        import json as json_module

        with open(args.json, "w", encoding="utf-8") as stream:
            json_module.dump(build_envelope(report), stream, indent=2,
                             sort_keys=True)
            stream.write("\n")
        out.write(f"wrote repro-bench/1 envelope to {args.json}\n")
    # a swarm that lost every upload is a failed run, not a report
    return 0 if report.latencies_ms else 1


def _cmd_trace(args, out) -> int:
    from .reporting.tracing import (
        assemble_traces,
        load_trace_spans,
        render_trace_waterfall,
        render_traces_html,
        slowest,
    )

    try:
        spans = load_trace_spans(args.logs)
    except OSError as error:
        out.write(f"error: {error}\n")
        return 2
    traces = assemble_traces(spans)
    if not traces:
        out.write("no traced spans found (run client and server with "
                  "--telemetry to record trace ids)\n")
        return 1 if args.assert_linked else 0
    if args.trace_id is not None:
        chosen = [traces[args.trace_id]] if args.trace_id in traces else []
        if not chosen:
            out.write(f"error: no trace {args.trace_id!r} in "
                      f"{len(traces)} trace(s)\n")
            return 2
    elif args.slowest is not None:
        chosen = slowest(traces, args.slowest)
    else:
        chosen = slowest(traces, len(traces))
    out.write(f"{len(traces)} trace(s) across {len(args.logs)} log(s); "
              f"rendering {len(chosen)}\n\n")
    for trace_item in chosen:
        out.write(render_trace_waterfall(trace_item))
        out.write("\n")
    if args.html:
        with open(args.html, "w", encoding="utf-8") as stream:
            stream.write(render_traces_html(chosen))
        out.write(f"wrote HTML timelines to {args.html}\n")
    if args.assert_linked is not None:
        linked = [trace_item for trace_item in traces.values()
                  if trace_item.is_single_tree()
                  and len(trace_item.spans) >= args.assert_linked]
        if not linked:
            out.write(f"assertion failed: no single-tree trace with >= "
                      f"{args.assert_linked} spans\n")
            return 1
        out.write(f"assertion ok: {len(linked)} single-tree trace(s) with "
                  f">= {args.assert_linked} spans\n")
    return 0


def _cmd_stats(args, out) -> int:
    from .reporting import render_telemetry_dashboard, render_telemetry_html
    from .telemetry import TelemetryRun

    try:
        run = TelemetryRun.load(args.run)
    except OSError as error:
        out.write(f"error: {error}\n")
        return 2
    if not (run.spans or run.heartbeats or run.metrics or run.events):
        out.write(f"error: no telemetry records in {args.run}\n")
        return 2
    out.write(render_telemetry_dashboard(run))
    if args.html:
        with open(args.html, "w") as stream:
            stream.write(render_telemetry_html(run, title=f"telemetry: {args.run}"))
        out.write(f"wrote HTML dashboard to {args.html}\n")
    return 0


def _dispatch(args, out) -> int:
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "profile":
        return _cmd_profile(args, out)
    if args.command == "fit":
        return _cmd_fit(args, out)
    if args.command == "record":
        return _cmd_record(args, out)
    if args.command == "watch":
        return _cmd_watch(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    if args.command == "merge":
        return _cmd_merge(args, out)
    if args.command == "overhead":
        return _cmd_overhead(args, out)
    if args.command == "stats":
        return _cmd_stats(args, out)
    if args.command == "diff":
        return _cmd_diff(args, out)
    if args.command == "observe":
        return _cmd_observe(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "slap":
        return _cmd_slap(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    return 2  # pragma: no cover - argparse enforces the choices


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    run_dir = getattr(args, "telemetry", None)
    if run_dir:
        with telemetry.session(run_dir):
            code = _dispatch(args, out)
        out.write(f"telemetry written to "
                  f"{telemetry.resolve_log_path(run_dir)}\n")
        return code
    return _dispatch(args, out)
