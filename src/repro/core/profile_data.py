"""Profile data collected by the input-sensitive profiler.

For every routine activation the profiler learns a tuple::

    (routine, thread, input size, inclusive cost,
     induced-by-thread count, induced-by-kernel count)

aprof aggregates these on the fly, keyed by ``(routine, thread)`` and,
inside each routine profile, by distinct input-size value: each distinct
size is one *point* of the routine's cost plots, carrying the number of
activations observed at that size and min/max/total cost (Section 3 of
the paper: worst-case running time plots use the max, workload plots use
the activation count).

Profiles are *thread-sensitive* (Section 4): activations of the same
routine by different threads feed different profiles; merging across
threads is an explicit, separate step (:meth:`ProfileDatabase.merged`),
exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

__all__ = ["SizeStats", "ActivationRecord", "RoutineProfile", "ProfileDatabase"]


class SizeStats:
    """Aggregate cost statistics for one (routine, thread, size) point."""

    __slots__ = ("calls", "cost_min", "cost_max", "cost_sum", "cost_sumsq")

    def __init__(self) -> None:
        self.calls = 0
        self.cost_min = 0
        self.cost_max = 0
        self.cost_sum = 0
        self.cost_sumsq = 0

    def add(self, cost: int) -> None:
        if self.calls == 0:
            self.cost_min = cost
            self.cost_max = cost
        else:
            if cost < self.cost_min:
                self.cost_min = cost
            if cost > self.cost_max:
                self.cost_max = cost
        self.calls += 1
        self.cost_sum += cost
        self.cost_sumsq += cost * cost

    @property
    def cost_avg(self) -> float:
        """Mean cost over the activations observed at this size."""
        return self.cost_sum / self.calls if self.calls else 0.0

    def merge(self, other: "SizeStats") -> None:
        if other.calls == 0:
            return
        if self.calls == 0:
            self.cost_min = other.cost_min
            self.cost_max = other.cost_max
        else:
            self.cost_min = min(self.cost_min, other.cost_min)
            self.cost_max = max(self.cost_max, other.cost_max)
        self.calls += other.calls
        self.cost_sum += other.cost_sum
        self.cost_sumsq += other.cost_sumsq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SizeStats(calls={self.calls}, max={self.cost_max})"


class ActivationRecord(NamedTuple):
    """One raw activation, kept only when the database records history."""

    routine: str
    thread: int
    size: int
    cost: int
    induced_thread: int
    induced_external: int


class RoutineProfile:
    """Input-sensitive profile of one routine in one thread."""

    __slots__ = (
        "routine",
        "thread",
        "points",
        "calls",
        "size_sum",
        "cost_sum",
        "induced_thread_sum",
        "induced_external_sum",
    )

    def __init__(self, routine: str, thread: int):
        self.routine = routine
        self.thread = thread
        #: distinct input size -> SizeStats (each key is one plot point)
        self.points: Dict[int, SizeStats] = {}
        self.calls = 0
        self.size_sum = 0
        self.cost_sum = 0
        self.induced_thread_sum = 0
        self.induced_external_sum = 0

    def add_activation(
        self,
        size: int,
        cost: int,
        induced_thread: int = 0,
        induced_external: int = 0,
    ) -> None:
        stats = self.points.get(size)
        if stats is None:
            stats = SizeStats()
            self.points[size] = stats
        stats.add(cost)
        self.calls += 1
        self.size_sum += size
        self.cost_sum += cost
        self.induced_thread_sum += induced_thread
        self.induced_external_sum += induced_external

    @property
    def distinct_sizes(self) -> int:
        """Number of distinct input-size values (plot points) collected."""
        return len(self.points)

    @property
    def induced_sum(self) -> int:
        """Total induced first-accesses (thread-induced + external)."""
        return self.induced_thread_sum + self.induced_external_sum

    def induced_fraction(self) -> float:
        """Fraction of this routine's input due to induced first-accesses."""
        if self.size_sum == 0:
            return 0.0
        return self.induced_sum / self.size_sum

    def worst_case_points(self) -> List[Tuple[int, int]]:
        """Sorted ``(size, max cost)`` pairs — the worst-case cost plot."""
        return sorted((size, stats.cost_max) for size, stats in self.points.items())

    def average_points(self) -> List[Tuple[int, float]]:
        """Sorted ``(size, mean cost)`` pairs — the average cost plot."""
        return sorted((size, stats.cost_avg) for size, stats in self.points.items())

    def workload_points(self) -> List[Tuple[int, int]]:
        """Sorted ``(size, activation count)`` pairs — the workload plot."""
        return sorted((size, stats.calls) for size, stats in self.points.items())

    def merge(self, other: "RoutineProfile") -> None:
        """Fold ``other`` (same routine, any thread) into this profile."""
        if other.routine != self.routine:
            raise ValueError(
                f"cannot merge profile of {other.routine!r} into {self.routine!r}"
            )
        for size, stats in other.points.items():
            mine = self.points.get(size)
            if mine is None:
                mine = SizeStats()
                self.points[size] = mine
            mine.merge(stats)
        self.calls += other.calls
        self.size_sum += other.size_sum
        self.cost_sum += other.cost_sum
        self.induced_thread_sum += other.induced_thread_sum
        self.induced_external_sum += other.induced_external_sum


class ProfileDatabase:
    """All routine profiles produced by one profiling session.

    Args:
        keep_activations: when True, every raw activation tuple is also
            appended to :attr:`activations`; tests and a few analyses use
            this to join per-activation results of different metrics.
    """

    def __init__(self, keep_activations: bool = False):
        self._profiles: Dict[Tuple[str, int], RoutineProfile] = {}
        self.keep_activations = keep_activations
        self.activations: List[ActivationRecord] = []
        #: True when input sizes are lower bounds (read sampling was
        #: active during collection).  Merging databases ORs the flag:
        #: one sampled constituent makes the whole merged plot a bound.
        self.sizes_lower_bound = False
        #: session-global induced first-access tallies (each access counted
        #: once, in the thread that performed the read — the paper's
        #: "global benchmark measure" of Figure 17)
        self.global_induced_thread = 0
        self.global_induced_external = 0

    def add_activation(
        self,
        routine: str,
        thread: int,
        size: int,
        cost: int,
        induced_thread: int = 0,
        induced_external: int = 0,
    ) -> None:
        key = (routine, thread)
        profile = self._profiles.get(key)
        if profile is None:
            profile = RoutineProfile(routine, thread)
            self._profiles[key] = profile
        profile.add_activation(size, cost, induced_thread, induced_external)
        if self.keep_activations:
            self.activations.append(
                ActivationRecord(routine, thread, size, cost, induced_thread, induced_external)
            )

    # lookups ----------------------------------------------------------------

    def profile(self, routine: str, thread: int) -> Optional[RoutineProfile]:
        """The profile of ``routine`` in ``thread``, or None."""
        return self._profiles.get((routine, thread))

    def routine_profiles(self, routine: str) -> List[RoutineProfile]:
        """All per-thread profiles of ``routine``."""
        return [p for (name, _), p in self._profiles.items() if name == routine]

    def routines(self) -> List[str]:
        """Sorted list of routine names with at least one profile."""
        return sorted({name for name, _ in self._profiles})

    def threads(self) -> List[int]:
        """Sorted list of thread ids with at least one profile."""
        return sorted({thread for _, thread in self._profiles})

    def __iter__(self) -> Iterator[RoutineProfile]:
        return iter(self._profiles.values())

    def __len__(self) -> int:
        return len(self._profiles)

    # merging ------------------------------------------------------------------

    def merged(self) -> Dict[str, RoutineProfile]:
        """Combine per-thread profiles of each routine into one.

        Returns a dict keyed by routine name; merged profiles report
        thread id -1.  This is the "subsequent step" the paper mentions
        for combining thread-sensitive profiles.
        """
        result: Dict[str, RoutineProfile] = {}
        for (routine, _), profile in sorted(
            self._profiles.items(), key=lambda item: (item[0][0], item[0][1])
        ):
            merged = result.get(routine)
            if merged is None:
                merged = RoutineProfile(routine, -1)
                result[routine] = merged
            merged.merge(profile)
        return result

    # aggregates used by the evaluation metrics ---------------------------------

    def total_size_sum(self) -> int:
        """Sum of input sizes over every activation in the session."""
        return sum(profile.size_sum for profile in self._profiles.values())

    def total_induced(self) -> Tuple[int, int]:
        """Session totals: ``(thread-induced, external)`` first-accesses."""
        return self.global_induced_thread, self.global_induced_external
