"""Cost models for the profiling substrates.

The paper measures cost in *basic blocks executed* rather than wall-clock
time: BB counts are deterministic, immune to instrumentation-induced
dilation, and still characterise asymptotic behaviour on small workloads
(Section 5, following Goldsmith et al.).  Our substrates follow suit:

* the VM charges one unit per basic block it enters (optionally one per
  instruction, for finer plots);
* the pytrace substrate charges one unit per tracked operation.

A cost model maps substrate-level execution steps to abstract cost
units.  Substrates call :meth:`CostModel.block` / :meth:`CostModel.instruction`
/ :meth:`CostModel.operation` per step and forward the returned units to
the analysis bus as ``COST`` events.
"""

from __future__ import annotations

__all__ = ["CostModel", "BasicBlockCost", "InstructionCost", "OperationCost"]


class CostModel:
    """Base cost model: what one execution step is worth, in units."""

    name = "abstract"

    def block(self) -> int:
        """Units charged when a basic block is entered."""
        return 0

    def instruction(self) -> int:
        """Units charged per instruction executed."""
        return 0

    def operation(self) -> int:
        """Units charged per tracked high-level operation (pytrace)."""
        return 0


class BasicBlockCost(CostModel):
    """The paper's metric: one unit per basic block entered."""

    name = "basic-blocks"

    def block(self) -> int:
        return 1


class InstructionCost(CostModel):
    """One unit per instruction — finer-grained plots, higher overhead."""

    name = "instructions"

    def instruction(self) -> int:
        return 1


class OperationCost(CostModel):
    """One unit per tracked operation — the pytrace substrate's default."""

    name = "operations"

    def operation(self) -> int:
        return 1
