"""Offline, parallelisable TRMS analysis — the paper's future work.

The paper closes with: "it would be interesting to adapt our
methodology to a fully scalable and concurrent dynamic instrumentation
framework, in order to exploit parallelism to leverage the slowdown of
our profiler."  The online algorithm resists that: every thread's reads
consult one mutable global write-timestamp shadow.

This module restructures the computation into two passes over a
*recorded* trace so the expensive part parallelises:

1. **Index pass** (single, cheap, write-events only): build, per cell,
   the sorted list of global positions at which *anyone* wrote it, with
   the writer's identity.  The index is immutable afterwards.
2. **Analysis pass** (per thread, independent): replay only thread
   ``t``'s events through the ordinary sequential latest-access
   machinery, except that the induced-first-access test becomes a
   binary search: a read of cell ``l`` at global position ``p`` is
   induced iff the latest write to ``l`` before ``p`` happened after
   ``t``'s latest access to ``l``.  (That write is necessarily foreign
   or kernel: a local write would itself be a later local access.)

Pass 2 touches no shared mutable state, so threads can be analysed
concurrently (:func:`analyze_trace` with ``workers > 1``) or on
different machines entirely.  The result is **identical** to the online
:class:`~repro.core.trms.TrmsProfiler` — a property the differential
tests enforce — because global trace positions refine the online
algorithm's counter: any two events the counter orders strictly are
also position-ordered, and events sharing a counter value are never a
foreign-write/local-access pair (thread switches and kernel fills bump
the counter).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from .context import compose_context
from .events import Event, EventKind
from .profile_data import ProfileDatabase
from .stack import ShadowStack

__all__ = [
    "WriteIndex",
    "build_write_index",
    "index_positioned_writes",
    "split_by_thread",
    "bucket_positioned",
    "analyze_thread",
    "analyze_trace",
]

_KERNEL = -1


class WriteIndex:
    """Immutable per-cell write history: positions and writers."""

    def __init__(self) -> None:
        self._positions: Dict[int, List[int]] = {}
        self._writers: Dict[int, List[int]] = {}

    def add(self, addr: int, position: int, writer: int) -> None:
        self._positions.setdefault(addr, []).append(position)
        self._writers.setdefault(addr, []).append(writer)

    def latest_before(self, addr: int, position: int) -> Optional[Tuple[int, int]]:
        """``(position, writer)`` of the last write to ``addr`` strictly
        before trace position ``position``, or None."""
        positions = self._positions.get(addr)
        if not positions:
            return None
        index = bisect_left(positions, position)
        if index == 0:
            return None
        return positions[index - 1], self._writers[addr][index - 1]

    def cells(self) -> int:
        return len(self._positions)


def build_write_index(events: Sequence[Event]) -> WriteIndex:
    """Pass 1: collect every write, in trace order."""
    return index_positioned_writes(enumerate(events))


def index_positioned_writes(pairs) -> WriteIndex:
    """Build a :class:`WriteIndex` from ``(global position, event)`` pairs.

    The pairs must arrive in increasing position order but need not be
    contiguous — the farm workers feed this from a *subset* of trace
    chunks (only those that contain writes), with positions taken from
    the chunk index.
    """
    index = WriteIndex()
    for position, event in pairs:
        if event.kind == EventKind.WRITE:
            index.add(event.arg, position, event.thread)
        elif event.kind == EventKind.KERNEL_WRITE:
            index.add(event.arg, position, _KERNEL)
    return index


def split_by_thread(events: Sequence[Event]) -> Dict[int, List[Tuple[int, Event]]]:
    """Bucket positioned events per thread (pass-1 byproduct).

    Kernel writes and thread switches are dropped: the write index
    carries the former, and the latter have no per-thread effect — so
    pass 2 touches each event exactly once across all threads.
    """
    return bucket_positioned(enumerate(events))


def bucket_positioned(
    pairs, threads: Optional[frozenset] = None
) -> Dict[int, List[Tuple[int, Event]]]:
    """Bucket ``(global position, event)`` pairs per thread.

    Same semantics as :func:`split_by_thread` (kernel writes and thread
    switches register the thread but are not replayed), generalised to
    positioned pairs so farm workers can bucket straight from decoded
    trace chunks.  With ``threads`` given, only those threads are
    bucketed — a worker assigned a shard ignores foreign threads' events
    beyond the write index.
    """
    buckets: Dict[int, List[Tuple[int, Event]]] = {}
    for position, event in pairs:
        thread = event.thread
        if threads is not None and thread not in threads:
            continue
        kind = event.kind
        if kind == EventKind.KERNEL_WRITE or kind == EventKind.THREAD_SWITCH:
            buckets.setdefault(thread, [])
            continue
        buckets.setdefault(thread, []).append((position, event))
    return buckets


def analyze_thread(
    positioned_events: Sequence[Tuple[int, Event]],
    thread: int,
    index: WriteIndex,
    db: ProfileDatabase,
    context_sensitive: bool = False,
) -> None:
    """Pass 2 for one thread: sequential machinery + indexed induced test.

    ``positioned_events`` is this thread's bucket from
    :func:`split_by_thread` — ``(global position, event)`` pairs.
    Appends ``thread``'s profiles into ``db`` (thread-disjoint: safe to
    run different threads into different databases concurrently and
    merge).
    """
    stack = ShadowStack()
    stack.push(f"<root:{thread}>", 0, 0)
    #: cell -> trace position of this thread's latest access
    last_access: Dict[int, int] = {}
    cost = 0

    def pop() -> None:
        nonlocal cost
        entry = stack.pop()
        parent = stack.entries[-1] if stack.entries else None
        if parent is not None:
            parent.partial += entry.partial
            parent.induced_thread += entry.induced_thread
            parent.induced_external += entry.induced_external
        db.add_activation(
            entry.rtn, thread, entry.partial, cost - entry.cost,
            entry.induced_thread, entry.induced_external,
        )

    def on_read(position: int, addr: int) -> None:
        last = last_access.get(addr, -1)
        top = stack.entries[-1]
        latest_write = index.latest_before(addr, position)
        if latest_write is not None and latest_write[0] > last:
            top.partial += 1
            if latest_write[1] == _KERNEL:
                top.induced_external += 1
                db.global_induced_external += 1
            else:
                top.induced_thread += 1
                db.global_induced_thread += 1
        elif last < top.ts:
            top.partial += 1
            if last >= 0:
                ancestor = stack.find_latest_not_after(last)
                if ancestor is not None:
                    ancestor.partial -= 1
        last_access[addr] = position

    for position, event in positioned_events:
        kind = event.kind
        if kind == EventKind.READ or kind == EventKind.KERNEL_READ:
            on_read(position, event.arg)
        elif kind == EventKind.WRITE:
            last_access[event.arg] = position
        elif kind == EventKind.COST:
            cost += event.arg
        elif kind == EventKind.CALL:
            routine = event.arg
            if context_sensitive:
                routine = compose_context(stack.entries[-1].rtn, routine)
            stack.push(routine, position, cost)
        elif kind == EventKind.RETURN:
            if len(stack) > 1:
                pop()

    while stack:
        pop()


def analyze_trace(
    events: Sequence[Event],
    workers: int = 1,
    context_sensitive: bool = False,
    keep_activations: bool = False,
    kernel: str = "classic",
) -> ProfileDatabase:
    """Full offline analysis of a merged trace.

    With ``workers > 1`` the per-thread analyses run on a pool of Python
    threads; each works against the shared immutable index and its own
    private database, merged at the end.  (CPython's GIL caps the
    realised speedup; the *structure* — no shared mutable analysis
    state — is the point, and ports directly to processes.)

    ``kernel`` selects the hot-path implementation: ``"classic"`` is the
    two-pass object-per-event machinery above; ``"flat"`` the
    single-pass flat-array kernel of :mod:`repro.core.flatkernel`
    (bit-identical output, several times the throughput, ignores
    ``workers`` — it is what the farm parallelises across processes).
    """
    if kernel not in ("classic", "flat"):
        raise ValueError(f"unknown analysis kernel {kernel!r}")
    if kernel == "flat":
        from .flatkernel import analyze_events_flat

        db = ProfileDatabase(keep_activations=keep_activations)
        with telemetry.span("offline.analyze", kernel="flat",
                            events=len(events)):
            analyze_events_flat(events, db, context_sensitive=context_sensitive)
        tele = telemetry.current()
        if tele.enabled:
            tele.counter("offline.events", kernel="flat").inc(len(events))
        return db
    with telemetry.span("offline.index", events=len(events)) as index_span:
        index = build_write_index(events)
        buckets = split_by_thread(events)
        index_span.set(cells=index.cells(), threads=len(buckets))
    thread_ids = list(buckets)
    databases = [ProfileDatabase(keep_activations=keep_activations)
                 for _ in thread_ids]

    with telemetry.span("offline.analyze", workers=workers,
                        threads=len(thread_ids)):
        if workers <= 1 or len(thread_ids) <= 1:
            for db, thread in zip(databases, thread_ids):
                analyze_thread(buckets[thread], thread, index, db,
                               context_sensitive)
        else:
            pending = list(zip(databases, thread_ids))
            guard = threading.Lock()

            def drain() -> None:
                while True:
                    with guard:
                        if not pending:
                            return
                        db, thread = pending.pop()
                    analyze_thread(buckets[thread], thread, index, db,
                                   context_sensitive)

            pool = [threading.Thread(target=drain)
                    for _ in range(min(workers, len(pending)))]
            for worker in pool:
                worker.start()
            for worker in pool:
                worker.join()

    tele = telemetry.current()
    if tele.enabled:
        tele.counter("offline.events", kernel="classic").inc(len(events))

    # Per-thread databases are key-disjoint (profiles are keyed by
    # (routine, thread)), so combining them is a plain dict union.
    combined = ProfileDatabase(keep_activations=keep_activations)
    for db in databases:
        combined.global_induced_thread += db.global_induced_thread
        combined.global_induced_external += db.global_induced_external
        combined.activations.extend(db.activations)
        for profile in db:
            combined._profiles[(profile.routine, profile.thread)] = profile
    return combined
