"""Evaluation metrics of Section 6.1.

All four metrics compare or summarise profile databases produced by the
RMS and TRMS profilers run over the *same* execution (the benchmarks
attach both profilers to one event bus):

1. **Routine profile richness** — for a routine ``r``,
   ``(|trms_r| - |rms_r|) / |rms_r|`` where ``|·|`` is the number of
   distinct input-size values collected (each one a plot point).  May be
   negative: distinct rms values can collapse onto one trms value.
2. **Input volume** — ``1 - sum(rms) / sum(trms)`` over activations;
   0 when multithreading/external input contribute nothing, approaching
   1 when induced first-accesses dominate.
3. **Thread-induced input** — percentage of induced first-accesses due
   to writes by other threads.
4. **External input** — percentage of induced first-accesses due to
   kernel buffer fills.

The module also provides the tail-distribution helper behind the
"x% of routines have metric ≥ y" curves of Figures 15, 16, 18 and 19.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .profile_data import ProfileDatabase, RoutineProfile

__all__ = [
    "profile_richness",
    "richness_by_routine",
    "input_volume",
    "input_volume_by_routine",
    "induced_split",
    "induced_split_by_routine",
    "tail_curve",
]


def profile_richness(rms_profile: RoutineProfile, trms_profile: RoutineProfile) -> float:
    """Richness of one routine: relative gain in distinct plot points."""
    rms_points = rms_profile.distinct_sizes
    trms_points = trms_profile.distinct_sizes
    if rms_points == 0:
        return 0.0
    return (trms_points - rms_points) / rms_points


def richness_by_routine(
    rms_db: ProfileDatabase, trms_db: ProfileDatabase
) -> Dict[str, float]:
    """Per-routine profile richness over merged (all-thread) profiles.

    Routines missing from either database are skipped: richness compares
    two views of the same run, so a one-sided routine signals the caller
    fed databases from different executions.
    """
    rms_merged = rms_db.merged()
    trms_merged = trms_db.merged()
    result: Dict[str, float] = {}
    for routine, rms_profile in rms_merged.items():
        trms_profile = trms_merged.get(routine)
        if trms_profile is None:
            continue
        result[routine] = profile_richness(rms_profile, trms_profile)
    return result


def input_volume(rms_db: ProfileDatabase, trms_db: ProfileDatabase) -> float:
    """Global input volume: ``1 - sum(rms) / sum(trms)`` (0 if no input)."""
    trms_total = trms_db.total_size_sum()
    if trms_total == 0:
        return 0.0
    return 1.0 - rms_db.total_size_sum() / trms_total


def input_volume_by_routine(
    rms_db: ProfileDatabase, trms_db: ProfileDatabase
) -> Dict[str, float]:
    """Per-routine input volume over merged profiles."""
    rms_merged = rms_db.merged()
    trms_merged = trms_db.merged()
    result: Dict[str, float] = {}
    for routine, trms_profile in trms_merged.items():
        if trms_profile.size_sum == 0:
            continue
        rms_profile = rms_merged.get(routine)
        rms_sum = rms_profile.size_sum if rms_profile is not None else 0
        result[routine] = 1.0 - rms_sum / trms_profile.size_sum
    return result


def induced_split(trms_db: ProfileDatabase) -> Tuple[float, float]:
    """Global ``(thread-induced %, external %)`` over induced accesses.

    Each induced first-access is counted once, in the thread that
    performed the read — the routine-independent measure of Figure 17.
    Returns ``(0.0, 0.0)`` when the run had no induced accesses at all.
    """
    thread_induced, external = trms_db.total_induced()
    total = thread_induced + external
    if total == 0:
        return 0.0, 0.0
    return 100.0 * thread_induced / total, 100.0 * external / total


def induced_split_by_routine(
    trms_db: ProfileDatabase,
) -> Dict[str, Tuple[float, float]]:
    """Per-routine ``(thread-induced %, external %)`` of induced input.

    Per the paper (discussion of Figure 17 vs Figure 9), the per-routine
    measure includes induced accesses performed by the routine's
    descendants, so the same access may appear under several routines.
    Routines with no induced accesses are omitted.
    """
    result: Dict[str, Tuple[float, float]] = {}
    for routine, profile in trms_db.merged().items():
        total = profile.induced_sum
        if total == 0:
            continue
        result[routine] = (
            100.0 * profile.induced_thread_sum / total,
            100.0 * profile.induced_external_sum / total,
        )
    return result


def tail_curve(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Tail distribution: points ``(x, y)`` meaning "x% of values are >= y".

    Produces one point per value, with x ranging over
    ``100 * k / len(values)`` for ``k = 1 .. len(values)`` and values
    sorted in decreasing order — the representation used by Figures 15,
    16, 18 and 19.  Returns an empty list for an empty input.
    """
    if not values:
        return []
    ordered = sorted(values, reverse=True)
    count = len(ordered)
    return [(100.0 * (index + 1) / count, value) for index, value in enumerate(ordered)]
