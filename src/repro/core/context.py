"""Calling-context-sensitive profile keys.

By default aprof aggregates activations per routine.  Context-sensitive
profiling keys them by the *call path* instead, so ``parse`` called from
``load_config`` and ``parse`` called from ``handle_request`` get
separate cost plots — routines whose asymptotics depend on the caller
stop smearing into one cloud.

The profilers implement this by pushing path-composed keys onto the
shadow stack (``main;handle_request;parse``); this module owns the key
grammar and the helpers that dissect a context-keyed profile database.
(The separator is ``;`` — ``>`` appears inside the implicit per-thread
root names, so it cannot delimit frames.)
"""

from __future__ import annotations

from typing import Dict

from .profile_data import ProfileDatabase, RoutineProfile

__all__ = [
    "CONTEXT_SEPARATOR",
    "compose_context",
    "leaf_routine",
    "context_depth",
    "contexts_of",
    "fold_to_routines",
]

CONTEXT_SEPARATOR = ";"


def compose_context(parent_key: str, routine: str) -> str:
    """The context key of ``routine`` activated under ``parent_key``.

    Interned: context keys are dict keys on the profiler's hot path.
    """
    import sys

    return sys.intern(parent_key + CONTEXT_SEPARATOR + routine)


def leaf_routine(key: str) -> str:
    """The routine name a (possibly context-) key refers to."""
    return key.rsplit(CONTEXT_SEPARATOR, 1)[-1]


def context_depth(key: str) -> int:
    """Number of frames in the context key (1 for a plain routine key)."""
    return key.count(CONTEXT_SEPARATOR) + 1


def contexts_of(db: ProfileDatabase, routine: str) -> Dict[str, RoutineProfile]:
    """All merged context profiles whose leaf routine is ``routine``."""
    return {
        key: profile
        for key, profile in db.merged().items()
        if leaf_routine(key) == routine
    }


def fold_to_routines(db: ProfileDatabase) -> Dict[str, RoutineProfile]:
    """Collapse a context-keyed database back to per-routine profiles.

    The result matches what routine-level profiling of the same run
    would have produced (a property the tests verify): context keys are
    a refinement, and merging refined profiles recovers the coarse ones.
    """
    folded: Dict[str, RoutineProfile] = {}
    for key, profile in db.merged().items():
        routine = leaf_routine(key)
        target = folded.get(routine)
        if target is None:
            target = RoutineProfile(routine, -1)
            folded[routine] = target
        # merge() checks name equality; recreate a compatible twin
        twin = RoutineProfile(routine, profile.thread)
        twin.points = profile.points
        twin.calls = profile.calls
        twin.size_sum = profile.size_sum
        twin.cost_sum = profile.cost_sum
        twin.induced_thread_sum = profile.induced_thread_sum
        twin.induced_external_sum = profile.induced_external_sum
        target.merge(twin)
    return folded
