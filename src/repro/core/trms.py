"""The multithreaded TRMS profiler (the paper's extension of aprof).

Definition 2/3: a read by routine activation ``r`` in thread ``t`` of a
cell ``l`` contributes to the *threaded read memory size* of ``r`` when
it is either

* a **first-access** — ``l`` was never accessed before by ``r`` or its
  completed descendants, or
* an **induced first-access** — the latest ``write(l)`` by any thread
  ``t' != t`` (or by the kernel, for external input) has not been
  followed by an access to ``l`` by ``r`` or its descendants.

The read/write timestamping algorithm (Figure 11) detects induced
first-accesses in O(1) by combining the per-thread latest-access shadow
``ts_t`` with one *global* shadow ``wts`` holding, per cell, the
timestamp of the latest write by any thread: when
``ts_t[l] < wts[l]`` the cell was written — necessarily by someone else,
since a local write would have equalised the two stamps — after the
thread's latest access, so the read is induced.  Otherwise the ordinary
first-access logic of the sequential profiler applies.

External input (Figure 12): a kernel *buffer fill* (``kernelWrite``)
bumps the global counter and stamps ``wts[l]`` with it, without touching
any per-thread state or partial trms — so only the cells the thread
subsequently *reads* count as external input, and a fresh fill of the
same cell makes it count again.  A kernel *read* of guest memory (the
thread sending data out) is treated as a read by the thread itself.

This reproduction additionally tags each cell's latest writer (thread id
or kernel) in a provenance shadow, so every induced first-access is
attributed to *thread-induced* or *external* input — the split behind
Figures 9, 17, 18 and 19.
"""

from __future__ import annotations

from typing import Optional

from .profiler import BaseProfiler
from .shadow import DictShadow, ShadowMemory

__all__ = ["TrmsProfiler", "KERNEL_WRITER"]

#: provenance tag for cells last written by the kernel
KERNEL_WRITER = 1


class TrmsProfiler(BaseProfiler):
    """Single-pass trms profiler (aprof-trms)."""

    name = "aprof-trms"

    def __init__(
        self,
        keep_activations: bool = False,
        use_chunked_shadow: bool = False,
        max_count: Optional[int] = None,
        count_thread_induced: bool = True,
        count_external: bool = True,
        context_sensitive: bool = False,
    ):
        """See :class:`~repro.core.profiler.BaseProfiler` for the common
        arguments.  ``count_thread_induced`` / ``count_external`` select
        which induced first-access kinds contribute to the input size:
        the paper's Figure 7b plots "trms with external input only"
        (``count_thread_induced=False``); with both disabled the metric
        degenerates to the plain rms (a property the tests verify).
        An uncounted induced access falls back to the sequential
        first-access rule, exactly as it would under aprof-rms."""
        super().__init__(
            keep_activations=keep_activations,
            use_chunked_shadow=use_chunked_shadow,
            max_count=max_count,
            context_sensitive=context_sensitive,
        )
        shadow_factory = ShadowMemory if use_chunked_shadow else DictShadow
        #: global shadow memory: latest write timestamp per cell, any writer
        self.wts = shadow_factory()
        #: provenance shadow: KERNEL_WRITER or (thread id + 2) per cell
        self.writer = shadow_factory()
        self.count_thread_induced = count_thread_induced
        self.count_external = count_external

    def _global_write_shadow(self):
        return self.wts

    @staticmethod
    def _writer_tag(thread: int) -> int:
        return thread + 2

    # -- memory events ---------------------------------------------------------

    def on_read(self, thread: int, addr: int) -> None:
        state = self._state(thread)
        last = state.ts.get(addr, 0)
        top = state.stack.entries[-1]
        induced = last < self.wts.get(addr, 0)
        if induced:
            # Induced first-access: new input for the topmost activation
            # *and* every pending ancestor (Invariant 2 propagates the
            # increment on return), with no ancestor decrement — unless
            # this induced kind is configured out, in which case the
            # access falls through to the sequential rule below.
            if self.writer.get(addr, 0) == KERNEL_WRITER:
                if self.count_external:
                    top.partial += 1
                    top.induced_external += 1
                    self.db.global_induced_external += 1
                    state.ts[addr] = self.count
                    return
            elif self.count_thread_induced:
                top.partial += 1
                top.induced_thread += 1
                self.db.global_induced_thread += 1
                state.ts[addr] = self.count
                return
        if last < top.ts:
            # Plain first-access for the topmost activation (lines 4-10:
            # the sequential latest-access logic).
            top.partial += 1
            if last != 0:
                ancestor = state.stack.find_latest_not_after(last)
                if ancestor is not None:
                    ancestor.partial -= 1
        state.ts[addr] = self.count

    def on_write(self, thread: int, addr: int) -> None:
        state = self._state(thread)
        count = self.count
        state.ts[addr] = count
        self.wts[addr] = count
        self.writer[addr] = thread + 2

    # -- kernel-mediated accesses (Figure 12) ------------------------------------

    def on_kernel_read(self, thread: int, addr: int) -> None:
        # The thread sends data out: the kernel's read of guest memory is
        # input consumption by the thread, exactly like a subroutine read.
        self.on_read(thread, addr)

    def on_kernel_write(self, thread: int, addr: int) -> None:
        # A buffer fill from an external device.  Bump the counter so the
        # new global write stamp exceeds every thread-specific stamp; do
        # NOT touch any partial trms — only subsequent reads will count.
        self._bump_count()
        self.wts[addr] = self.count
        self.writer[addr] = KERNEL_WRITER

    # -- accounting --------------------------------------------------------------

    def space_bytes(self) -> int:
        return super().space_bytes() + self.writer.space_bytes()
