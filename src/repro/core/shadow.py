"""Shadow memories for timestamp tracking.

The paper's implementation (Section 5) keeps one *global* shadow memory
``wts`` (latest write timestamp per cell, any thread) and one
*thread-specific* shadow memory ``ts_t`` per thread (latest read/write
timestamp per cell by that thread).  To keep the space overhead
proportional to the memory a thread actually touches, both are realised
as three-level lookup tables: a primary table indexes secondary tables,
each secondary table indexes fixed-size chunks of 32-bit timestamps, and
chunks are allocated lazily on first access.

This module provides:

* :class:`ShadowMemory` — the three-level structure, with allocation
  statistics used by the space-overhead experiments (Table 1, Fig. 14);
* :class:`DictShadow` — a plain-dict reference implementation with the
  same interface, used by the differential tests.

Addresses are non-negative integers (cell indices).  A timestamp of 0
means "never accessed / never written", matching the paper's sentinel.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["ShadowMemory", "DictShadow", "PackedLatestWrite"]


class ShadowMemory:
    """Sparse map from cell address to timestamp via 3-level tables.

    Layout (defaults mirror the spirit of the paper's 2048-entry primary
    table of 16K-chunk secondaries, scaled to Python practicality):

    * primary: dict from primary index to secondary table;
    * secondary: list of ``secondary_size`` chunk slots (None until used);
    * chunk: ``array('L')`` of ``chunk_size`` timestamps.

    Using a dict at the primary level keeps very sparse address spaces
    cheap; the secondary level and chunks are dense, which is what gives
    the structure its locality win for real workloads.
    """

    #: bytes per timestamp entry, used for space accounting (paper: 32-bit)
    ENTRY_BYTES = 4

    def __init__(self, chunk_size: int = 4096, secondary_size: int = 1024):
        if chunk_size <= 0 or secondary_size <= 0:
            raise ValueError("chunk_size and secondary_size must be positive")
        self.chunk_size = chunk_size
        self.secondary_size = secondary_size
        self._span = chunk_size * secondary_size
        self._primary: Dict[int, List[Optional[array]]] = {}
        self._chunks_allocated = 0
        self._zero_chunk_template = array("L", [0]) * chunk_size

    def get(self, addr: int, default: int = 0) -> int:
        """Return the timestamp of ``addr`` (``default`` if never set).

        ``default`` exists for call-site compatibility with
        :class:`DictShadow`; unset cells always read as 0 semantically,
        so only 0 makes sense here.
        """
        secondary = self._primary.get(addr // self._span)
        if secondary is None:
            return default
        offset = addr % self._span
        chunk = secondary[offset // self.chunk_size]
        if chunk is None:
            return default
        return chunk[offset % self.chunk_size]

    def set(self, addr: int, value: int) -> None:
        """Set the timestamp of ``addr`` to ``value``."""
        primary_index = addr // self._span
        secondary = self._primary.get(primary_index)
        if secondary is None:
            secondary = [None] * self.secondary_size
            self._primary[primary_index] = secondary
        offset = addr % self._span
        chunk_index = offset // self.chunk_size
        chunk = secondary[chunk_index]
        if chunk is None:
            chunk = array("L", self._zero_chunk_template)
            secondary[chunk_index] = chunk
            self._chunks_allocated += 1
        chunk[offset % self.chunk_size] = value

    # dict-style sugar -----------------------------------------------------

    def __getitem__(self, addr: int) -> int:
        return self.get(addr)

    def __setitem__(self, addr: int, value: int) -> None:
        self.set(addr, value)

    # bulk traversal (renumbering needs to visit every set cell) -----------

    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(addr, timestamp)`` for every nonzero entry."""
        for primary_index, secondary in self._primary.items():
            base = primary_index * self._span
            for chunk_index, chunk in enumerate(secondary):
                if chunk is None:
                    continue
                chunk_base = base + chunk_index * self.chunk_size
                for cell_offset, value in enumerate(chunk):
                    if value:
                        yield chunk_base + cell_offset, value

    def clear(self) -> None:
        """Drop all entries and allocation statistics."""
        self._primary.clear()
        self._chunks_allocated = 0

    # accounting ------------------------------------------------------------

    @property
    def chunks_allocated(self) -> int:
        """Number of chunks materialised so far."""
        return self._chunks_allocated

    def space_bytes(self) -> int:
        """Approximate bytes held by the structure (chunk payloads only).

        The experiments compare tools by their shadow payload, so the
        (small, implementation-specific) overhead of the index levels is
        deliberately excluded — exactly as the paper reports shadow-
        memory-dominated space.
        """
        return self._chunks_allocated * self.chunk_size * self.ENTRY_BYTES


class DictShadow(dict):
    """Shadow memory backed directly by a dict.

    Functionally identical to :class:`ShadowMemory` and the profilers'
    default: subclassing ``dict`` keeps the hot-path accessors
    (``shadow.get(addr, 0)``, ``shadow[addr] = ts``) at C speed, which
    matters — the profilers execute them on every memory event.

    ``get`` is inherited from ``dict`` (callers pass the 0 default
    explicitly); the one-argument form used by generic shadow-memory
    code also works because ``dict.get`` defaults to ``None``-safe 0 via
    :meth:`ShadowMemory.get` compatibility — see :meth:`set` for the
    zero-pruning write path.
    """

    ENTRY_BYTES = 4

    def get(self, addr: int, default: int = 0) -> int:
        return dict.get(self, addr, default)

    def set(self, addr: int, value: int) -> None:
        if value:
            self[addr] = value
        else:
            dict.pop(self, addr, None)

    def __missing__(self, addr: int) -> int:
        return 0

    @property
    def chunks_allocated(self) -> int:
        return 0

    def space_bytes(self) -> int:
        return len(self) * self.ENTRY_BYTES


class PackedLatestWrite(dict):
    """Running latest-write shadow with the writer packed into the value.

    The flat offline kernel replays events in global-position order, so
    the induced-first-access test only ever needs the *latest write so
    far* per cell — one dict probe instead of a per-read binary search
    over a write-history index.  Each value packs the write's global
    position with its provenance in a single integer::

        value = (position << 1) | (1 if written by the kernel else 0)

    so the hot path unpacks with one shift and one mask and never
    allocates a tuple.  Lookups and stores are inherited from ``dict``
    (C speed); the class only adds the packing vocabulary.
    """

    ENTRY_BYTES = 8

    KERNEL_BIT = 1

    @staticmethod
    def pack(position: int, kernel: bool = False) -> int:
        return (position << 1) | (1 if kernel else 0)

    @staticmethod
    def position(value: int) -> int:
        return value >> 1

    @staticmethod
    def is_kernel(value: int) -> bool:
        return bool(value & 1)

    def space_bytes(self) -> int:
        return len(self) * self.ENTRY_BYTES
