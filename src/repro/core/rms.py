"""The sequential RMS profiler (the PLDI 2012 contribution).

Definition 1 (Coppa et al., PLDI 2012): the *read memory size* (rms) of
the execution of a routine ``r`` is the number of distinct memory cells
first accessed by ``r``, or by a descendant of ``r`` in the call tree,
with a read operation.

The profiler computes the rms of every activation in a single pass with
the *latest-access* algorithm: a per-thread shadow memory ``ts_t`` holds
the timestamp of the thread's latest access (read or write) to each
cell, and each pending activation carries a partial rms obeying
Invariant 2 (suffix sums give true rms values).  On a read of cell ``l``:

* if ``ts_t[l] < S_t[top].ts`` the cell is new to the topmost pending
  activation: its partial rms is incremented, and — if the cell was ever
  accessed before by this thread — the partial rms of the deepest
  pending *ancestor* whose activation precedes that access is
  decremented, so that suffix sums stay exact (the ancestor had already
  accounted the cell, and will re-absorb the top's increment at return
  time).

Writes and reads both refresh ``ts_t[l]``; a cell first *written* by an
activation never counts toward its rms.

On multithreaded runs this profiler deliberately ignores all cross-thread
effects, exactly like the original aprof-rms the paper compares against:
each thread is profiled as an isolated sequential computation, and
kernel buffer fills are invisible.  (Kernel *reads* of guest memory are
treated as reads by the issuing thread, as they are in the extension —
they are ordinary input consumption.)
"""

from __future__ import annotations

from .profiler import BaseProfiler

__all__ = ["RmsProfiler"]


class RmsProfiler(BaseProfiler):
    """Single-pass rms profiler (aprof-rms)."""

    name = "aprof-rms"

    def on_read(self, thread: int, addr: int) -> None:
        state = self._state(thread)
        last = state.ts.get(addr, 0)
        top = state.stack.entries[-1]
        if last < top.ts:
            top.partial += 1
            if last != 0:
                ancestor = state.stack.find_latest_not_after(last)
                if ancestor is not None:
                    ancestor.partial -= 1
        state.ts[addr] = self.count

    def on_write(self, thread: int, addr: int) -> None:
        state = self._state(thread)
        state.ts[addr] = self.count

    def on_kernel_read(self, thread: int, addr: int) -> None:
        # The kernel reading guest memory on the thread's behalf is input
        # consumption by the thread (Figure 12: kernelRead -> read).
        self.on_read(thread, addr)

    def on_kernel_write(self, thread: int, addr: int) -> None:
        # Invisible to the sequential metric: the buffer fill is neither a
        # read nor a write *by the thread*, and aprof-rms has no global
        # write timestamps to record it in.
        pass
