"""Naive reference implementations of the RMS and TRMS metrics.

These follow the simple-minded approach of Figure 10 of the paper: every
pending activation ``r`` of thread ``t`` owns an explicit set ``L_{r,t}``
of cells accessed during the activation, and every memory event walks
the whole shadow stack.  A read counts for each pending activation whose
set does not contain the cell — either because the cell was never
accessed by the activation's subtree, or because a more recent write by
another thread (or a kernel buffer fill) *removed* it.

Instead of physically removing cells from every set on every foreign
write (which would make the oracle quadratic in yet another dimension),
we keep per-cell write provenance and evaluate the removal lazily: at a
read by thread ``t``, the cell counts as *induced* when the latest
foreign-or-kernel write is more recent than the thread's latest access.
This is observationally equivalent to the eager removal of Figure 10 and
additionally classifies each induced first-access as thread-induced or
external, which the evaluation metrics need.

These classes are oracles: asymptotically slow, wasteful of space, but
simple enough to trust.  The property-based tests drive random traces
through an oracle and the corresponding timestamping profiler and demand
identical profile databases.  Semantic conventions (implicit per-thread
roots, ignored unmatched returns, unwinding at finish, per-thread cost
counters) deliberately mirror :class:`repro.core.profiler.BaseProfiler`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .context import compose_context
from .events import TraceConsumer
from .profile_data import ProfileDatabase

__all__ = ["NaiveRms", "NaiveTrms"]

_KERNEL = -1


class _Frame:
    """One pending activation with its explicit access set ``L_{r,t}``."""

    __slots__ = ("rtn", "accessed", "size", "induced_thread", "induced_external", "cost")

    def __init__(self, rtn: str, cost: int):
        self.rtn = rtn
        self.accessed: Set[int] = set()
        self.size = 0
        self.induced_thread = 0
        self.induced_external = 0
        self.cost = cost


class _NaiveBase(TraceConsumer):
    """Shared stack-walking skeleton of the two oracles."""

    name = "naive"

    def __init__(self, keep_activations: bool = False, context_sensitive: bool = False):
        self.db = ProfileDatabase(keep_activations=keep_activations)
        self.context_sensitive = context_sensitive
        self._stacks: Dict[int, List[_Frame]] = {}
        self._costs: Dict[int, int] = {}

    def _stack(self, thread: int) -> List[_Frame]:
        stack = self._stacks.get(thread)
        if stack is None:
            self._costs.setdefault(thread, 0)
            stack = [_Frame(f"<root:{thread}>", 0)]
            self._stacks[thread] = stack
        return stack

    def on_call(self, thread: int, routine: str) -> None:
        stack = self._stack(thread)
        if self.context_sensitive:
            routine = compose_context(stack[-1].rtn, routine)
        stack.append(_Frame(routine, self._costs[thread]))

    def on_return(self, thread: int) -> None:
        stack = self._stack(thread)
        if len(stack) > 1:
            self._pop(thread, stack)

    def _pop(self, thread: int, stack: List[_Frame]) -> None:
        frame = stack.pop()
        self.db.add_activation(
            frame.rtn,
            thread,
            frame.size,
            self._costs[thread] - frame.cost,
            frame.induced_thread,
            frame.induced_external,
        )

    def on_cost(self, thread: int, units: int) -> None:
        self._stack(thread)
        self._costs[thread] += units

    def on_thread_switch(self, thread: int) -> None:
        self._stack(thread)

    def on_finish(self) -> None:
        for thread, stack in self._stacks.items():
            while stack:
                self._pop(thread, stack)

    def _mark_access(self, thread: int, addr: int) -> None:
        """Record an access by the innermost activation — which, with
        stack walking, is an access by every pending ancestor too."""
        for frame in self._stack(thread):
            frame.accessed.add(addr)


class NaiveRms(_NaiveBase):
    """Figure 10 restricted to a single thread's view: sequential RMS."""

    name = "naive-rms"

    def on_read(self, thread: int, addr: int) -> None:
        stack = self._stack(thread)
        for frame in stack:
            if addr not in frame.accessed:
                frame.size += 1
                frame.accessed.add(addr)

    def on_write(self, thread: int, addr: int) -> None:
        self._mark_access(thread, addr)

    def on_kernel_read(self, thread: int, addr: int) -> None:
        self.on_read(thread, addr)

    def on_kernel_write(self, thread: int, addr: int) -> None:
        pass


class NaiveTrms(_NaiveBase):
    """Figure 10 in full: multithreaded TRMS with external input.

    ``count_thread_induced`` / ``count_external`` mirror the efficient
    profiler's induced-kind selection: an uncounted induced access falls
    back to plain set membership, i.e. the sequential rule.
    """

    name = "naive-trms"

    def __init__(
        self,
        keep_activations: bool = False,
        count_thread_induced: bool = True,
        count_external: bool = True,
        context_sensitive: bool = False,
    ):
        super().__init__(keep_activations=keep_activations,
                         context_sensitive=context_sensitive)
        self.count_thread_induced = count_thread_induced
        self.count_external = count_external
        self._now = 0
        #: cell -> (writer, time) of the latest write, any writer
        self._last_write: Dict[int, Tuple[int, int]] = {}
        #: cell -> (writer, time) of the latest write by each writer
        self._writes_by: Dict[int, Dict[int, int]] = {}
        #: (thread, cell) -> time of the thread's latest access
        self._last_access: Dict[Tuple[int, int], int] = {}

    def _tick(self) -> int:
        self._now += 1
        return self._now

    def _latest_foreign_write(self, thread: int, addr: int) -> Optional[Tuple[int, int]]:
        """``(writer, time)`` of the latest write to ``addr`` by any
        writer other than ``thread`` (the kernel included), or None."""
        by_writer = self._writes_by.get(addr)
        if not by_writer:
            return None
        best: Optional[Tuple[int, int]] = None
        for writer, time in by_writer.items():
            if writer == thread:
                continue
            if best is None or time > best[1]:
                best = (writer, time)
        return best

    def on_read(self, thread: int, addr: int) -> None:
        now = self._tick()
        foreign = self._latest_foreign_write(thread, addr)
        last_access = self._last_access.get((thread, addr), 0)
        induced = foreign is not None and foreign[1] > last_access
        external = induced and foreign[0] == _KERNEL
        if induced and external and not self.count_external:
            induced = external = False
        if induced and not external and not self.count_thread_induced:
            induced = False
        counted_any = False
        for frame in self._stack(thread):
            if induced or addr not in frame.accessed:
                frame.size += 1
                if induced:
                    if external:
                        frame.induced_external += 1
                    else:
                        frame.induced_thread += 1
                counted_any = True
            frame.accessed.add(addr)
        if counted_any and induced:
            if external:
                self.db.global_induced_external += 1
            else:
                self.db.global_induced_thread += 1
        self._last_access[(thread, addr)] = now

    def on_write(self, thread: int, addr: int) -> None:
        now = self._tick()
        self._mark_access(thread, addr)
        self._last_access[(thread, addr)] = now
        self._last_write[addr] = (thread, now)
        self._writes_by.setdefault(addr, {})[thread] = now

    def on_kernel_read(self, thread: int, addr: int) -> None:
        self.on_read(thread, addr)

    def on_kernel_write(self, thread: int, addr: int) -> None:
        now = self._tick()
        self._last_write[addr] = (_KERNEL, now)
        self._writes_by.setdefault(addr, {})[_KERNEL] = now
