"""Counter-overflow renumbering (Section 4.4 of the paper).

The global timestamp counter is shared by all threads and, with a small
counter width, overflows on long executions.  Overflows would corrupt
the partial order between memory timestamps and yield wrong input sizes,
so the profiler periodically *renumbers* every timestamp it holds.

The key observation (the paper's): the algorithm never compares
timestamps of two *different* memory locations — the only predicates it
evaluates are, for a single location ``l`` and a thread ``t``:

1. ``ts_t[l] < wts[l]``                      (induced first-access test)
2. ``ts_t[l]`` vs. the activation timestamps of ``t``'s pending stack
   (first-access test and the ancestor binary search).

Renumbering may therefore reassign timestamps freely as long as those
predicates keep their truth values.  Following the paper we give the
``i``-th oldest pending activation the stamp ``3*i`` and place memory
stamps inside the window ``[3*q, 3*(q+1))`` of the latest pending
activation ``q`` started before them, using the three residues to
preserve the location's ``ts_t`` vs. ``wts`` relation:

* ``ts_t[l] == wts[l]``  →  both become ``3*q + 1``;
* ``ts_t[l] <  wts[l]``  →  ``ts_t[l] = 3*q``  (``wts[l] = 3*q + 1``);
* ``ts_t[l] >  wts[l]``  →  ``ts_t[l] = 3*q + 2``.

Stamps of value 0 are the "never accessed / never written" sentinel and
are left untouched.  Ranks are 1-based so no live stamp collapses onto
the sentinel (the profiler guarantees every live stamp is preceded by at
least one pending activation: the issuing thread's implicit root).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Optional, Sequence

__all__ = ["renumber_timestamps"]


def _rank(sorted_stamps: Sequence[int], value: int) -> int:
    """Number of pending-activation stamps ``<= value`` (0-based count)."""
    return bisect_right(sorted_stamps, value)


def renumber_timestamps(states: Iterable, wts: Optional[object]) -> int:
    """Renumber all timestamps held by the profiler; return the new count.

    Args:
        states: the profiler's per-thread states; each must expose
            ``stack`` (a :class:`~repro.core.stack.ShadowStack`) and
            ``ts`` (a shadow memory with ``items``/``set``).
        wts: the global write-timestamp shadow of the TRMS profiler, or
            None for the sequential RMS profiler (whose renumbering only
            needs to preserve predicate 2).

    Returns:
        The new value for the global counter: strictly larger than every
        reassigned stamp.
    """
    states = list(states)

    # Lines 1-4: collect and sort the (distinct) timestamps of every
    # pending activation across all threads.
    stamps: List[int] = []
    for state in states:
        for entry in state.stack.entries:
            stamps.append(entry.ts)
    stamps.sort()

    # Lines 5-8: reassign activation timestamps as multiples of 3, by rank.
    new_by_old = {old: 3 * (index + 1) for index, old in enumerate(stamps)}
    for state in states:
        for entry in state.stack.entries:
            entry.ts = new_by_old[entry.ts]

    # Lines 9-18: reassign memory timestamps, thread-specific then global.
    if wts is not None:
        new_wts = {}
        for addr, stamp in wts.items():
            q = _rank(stamps, stamp)
            new_wts[addr] = 3 * q + 1
        for state in states:
            for addr, stamp in state.ts.items():
                write_stamp = wts.get(addr)
                j = _rank(stamps, stamp)
                if write_stamp == 0:
                    state.ts.set(addr, 3 * j + 1)
                elif stamp == write_stamp:
                    state.ts.set(addr, 3 * j + 1)
                elif stamp < write_stamp:
                    q = _rank(stamps, write_stamp)
                    state.ts.set(addr, 3 * j if j == q else 3 * j + 1)
                else:
                    q = _rank(stamps, write_stamp)
                    state.ts.set(addr, 3 * j + 2 if j == q else 3 * j + 1)
        for addr, value in new_wts.items():
            wts.set(addr, value)
    else:
        for state in states:
            for addr, stamp in state.ts.items():
                state.ts.set(addr, 3 * _rank(stamps, stamp) + 1)

    # Line 19: the counter restarts above every stamp just assigned.
    return 3 * len(stamps) + 3
