"""The flat-array latest-access kernel for offline TRMS analysis.

:mod:`repro.core.offline` restructured the paper's algorithm into an
index pass plus per-thread replay; this module restructures the *hot
loop*.  Three observations make the offline analysis dramatically
cheaper than an object-per-event replay:

1. **Events decode as columns, not objects.**  A v2 chunk becomes three
   parallel arrays (kind byte, thread id, argument) in a handful of
   C-level strided copies (:func:`repro.farm.binfmt.decode_chunk_columns`)
   — no ``Event`` tuples, no ``EventKind`` re-wrapping, no per-record
   string-table lookups.  ``CALL`` arguments stay interned routine ids;
   names are materialised only when an activation is emitted.

2. **Global order makes the write index redundant.**  Replaying events
   in increasing global position means every write at a position below
   the current read has already been seen, so the per-read binary
   search of :meth:`~repro.core.offline.WriteIndex.latest_before`
   collapses to one probe of a running
   :class:`~repro.core.shadow.PackedLatestWrite` dict.

3. **Shadow stacks flatten to parallel columns.**  A pending activation
   is a row of :class:`~repro.core.stack.FlatStack` — six ``array('q')``
   columns the kernel binds to locals, so the per-event work is integer
   compares, dict probes and in-place column updates.

The kernel analyses all of a shard's threads in a *single interleaved
pass*, keeping per-thread stacks and latest-access tables exactly like
the online profiler keeps per-thread states.  Its output is
**bit-identical** to the classic two-pass machinery (and hence to the
online :class:`~repro.core.trms.TrmsProfiler`) — enforced by the farm
differential tests and the property-based kernel differentials.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .context import compose_context
from .events import Event, EventKind
from .profile_data import ProfileDatabase
from .shadow import PackedLatestWrite
from .stack import FlatStack

__all__ = ["FlatAnalyzer", "analyze_columns_flat", "analyze_events_flat"]

#: Analyzer-allocated name ids (per-thread roots, composed contexts)
#: live in a namespace far above any real trace string table, so the
#: external ``names`` table may *grow while analysis is running* (the
#: streaming tailer appends sidecar names between chunks) without ever
#: colliding with internal ids.
_EXTRA_BASE = 1 << 40

_CALL = int(EventKind.CALL)
_RETURN = int(EventKind.RETURN)
_READ = int(EventKind.READ)
_WRITE = int(EventKind.WRITE)
_KERNEL_READ = int(EventKind.KERNEL_READ)
_KERNEL_WRITE = int(EventKind.KERNEL_WRITE)
_THREAD_SWITCH = int(EventKind.THREAD_SWITCH)
_COST = int(EventKind.COST)

#: per-thread root activations, mirroring ``offline.analyze_thread``
_ROOT_NAME = "<root:{thread}>"


class _FlatThreadState:
    """One analysed thread: flat stack, latest-access table, cost."""

    __slots__ = ("thread", "stack", "last", "cost")

    def __init__(self, thread: int):
        self.thread = thread
        self.stack = FlatStack()
        #: cell -> global position of this thread's latest access
        self.last: Dict[int, int] = {}
        self.cost = 0


class FlatAnalyzer:
    """Single-pass flat-array TRMS analysis over event columns.

    Args:
        threads: the threads to analyse (a shard's assignment).  Events
            of other threads contribute only their writes.  ``None``
            analyses every thread that appears — the whole-trace mode
            of :func:`~repro.core.offline.analyze_trace`.
        names: the trace string table ``CALL`` arguments index into.
        db: the database activations are emitted into.
        context_sensitive: key profiles by calling context; contexts
            are composed once per distinct (parent, routine) pair and
            interned, so the hot path stays integer-only.

    Feed columns in increasing global-position order (chunks in trace
    order), then call :meth:`finish` exactly once.
    """

    def __init__(
        self,
        threads: Optional[Sequence[int]],
        names: Sequence[str],
        db: ProfileDatabase,
        context_sensitive: bool = False,
    ):
        self.db = db
        self.context_sensitive = context_sensitive
        #: routine id -> name: the trace string table, held by
        #: *reference* when given a list so the owner may append names
        #: mid-run (streaming).  Ids the analyzer allocates itself
        #: (per-thread roots, composed contexts) live in ``_extra`` at
        #: ``_EXTRA_BASE + index`` so they never collide with table
        #: growth.
        self.names: List[str] = names if isinstance(names, list) else list(names)
        self._extra: List[str] = []
        self._ctx_ids: Dict[Tuple[int, int], int] = {}
        self.states: Dict[int, _FlatThreadState] = {}
        #: thread order for :meth:`finish` unwinding (assignment order,
        #: or first-appearance order when analysing every thread)
        self._order: List[int] = []
        self._assigned = frozenset(threads) if threads is not None else None
        self.events_analyzed = 0
        self.wts = PackedLatestWrite()
        if threads is not None:
            for thread in threads:
                self._ensure(thread)

    def _ensure(self, thread: int) -> _FlatThreadState:
        state = _FlatThreadState(thread)
        root_id = _EXTRA_BASE + len(self._extra)
        self._extra.append(_ROOT_NAME.format(thread=thread))
        state.stack.push(root_id, 0, 0)
        self.states[thread] = state
        self._order.append(thread)
        return state

    def _name_of(self, ident: int) -> str:
        """Resolve a routine id from either namespace."""
        if ident >= _EXTRA_BASE:
            return self._extra[ident - _EXTRA_BASE]
        return self.names[ident]

    def feed(self, columns) -> None:
        """Analyse one :class:`~repro.farm.binfmt.ChunkColumns` batch."""
        # Bind everything the loop touches to locals; rebind the current
        # thread's columns only when the event stream switches threads
        # (events arrive in per-thread runs, so this almost never fires).
        db = self.db
        names = self.names
        extra = self._extra
        extra_base = _EXTRA_BASE
        ctx_ids = self._ctx_ids
        context_sensitive = self.context_sensitive
        states = self.states
        lazy = self._assigned is None
        wts = self.wts
        wts_get = wts.get
        add_activation = db.add_activation
        induced_thread = 0
        induced_external = 0
        position = columns.first_pos
        current_thread: Optional[int] = None
        state: Optional[_FlatThreadState] = None
        s_last = s_last_get = s_rtn = s_ts = s_cost = None
        s_partial = s_ind_thread = s_ind_external = None

        for kind, thread, arg in zip(columns.kinds, columns.threads, columns.args):
            if thread != current_thread:
                current_thread = thread
                state = states.get(thread)
                if state is None and lazy:
                    state = self._ensure(thread)
                if state is not None:
                    stack = state.stack
                    s_last = state.last
                    s_last_get = s_last.get
                    s_rtn = stack.rtn
                    s_ts = stack.ts
                    s_cost = stack.cost
                    s_partial = stack.partial
                    s_ind_thread = stack.induced_thread
                    s_ind_external = stack.induced_external
            if state is None:
                # Foreign thread: only its writes are visible to us.
                if kind == _WRITE:
                    wts[arg] = position << 1
                elif kind == _KERNEL_WRITE:
                    wts[arg] = (position << 1) | 1
                position += 1
                continue
            if kind == _READ or kind == _KERNEL_READ:
                last = s_last_get(arg, -1)
                packed = wts_get(arg)
                if packed is not None and (packed >> 1) > last:
                    # Induced first-access: the latest write to the cell
                    # is foreign (or kernel) and unseen by this thread.
                    s_partial[-1] += 1
                    if packed & 1:
                        s_ind_external[-1] += 1
                        induced_external += 1
                    else:
                        s_ind_thread[-1] += 1
                        induced_thread += 1
                elif last < s_ts[-1]:
                    # Plain first-access for the topmost activation.
                    s_partial[-1] += 1
                    if last >= 0:
                        ancestor = bisect_right(s_ts, last) - 1
                        if ancestor >= 0:
                            s_partial[ancestor] -= 1
                s_last[arg] = position
            elif kind == _WRITE:
                s_last[arg] = position
                wts[arg] = position << 1
            elif kind == _CALL:
                if context_sensitive:
                    parent = s_rtn[-1]
                    rtn_id = ctx_ids.get((parent, arg))
                    if rtn_id is None:
                        rtn_id = extra_base + len(extra)
                        parent_name = (extra[parent - extra_base]
                                       if parent >= extra_base else names[parent])
                        extra.append(compose_context(parent_name, names[arg]))
                        ctx_ids[(parent, arg)] = rtn_id
                else:
                    rtn_id = arg
                s_rtn.append(rtn_id)
                s_ts.append(position)
                s_cost.append(state.cost)
                s_partial.append(0)
                s_ind_thread.append(0)
                s_ind_external.append(0)
            elif kind == _RETURN:
                if len(s_rtn) > 1:
                    partial = s_partial.pop()
                    ind_thread = s_ind_thread.pop()
                    ind_external = s_ind_external.pop()
                    s_ts.pop()
                    entry_cost = s_cost.pop()
                    rtn_id = s_rtn.pop()
                    s_partial[-1] += partial
                    s_ind_thread[-1] += ind_thread
                    s_ind_external[-1] += ind_external
                    add_activation(
                        extra[rtn_id - extra_base] if rtn_id >= extra_base
                        else names[rtn_id],
                        thread, partial, state.cost - entry_cost,
                        ind_thread, ind_external,
                    )
            elif kind == _COST:
                state.cost += arg
            elif kind == _KERNEL_WRITE:
                wts[arg] = (position << 1) | 1
            # THREAD_SWITCH: no per-thread effect (position still advances)
            position += 1

        db.global_induced_thread += induced_thread
        db.global_induced_external += induced_external
        self.events_analyzed += columns.events

    def finish(self) -> None:
        """Unwind every pending activation, including implicit roots."""
        name_of = self._name_of
        add_activation = self.db.add_activation
        for thread in self._order:
            state = self.states[thread]
            stack = state.stack
            while stack:
                rtn_id, _, entry_cost, partial, ind_thread, ind_external = stack.pop()
                if stack:
                    stack.partial[-1] += partial
                    stack.induced_thread[-1] += ind_thread
                    stack.induced_external[-1] += ind_external
                add_activation(
                    name_of(rtn_id), thread, partial, state.cost - entry_cost,
                    ind_thread, ind_external,
                )


def analyze_columns_flat(
    column_blocks: Iterable,
    threads: Optional[Sequence[int]],
    names: Sequence[str],
    db: ProfileDatabase,
    context_sensitive: bool = False,
) -> int:
    """Run the flat kernel over column blocks; returns events analysed.

    ``column_blocks`` must arrive in increasing global-position order
    (chunks in trace order) — the farm's shard plans and the offline
    columnariser both guarantee this.
    """
    analyzer = FlatAnalyzer(threads, names, db, context_sensitive=context_sensitive)
    for columns in column_blocks:
        analyzer.feed(columns)
    analyzer.finish()
    return analyzer.events_analyzed


def analyze_events_flat(
    events: Sequence[Event],
    db: ProfileDatabase,
    context_sensitive: bool = False,
) -> int:
    """Flat-analyse an in-memory event stream (whole trace, all threads)."""
    from ..farm.binfmt import columns_from_events

    columns, names = columns_from_events(events)
    return analyze_columns_flat(
        [columns], None, names, db, context_sensitive=context_sensitive)
