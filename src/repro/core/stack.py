"""Shadow run-time stacks.

Each traced thread ``t`` owns a shadow stack ``S_t`` mirroring its call
stack.  Stack entry ``S_t[i]`` stores, for the ``i``-th pending routine
activation (Section 4.2 of the paper):

* ``rtn``  — the routine identifier;
* ``ts``   — the activation timestamp (value of the global counter when
  the routine was entered);
* ``cost`` — the thread cost counter snapshot taken at entry, so the
  inclusive cost of the activation is ``thread_cost_now - cost`` at
  return time;
* ``partial`` — the *partial* (t)rms of the activation, maintained so
  that Invariant 2 holds: the true (t)rms of pending activation ``i`` is
  ``sum(S_t[j].partial for j in range(i, top+1))``.

The stack also carries the increment-only partial counters that this
reproduction adds for input attribution (thread-induced and external
induced first-accesses); they obey the same suffix-sum invariant, but
never receive the ancestor decrement (an induced access is new input to
every pending ancestor).
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["StackEntry", "ShadowStack"]


class StackEntry:
    """One pending routine activation on a shadow stack."""

    __slots__ = ("rtn", "ts", "cost", "partial", "induced_thread", "induced_external")

    def __init__(self, rtn: str, ts: int, cost: int):
        self.rtn = rtn
        self.ts = ts
        self.cost = cost
        self.partial = 0
        self.induced_thread = 0
        self.induced_external = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StackEntry(rtn={self.rtn!r}, ts={self.ts}, cost={self.cost}, "
            f"partial={self.partial})"
        )


class ShadowStack:
    """Shadow stack for one thread, with the binary search of the paper.

    The only non-constant-time operation of the profiling algorithm is
    locating, for a location last accessed at time ``ts_l``, the deepest
    pending activation whose timestamp does not exceed ``ts_l`` (line 7
    of procedure ``read``).  Because activation timestamps are strictly
    increasing from the bottom to the top of the stack, this is a binary
    search costing ``O(log depth)``.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[StackEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    @property
    def top(self) -> StackEntry:
        """The topmost pending activation (raises IndexError if empty)."""
        return self.entries[-1]

    def push(self, rtn: str, ts: int, cost: int) -> StackEntry:
        entry = StackEntry(rtn, ts, cost)
        self.entries.append(entry)
        return entry

    def pop(self) -> StackEntry:
        return self.entries.pop()

    def parent(self) -> Optional[StackEntry]:
        """The activation just below the top, or None at the outermost level."""
        if len(self.entries) >= 2:
            return self.entries[-2]
        return None

    def find_latest_not_after(self, ts_value: int) -> Optional[StackEntry]:
        """Deepest pending activation with ``entry.ts <= ts_value``.

        Returns None when every pending activation started after
        ``ts_value`` (which can only happen for timestamps predating the
        bottom-most activation).
        """
        entries = self.entries
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid].ts <= ts_value:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        return entries[lo - 1]

    def suffix_partial_sum(self, index: int) -> int:
        """``sum of partials from index to the top`` — Invariant 2 helper.

        Used only by tests that check Invariant 2 directly; the algorithm
        itself never needs the explicit sum.
        """
        return sum(entry.partial for entry in self.entries[index:])
