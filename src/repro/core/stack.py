"""Shadow run-time stacks.

Each traced thread ``t`` owns a shadow stack ``S_t`` mirroring its call
stack.  Stack entry ``S_t[i]`` stores, for the ``i``-th pending routine
activation (Section 4.2 of the paper):

* ``rtn``  — the routine identifier;
* ``ts``   — the activation timestamp (value of the global counter when
  the routine was entered);
* ``cost`` — the thread cost counter snapshot taken at entry, so the
  inclusive cost of the activation is ``thread_cost_now - cost`` at
  return time;
* ``partial`` — the *partial* (t)rms of the activation, maintained so
  that Invariant 2 holds: the true (t)rms of pending activation ``i`` is
  ``sum(S_t[j].partial for j in range(i, top+1))``.

The stack also carries the increment-only partial counters that this
reproduction adds for input attribution (thread-induced and external
induced first-accesses); they obey the same suffix-sum invariant, but
never receive the ancestor decrement (an induced access is new input to
every pending ancestor).
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import List, Optional, Tuple

__all__ = ["StackEntry", "ShadowStack", "FlatStack"]


class StackEntry:
    """One pending routine activation on a shadow stack."""

    __slots__ = ("rtn", "ts", "cost", "partial", "induced_thread", "induced_external")

    def __init__(self, rtn: str, ts: int, cost: int):
        self.rtn = rtn
        self.ts = ts
        self.cost = cost
        self.partial = 0
        self.induced_thread = 0
        self.induced_external = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StackEntry(rtn={self.rtn!r}, ts={self.ts}, cost={self.cost}, "
            f"partial={self.partial})"
        )


class ShadowStack:
    """Shadow stack for one thread, with the binary search of the paper.

    The only non-constant-time operation of the profiling algorithm is
    locating, for a location last accessed at time ``ts_l``, the deepest
    pending activation whose timestamp does not exceed ``ts_l`` (line 7
    of procedure ``read``).  Because activation timestamps are strictly
    increasing from the bottom to the top of the stack, this is a binary
    search costing ``O(log depth)``.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[StackEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    @property
    def top(self) -> StackEntry:
        """The topmost pending activation (raises IndexError if empty)."""
        return self.entries[-1]

    def push(self, rtn: str, ts: int, cost: int) -> StackEntry:
        entry = StackEntry(rtn, ts, cost)
        self.entries.append(entry)
        return entry

    def pop(self) -> StackEntry:
        return self.entries.pop()

    def parent(self) -> Optional[StackEntry]:
        """The activation just below the top, or None at the outermost level."""
        if len(self.entries) >= 2:
            return self.entries[-2]
        return None

    def find_latest_not_after(self, ts_value: int) -> Optional[StackEntry]:
        """Deepest pending activation with ``entry.ts <= ts_value``.

        Returns None when every pending activation started after
        ``ts_value`` (which can only happen for timestamps predating the
        bottom-most activation).
        """
        entries = self.entries
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid].ts <= ts_value:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        return entries[lo - 1]

    def suffix_partial_sum(self, index: int) -> int:
        """``sum of partials from index to the top`` — Invariant 2 helper.

        Used only by tests that check Invariant 2 directly; the algorithm
        itself never needs the explicit sum.
        """
        return sum(entry.partial for entry in self.entries[index:])


class FlatStack:
    """Struct-of-arrays shadow stack: six parallel i64 columns.

    Semantically identical to :class:`ShadowStack`, but one pending
    activation is a *row index* into preallocated-growth ``array('q')``
    columns instead of a heap-allocated :class:`StackEntry`.  The flat
    analysis kernel binds the columns to local variables and mutates
    them in place, so the hot path performs no attribute lookups and
    allocates no per-activation objects; routine identity is an interned
    integer id, resolved to a name only when the activation completes.

    The paper's binary search (deepest pending activation whose
    timestamp does not exceed a given value) becomes a ``bisect_right``
    over the timestamp column — the column is sorted by construction,
    exactly like ``StackEntry.ts`` bottom-to-top.
    """

    __slots__ = ("rtn", "ts", "cost", "partial", "induced_thread", "induced_external")

    def __init__(self) -> None:
        self.rtn = array("q")               #: interned routine ids
        self.ts = array("q")                #: activation timestamps (sorted)
        self.cost = array("q")              #: thread-cost snapshots at entry
        self.partial = array("q")           #: partial (t)rms per Invariant 2
        self.induced_thread = array("q")    #: thread-induced partial tallies
        self.induced_external = array("q")  #: external-induced partial tallies

    def __len__(self) -> int:
        return len(self.ts)

    def __bool__(self) -> bool:
        return bool(self.ts)

    def push(self, rtn_id: int, ts: int, cost: int) -> None:
        self.rtn.append(rtn_id)
        self.ts.append(ts)
        self.cost.append(cost)
        self.partial.append(0)
        self.induced_thread.append(0)
        self.induced_external.append(0)

    def pop(self) -> Tuple[int, int, int, int, int, int]:
        """Pop the top row: ``(rtn_id, ts, cost, partial, ind_thread, ind_ext)``."""
        return (
            self.rtn.pop(), self.ts.pop(), self.cost.pop(),
            self.partial.pop(), self.induced_thread.pop(),
            self.induced_external.pop(),
        )

    def find_latest_not_after(self, ts_value: int) -> int:
        """Row index of the deepest activation with ``ts <= ts_value``.

        Returns -1 when every pending activation started after
        ``ts_value`` — the flat analogue of
        :meth:`ShadowStack.find_latest_not_after` returning None.
        """
        return bisect_right(self.ts, ts_value) - 1

    def suffix_partial_sum(self, index: int) -> int:
        """Invariant 2 helper, mirroring :meth:`ShadowStack.suffix_partial_sum`."""
        return sum(self.partial[index:])
