"""Shared machinery of the RMS and TRMS profilers.

Both profilers follow the same skeleton (the *latest-access* approach of
the PLDI 2012 paper, restated in Section 4.2 of the follow-up):

* a global counter ``count`` incremented at every routine activation and
  thread switch;
* one shadow stack per thread (:mod:`repro.core.stack`) whose entries
  carry the activation timestamp, a cost snapshot and the *partial*
  input size obeying Invariant 2;
* one thread-specific shadow memory per thread mapping each cell to the
  timestamp of the thread's latest access.

They differ only in how ``read``/``write``/kernel events manipulate the
timestamps, which is exactly what the subclasses override.

The base class also implements the practical details the paper's tool
needs: implicit per-thread root activations (so that input attributed to
a thread's outermost code is not lost), unwinding of still-pending
activations at ``on_finish`` time, and periodic counter-overflow
renumbering (Section 4.4) driven by ``max_count``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .. import telemetry
from .context import compose_context
from .events import TraceConsumer
from .profile_data import ProfileDatabase
from .renumber import renumber_timestamps
from .shadow import DictShadow, ShadowMemory
from .stack import ShadowStack, StackEntry

__all__ = ["ThreadState", "BaseProfiler"]


class ThreadState:
    """Per-thread profiler state: shadow stack, shadow memory, cost."""

    __slots__ = ("thread", "stack", "ts", "cost")

    def __init__(self, thread: int, shadow_factory: Callable[[], object]):
        self.thread = thread
        self.stack = ShadowStack()
        #: thread-specific shadow memory ``ts_t``
        self.ts = shadow_factory()
        #: per-thread cost counter (basic blocks executed by this thread)
        self.cost = 0


class BaseProfiler(TraceConsumer):
    """Common skeleton for :class:`RmsProfiler` and :class:`TrmsProfiler`.

    Args:
        keep_activations: forwarded to :class:`ProfileDatabase`.
        use_chunked_shadow: use the paper's three-level
            :class:`ShadowMemory` (True) or the dict-backed reference
            shadow (False, default — faster for the small address spaces
            of most tests).
        max_count: renumber timestamps whenever the global counter
            reaches this value, emulating a bounded counter width
            (Section 4.4).  ``None`` disables renumbering.
    """

    name = "profiler"

    #: name prefix of implicit per-thread root activations
    ROOT_PREFIX = "<root:"

    def __init__(
        self,
        keep_activations: bool = False,
        use_chunked_shadow: bool = False,
        max_count: Optional[int] = None,
        context_sensitive: bool = False,
    ):
        self.db = ProfileDatabase(keep_activations=keep_activations)
        self._shadow_factory: Callable[[], object] = (
            ShadowMemory if use_chunked_shadow else DictShadow
        )
        #: key profiles by full call path instead of routine name
        self.context_sensitive = context_sensitive
        self.max_count = max_count
        self.count = 0
        self.states: Dict[int, ThreadState] = {}
        self.renumber_count = 0
        # memoize the most recent thread's state: events arrive in runs
        # per thread (the trace is serialized), so this hits almost always
        self._cached_thread: Optional[int] = None
        self._cached_state: Optional[ThreadState] = None

    # -- state management ---------------------------------------------------

    def _state(self, thread: int) -> ThreadState:
        """The state of ``thread``, creating it (with an implicit root
        activation) on first use."""
        if thread == self._cached_thread:
            return self._cached_state
        state = self.states.get(thread)
        if state is None:
            state = ThreadState(thread, self._shadow_factory)
            self.states[thread] = state
            self._push(state, f"{self.ROOT_PREFIX}{thread}>")
        self._cached_thread = thread
        self._cached_state = state
        return state

    def _bump_count(self) -> int:
        self.count += 1
        if self.max_count is not None and self.count >= self.max_count:
            self._renumber()
        return self.count

    def _push(self, state: ThreadState, routine: str) -> StackEntry:
        self._bump_count()
        return state.stack.push(routine, self.count, state.cost)

    def _pop(self, state: ThreadState) -> None:
        entry = state.stack.pop()
        inclusive_cost = state.cost - entry.cost
        parent = state.stack.entries[-1] if state.stack.entries else None
        if parent is not None:
            parent.partial += entry.partial
            parent.induced_thread += entry.induced_thread
            parent.induced_external += entry.induced_external
        self.db.add_activation(
            entry.rtn,
            state.thread,
            entry.partial,
            inclusive_cost,
            entry.induced_thread,
            entry.induced_external,
        )

    # -- TraceConsumer callbacks ----------------------------------------------

    def on_call(self, thread: int, routine: str) -> None:
        state = self._state(thread)
        if self.context_sensitive:
            routine = compose_context(state.stack.entries[-1].rtn, routine)
        self._push(state, routine)

    def on_return(self, thread: int) -> None:
        state = self._state(thread)
        # Never pop the implicit root: unmatched returns (trimmed traces,
        # longjmp-style exits) are treated as no-ops, as aprof does.
        if len(state.stack) > 1:
            self._pop(state)

    def on_cost(self, thread: int, units: int) -> None:
        self._state(thread).cost += units

    def on_thread_switch(self, thread: int) -> None:
        self._bump_count()
        # Touch the state so the implicit root exists from the very first
        # event of the thread, whatever kind it is.
        self._state(thread)

    def on_finish(self) -> None:
        """Unwind every pending activation, including implicit roots.

        Routines still on a stack at the end of the run (``main``, thread
        entry points) are reported as if they returned at exit time.

        Also the profiler's self-accounting moment: with telemetry live,
        the session totals (timestamps issued, renumber passes, threads
        seen, shadow-state bytes) land in the metrics registry — end-of-
        run bookkeeping only, never per-event work, so the disabled path
        costs one attribute check.
        """
        for state in self.states.values():
            while state.stack:
                self._pop(state)
        tele = telemetry.current()
        if tele.enabled:
            tele.counter("profiler.timestamps", tool=self.name).inc(self.count)
            tele.counter("profiler.renumbers", tool=self.name).inc(self.renumber_count)
            tele.counter("profiler.threads", tool=self.name).inc(len(self.states))
            tele.counter("profiler.routines", tool=self.name).inc(
                len(self.db.routines()))
            tele.gauge("profiler.space_bytes", tool=self.name).set(
                self.space_bytes())

    # -- renumbering -----------------------------------------------------------

    def _global_write_shadow(self):
        """The global write-timestamp shadow, or None for the RMS profiler."""
        return None

    def _renumber(self) -> None:
        self.count = renumber_timestamps(
            list(self.states.values()), self._global_write_shadow()
        )
        self.renumber_count += 1

    # -- accounting -------------------------------------------------------------

    def space_bytes(self) -> int:
        total = 0
        for state in self.states.values():
            total += state.ts.space_bytes()
            total += len(state.stack.entries) * 48
        shadow = self._global_write_shadow()
        if shadow is not None:
            total += shadow.space_bytes()
        return total
