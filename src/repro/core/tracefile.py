"""Trace persistence: record event streams, analyse them later.

Section 4 of the paper describes the profiler as consuming *traces* of
program operations; the Valgrind tool fuses recording and analysis into
one pass, but the trace-driven model is what makes the algorithms
testable and lets one execution feed many analyses.  This module makes
traces durable:

* :class:`TraceWriter` — a :class:`TraceConsumer` that streams events to
  a file as they happen;
* :func:`read_trace` / :func:`iter_trace` — load them back as
  :class:`Event` lists/iterators for :func:`repro.core.events.replay`.

Format: one event per line, tab-separated ``kind thread arg``, with a
one-line header carrying a magic string and version.  Routine names are
the only free-form field; tabs, newlines and backslashes in names are
backslash-escaped on write and restored on read, so arbitrary names
round-trip.  The format is plain text: greppable, diffable, stable.
"""

from __future__ import annotations

from typing import IO, Iterator, List, Union

from .events import Event, EventKind, TraceConsumer

__all__ = [
    "TRACE_MAGIC",
    "TraceWriter",
    "write_trace",
    "read_trace",
    "iter_trace",
    "escape_name",
    "unescape_name",
]

TRACE_MAGIC = "repro-trace 1"

_KIND_CODES = {
    EventKind.CALL: "C",
    EventKind.RETURN: "R",
    EventKind.READ: "r",
    EventKind.WRITE: "w",
    EventKind.KERNEL_READ: "kr",
    EventKind.KERNEL_WRITE: "kw",
    EventKind.THREAD_SWITCH: "S",
    EventKind.COST: "$",
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


class TraceFileError(ValueError):
    """Raised on malformed trace files."""


def escape_name(name: str) -> str:
    """Make a routine name safe for tab/newline-delimited formats.

    Backslash-escapes the two delimiter characters and the escape
    character itself; every other character passes through untouched, so
    escaped names of ordinary routines are byte-identical to the raw
    ones.
    """
    return name.replace("\\", "\\\\").replace("\t", "\\t").replace("\n", "\\n")


def unescape_name(text: str) -> str:
    """Inverse of :func:`escape_name`."""
    if "\\" not in text:
        return text
    out: List[str] = []
    it = iter(text)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, None)
        if nxt == "t":
            out.append("\t")
        elif nxt == "n":
            out.append("\n")
        elif nxt == "\\":
            out.append("\\")
        elif nxt is None:
            raise TraceFileError(f"dangling escape in name {text!r}")
        else:
            bad = "\\" + nxt
            raise TraceFileError(f"bad escape {bad!r} in name {text!r}")
    return "".join(out)


class TraceWriter(TraceConsumer):
    """Streams the event vocabulary to a text file."""

    name = "trace-writer"

    def __init__(self, stream: IO[str]):
        self.stream = stream
        self.events_written = 0
        stream.write(TRACE_MAGIC + "\n")

    def _emit(self, code: str, thread: int, arg) -> None:
        self.stream.write(f"{code}\t{thread}\t{arg}\n")
        self.events_written += 1

    def on_call(self, thread: int, routine: str) -> None:
        self._emit("C", thread, escape_name(routine))

    def on_return(self, thread: int) -> None:
        self._emit("R", thread, 0)

    def on_read(self, thread: int, addr: int) -> None:
        self._emit("r", thread, addr)

    def on_write(self, thread: int, addr: int) -> None:
        self._emit("w", thread, addr)

    def on_kernel_read(self, thread: int, addr: int) -> None:
        self._emit("kr", thread, addr)

    def on_kernel_write(self, thread: int, addr: int) -> None:
        self._emit("kw", thread, addr)

    def on_thread_switch(self, thread: int) -> None:
        self._emit("S", thread, thread)

    def on_cost(self, thread: int, units: int) -> None:
        self._emit("$", thread, units)


def write_trace(events, stream: IO[str]) -> int:
    """Write an :class:`Event` iterable; returns the event count."""
    writer = TraceWriter(stream)
    from .events import replay

    replay(events, writer)
    return writer.events_written


def iter_trace(stream: IO[str]) -> Iterator[Event]:
    """Yield events from a trace file (validating the header)."""
    header = stream.readline().rstrip("\n")
    if header != TRACE_MAGIC:
        raise TraceFileError(f"not a trace file (header {header!r})")
    for line_no, line in enumerate(stream, start=2):
        line = line.rstrip("\n")
        if not line:
            continue
        try:
            code, thread_text, arg_text = line.split("\t", 2)
            kind = _CODE_KINDS[code]
            thread = int(thread_text)
        except (ValueError, KeyError):
            raise TraceFileError(f"line {line_no}: bad event {line!r}") from None
        if kind == EventKind.CALL:
            arg: Union[int, str, None] = unescape_name(arg_text)
        elif kind == EventKind.RETURN:
            arg = None
        else:
            try:
                arg = int(arg_text)
            except ValueError:
                raise TraceFileError(f"line {line_no}: bad argument {arg_text!r}") from None
        yield Event(kind, thread, arg)


def read_trace(stream: IO[str]) -> List[Event]:
    """Load a whole trace file into memory."""
    return list(iter_trace(stream))
