"""Core input-sensitive profiling: metrics, algorithms, profile data.

Public surface of the paper's contribution:

* :class:`RmsProfiler` — sequential read-memory-size profiling
  (PLDI 2012);
* :class:`TrmsProfiler` — threaded read-memory-size profiling with
  external-input tracking (the multithreaded extension);
* :class:`NaiveRms` / :class:`NaiveTrms` — Figure 10 reference oracles;
* the trace event model (:class:`Event`, :class:`Trace`,
  :func:`merge_traces`, :func:`replay`, :class:`EventBus`);
* profile data containers and the Section 6.1 evaluation metrics.
"""

from .context import (
    CONTEXT_SEPARATOR,
    compose_context,
    context_depth,
    contexts_of,
    fold_to_routines,
    leaf_routine,
)
from .costmodel import BasicBlockCost, CostModel, InstructionCost, OperationCost
from .events import Event, EventBus, EventKind, Trace, TraceConsumer, merge_traces, replay
from .metrics import (
    induced_split,
    induced_split_by_routine,
    input_volume,
    input_volume_by_routine,
    profile_richness,
    richness_by_routine,
    tail_curve,
)
from .flatkernel import FlatAnalyzer, analyze_columns_flat, analyze_events_flat
from .naive import NaiveRms, NaiveTrms
from .offline import WriteIndex, analyze_thread, analyze_trace, build_write_index, split_by_thread
from .profile_data import ActivationRecord, ProfileDatabase, RoutineProfile, SizeStats
from .profiler import BaseProfiler
from .renumber import renumber_timestamps
from .rms import RmsProfiler
from .shadow import DictShadow, PackedLatestWrite, ShadowMemory
from .stack import FlatStack, ShadowStack, StackEntry
from .tracefile import TRACE_MAGIC, TraceWriter, iter_trace, read_trace, write_trace
from .trms import KERNEL_WRITER, TrmsProfiler

__all__ = [
    "CONTEXT_SEPARATOR",
    "compose_context",
    "context_depth",
    "contexts_of",
    "fold_to_routines",
    "leaf_routine",
    "BasicBlockCost",
    "CostModel",
    "InstructionCost",
    "OperationCost",
    "Event",
    "EventBus",
    "EventKind",
    "Trace",
    "TraceConsumer",
    "merge_traces",
    "replay",
    "induced_split",
    "induced_split_by_routine",
    "input_volume",
    "input_volume_by_routine",
    "profile_richness",
    "richness_by_routine",
    "tail_curve",
    "FlatAnalyzer",
    "analyze_columns_flat",
    "analyze_events_flat",
    "NaiveRms",
    "WriteIndex",
    "analyze_thread",
    "analyze_trace",
    "build_write_index",
    "split_by_thread",
    "NaiveTrms",
    "ActivationRecord",
    "ProfileDatabase",
    "RoutineProfile",
    "SizeStats",
    "BaseProfiler",
    "renumber_timestamps",
    "RmsProfiler",
    "DictShadow",
    "PackedLatestWrite",
    "ShadowMemory",
    "FlatStack",
    "ShadowStack",
    "TRACE_MAGIC",
    "TraceWriter",
    "iter_trace",
    "read_trace",
    "write_trace",
    "StackEntry",
    "KERNEL_WRITER",
    "TrmsProfiler",
]
