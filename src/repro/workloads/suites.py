"""Benchmark suite registry: SPEC-OMP2012-like and PARSEC-like entries.

Each entry maps a benchmark the paper evaluates to the kernel that
models it (see :mod:`repro.workloads.kernels` and DESIGN.md for the
substitution rationale).  Entries are parameterized by thread count and
a size ``scale`` so the experiments can sweep both.

The registry powers the evaluation harness:

* Table 1 runs every SPEC-OMP-like entry under each tool;
* Figure 14 sweeps thread counts;
* Figures 15–19 profile the PARSEC-like entries (plus the minidb
  workload, registered by :mod:`repro.minidb` on the pytrace substrate).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.events import EventBus, TraceConsumer
from ..core.profile_data import ProfileDatabase
from ..core.rms import RmsProfiler
from ..core.trms import TrmsProfiler
from ..vipslike import vips_pipeline
from ..vm.machine import Machine
from ..vm.programs import Scenario
from . import kernels

__all__ = ["Benchmark", "SPEC_OMP", "PARSEC", "benchmark", "all_benchmarks"]


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


class Benchmark:
    """One registry entry: a named, scalable guest workload."""

    def __init__(
        self,
        name: str,
        suite: str,
        factory: Callable[[int, float], Scenario],
        description: str,
    ):
        self.name = name
        self.suite = suite
        self.factory = factory
        self.description = description

    def scenario(self, threads: int = 4, scale: float = 1.0) -> Scenario:
        return self.factory(threads, scale)

    def run(
        self,
        tools: Optional[TraceConsumer] = None,
        threads: int = 4,
        scale: float = 1.0,
        timeslice: int = 23,
    ) -> Machine:
        """Run once and return the machine (stats included)."""
        return self.scenario(threads, scale).run(tools=tools, timeslice=timeslice)

    def profile(
        self, threads: int = 4, scale: float = 1.0, timeslice: int = 23
    ) -> Tuple[ProfileDatabase, ProfileDatabase, Machine]:
        """Run once under both profilers; return (rms_db, trms_db, machine)."""
        rms = RmsProfiler()
        trms = TrmsProfiler()
        machine = self.run(
            tools=EventBus([rms, trms]), threads=threads, scale=scale,
            timeslice=timeslice,
        )
        return rms.db, trms.db, machine


def _spec(name: str, factory: Callable[[int, float], Scenario], description: str) -> Benchmark:
    return Benchmark(name, "spec-omp2012", factory, description)


def _parsec(name: str, factory: Callable[[int, float], Scenario], description: str) -> Benchmark:
    return Benchmark(name, "parsec", factory, description)


SPEC_OMP: Dict[str, Benchmark] = {
    bench.name: bench
    for bench in [
        _spec(
            "350.md",
            lambda t, s: kernels.pairwise_forces(t, _scaled(28, s), iters=2),
            "molecular dynamics: O(n^2) pairwise forces over shared positions",
        ),
        _spec(
            "351.bwaves",
            lambda t, s: kernels.stencil_sweep(t, _scaled(160, s), iters=3, radius=2,
                                               name="bwaves"),
            "blast waves: wide-radius streaming stencil, memory bound",
        ),
        _spec(
            "352.nab",
            lambda t, s: kernels.reduction_kernel(t, _scaled(240, s), iters=2),
            "molecular modelling: arithmetic-dense strip reductions",
        ),
        _spec(
            "358.botsalgn",
            lambda t, s: kernels.task_loop(t, _scaled(24, s), 12, name="botsalgn"),
            "protein alignment: task bag, one routine call per alignment",
        ),
        _spec(
            "359.botsspar",
            lambda t, s: kernels.gather_scatter(t, _scaled(96, s), _scaled(70, s),
                                                name="botsspar"),
            "sparse LU: irregular indexed gather/scatter",
        ),
        _spec(
            "360.ilbdc",
            lambda t, s: kernels.stencil_sweep(t, _scaled(260, s), iters=2, radius=1,
                                               name="ilbdc"),
            "lattice Boltzmann: narrow stencil over a large lattice",
        ),
        _spec(
            "362.fma3d",
            lambda t, s: kernels.task_loop(t, _scaled(40, s), 6, name="fma3d"),
            "crash simulation: many small per-element routine calls",
        ),
        _spec(
            "367.imagick",
            lambda t, s: kernels.device_filter(t, _scaled(180, s), name="imagick"),
            "image conversion: device-streamed pixels, filter, stream out",
        ),
        _spec(
            "370.mgrid331",
            lambda t, s: kernels.stencil_sweep(t, _scaled(120, s), iters=3, radius=3,
                                               name="mgrid"),
            "multigrid: wide-support smoothing sweeps",
        ),
        _spec(
            "371.applu331",
            lambda t, s: kernels.stencil_sweep(t, _scaled(140, s), iters=4, radius=2,
                                               name="applu"),
            "SSOR solver: repeated wavefront-like sweeps",
        ),
        _spec(
            "372.smithwa",
            lambda t, s: kernels.dp_matrix(t, _scaled(26, s), _scaled(26, s),
                                           name="smithwa"),
            "Smith-Waterman: DP matrix over device-loaded sequences",
        ),
        _spec(
            "376.kdtree",
            lambda t, s: kernels.tree_build(t, _scaled(128, s), _scaled(40, s)),
            "kd-tree: recursive searches over a main-built tree",
        ),
    ]
}


PARSEC: Dict[str, Benchmark] = {
    bench.name: bench
    for bench in [
        _parsec(
            "blackscholes",
            lambda t, s: kernels.monte_carlo(t, _scaled(36, s), 12, externals=True,
                                             name="blackscholes"),
            "option pricing: device-loaded portfolio, independent paths",
        ),
        _parsec(
            "bodytrack",
            lambda t, s: kernels.task_loop(t, _scaled(30, s), 8, iters=2,
                                           name="bodytrack"),
            "particle tracking: per-frame task bags over shared observations",
        ),
        _parsec(
            "canneal",
            lambda t, s: kernels.gather_scatter(t, _scaled(80, s), _scaled(60, s),
                                                locked=True, name="canneal"),
            "simulated annealing: lock-protected random netlist swaps",
        ),
        _parsec(
            "dedup",
            lambda t, s: kernels.thread_pipeline(_scaled(30, s), chunk=4, name="dedup"),
            "dedup: reader/hasher/writer pipeline over device streams",
        ),
        _parsec(
            "facesim",
            lambda t, s: kernels.stencil_sweep(t, _scaled(180, s), iters=2, radius=1,
                                               name="facesim"),
            "face simulation: mesh stencil sweeps",
        ),
        _parsec(
            "fluidanimate",
            lambda t, s: kernels.allgather_sweep(t, _scaled(96, s), iters=16,
                                                 name="fluidanimate"),
            "fluid dynamics: domain-spanning neighbour gathers each step",
        ),
        _parsec(
            "ferret",
            lambda t, s: kernels.thread_pipeline(_scaled(24, s), chunk=6, name="ferret"),
            "similarity search: multi-stage pipeline over query streams",
        ),
        _parsec(
            "freqmine",
            lambda t, s: kernels.tree_build(t, _scaled(160, s), _scaled(48, s)),
            "frequent itemsets: shared prefix-tree queries",
        ),
        _parsec(
            "raytrace",
            lambda t, s: kernels.task_loop(t, _scaled(36, s), 10, name="raytrace"),
            "ray tracing: independent per-tile tasks over a shared scene",
        ),
        _parsec(
            "x264",
            lambda t, s: kernels.stencil_sweep(t, _scaled(160, s), iters=3, radius=2,
                                               name="x264"),
            "video encoding: motion-search sweeps over reference frames",
        ),
        _parsec(
            "streamcluster",
            lambda t, s: kernels.pairwise_forces(t, _scaled(24, s), iters=2),
            "online clustering: distances from every point to shared centres",
        ),
        _parsec(
            "swaptions",
            lambda t, s: kernels.monte_carlo(t, _scaled(30, s), 16, name="swaptions"),
            "Monte Carlo pricing: thread-private simulation, minimal sharing",
        ),
        _parsec(
            "vips",
            lambda t, s: vips_pipeline(
                workers=max(1, t // 2),
                strips_per_worker=_scaled(8, s),
                strip_cells=64,
                window=16,
            ),
            "image pipeline: windowed im_generate + write-behind wbuffer",
        ),
    ]
}


def benchmark(name: str) -> Benchmark:
    """Look up a benchmark in either suite by name."""
    if name in SPEC_OMP:
        return SPEC_OMP[name]
    if name in PARSEC:
        return PARSEC[name]
    raise KeyError(f"unknown benchmark {name!r}")


def all_benchmarks() -> List[Benchmark]:
    """Every registered VM benchmark, SPEC first."""
    return list(SPEC_OMP.values()) + list(PARSEC.values())
