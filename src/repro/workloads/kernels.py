"""Parameterized guest-program kernels behind the benchmark suites.

The paper evaluates on SPEC OMP2012 and PARSEC — native benchmark suites
we cannot run under a Python VM.  Following the substitution rule
(DESIGN.md), each suite entry is modelled by a small data-parallel
kernel with the *communication and I/O character* of the original:
compute-bound pairwise interactions for ``md``, streaming stencils for
``bwaves``/``ilbdc``, device-fed dynamic programming for ``smithwa``,
a content-chunking thread pipeline for ``dedup``, and so on.  What the
experiments measure — relative tool overheads, profile richness, the
split between thread-induced and external input — depends exactly on
those characters, not on the physics inside the loops.

Execution model: like an OpenMP runtime, the kernels use a *persistent
thread pool*.  ``main`` initialises shared data and spawns ``threads``
workers once; each worker runs ``iters`` parallel regions separated by a
reusable two-turnstile semaphore barrier.  Persistence matters for the
input-sensitive metrics: a pooled worker re-reads, in iteration ``i+1``,
cells that other workers rewrote in iteration ``i`` — thread-induced
input that per-region throwaway threads would never exhibit.  Iteration
parity drives ping-pong source/destination arrays, so every kernel is
race-free by construction (helgrind-verified in the tests).

Register contract inside a worker: ``r15`` holds the worker index and
``r9`` the iteration counter — ``work_region`` bodies read but never
write them; the barrier clobbers only ``r1``–``r4``.
"""

from __future__ import annotations

import random


from ..vm.programs import Scenario
from ..vm.syscalls import InputDevice, OutputDevice

__all__ = [
    "pool_asm",
    "pairwise_forces",
    "stencil_sweep",
    "allgather_sweep",
    "reduction_kernel",
    "task_loop",
    "gather_scatter",
    "dp_matrix",
    "monte_carlo",
    "thread_pipeline",
    "tree_build",
    "device_filter",
]

#: shared memory layout used by every kernel
BARRIER_CELL = 0x0F00    # arrival counter of the reusable barrier
TID_BASE = 0x0F10        # spawned thread ids (main-private scratch)
OUT_BASE = 0x0F40        # per-worker result cells
SRC_BASE = 0x10000       # primary shared array
DST_BASE = 0x40000       # secondary shared array (ping-pong partner)
AUX_BASE = 0x70000       # auxiliary data (indices, sequences, ...)


def _barrier_funcs(threads: int) -> str:
    """A reusable counting barrier (two turnstiles, Semaphore-book style)."""
    return f"""
    func barrier:
        lock bl
        const r1, {BARRIER_CELL}
        load r2, r1, 0
        addi r2, r2, 1
        store r1, 0, r2
        const r3, {threads}
        blt r2, r3, bwait1
        const r4, 0
    brel1:
        bge r4, r3, bwait1
        semup ts1
        addi r4, r4, 1
        jmp brel1
    bwait1:
        unlock bl
        semdown ts1
        lock bl
        const r1, {BARRIER_CELL}
        load r2, r1, 0
        addi r2, r2, -1
        store r1, 0, r2
        const r3, 0
        bgt r2, r3, bwait2
        const r4, 0
        const r3, {threads}
    brel2:
        bge r4, r3, bwait2
        semup ts2
        addi r4, r4, 1
        jmp brel2
    bwait2:
        unlock bl
        semdown ts2
        ret
    """


def pool_asm(threads: int, iters: int, work_funcs: str, fill_func: str) -> str:
    """The persistent-pool skeleton around one ``work_region`` function."""
    needs_barrier = threads > 1 and iters > 1
    barrier_call = "        call barrier\n" if needs_barrier else ""
    barrier_funcs = _barrier_funcs(threads) if needs_barrier else ""
    return f"""
    func main:
        call fill
        const r2, 0
        const r3, {threads}
    sloop:
        bge r2, r3, sdone
        spawn r4, worker, r2
        const r5, {TID_BASE}
        add r5, r5, r2
        store r5, 0, r4
        addi r2, r2, 1
        jmp sloop
    sdone:
        const r2, 0
    jloop:
        bge r2, r3, jdone
        const r5, {TID_BASE}
        add r5, r5, r2
        load r4, r5, 0
        join r4
        addi r2, r2, 1
        jmp jloop
    jdone:
        ret
    func worker:                 ; persistent pool member
        mov r15, r0              ; my index (read-only below)
        const r9, 0              ; iteration counter (read-only below)
    wloop:
        const r1, {iters}
        bge r9, r1, wexit
        call work_region
{barrier_call}        addi r9, r9, 1
        jmp wloop
    wexit:
        ret
    {fill_func}
    {work_funcs}
    {barrier_funcs}
    """


_LCG_FILL = f"""
    func fill:                   ; main writes SRC with an LCG stream
        const r1, {SRC_BASE}
        const r2, %(cells)d
        const r3, 0
        const r4, %(seed)d
    floop:
        bge r3, r2, fdone
        muli r4, r4, 75
        addi r4, r4, 74
        const r5, 65537
        mod r4, r4, r5
        add r6, r1, r3
        store r6, 0, r4
        addi r3, r3, 1
        jmp floop
    fdone:
        ret
"""


def _lcg_fill(cells: int, seed: int = 12345) -> str:
    return _LCG_FILL % {"cells": cells, "seed": seed}


_PINGPONG_SELECT = f"""
        const r1, 2
        mod r2, r9, r1
        const r13, 0
        const r4, {SRC_BASE}
        const r5, {DST_BASE}
        beq r2, r13, even
        mov r6, r5               ; odd iterations: src = DST
        mov r7, r4
        jmp go
    even:
        mov r6, r4               ; even iterations: src = SRC
        mov r7, r5
    go:
"""


def pairwise_forces(threads: int, particles: int, iters: int = 2) -> Scenario:
    """``md``-like: O(n^2) pairwise interactions over shared positions.

    Each iteration every worker gathers *all* positions (the other
    strips were updated by other workers in the previous iteration —
    thread-induced input) and scatters updated positions for its own
    strip into the ping-pong partner array.
    """
    chunk = max(1, particles // threads)
    work = f"""
    func work_region:
{_PINGPONG_SELECT}
        muli r10, r15, {chunk}   ; my strip [r10, r11)
        addi r11, r10, {chunk}
        const r0, {particles}
        ble r11, r0, bounded
        mov r11, r0
    bounded:
        mov r0, r10              ; my particle cursor
    oloop:
        bge r0, r11, odone
        const r8, 0              ; force accumulator
        const r12, 0             ; other particle
    gloop:
        const r14, {particles}
        bge r12, r14, gdone
        add r4, r6, r12
        load r5, r4, 0           ; position (thread-induced for others')
        sub r14, r5, r0
        mul r14, r14, r14
        add r8, r8, r14
        addi r12, r12, 1
        jmp gloop
    gdone:
        add r4, r6, r0           ; integrate: new position into dst
        load r5, r4, 0
        add r5, r5, r8
        const r14, 65537
        mod r5, r5, r14
        add r4, r7, r0
        store r4, 0, r5
        addi r0, r0, 1
        jmp oloop
    odone:
        const r4, {OUT_BASE}
        add r4, r4, r15
        store r4, 0, r8
        ret
    """
    asm = pool_asm(threads, iters, work, _lcg_fill(particles))
    return Scenario(f"pairwise[{threads}x{particles}]", asm)


def stencil_sweep(
    threads: int, cells: int, iters: int = 3, radius: int = 1, name: str = "stencil"
) -> Scenario:
    """``bwaves``/``ilbdc``/``facesim``-like ping-pong stencil: workers
    stream over their strip reading ``2*radius + 1`` source neighbours
    and writing their own destination strip.  Memory-bound; sharing at
    strip borders only."""
    chunk = max(2 * radius + 1, cells // threads)
    work = f"""
    func work_region:
{_PINGPONG_SELECT}
        muli r1, r15, {chunk}    ; strip [r1, r2)
        addi r2, r1, {chunk}
        const r3, {cells}
        ble r2, r3, bounded
        mov r2, r3
    bounded:
    cloop:
        bge r1, r2, cdone
        const r8, 0
        const r10, {-radius}
        const r11, {radius + 1}
    nloop:
        bge r10, r11, ndone
        add r12, r1, r10
        blt r12, r13, skip       ; clamp at the edges
        bge r12, r3, skip
        add r14, r6, r12
        load r14, r14, 0
        add r8, r8, r14
    skip:
        addi r10, r10, 1
        jmp nloop
    ndone:
        const r10, {2 * radius + 1}
        div r8, r8, r10
        add r12, r7, r1
        store r12, 0, r8
        addi r1, r1, 1
        jmp cloop
    cdone:
        ret
    """
    asm = pool_asm(threads, iters, work, _lcg_fill(cells))
    return Scenario(f"{name}[{threads}x{cells}]", asm)


def allgather_sweep(threads: int, cells: int, iters: int = 4, samples: int = 16,
                    name: str = "allgather") -> Scenario:
    """``fluidanimate``-like: for every cell of its strip a worker
    gathers a strided sample spanning the *whole* array (neighbour lists
    cross the domain), then writes its own strip — so after the first
    iteration nearly all of a worker's input was produced by other
    threads."""
    chunk = max(1, cells // threads)
    stride = max(1, cells // samples)
    work = f"""
    func work_region:
{_PINGPONG_SELECT}
        muli r1, r15, {chunk}
        addi r2, r1, {chunk}
        const r3, {cells}
        ble r2, r3, bounded
        mov r2, r3
    bounded:
    cloop:
        bge r1, r2, cdone
        const r8, 0
        const r10, 0             ; sample cursor
    sloop:
        bge r10, r3, sdone
        add r12, r1, r10
        mod r12, r12, r3         ; rotate samples with the cell index
        add r14, r6, r12
        load r14, r14, 0         ; spans every strip: thread-induced
        add r8, r8, r14
        addi r10, r10, {stride}
        jmp sloop
    sdone:
        const r10, {samples}
        div r8, r8, r10
        add r12, r7, r1
        store r12, 0, r8
        addi r1, r1, 1
        jmp cloop
    cdone:
        ret
    """
    asm = pool_asm(threads, iters, work, _lcg_fill(cells))
    return Scenario(f"{name}[{threads}x{cells}]", asm)


def reduction_kernel(threads: int, cells: int, iters: int = 2) -> Scenario:
    """``nab``-like: per-strip reduction with a division-heavy inner
    loop.  Low sharing: each worker reads only its strip of main-written
    data — the quiet end of the communication spectrum."""
    chunk = max(1, cells // threads)
    work = f"""
    func work_region:
        muli r1, r15, {chunk}
        addi r2, r1, {chunk}
        const r3, {cells}
        ble r2, r3, bounded
        mov r2, r3
    bounded:
        const r8, 1
    loop:
        bge r1, r2, done
        const r4, {SRC_BASE}
        add r4, r4, r1
        load r5, r4, 0
        addi r5, r5, 3
        const r6, 7
        div r7, r5, r6
        mod r5, r5, r6
        add r8, r8, r7
        add r8, r8, r5
        addi r1, r1, 1
        jmp loop
    done:
        const r4, {OUT_BASE}
        add r4, r4, r15
        store r4, 0, r8
        ret
    """
    asm = pool_asm(threads, iters, work, _lcg_fill(cells))
    return Scenario(f"reduction[{threads}x{cells}]", asm)


def task_loop(threads: int, tasks: int, task_size: int, iters: int = 1,
              name: str = "taskloop") -> Scenario:
    """``botsalgn``/``fma3d``-like: a bag of small tasks strided across
    the pool, each handled by a dedicated routine call — deep, call-rich
    profiles where every task activation gets its own input size."""
    work = f"""
    func work_region:
        mov r11, r15             ; tasks strided across workers
    tloop:
        const r12, {tasks}
        bge r11, r12, tdone
        mov r1, r11
        call do_task
        addi r11, r11, {threads}
        jmp tloop
    tdone:
        ret
    func do_task:                ; r1 = task number
        muli r2, r1, {task_size}
        const r3, {SRC_BASE}
        add r2, r2, r3           ; task data base
        const r4, 0
        const r5, 0
    dloop:
        const r6, {task_size}
        bge r4, r6, ddone
        add r7, r2, r4
        load r8, r7, 0
        mul r8, r8, r8
        add r5, r5, r8
        addi r4, r4, 1
        jmp dloop
    ddone:
        const r7, {OUT_BASE}
        add r7, r7, r1
        store r7, 0, r5
        ret
    """
    asm = pool_asm(threads, iters, work, _lcg_fill(tasks * task_size))
    return Scenario(f"{name}[{threads}x{tasks}]", asm)


def gather_scatter(threads: int, cells: int, accesses: int, iters: int = 2,
                   locked: bool = False, name: str = "gather") -> Scenario:
    """``botsspar``/``canneal``/``streamcluster``-like: irregular indexed
    access through an index array.  With ``locked=True`` updates hit one
    shared structure under a mutex (canneal-style swaps, genuinely
    cross-thread); without it, indices are partitioned by worker
    (owner-computes, like a sparse solver's task decomposition)."""
    lock_prefix = "        lock m\n" if locked else ""
    lock_suffix = "        unlock m\n" if locked else ""
    stride = max(1, cells // max(threads, 1))
    fill_stride = cells if locked else stride
    if locked:
        pick_index = f"""
        const r4, {cells}
        mod r5, r11, r4           ; irregular index, any cell"""
    else:
        pick_index = f"""
        const r4, {stride}
        mod r5, r11, r4
        muli r6, r15, {stride}
        add r5, r5, r6            ; irregular index inside my partition"""
    work = f"""
    func work_region:
        const r14, 0
        const r10, {accesses}
        muli r11, r15, 97         ; per-worker LCG seed
        add r11, r11, r9          ; varied across iterations
        addi r11, r11, 13
    aloop:
        bge r14, r10, adone
        muli r11, r11, 75
        addi r11, r11, 74
        const r4, 65537
        mod r11, r11, r4
{pick_index}
        const r6, {AUX_BASE}
        add r6, r6, r5
        load r7, r6, 0            ; indirection table
        const r6, {SRC_BASE}
        add r6, r6, r7
{lock_prefix}        load r8, r6, 0
        addi r8, r8, 1
        store r6, 0, r8
{lock_suffix}        addi r14, r14, 1
        jmp aloop
    adone:
        ret
    """
    fill = f"""
    func fill:
        const r1, {SRC_BASE}
        const r2, {cells}
        const r3, 0
    floop:
        bge r3, r2, fmid
        add r6, r1, r3
        store r6, 0, r3
        addi r3, r3, 1
        jmp floop
    fmid:
        const r1, {AUX_BASE}
        const r3, 0
        const r4, 41
    gloop:
        bge r3, r2, fdone
        muli r4, r4, 31
        addi r4, r4, 17
        const r7, {fill_stride}
        mod r5, r4, r7            ; offset within the partition
        div r8, r3, r7
        muli r8, r8, {fill_stride}
        add r5, r5, r8            ; indirection stays partition-local
        add r6, r1, r3
        store r6, 0, r5
        addi r3, r3, 1
        jmp gloop
    fdone:
        ret
    """
    asm = pool_asm(threads, iters, work, fill)
    return Scenario(f"{name}[{threads}x{cells}]", asm)


def dp_matrix(threads: int, rows: int, cols: int, name: str = "dp",
              seed: int = 5) -> Scenario:
    """``smithwa``-like: dynamic programming over two sequences.  Main
    streams the sequences in through kernel reads and *parses* them into
    shared arrays (as the benchmark's master does before the parallel
    region), so main sees a little external input and the workers see
    thread-induced input; each worker fills a band of the DP matrix."""
    rng = random.Random(seed)
    seq_a = [rng.randrange(1, 5) for _ in range(rows)]
    seq_b = [rng.randrange(1, 5) for _ in range(cols)]
    band = max(1, rows // threads)
    matrix_stride = _pow2_at_least(cols)
    staging = AUX_BASE + 4096
    work = f"""
    func work_region:            ; band of rows [r12, r14)
        muli r12, r15, {band}
        addi r14, r12, {band}
        const r3, {rows}
        ble r14, r3, bounded
        mov r14, r3
    bounded:
    rloop:
        bge r12, r14, rdone
        const r1, {AUX_BASE}
        add r1, r1, r12
        load r2, r1, 0           ; seq_a[row] (thread-induced: main wrote)
        const r4, 0              ; col
    cloop:
        const r5, {cols}
        bge r4, r5, cdone
        const r1, {AUX_BASE + 2048}
        add r1, r1, r4
        load r5, r1, 0           ; seq_b[col]
        sub r6, r2, r5
        mul r6, r6, r6
        mul r7, r12, r4
        add r6, r6, r7
        const r1, {SRC_BASE}
        muli r7, r12, {matrix_stride}
        add r1, r1, r7
        add r1, r1, r4
        store r1, 0, r6          ; matrix cell
        addi r4, r4, 1
        jmp cloop
    cdone:
        addi r12, r12, 1
        jmp rloop
    rdone:
        ret
    """
    fill = f"""
    func fill:
        const r1, {staging}
        const r2, {rows}
        sysread r3, r1, r2, seq_a
        const r4, {AUX_BASE}
        const r5, 0
    caloop:
        bge r5, r2, cadone
        add r6, r1, r5
        load r7, r6, 0           ; external input to main
        add r6, r4, r5
        store r6, 0, r7          ; main-written copy for the workers
        addi r5, r5, 1
        jmp caloop
    cadone:
        const r1, {staging + 2048}
        const r2, {cols}
        sysread r3, r1, r2, seq_b
        const r4, {AUX_BASE + 2048}
        const r5, 0
    cbloop:
        bge r5, r2, cbdone
        add r6, r1, r5
        load r7, r6, 0
        add r6, r4, r5
        store r6, 0, r7
        addi r5, r5, 1
        jmp cbloop
    cbdone:
        ret
    """
    asm = pool_asm(threads, 1, work, fill)
    return Scenario(
        f"{name}[{threads}x{rows}x{cols}]",
        asm,
        device_factory=lambda: {
            "seq_a": InputDevice(seq_a),
            "seq_b": InputDevice(seq_b),
        },
    )


def _pow2_at_least(value: int) -> int:
    result = 1
    while result < value:
        result *= 2
    return result


def monte_carlo(threads: int, paths: int, steps: int, name: str = "montecarlo",
                externals: bool = False, seed: int = 9) -> Scenario:
    """``swaptions``/``blackscholes``-like: independent simulations with
    per-thread random streams.  With ``externals=True`` the per-path
    parameters stream in from a device (blackscholes reads its option
    portfolio from a file)."""
    per_worker = max(1, paths // threads)
    if externals:
        fill = f"""
    func fill:
        const r1, {AUX_BASE}
        const r2, {paths}
        sysread r3, r1, r2, options
        ret
        """
        param_load = f"""
        const r4, {AUX_BASE}
        add r4, r4, r12
        load r5, r4, 0           ; path parameter (external input)
        """
        rng = random.Random(seed)
        option_values = [rng.randrange(1, 100) for _ in range(paths)]

        def device_factory():
            return {"options": InputDevice(option_values)}
    else:
        fill = """
    func fill:
        ret
        """
        param_load = """
        const r5, 17             ; fixed parameter
        """
        device_factory = None
    work = f"""
    func work_region:
        muli r12, r15, {per_worker}
        addi r14, r12, {per_worker}
        muli r11, r15, 53
        addi r11, r11, 7         ; per-thread LCG state
    ploop:
        bge r12, r14, pdone
{param_load}
        const r7, 0
        mov r8, r5
    sloop:
        const r10, {steps}
        bge r7, r10, sdone
        muli r11, r11, 75
        addi r11, r11, 74
        const r4, 65537
        mod r11, r11, r4
        const r4, 128
        mod r6, r11, r4
        add r8, r8, r6
        addi r8, r8, -64
        addi r7, r7, 1
        jmp sloop
    sdone:
        const r4, {OUT_BASE}
        add r4, r4, r15
        load r6, r4, 0
        add r6, r6, r8
        store r4, 0, r6          ; accumulate into my result cell
        addi r12, r12, 1
        jmp ploop
    pdone:
        ret
    """
    asm = pool_asm(threads, 1, work, fill)
    return Scenario(f"{name}[{threads}x{paths}]", asm, device_factory=device_factory)


#: chunk-length cycle modelling dedup's content-defined chunking
_PIPELINE_LENGTHS = [3, 7, 2, 9, 5, 12, 4, 8, 6, 11]


def thread_pipeline(stages_items: int, chunk: int = 4, name: str = "pipeline") -> Scenario:
    """``dedup``-like three-stage pipeline: reader → hasher → writer,
    coupled by one-slot buffers and semaphores.

    Like the real dedup, chunk boundaries are content-defined, so chunks
    have *variable* length: the reader streams each chunk in through a
    one-cell rolling window (its rms is constant while its trms equals
    the true chunk length — the extreme richness point of Figure 15),
    and publishes the length in the buffer header for the downstream
    stages.  ``chunk`` scales the length cycle.
    """
    items = stages_items
    buf_a = SRC_BASE            # reader -> hasher: [length, data...]
    buf_b = SRC_BASE + 64       # hasher -> writer: [length, hashes...]
    len_buf = SRC_BASE + 128    # boundary staging + rolling window
    lengths = [max(1, length * chunk // 4) for length in _PIPELINE_LENGTHS]
    asm = f"""
    func main:
        semup a_empty
        semup b_empty
        const r1, {items}
        spawn r10, reader, r1
        spawn r11, hasher, r1
        spawn r12, writer, r1
        join r10
        join r11
        join r12
        ret
    func reader:                 ; r0 = items
        mov r9, r0
        const r13, 0
    rloop:
        ble r9, r13, rdone
        semdown a_empty
        call read_chunk
        semup a_full
        addi r9, r9, -1
        jmp rloop
    rdone:
        ret
    func read_chunk:             ; content-defined chunking: the rolling
        const r1, {len_buf}      ; window is ONE reused cell, so this
        const r2, 1              ; routine's rms is constant while its
        sysread r3, r1, r2, boundaries
        load r4, r1, 0           ; trms equals the true chunk length
        const r5, 0              ; i
    chloop:
        bge r5, r4, chdone
        const r1, {len_buf + 1}  ; rolling one-cell window
        const r2, 1
        sysread r3, r1, r2, input
        load r7, r1, 0           ; external induced, every refill
        const r8, {buf_a + 1}
        add r8, r8, r5
        store r8, 0, r7          ; append to the chunk buffer
        addi r5, r5, 1
        jmp chloop
    chdone:
        const r1, {buf_a}
        store r1, 0, r4          ; publish the length in the header
        ret
    func hasher:                 ; r0 = items
        mov r9, r0
        const r13, 0
    hloop:
        ble r9, r13, hdone
        semdown a_full
        semdown b_empty
        call hash_chunk
        semup a_empty
        semup b_full
        addi r9, r9, -1
        jmp hloop
    hdone:
        ret
    func hash_chunk:
        const r1, {buf_a}
        load r10, r1, 0          ; chunk length (thread-induced)
        const r2, {buf_b}
        store r2, 0, r10
        const r3, 0
        const r4, 0
    xloop:
        bge r3, r10, xdone
        add r6, r1, r3
        load r7, r6, 1           ; data word (thread-induced: reader wrote)
        muli r4, r4, 31
        add r4, r4, r7
        const r8, 65537
        mod r4, r4, r8
        add r6, r2, r3
        store r6, 1, r4          ; hashed word for the writer
        addi r3, r3, 1
        jmp xloop
    xdone:
        ret
    func writer:                 ; r0 = items
        mov r9, r0
        const r13, 0
        semdown b_full
    wstart:
        call write_chunk
        semup b_empty
        addi r9, r9, -1
        ble r9, r13, wdone
        semdown b_full
        jmp wstart
    wdone:
        ret
    func write_chunk:
        const r1, {buf_b}
        load r2, r1, 0           ; length (thread-induced)
        addi r2, r2, 1
        syswrite r1, r2, output  ; header + hashes out
        ret
    """
    boundary_values = [lengths[index % len(lengths)] for index in range(items)]
    total_data = sum(boundary_values)
    data_values = list(range(1, total_data + 1))
    return Scenario(
        f"{name}[{items}x{chunk}]",
        asm,
        device_factory=lambda: {
            "boundaries": InputDevice(list(boundary_values)),
            "input": InputDevice(list(data_values)),
            "output": OutputDevice(),
        },
    )


def tree_build(threads: int, keys: int, queries: int, seed: int = 21) -> Scenario:
    """``kdtree``-like: main builds an implicit binary search tree (a
    sorted array, written in-guest so worker queries are thread-induced
    input), workers run recursive binary-search queries — logarithmic
    input sizes and a recursive call structure."""
    per_worker = max(1, queries // threads)
    work = f"""
    func work_region:
        muli r11, r15, 61
        addi r11, r11, 29
        const r14, 0
    qloop:
        const r10, {per_worker}
        bge r14, r10, qdone
        muli r11, r11, 75
        addi r11, r11, 74
        const r4, 65537
        mod r11, r11, r4
        const r4, {keys * 10}
        mod r1, r11, r4          ; query key
        const r2, 0              ; lo
        const r3, {keys}         ; hi
        call search
        addi r14, r14, 1
        jmp qloop
    qdone:
        ret
    func search:                 ; r1 = key, r2 = lo, r3 = hi (recursive)
        bge r2, r3, miss
        add r4, r2, r3
        const r5, 2
        div r4, r4, r5           ; mid
        const r5, {SRC_BASE}
        add r5, r5, r4
        load r6, r5, 0
        beq r6, r1, hit
        blt r6, r1, right
        mov r3, r4               ; hi = mid
        call search
        ret
    right:
        addi r2, r4, 1           ; lo = mid + 1
        call search
        ret
    hit:
        ret
    miss:
        ret
    """
    fill = f"""
    func fill:                   ; main writes the sorted key array
        const r1, {SRC_BASE}
        const r2, {keys}
        const r3, 0
    floop:
        bge r3, r2, fdone
        muli r4, r3, 7
        addi r4, r4, 3           ; keys 3, 10, 17, ... (sorted)
        add r5, r1, r3
        store r5, 0, r4
        addi r3, r3, 1
        jmp floop
    fdone:
        ret
    """
    asm = pool_asm(threads, 1, work, fill)
    return Scenario(f"kdtree[{threads}x{keys}]", asm)


def device_filter(threads: int, pixels: int, iters: int = 1,
                  name: str = "imagefilter", seed: int = 2) -> Scenario:
    """``imagick``-like: image streamed in from a device, workers apply a
    3-point filter to their strip, result streams out — external input
    heavy, with a parallel compute phase in between."""
    rng = random.Random(seed)
    image = [rng.randrange(0, 256) for _ in range(pixels)]
    chunk = max(1, pixels // threads)
    work = f"""
    func work_region:
        muli r1, r15, {chunk}
        addi r2, r1, {chunk}
        const r3, {pixels}
        ble r2, r3, bounded
        mov r2, r3
    bounded:
        const r13, 0
    floop:
        bge r1, r2, fdone
        const r4, {SRC_BASE}
        add r4, r4, r1
        load r5, r4, 0           ; pixel (external: kernel-filled)
        addi r6, r1, -1
        blt r6, r13, noleft
        const r4, {SRC_BASE}
        add r4, r4, r6
        load r7, r4, 0
        add r5, r5, r7
    noleft:
        addi r6, r1, 1
        bge r6, r3, noright
        const r4, {SRC_BASE}
        add r4, r4, r6
        load r7, r4, 0
        add r5, r5, r7
    noright:
        const r4, 3
        div r5, r5, r4
        const r4, {DST_BASE}
        add r4, r4, r1
        store r4, 0, r5
        addi r1, r1, 1
        jmp floop
    fdone:
        ret
    """
    fill = f"""
    func fill:                   ; stream the image in
        const r1, {SRC_BASE}
        const r2, {pixels}
        sysread r3, r1, r2, image_in
        ret
    """
    skeleton = pool_asm(threads, iters, work, fill)
    flush = f"""
    func flush_output:
        const r1, {DST_BASE}
        const r2, {pixels}
        syswrite r1, r2, image_out
        ret
    """
    skeleton = skeleton.replace(
        "    jdone:\n        ret", "    jdone:\n        call flush_output\n        ret", 1
    )
    return Scenario(
        f"{name}[{threads}x{pixels}]",
        skeleton + flush,
        device_factory=lambda: {
            "image_in": InputDevice(image),
            "image_out": OutputDevice(),
        },
    )
