"""Synthetic benchmark suites modelling SPEC OMP2012 and PARSEC."""

from . import kernels
from .suites import PARSEC, SPEC_OMP, Benchmark, all_benchmarks, benchmark

__all__ = ["kernels", "PARSEC", "SPEC_OMP", "Benchmark", "all_benchmarks", "benchmark"]
