"""Assembler: text assembly → executable :class:`Program`.

Grammar (line oriented; ``;`` and ``#`` start comments)::

    func NAME:
        const r1, 100
    loop:
        beq   r1, r0, done
        call  work
        addi  r1, r1, -1
        jmp   loop
    done:
        ret

A program is a set of ``func`` blocks; execution starts at ``main``.
Labels are local to their function.  The assembler resolves labels to
instruction indices, validates operand kinds against the ISA signatures,
and computes *basic-block leaders* (function entry, every label target,
and every instruction following a block terminator) — the machine
charges one cost unit each time control enters a leader, which is the
paper's basic-block performance metric.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from .isa import BLOCK_TERMINATORS, IMM, LABEL, NAME, NUM_REGISTERS, REG, SIGNATURES, Ins

__all__ = ["AsmError", "Function", "Program", "assemble"]

_REGISTER_RE = re.compile(r"^r(\d+)$")
_INT_RE = re.compile(r"^-?\d+$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


class AsmError(ValueError):
    """Raised on any syntactic or semantic assembly error."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


class Function:
    """One assembled function: instructions, labels and block leaders."""

    def __init__(self, name: str, instructions: List[Ins], labels: Dict[str, int]):
        self.name = name
        self.instructions = instructions
        self.labels = labels
        self.leaders = self._compute_leaders()

    def _compute_leaders(self) -> Set[int]:
        leaders: Set[int] = {0} if self.instructions else set()
        for index, ins in enumerate(self.instructions):
            if ins.op in BLOCK_TERMINATORS and index + 1 < len(self.instructions):
                leaders.add(index + 1)
            for operand, kind in zip((ins.a, ins.b, ins.c, ins.d), SIGNATURES[ins.op]):
                if kind == LABEL:
                    leaders.add(operand)
        return leaders

    def __len__(self) -> int:
        return len(self.instructions)


class Program:
    """A set of functions with ``main`` as the entry point."""

    def __init__(self, functions: Dict[str, Function], entry: str = "main"):
        if entry not in functions:
            raise AsmError(f"program has no entry function {entry!r}")
        self.functions = functions
        self.entry = entry

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise AsmError(f"undefined function {name!r}") from None


def _parse_operand(token: str, kind: str, labels_pending: bool, line_no: int):
    token = token.strip()
    if kind == REG:
        match = _REGISTER_RE.match(token)
        if not match:
            raise AsmError(f"expected register, got {token!r}", line_no)
        index = int(match.group(1))
        if index >= NUM_REGISTERS:
            raise AsmError(f"register r{index} out of range", line_no)
        return index
    if kind == IMM:
        if not _INT_RE.match(token):
            raise AsmError(f"expected integer immediate, got {token!r}", line_no)
        return int(token)
    if kind in (NAME, LABEL):
        if not _IDENT_RE.match(token):
            raise AsmError(f"expected identifier, got {token!r}", line_no)
        return token
    raise AsmError(f"unknown operand kind {kind!r}", line_no)


def assemble(text: str, entry: str = "main") -> Program:
    """Assemble ``text`` into a :class:`Program`.

    Raises :class:`AsmError` with a line number on malformed input,
    unknown opcodes, bad operand counts or kinds, duplicate labels or
    functions, undefined labels, and calls to undefined functions.
    """
    functions: Dict[str, Function] = {}
    current_name: Optional[str] = None
    instructions: List[Tuple[int, Ins]] = []
    labels: Dict[str, int] = {}
    called: List[Tuple[str, int]] = []

    def finish_function(line_no: int) -> None:
        nonlocal current_name, instructions, labels
        if current_name is None:
            return
        resolved: List[Ins] = []
        for ins_line, ins in instructions:
            operands = list((ins.a, ins.b, ins.c, ins.d))
            for position, kind in enumerate(SIGNATURES[ins.op]):
                if kind == LABEL:
                    label = operands[position]
                    if label not in labels:
                        raise AsmError(
                            f"undefined label {label!r} in function {current_name!r}",
                            ins_line,
                        )
                    operands[position] = labels[label]
            resolved.append(Ins(ins.op, *operands))
        functions[current_name] = Function(current_name, resolved, dict(labels))
        current_name = None
        instructions = []
        labels = {}

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        if line.startswith("func "):
            finish_function(line_no)
            header = line[len("func "):].strip()
            if not header.endswith(":"):
                raise AsmError("func header must end with ':'", line_no)
            name = header[:-1].strip()
            if not _IDENT_RE.match(name):
                raise AsmError(f"bad function name {name!r}", line_no)
            if name in functions:
                raise AsmError(f"duplicate function {name!r}", line_no)
            current_name = name
            continue
        if current_name is None:
            raise AsmError("instruction outside any function", line_no)
        if line.endswith(":") and " " not in line:
            label = line[:-1]
            if not _IDENT_RE.match(label):
                raise AsmError(f"bad label name {label!r}", line_no)
            if label in labels:
                raise AsmError(f"duplicate label {label!r}", line_no)
            labels[label] = len(instructions)
            continue
        parts = line.split(None, 1)
        op = parts[0].lower()
        if op not in SIGNATURES:
            raise AsmError(f"unknown opcode {op!r}", line_no)
        signature = SIGNATURES[op]
        tokens = [t for t in (parts[1].split(",") if len(parts) > 1 else []) if t.strip()]
        if len(tokens) != len(signature):
            raise AsmError(
                f"{op} expects {len(signature)} operand(s), got {len(tokens)}", line_no
            )
        operands = [
            _parse_operand(token, kind, True, line_no)
            for token, kind in zip(tokens, signature)
        ]
        if op == "call":
            called.append((operands[0], line_no))
        if op == "spawn":
            called.append((operands[1], line_no))
        operands += [None] * (4 - len(operands))
        instructions.append((line_no, Ins(op, *operands)))

    finish_function(-1)

    for name, line_no in called:
        if name not in functions:
            raise AsmError(f"call to undefined function {name!r}", line_no)

    return Program(functions, entry=entry)
