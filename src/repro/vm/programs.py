"""Library of guest programs: the paper's examples plus algorithm kernels.

Each builder returns a :class:`Scenario` bundling assembly text, device
contents and preloaded memory.  Scenarios cover:

* the paper's synthetic examples — Figure 1a/1b (thread-induced input),
  Figure 2 (producer–consumer), Figure 3 (buffered external reads);
* algorithm kernels with known asymptotics (insertion sort, binary
  search, linear scans, matrix multiply) for the growth-rate
  experiments of the PLDI 2012 evaluation;
* synchronization scenarios (races, locked counters) exercised by the
  helgrind comparator tests.

Memory preloaded through ``pokes`` is genuine *input*: the guest never
wrote it, so its first reads count toward rms/trms — exactly like a
process reading its pre-initialised data segment.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.events import TraceConsumer, iter_consumers
from .assembler import Program, assemble
from .machine import Machine
from .syscalls import InputDevice

__all__ = [
    "Scenario",
    "figure_1a",
    "figure_1b",
    "producer_consumer",
    "buffered_read",
    "insertion_sort",
    "merge_sort",
    "binary_search",
    "sum_array",
    "matmul",
    "hash_table",
    "parallel_sum",
    "racy_increment",
    "locked_increment",
]

#: base address where scenario arrays are preloaded
DATA_BASE = 0x1000


class Scenario:
    """A runnable guest program with its environment."""

    def __init__(
        self,
        name: str,
        asm: str,
        pokes: Sequence[Tuple[int, Sequence[int]]] = (),
        device_factory: Optional[Callable[[], Dict[str, object]]] = None,
        check: Optional[Callable[[Machine], None]] = None,
    ):
        self.name = name
        self.asm = asm
        self.program: Program = assemble(asm)
        self.pokes = list(pokes)
        self.device_factory = device_factory
        self.check = check

    def machine(self, tools: Optional[TraceConsumer] = None, **kwargs) -> Machine:
        """A fresh machine for this scenario (reusable across runs)."""
        devices = self.device_factory() if self.device_factory else {}
        machine = Machine(self.program, tools=tools, devices=devices, **kwargs)
        for base, values in self.pokes:
            machine.poke(base, values)
            # preloaded data is initialised by definition: tell any
            # memory-state tool so it does not flag the first reads
            for consumer in iter_consumers(tools):
                mark = getattr(consumer, "mark_defined", None)
                if mark is not None:
                    mark(base, len(values))
        return machine

    def run(self, tools: Optional[TraceConsumer] = None, **kwargs) -> Machine:
        """Run on a fresh machine, verify ``check`` if any, return it."""
        machine = self.machine(tools=tools, **kwargs)
        machine.run()
        if self.check is not None:
            self.check(machine)
        return machine


def figure_1a() -> Scenario:
    """Figure 1a: f reads x, g (other thread) overwrites x, f reads again.

    Expected: rms_f = 1, trms_f = 2 (one induced first-access).
    """
    asm = """
    func main:
        spawn r10, g_thread, r0
        call f
        join r10
        ret
    func f:
        const r1, 100
        load r2, r1, 0       ; read(x): first access
        semup s1
        semdown s2
        load r3, r1, 0       ; read(x): induced first-access
        ret
    func g_thread:
        call g
        ret
    func g:
        semdown s1
        const r1, 100
        const r2, 7
        store r1, 0, r2      ; write(x) from the other thread
        semup s2
        ret
    """
    return Scenario("figure_1a", asm, pokes=[(100, [42])])


def figure_1b() -> Scenario:
    """Figure 1b: the second read happens in a child routine h.

    Expected: trms_h = 1 (induced), trms_f = 2 — f's third read is NOT
    induced because f already accessed x through its descendant h.
    """
    asm = """
    func main:
        spawn r10, g_thread, r0
        call f
        join r10
        ret
    func f:
        const r1, 100
        load r2, r1, 0       ; first access
        semup s1
        semdown s2
        call h
        load r3, r1, 0       ; not induced: f saw x via h already
        ret
    func h:
        const r1, 100
        load r2, r1, 0       ; induced first-access
        ret
    func g_thread:
        semdown s1
        const r1, 100
        const r2, 7
        store r1, 0, r2
        semup s2
        ret
    """
    return Scenario("figure_1b", asm, pokes=[(100, [42])])


def producer_consumer(items: int = 32) -> Scenario:
    """Figure 2: the classical semaphore producer–consumer over one cell.

    Expected: rms_consumer = 1 while trms_consumer = ``items``.
    """
    asm = f"""
    func main:
        semup empty              ; one-slot buffer starts empty
        const r1, {items}
        spawn r10, producer, r1
        spawn r11, consumer, r1
        join r10
        join r11
        ret
    func producer:               ; r0 = items to produce
        mov r9, r0
        const r13, 0
    ploop:
        ble r9, r13, pdone
        semdown empty
        call produceData
        semup full
        addi r9, r9, -1
        jmp ploop
    pdone:
        ret
    func produceData:
        const r1, 500
        addi r8, r8, 1           ; next value (thread-local counter)
        store r1, 0, r8          ; write(x)
        ret
    func consumer:               ; r0 = items to consume
        mov r9, r0
        const r13, 0
    cloop:
        ble r9, r13, cdone
        semdown full
        call consumeData
        semup empty
        addi r9, r9, -1
        jmp cloop
    cdone:
        ret
    func consumeData:
        const r1, 500
        load r2, r1, 0           ; read(x): always an induced first-access
        add r7, r7, r2           ; running total (kept in registers)
        ret
    """
    return Scenario(f"producer_consumer[{items}]", asm)


def buffered_read(iterations: int = 16) -> Scenario:
    """Figure 3: 2*n words stream in through a 2-cell buffer; only b[0]
    is processed each iteration.

    Expected: rms_externalRead = 1, trms_externalRead = ``iterations``
    (all external input).
    """
    asm = f"""
    func main:
        const r0, {iterations}
        call externalRead
        ret
    func externalRead:           ; r0 = iterations
        mov r9, r0
        alloci r1, 2             ; buffer b
        const r13, 0
    loop:
        ble r9, r13, done
        const r2, 2
        sysread r3, r1, r2, disk ; OS fills b[0], b[1]
        load r4, r1, 0           ; process(b[0]) only
        add r7, r7, r4
        addi r9, r9, -1
        jmp loop
    done:
        ret
    """
    values = list(range(1, 2 * iterations + 1))
    return Scenario(
        f"buffered_read[{iterations}]",
        asm,
        device_factory=lambda: {"disk": InputDevice(values)},
    )


_SORT_ASM = """
func insertion_sort:        ; r0 = base, r1 = n
    const r14, 0
    const r2, 1             ; i = 1
outer:
    bge r2, r1, done
    add r3, r0, r2
    load r4, r3, 0          ; key = a[i]
    mov r5, r2              ; j = i
inner:
    ble r5, r14, place
    add r6, r0, r5
    load r7, r6, -1         ; a[j-1]
    ble r7, r4, place
    store r6, 0, r7         ; a[j] = a[j-1]
    addi r5, r5, -1
    jmp inner
place:
    add r6, r0, r5
    store r6, 0, r4
    addi r2, r2, 1
    jmp outer
done:
    ret
"""


def insertion_sort(values: Sequence[int]) -> Scenario:
    """Sort a preloaded array in place: O(n^2) worst-case cost, rms = n."""
    n = len(values)
    asm = f"""
    func main:
        const r0, {DATA_BASE}
        const r1, {n}
        call insertion_sort
        ret
    {_SORT_ASM}
    """

    def check(machine: Machine) -> None:
        result = machine.memory_block(DATA_BASE, n)
        assert result == sorted(values), result

    return Scenario(f"insertion_sort[{n}]", asm, pokes=[(DATA_BASE, values)], check=check)


def binary_search(values: Sequence[int], target: int) -> Scenario:
    """Search a sorted preloaded array: O(log n) cost and rms."""
    ordered = sorted(values)
    n = len(ordered)
    asm = f"""
    func main:
        const r0, {DATA_BASE}
        const r1, {n}
        const r2, {target}
        call binary_search
        const r9, {DATA_BASE - 1}
        store r9, 0, r0          ; result index -> cell DATA_BASE-1
        ret
    func binary_search:          ; r0 = base, r1 = n, r2 = target
        const r3, 0              ; lo
        mov r4, r1               ; hi
    loop:
        bge r3, r4, notfound
        add r5, r3, r4
        const r6, 2
        div r5, r5, r6           ; mid
        add r7, r0, r5
        load r8, r7, 0
        beq r8, r2, found
        blt r8, r2, right
        mov r4, r5
        jmp loop
    right:
        addi r3, r5, 1
        jmp loop
    found:
        mov r0, r5
        ret
    notfound:
        const r0, -1
        ret
    """

    def check(machine: Machine) -> None:
        index = machine.memory.get(DATA_BASE - 1, 0)
        if target in ordered:
            assert ordered[index] == target
        else:
            assert index == -1

    return Scenario(
        f"binary_search[{n}]", asm, pokes=[(DATA_BASE, ordered)], check=check
    )


def sum_array(values: Sequence[int]) -> Scenario:
    """Linear scan over a preloaded array: O(n) cost, rms = n."""
    n = len(values)
    asm = f"""
    func main:
        const r0, {DATA_BASE}
        const r1, {n}
        call sum_array
        const r9, {DATA_BASE - 1}
        store r9, 0, r0
        ret
    func sum_array:              ; r0 = base, r1 = n -> r0 = sum
        const r2, 0
        const r3, 0
    loop:
        bge r2, r1, done
        add r4, r0, r2
        load r5, r4, 0
        add r3, r3, r5
        addi r2, r2, 1
        jmp loop
    done:
        mov r0, r3
        ret
    """

    def check(machine: Machine) -> None:
        assert machine.memory.get(DATA_BASE - 1, 0) == sum(values)

    return Scenario(f"sum_array[{n}]", asm, pokes=[(DATA_BASE, values)], check=check)


def matmul(n: int, seed: int = 11) -> Scenario:
    """Dense n*n matrix multiply: O(n^3) cost, rms = 2*n^2 inputs."""
    rng = random.Random(seed)
    a = [rng.randrange(0, 10) for _ in range(n * n)]
    b = [rng.randrange(0, 10) for _ in range(n * n)]
    a_base = DATA_BASE
    b_base = DATA_BASE + n * n
    c_base = DATA_BASE + 2 * n * n
    asm = f"""
    func main:
        const r0, {a_base}
        const r1, {b_base}
        const r2, {c_base}
        const r3, {n}
        call matmul
        ret
    func matmul:                 ; r0 = A, r1 = B, r2 = C, r3 = n
        const r4, 0              ; i
    iloop:
        bge r4, r3, done
        const r5, 0              ; j
    jloop:
        bge r5, r3, inext
        const r6, 0              ; k
        const r7, 0              ; acc
    kloop:
        bge r6, r3, kdone
        mul r8, r4, r3
        add r8, r8, r6
        add r8, r8, r0
        load r9, r8, 0           ; A[i][k]
        mul r10, r6, r3
        add r10, r10, r5
        add r10, r10, r1
        load r11, r10, 0         ; B[k][j]
        mul r12, r9, r11
        add r7, r7, r12
        addi r6, r6, 1
        jmp kloop
    kdone:
        mul r8, r4, r3
        add r8, r8, r5
        add r8, r8, r2
        store r8, 0, r7          ; C[i][j]
        addi r5, r5, 1
        jmp jloop
    inext:
        addi r4, r4, 1
        jmp iloop
    done:
        ret
    """

    def check(machine: Machine) -> None:
        got = machine.memory_block(c_base, n * n)
        expected = [
            sum(a[i * n + k] * b[k * n + j] for k in range(n))
            for i in range(n)
            for j in range(n)
        ]
        assert got == expected

    return Scenario(
        f"matmul[{n}]",
        asm,
        pokes=[(a_base, a), (b_base, b)],
        check=check,
    )


def _lcg_values(n: int, seed: int) -> List[int]:
    """The values the in-guest LCG of :func:`parallel_sum` produces."""
    values = []
    x = seed
    for _ in range(n):
        x = (75 * x + 74) % 65537
        values.append(x)
    return values


def parallel_sum(workers: int, chunk: int, seed: int = 3) -> Scenario:
    """OpenMP-style fork/join: each worker sums its slice of a shared
    array *written by the main thread* — the workers' input is almost
    entirely thread-induced."""
    n = workers * chunk
    values = _lcg_values(n, seed)
    spawn_lines = "\n".join(
        f"""
        const r1, {index}
        spawn r{4 + index}, worker, r1"""
        for index in range(workers)
    )
    join_lines = "\n".join(f"        join r{4 + index}" for index in range(workers))
    asm = f"""
    func main:
        call fill
{spawn_lines}
{join_lines}
        ret
    func fill:                   ; main writes the shared array (LCG)
        const r1, {DATA_BASE}
        const r2, {n}
        const r3, 0              ; i
        const r4, {seed}         ; x
    floop:
        bge r3, r2, fdone
        muli r4, r4, 75
        addi r4, r4, 74
        const r5, 65537
        mod r4, r4, r5
        add r6, r1, r3
        store r6, 0, r4
        addi r3, r3, 1
        jmp floop
    fdone:
        ret
    func worker:                 ; r0 = worker index
        muli r1, r0, {chunk}
        const r2, {DATA_BASE}
        add r1, r1, r2           ; slice base
        const r2, {chunk}
        call sum_slice
        const r9, {DATA_BASE - 8}
        add r9, r9, r0
        store r9, 0, r3          ; publish partial sum (distinct cells)
        ret
    func sum_slice:              ; r1 = base, r2 = count -> r3 = sum
        const r3, 0
        const r4, 0
    loop:
        bge r4, r2, done
        add r5, r1, r4
        load r6, r5, 0
        add r3, r3, r6
        addi r4, r4, 1
        jmp loop
    done:
        ret
    """

    def check(machine: Machine) -> None:
        partials = machine.memory_block(DATA_BASE - 8, workers)
        assert sum(partials) == sum(values)

    return Scenario(
        f"parallel_sum[{workers}x{chunk}]",
        asm,
        check=check,
    )


def racy_increment(threads: int = 2, rounds: int = 5) -> Scenario:
    """Unsynchronised read-modify-write on one shared cell: a data race
    the helgrind comparator must flag."""
    spawn_lines = "\n".join(
        f"""
        spawn r{4 + index}, bump, r0"""
        for index in range(threads)
    )
    join_lines = "\n".join(f"        join r{4 + index}" for index in range(threads))
    asm = f"""
    func main:
{spawn_lines}
{join_lines}
        ret
    func bump:
        const r9, {rounds}
        const r13, 0
        const r1, 600
    loop:
        ble r9, r13, done
        load r2, r1, 0
        addi r2, r2, 1
        store r1, 0, r2          ; racy store
        yield
        addi r9, r9, -1
        jmp loop
    done:
        ret
    """
    return Scenario(f"racy_increment[{threads}x{rounds}]", asm)


def locked_increment(threads: int = 2, rounds: int = 5) -> Scenario:
    """The same counter protected by a mutex: race-free, and the final
    value is exact."""
    spawn_lines = "\n".join(
        f"""
        spawn r{4 + index}, bump, r0"""
        for index in range(threads)
    )
    join_lines = "\n".join(f"        join r{4 + index}" for index in range(threads))
    asm = f"""
    func main:
{spawn_lines}
{join_lines}
        ret
    func bump:
        const r9, {rounds}
        const r13, 0
        const r1, 600
    loop:
        ble r9, r13, done
        lock m
        load r2, r1, 0
        addi r2, r2, 1
        store r1, 0, r2
        unlock m
        yield
        addi r9, r9, -1
        jmp loop
    done:
        ret
    """

    def check(machine: Machine) -> None:
        assert machine.memory.get(600, 0) == threads * rounds

    return Scenario(f"locked_increment[{threads}x{rounds}]", asm, check=check)


def merge_sort(values: Sequence[int]) -> Scenario:
    """Bottom-up merge sort through a scratch buffer: O(n log n) cost,
    rms = n (the scratch area is written before it is read, so it never
    counts as input)."""
    n = len(values)
    scratch = DATA_BASE + 0x4000
    asm = f"""
    func main:
        const r0, {DATA_BASE}
        const r1, {n}
        call merge_sort
        ret
    func merge_sort:            ; r0 = base, r1 = n
        const r2, 1             ; run width
    wloop:
        bge r2, r1, done
        const r3, 0             ; lo
    ploop:
        bge r3, r1, pdone
        add r4, r3, r2          ; mid = min(lo + width, n)
        ble r4, r1, m1
        mov r4, r1
    m1:
        add r5, r4, r2          ; hi = min(mid + width, n)
        ble r5, r1, m2
        mov r5, r1
    m2:
        mov r6, r3              ; i (left cursor)
        mov r7, r4              ; j (right cursor)
        mov r8, r3              ; k (output cursor)
    mloop:
        bge r8, r5, mdone
        bge r6, r4, right
        bge r7, r5, left
        add r9, r0, r6
        load r10, r9, 0
        add r9, r0, r7
        load r11, r9, 0
        ble r10, r11, left
    right:
        add r9, r0, r7
        load r12, r9, 0
        addi r7, r7, 1
        jmp put
    left:
        add r9, r0, r6
        load r12, r9, 0
        addi r6, r6, 1
    put:
        const r9, {scratch}
        add r9, r9, r8
        store r9, 0, r12
        addi r8, r8, 1
        jmp mloop
    mdone:
        mov r8, r3              ; copy the merged run back
    cloop:
        bge r8, r5, cdone
        const r9, {scratch}
        add r9, r9, r8
        load r12, r9, 0
        add r9, r0, r8
        store r9, 0, r12
        addi r8, r8, 1
        jmp cloop
    cdone:
        add r3, r3, r2          ; lo += 2 * width
        add r3, r3, r2
        jmp ploop
    pdone:
        add r2, r2, r2          ; width *= 2
        jmp wloop
    done:
        ret
    """

    def check(machine: Machine) -> None:
        result = machine.memory_block(DATA_BASE, n)
        assert result == sorted(values), result

    return Scenario(f"merge_sort[{n}]", asm, pokes=[(DATA_BASE, values)], check=check)


def hash_table(inserts: int, initial_capacity: int = 8, seed: int = 77) -> Scenario:
    """Open-addressing hash table with doubling rehash.

    The input-sensitive showcase for *amortised* complexity: most
    ``ht_insert`` activations probe a couple of cells, but the ones that
    trigger a rehash re-read the whole table — so the worst-case cost
    plot spikes at the doubling sizes while the average plot stays flat,
    exactly the max-vs-average reading the 2012 paper's plots support.

    Layout: cell 0 of the table region holds [capacity], cell 1 [count],
    cell 2 [table base]; slots store key+1 (0 = empty).  Keys come from
    an in-guest LCG.
    """
    header = DATA_BASE
    asm = f"""
    func main:
        alloci r1, {initial_capacity}
        const r2, {header}
        const r3, {initial_capacity}
        store r2, 0, r3          ; capacity
        const r3, 0
        store r2, 1, r3          ; count
        store r2, 2, r1          ; table base
        const r13, 0
        const r6, {initial_capacity}
        const r4, 0              ; zero the fresh table (memset, as real
    zloop:                       ; code must: malloc memory is undefined)
        bge r4, r6, zdone
        add r5, r1, r4
        store r5, 0, r13
        addi r4, r4, 1
        jmp zloop
    zdone:
        const r9, {inserts}
        const r13, 0
        const r11, {seed}
    mloop:
        ble r9, r13, mdone
        muli r11, r11, 75
        addi r11, r11, 74
        const r4, 65537
        mod r11, r11, r4
        mov r0, r11              ; key
        call ht_insert
        addi r9, r9, -1
        jmp mloop
    mdone:
        ret
    func ht_insert:              ; r0 = key
        const r1, {header}
        load r2, r1, 0           ; capacity
        load r3, r1, 1           ; count
        ; rehash when count * 2 >= capacity
        add r4, r3, r3
        blt r4, r2, insert
        call ht_grow
        const r1, {header}
        load r2, r1, 0           ; reload capacity
        load r3, r1, 1
    insert:
        load r5, r1, 2           ; table base
        mod r6, r0, r2           ; slot
        const r13, 0
    probe:
        add r7, r5, r6
        load r8, r7, 0
        beq r8, r13, place       ; empty slot
        addi r6, r6, 1
        mod r6, r6, r2           ; linear probing, wraps
        jmp probe
    place:
        addi r8, r0, 1           ; store key+1 (0 means empty)
        store r7, 0, r8
        addi r3, r3, 1
        store r1, 1, r3          ; count += 1
        ret
    func ht_grow:                ; double capacity, reinsert every key
        const r1, {header}
        load r2, r1, 0           ; old capacity
        load r5, r1, 2           ; old base
        add r3, r2, r2           ; new capacity
        alloc r4, r3             ; new table
        store r1, 0, r3
        store r1, 2, r4
        const r13, 0
        const r6, 0              ; memset the new table
    gzloop:
        bge r6, r3, gzdone
        add r7, r4, r6
        store r7, 0, r13
        addi r6, r6, 1
        jmp gzloop
    gzdone:
        const r6, 0              ; old slot cursor
    gloop:
        bge r6, r2, gdone
        add r7, r5, r6
        load r8, r7, 0           ; old slot (reads the WHOLE table)
        beq r8, r13, gnext
        addi r8, r8, -1          ; stored key
        mod r12, r8, r3          ; new slot
    gprobe:
        add r10, r4, r12
        load r14, r10, 0
        beq r14, r13, gplace
        addi r12, r12, 1
        mod r12, r12, r3
        jmp gprobe
    gplace:
        addi r14, r8, 1
        store r10, 0, r14
    gnext:
        addi r6, r6, 1
        jmp gloop
    gdone:
        free r5                  ; release the old table
        ret
    """

    def check(machine: Machine) -> None:
        capacity = machine.memory[header]
        count = machine.memory[header + 1]
        base = machine.memory[header + 2]
        assert count == inserts, (count, inserts)
        stored = [v for v in machine.memory_block(base, capacity) if v != 0]
        assert len(stored) == inserts

    return Scenario(f"hash_table[{inserts}]", asm, check=check)
