"""Disassembler: executable :class:`Program` back to assembly text.

Useful for debugging generated kernels (most suite programs are built
from f-string templates) and for reports.  The output reassembles to an
equivalent program — same opcodes, operands and control flow, with
synthesised ``L<n>`` labels — which the round-trip property test pins
down.
"""

from __future__ import annotations

from typing import Dict

from .assembler import Function, Program
from .isa import IMM, LABEL, REG, SIGNATURES

__all__ = ["disassemble", "disassemble_function"]


def _operand_text(value, kind: str, labels: Dict[int, str]) -> str:
    if kind == REG:
        return f"r{value}"
    if kind == IMM:
        return str(value)
    if kind == LABEL:
        return labels[value]
    return str(value)


def disassemble_function(function: Function) -> str:
    """Render one function as assembly text."""
    # synthesise labels for every branch target
    targets = sorted({
        operand
        for ins in function.instructions
        for operand, kind in zip((ins.a, ins.b, ins.c, ins.d), SIGNATURES[ins.op])
        if kind == LABEL
    })
    labels = {index: f"L{position}" for position, index in enumerate(targets)}

    lines = [f"func {function.name}:"]
    for index, ins in enumerate(function.instructions):
        if index in labels:
            lines.append(f"{labels[index]}:")
        operands = [
            _operand_text(operand, kind, labels)
            for operand, kind in zip((ins.a, ins.b, ins.c, ins.d), SIGNATURES[ins.op])
        ]
        if operands:
            lines.append(f"    {ins.op} " + ", ".join(operands))
        else:
            lines.append(f"    {ins.op}")
    # a label may point one past the last instruction (implicit return)
    end = len(function.instructions)
    if end in labels:
        lines.append(f"{labels[end]}:")
    return "\n".join(lines)


def disassemble(program: Program) -> str:
    """Render a whole program, entry function first."""
    names = [program.entry] + sorted(
        name for name in program.functions if name != program.entry
    )
    return "\n".join(disassemble_function(program.functions[name]) for name in names) + "\n"
