"""The tracing virtual machine: interpreter, threads, fair scheduler.

Execution model (deliberately the one the paper's tool runs under):

* **Serialized threads.**  Valgrind serializes guest threads and
  schedules them fairly; the VM does the same with a round-robin
  scheduler handing out timeslices measured in basic blocks.  A
  ``THREAD_SWITCH`` event reaches the analysis tools at every handover.
* **Full observation.**  Every ``load``/``store`` emits a read/write
  event, every ``call``/``ret`` a call/return event, every syscall one
  ``kernelRead``/``kernelWrite`` event per transferred cell, and one
  cost unit is charged per basic block entered.
* **Native mode.**  With ``tools=None`` the machine skips all event
  emission — the baseline the overhead experiments (Table 1) divide by.

Blocking primitives (``lock``, ``semdown``, ``join``) retry their
instruction when the thread is rescheduled, so their analysis events are
emitted in the acquiring thread's context, in program order.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.costmodel import BasicBlockCost, CostModel
from ..core.events import TraceConsumer
from .assembler import Function, Program
from .isa import Ins
from .syscalls import DeviceError, InputDevice, OutputDevice

__all__ = ["VMError", "DeadlockError", "Machine", "RunStats"]


class VMError(RuntimeError):
    """Raised on guest faults: division by zero, bad devices, step limits."""


class DeadlockError(VMError):
    """Raised when every live thread is blocked."""


class _Frame:
    __slots__ = ("function", "pc")

    def __init__(self, function: Function):
        self.function = function
        self.pc = 0


_RUNNABLE, _BLOCKED, _DONE = "runnable", "blocked", "done"


class _ThreadContext:
    __slots__ = ("tid", "regs", "frames", "status", "block_reason", "entry",
                 "entry_pending", "blocks", "instructions")

    def __init__(self, tid: int, entry: Function, arg: int = 0):
        self.tid = tid
        self.regs = [0] * 16
        self.regs[0] = arg
        self.frames: List[_Frame] = [_Frame(entry)]
        self.status = _RUNNABLE
        self.block_reason: Optional[str] = None
        self.entry = entry
        self.entry_pending = True
        self.blocks = 0
        self.instructions = 0


class RunStats:
    """Execution statistics returned by :meth:`Machine.run`."""

    def __init__(self) -> None:
        self.total_blocks = 0
        self.total_instructions = 0
        self.thread_switches = 0
        self.blocks_by_thread: Dict[int, int] = {}
        self.instructions_by_thread: Dict[int, int] = {}
        self.threads_spawned = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunStats(blocks={self.total_blocks}, "
            f"instructions={self.total_instructions}, "
            f"switches={self.thread_switches})"
        )


class Machine:
    """Interpreter for assembled programs.

    Args:
        program: the :class:`~repro.vm.assembler.Program` to execute.
        tools: a :class:`~repro.core.events.TraceConsumer` (often an
            :class:`~repro.core.events.EventBus`) receiving the trace, or
            None for native (uninstrumented) execution.
        devices: name → :class:`InputDevice` / :class:`OutputDevice`.
        timeslice: basic blocks per scheduling quantum (the fairness
            knob; Valgrind's fair scheduler plays the same role).
        max_steps: optional cap on executed instructions (runaway guard).
        cost_model: what to charge per block/instruction (default: the
            paper's basic-block metric, one unit per block entered).
    """

    def __init__(
        self,
        program: Program,
        tools: Optional[TraceConsumer] = None,
        devices: Optional[Dict[str, object]] = None,
        timeslice: int = 50,
        max_steps: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
    ):
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        self.program = program
        self.tools = tools
        self.devices = dict(devices or {})
        self.timeslice = timeslice
        self.max_steps = max_steps
        self.cost_model = cost_model or BasicBlockCost()
        self._block_units = self.cost_model.block()
        self._instruction_units = self.cost_model.instruction()
        self.memory: Dict[int, int] = {}
        self.locks: Dict[str, Optional[int]] = {}
        self.semaphores: Dict[str, int] = {}
        self.threads: Dict[int, _ThreadContext] = {}
        self.stats = RunStats()
        self._next_tid = 1
        self._alloc_ptr = 1 << 20
        self._finished = False

    # -- public helpers ---------------------------------------------------------

    def memory_block(self, base: int, length: int) -> List[int]:
        """Read ``length`` words starting at ``base`` (no trace events)."""
        return [self.memory.get(base + index, 0) for index in range(length)]

    def poke(self, base: int, values) -> None:
        """Preload guest memory (no trace events) — test/workload setup."""
        for index, value in enumerate(values):
            self.memory[base + index] = value

    # -- execution ---------------------------------------------------------------

    def run(self) -> RunStats:
        """Execute the program to completion and return statistics."""
        if self._finished:
            raise VMError("machine already ran; create a fresh Machine")
        self._finished = True
        main = self._create_thread(self.program.function(self.program.entry), arg=0)
        tools = self.tools
        if tools is not None:
            tools.on_start()

        order: List[int] = [main.tid]
        cursor = 0
        current: Optional[int] = None
        while True:
            order = [tid for tid in order if self.threads[tid].status != _DONE]
            order += [
                tid for tid in sorted(self.threads)
                if tid not in order and self.threads[tid].status != _DONE
            ]
            if not order:
                break
            runnable = [tid for tid in order if self.threads[tid].status == _RUNNABLE]
            if not runnable:
                blocked = {
                    tid: self.threads[tid].block_reason
                    for tid in order
                }
                raise DeadlockError(f"all live threads are blocked: {blocked}")
            if cursor >= len(order):
                cursor = 0
            # advance round-robin to the next runnable thread
            for _ in range(len(order)):
                tid = order[cursor % len(order)]
                cursor += 1
                if self.threads[tid].status == _RUNNABLE:
                    break
            context = self.threads[tid]
            if tid != current:
                current = tid
                self.stats.thread_switches += 1
                if tools is not None:
                    tools.on_thread_switch(tid)
            self._run_slice(context)

        if tools is not None:
            tools.on_finish()
        return self.stats

    def _create_thread(self, entry: Function, arg: int) -> _ThreadContext:
        context = _ThreadContext(self._next_tid, entry, arg)
        self._next_tid += 1
        self.threads[context.tid] = context
        self.stats.threads_spawned += 1
        self.stats.blocks_by_thread[context.tid] = 0
        self.stats.instructions_by_thread[context.tid] = 0
        return context

    def _run_slice(self, context: _ThreadContext) -> None:
        tools = self.tools
        tid = context.tid
        if context.entry_pending:
            context.entry_pending = False
            if tools is not None:
                tools.on_call(tid, context.entry.name)
        blocks_left = self.timeslice
        while blocks_left > 0 and context.status == _RUNNABLE:
            frame = context.frames[-1]
            function = frame.function
            if frame.pc >= len(function.instructions):
                self._do_return(context)
                continue
            ins = function.instructions[frame.pc]
            # blocking instructions are checked before any cost is charged,
            # so a blocked retry never inflates the basic-block count
            if ins.op in ("lock", "semdown", "join") and self._would_block(context, ins):
                context.status = _BLOCKED
                context.block_reason = f"{ins.op} {ins.a!r}"
                return
            if frame.pc in function.leaders:
                context.blocks += 1
                self.stats.total_blocks += 1
                self.stats.blocks_by_thread[tid] += 1
                blocks_left -= 1
                if tools is not None and self._block_units:
                    tools.on_cost(tid, self._block_units)
            context.instructions += 1
            self.stats.total_instructions += 1
            self.stats.instructions_by_thread[tid] += 1
            if tools is not None and self._instruction_units:
                tools.on_cost(tid, self._instruction_units)
            if self.max_steps is not None and self.stats.total_instructions > self.max_steps:
                raise VMError(f"instruction limit exceeded ({self.max_steps})")
            if self._execute(context, frame, ins) == "yield":
                return

    # -- blocking checks -----------------------------------------------------------

    def _would_block(self, context: _ThreadContext, ins: Ins) -> bool:
        if ins.op == "lock":
            owner = self.locks.get(ins.a)
            if owner == context.tid:
                raise VMError(f"thread {context.tid} re-locking {ins.a!r}")
            return owner is not None
        if ins.op == "semdown":
            return self.semaphores.get(ins.a, 0) <= 0
        if ins.op == "join":
            target = context.regs[ins.a]
            if target not in self.threads:
                raise VMError(f"join on unknown thread id {target}")
            return self.threads[target].status != _DONE
        return False

    def _wake(self, predicate) -> None:
        for other in self.threads.values():
            if other.status == _BLOCKED and predicate(other):
                other.status = _RUNNABLE
                other.block_reason = None

    # -- instruction execution --------------------------------------------------------

    def _execute(self, context: _ThreadContext, frame: _Frame, ins: Ins) -> Optional[str]:
        op = ins.op
        regs = context.regs
        tools = self.tools
        tid = context.tid
        pc_next = frame.pc + 1

        if op == "load":
            addr = regs[ins.b] + ins.c
            regs[ins.a] = self.memory.get(addr, 0)
            if tools is not None:
                tools.on_read(tid, addr)
        elif op == "store":
            addr = regs[ins.a] + ins.b
            self.memory[addr] = regs[ins.c]
            if tools is not None:
                tools.on_write(tid, addr)
        elif op == "const":
            regs[ins.a] = ins.b
        elif op == "mov":
            regs[ins.a] = regs[ins.b]
        elif op == "add":
            regs[ins.a] = regs[ins.b] + regs[ins.c]
        elif op == "sub":
            regs[ins.a] = regs[ins.b] - regs[ins.c]
        elif op == "mul":
            regs[ins.a] = regs[ins.b] * regs[ins.c]
        elif op == "div":
            if regs[ins.c] == 0:
                raise VMError("division by zero")
            regs[ins.a] = regs[ins.b] // regs[ins.c]
        elif op == "mod":
            if regs[ins.c] == 0:
                raise VMError("modulo by zero")
            regs[ins.a] = regs[ins.b] % regs[ins.c]
        elif op == "addi":
            regs[ins.a] = regs[ins.b] + ins.c
        elif op == "muli":
            regs[ins.a] = regs[ins.b] * ins.c
        elif op == "alloci":
            regs[ins.a] = self._alloc(ins.b)
            if tools is not None:
                tools.on_alloc(tid, regs[ins.a], ins.b)
        elif op == "alloc":
            size = regs[ins.b]
            regs[ins.a] = self._alloc(size)
            if tools is not None:
                tools.on_alloc(tid, regs[ins.a], size)
        elif op == "free":
            # a hint for the tools; the machine, like hardware, does not
            # invalidate the cells (libc-level misuse is what memcheck
            # exists to catch)
            if tools is not None:
                tools.on_free(tid, regs[ins.a])
        elif op == "jmp":
            pc_next = ins.a
        elif op == "beq":
            if regs[ins.a] == regs[ins.b]:
                pc_next = ins.c
        elif op == "bne":
            if regs[ins.a] != regs[ins.b]:
                pc_next = ins.c
        elif op == "blt":
            if regs[ins.a] < regs[ins.b]:
                pc_next = ins.c
        elif op == "bge":
            if regs[ins.a] >= regs[ins.b]:
                pc_next = ins.c
        elif op == "ble":
            if regs[ins.a] <= regs[ins.b]:
                pc_next = ins.c
        elif op == "bgt":
            if regs[ins.a] > regs[ins.b]:
                pc_next = ins.c
        elif op == "call":
            callee = self.program.function(ins.a)
            frame.pc = pc_next
            context.frames.append(_Frame(callee))
            if tools is not None:
                tools.on_call(tid, callee.name)
            return None
        elif op == "ret":
            self._do_return(context)
            return None
        elif op == "halt":
            self._terminate(context)
            return None
        elif op == "sysread":
            self._sysread(context, ins)
        elif op == "syswrite":
            self._syswrite(context, ins)
        elif op == "lock":
            self.locks[ins.a] = tid
            if tools is not None:
                tools.on_lock_acquire(tid, ins.a)
        elif op == "unlock":
            if self.locks.get(ins.a) != tid:
                raise VMError(f"thread {tid} unlocking {ins.a!r} it does not hold")
            self.locks[ins.a] = None
            if tools is not None:
                tools.on_lock_release(tid, ins.a)
            self._wake(lambda other: other.block_reason == f"lock {ins.a!r}")
        elif op == "semup":
            self.semaphores[ins.a] = self.semaphores.get(ins.a, 0) + 1
            if tools is not None:
                # a semaphore release orders memory like a lock release
                tools.on_lock_release(tid, f"sem:{ins.a}")
            self._wake(lambda other: other.block_reason == f"semdown {ins.a!r}")
        elif op == "semdown":
            self.semaphores[ins.a] -= 1
            if tools is not None:
                tools.on_lock_acquire(tid, f"sem:{ins.a}")
        elif op == "spawn":
            child = self._create_thread(self.program.function(ins.b), arg=regs[ins.c])
            regs[ins.a] = child.tid
            if tools is not None:
                tools.on_thread_create(tid, child.tid)
        elif op == "join":
            target = regs[ins.a]
            if tools is not None:
                tools.on_thread_join(tid, target)
        elif op == "yield":
            frame.pc = pc_next
            return "yield"
        elif op == "nop":
            pass
        else:  # pragma: no cover - the assembler rejects unknown opcodes
            raise VMError(f"unknown opcode {op!r}")

        frame.pc = pc_next
        return None

    def _alloc(self, size: int) -> int:
        if size < 0:
            raise VMError(f"negative allocation size {size}")
        base = self._alloc_ptr
        self._alloc_ptr += size
        return base

    def _do_return(self, context: _ThreadContext) -> None:
        context.frames.pop()
        if self.tools is not None:
            self.tools.on_return(context.tid)
        if not context.frames:
            self._finish_thread(context)

    def _terminate(self, context: _ThreadContext) -> None:
        while context.frames:
            context.frames.pop()
            if self.tools is not None:
                self.tools.on_return(context.tid)
        self._finish_thread(context)

    def _finish_thread(self, context: _ThreadContext) -> None:
        context.status = _DONE
        # Waking every join waiter is safe: a woken thread re-executes its
        # join and re-blocks if its target is still alive.
        self._wake(lambda other: (other.block_reason or "").startswith("join"))

    def _sysread(self, context: _ThreadContext, ins: Ins) -> None:
        device = self.devices.get(ins.d)
        if not isinstance(device, InputDevice):
            raise DeviceError(f"no input device named {ins.d!r}")
        base = context.regs[ins.b]
        length = context.regs[ins.c]
        words = device.read(length)
        tools = self.tools
        for offset, word in enumerate(words):
            self.memory[base + offset] = word
            if tools is not None:
                tools.on_kernel_write(context.tid, base + offset)
        context.regs[ins.a] = len(words)

    def _syswrite(self, context: _ThreadContext, ins: Ins) -> None:
        device = self.devices.get(ins.c)
        if not isinstance(device, OutputDevice):
            raise DeviceError(f"no output device named {ins.c!r}")
        base = context.regs[ins.a]
        length = context.regs[ins.b]
        tools = self.tools
        words = []
        for offset in range(length):
            addr = base + offset
            words.append(self.memory.get(addr, 0))
            if tools is not None:
                tools.on_kernel_read(context.tid, addr)
        device.write(words)
