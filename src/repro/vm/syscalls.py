"""Device model: the external world behind the VM's kernel syscalls.

The paper characterises *external input* through the kernel system calls
that move data between guest memory and the outside (disk, network).
The VM mirrors that with named devices:

* :class:`InputDevice` — a finite stream of words; ``sysread`` moves up
  to ``len`` words from the stream into a guest buffer, one
  ``kernelWrite`` trace event per cell (the OS filling memory);
* :class:`OutputDevice` — a sink; ``syswrite`` moves a guest buffer out,
  one ``kernelRead`` event per cell (the OS reading guest memory).

Devices are deliberately dumb: buffering policy, short reads and retry
loops live in guest code, where the profiler can see them — that is the
whole point of the Figure 3 / ``mysql_select`` scenarios.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["DeviceError", "InputDevice", "OutputDevice"]


class DeviceError(RuntimeError):
    """Raised on syscall access to a missing or wrong-direction device."""


class InputDevice:
    """A finite stream of integer words readable by ``sysread``."""

    def __init__(self, values: Iterable[int]):
        self.values: List[int] = list(values)
        self.cursor = 0

    def read(self, count: int) -> List[int]:
        """Consume and return up to ``count`` words (short reads at EOF)."""
        if count < 0:
            raise DeviceError(f"negative read length {count}")
        chunk = self.values[self.cursor:self.cursor + count]
        self.cursor += len(chunk)
        return chunk

    @property
    def exhausted(self) -> bool:
        return self.cursor >= len(self.values)

    def remaining(self) -> int:
        return len(self.values) - self.cursor


class OutputDevice:
    """A sink collecting words written by ``syswrite``."""

    def __init__(self) -> None:
        self.values: List[int] = []

    def write(self, words: Sequence[int]) -> None:
        self.values.extend(words)
