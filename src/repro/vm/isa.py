"""Instruction set of the tracing virtual machine.

The VM is this reproduction's stand-in for Valgrind: a small register
machine whose interpreter observes *every* memory access at cell
granularity, every routine call and return, every kernel-mediated I/O
transfer, and charges cost in basic blocks — the exact event vocabulary
the profiling algorithms consume.

Programs are written in a tiny assembly language (see
:mod:`repro.vm.assembler`).  The machine has 16 general-purpose
registers ``r0`` … ``r15`` (``r0``–``r3`` double as argument/return
registers by calling convention), a word-addressed sparse memory, and a
VM-internal call stack (return addresses never live in guest memory, so
the profiler sees only the program's own data traffic).

Instruction reference (operand kinds: R register, I immediate,
N name — function / device / lock / semaphore, L label):

====================  =========================================================
``const  R, I``       load immediate
``mov    R, R``       copy register
``add/sub/mul  R,R,R``  arithmetic (three-register)
``div/mod R,R,R``     integer division / modulo (division by zero traps)
``addi/muli R,R,I``   arithmetic with immediate
``load   R, R, I``    ``rd = M[rs + off]``        (emits a read event)
``store  R, I, R``    ``M[rs + off] = rt``        (emits a write event)
``alloci R, I``       bump-allocate I fresh cells, base address into R
``alloc  R, R``       bump-allocate rs cells
``free   R``          release the allocation whose base is in R (a hint
                      for memory-state tools; the machine itself, like
                      hardware, keeps the cells readable)
``jmp    L``          unconditional branch
``beq/bne/blt/bge/ble/bgt R, R, L``  conditional branches
``call   N``          activate function N          (emits a call event)
``ret``               return from current function (emits a return event)
``halt``              terminate the current thread
``sysread  R, R, R, N``  fill M[rbuf .. rbuf+rlen-1] from input device N;
                      cells actually filled -> rd (kernelWrite per cell)
``syswrite R, R, N``  drain M[rbuf .. rbuf+rlen-1] to output device N
                      (kernelRead per cell)
``lock   N`` / ``unlock N``    mutex acquire / release
``semup  N`` / ``semdown N``   semaphore V / P
``spawn  R, N, R``    start a new thread running function N with r0 = rarg;
                      its thread id -> rd
``join   R``          block until thread id in rs terminates
``yield``             end the current timeslice voluntarily
``nop``               do nothing
====================  =========================================================
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Tuple

__all__ = ["Ins", "REG", "IMM", "NAME", "LABEL", "SIGNATURES", "NUM_REGISTERS"]

NUM_REGISTERS = 16

# operand kinds
REG = "reg"
IMM = "imm"
NAME = "name"
LABEL = "label"


class Ins(NamedTuple):
    """One decoded instruction: opcode plus up to four operands.

    Register operands are stored as register indices, immediates as
    ints, labels as instruction indices (resolved by the assembler) and
    names (functions, devices, locks, semaphores) as strings.
    """

    op: str
    a: object = None
    b: object = None
    c: object = None
    d: object = None


#: opcode -> operand kind tuple, used by the assembler for validation
SIGNATURES: Dict[str, Tuple[str, ...]] = {
    "const": (REG, IMM),
    "mov": (REG, REG),
    "add": (REG, REG, REG),
    "sub": (REG, REG, REG),
    "mul": (REG, REG, REG),
    "div": (REG, REG, REG),
    "mod": (REG, REG, REG),
    "addi": (REG, REG, IMM),
    "muli": (REG, REG, IMM),
    "load": (REG, REG, IMM),
    "store": (REG, IMM, REG),
    "alloc": (REG, REG),
    "alloci": (REG, IMM),
    "free": (REG,),
    "jmp": (LABEL,),
    "beq": (REG, REG, LABEL),
    "bne": (REG, REG, LABEL),
    "blt": (REG, REG, LABEL),
    "bge": (REG, REG, LABEL),
    "ble": (REG, REG, LABEL),
    "bgt": (REG, REG, LABEL),
    "call": (NAME,),
    "ret": (),
    "halt": (),
    "sysread": (REG, REG, REG, NAME),
    "syswrite": (REG, REG, NAME),
    "lock": (NAME,),
    "unlock": (NAME,),
    "semup": (NAME,),
    "semdown": (NAME,),
    "spawn": (REG, NAME, REG),
    "join": (REG,),
    "yield": (),
    "nop": (),
}

#: opcodes that end a basic block (the next instruction, and every branch
#: target, is a block leader)
BLOCK_TERMINATORS = frozenset(
    ["jmp", "beq", "bne", "blt", "bge", "ble", "bgt", "call", "ret", "halt",
     "sysread", "syswrite", "lock", "unlock", "semup", "semdown", "spawn",
     "join", "yield"]
)
