"""Tracing virtual machine — the reproduction's Valgrind substitute."""

from . import programs
from .assembler import AsmError, Function, Program, assemble
from .disasm import disassemble, disassemble_function
from .isa import Ins, NUM_REGISTERS, SIGNATURES
from .machine import DeadlockError, Machine, RunStats, VMError
from .programs import Scenario
from .syscalls import DeviceError, InputDevice, OutputDevice

__all__ = [
    "programs",
    "AsmError",
    "Function",
    "Program",
    "assemble",
    "disassemble",
    "disassemble_function",
    "Ins",
    "NUM_REGISTERS",
    "SIGNATURES",
    "DeadlockError",
    "Machine",
    "RunStats",
    "VMError",
    "Scenario",
    "DeviceError",
    "InputDevice",
    "OutputDevice",
]
