"""Wire protocol: result rows and EOF packets to a per-client sink.

``send_row`` marshals a row into a reused packet buffer and drains it to
the "network" (a kernel read of the packet cells — an external write in
the paper's mapping).  ``send_eof`` closes the result set: it stamps the
packet with *server-wide status counters* that every client connection
updates under a lock, so its input mixes a little of every other
thread's activity — the workload-characterisation routine of Figure 8.
"""

from __future__ import annotations

from typing import List

from ..pytrace.api import TraceSession, traced
from ..pytrace.cells import TrackedArray
from ..pytrace.sync import TracedLock

__all__ = ["ServerStatus", "Protocol"]


class ServerStatus:
    """Global status counters shared by every connection."""

    CELLS = 4  # queries, rows_sent, eofs, errors

    def __init__(self, session: TraceSession):
        self.session = session
        self.counters = TrackedArray(session, self.CELLS)
        self.lock = TracedLock(session, "server-status")

    def bump(self, index: int, amount: int = 1) -> None:
        with self.lock:
            self.counters[index] = self.counters[index] + amount

    def read_all(self) -> List[int]:
        with self.lock:
            return [self.counters[index] for index in range(self.CELLS)]


class Protocol:
    """One connection's half of the wire protocol."""

    #: packet buffer cells (reused for every row — rows wider than this
    #: are rejected at the engine layer)
    PACKET_CELLS = 8

    def __init__(self, session: TraceSession, status: ServerStatus):
        self.session = session
        self.status = status
        self.packet = TrackedArray(session, self.PACKET_CELLS)
        #: everything drained to the client ("the network")
        self.sent: List[int] = []
        self.rows_sent = 0
        self.eofs_sent = 0

    @traced
    def send_row(self, row: List[int]) -> None:
        """Marshal ``row`` into the packet buffer and send it."""
        for index, value in enumerate(row):
            self.packet[index] = value
        words = self.session.kernel_drain(self.packet, 0, len(row))
        self.sent.extend(words)
        self.rows_sent += 1
        self.status.bump(1)

    @traced
    def send_eof(self) -> None:
        """Send the end-of-result packet, stamped with server status.

        Like the real server, the status flags are re-checked *after*
        the network write (warnings raised meanwhile must reach the
        client): the second read of each counter another connection
        bumped during our I/O is an induced first-access, so this
        routine's trms varies with concurrent activity while its rms is
        pinned at the packet-plus-status constant — the Figure 8 effect.
        """
        import time

        snapshot = self.status.read_all()       # thread-induced input
        for index, value in enumerate(snapshot):
            self.packet[index] = value
        words = self.session.kernel_drain(self.packet, 0, len(snapshot))
        time.sleep(0)                           # the network round trip
        final = self.status.read_all()          # re-check: varying induced
        if final[3] != snapshot[3]:             # errors raised meanwhile
            self.packet[0] = final[3]
            words = list(words)
            words[0] = final[3]
        self.sent.extend(words)
        self.eofs_sent += 1
        self.status.bump(2)
