"""Mini relational database — the MySQL case-study substitute."""

from .bufferpool import BufferPool, ChangeBuffer
from .engine import Database
from .index import HashIndex
from .protocol import Protocol, ServerStatus
from .slap import SlapReport, minislap
from .sql import CreateIndex, CreateTable, Insert, Select, SqlError, Update, parse
from .storage import Disk, DiskManager
from .table import HeapTable

__all__ = [
    "BufferPool",
    "ChangeBuffer",
    "Database",
    "HashIndex",
    "Protocol",
    "ServerStatus",
    "SlapReport",
    "minislap",
    "CreateIndex",
    "CreateTable",
    "Insert",
    "Select",
    "Update",
    "SqlError",
    "parse",
    "Disk",
    "DiskManager",
    "HeapTable",
]
