"""Hash indexes: point lookups instead of full scans.

A :class:`HashIndex` maps one column's values to row indices through
tracked cells, so the profiler sees exactly what an index buys: an
indexed equality SELECT reads a bucket plus the matching rows (input
size ~ matches) where a scan reads the whole table (input size ~ rows).
Input-sensitive profiles make that asymptotic difference visible as two
different cost functions for the same query text.

Consistency model: indexes are maintained eagerly on ``insert`` and
``update_cell`` (the logical, pre-flush state).  Scanning statements
drain the change buffer before reading (see ``Database.execute``), so
index-guided reads observe the same rows a scan would.
"""

from __future__ import annotations

from typing import List

from ..pytrace.api import TraceSession, traced
from ..pytrace.cells import TrackedDict
from ..pytrace.sync import TracedLock

__all__ = ["HashIndex"]


class HashIndex:
    """Equality index over one column of a heap table."""

    def __init__(self, session: TraceSession, table_name: str, column: str,
                 column_index: int):
        self.session = session
        self.table_name = table_name
        self.column = column
        self.column_index = column_index
        #: column value -> tuple of row indices (tuples keep the bucket
        #: cell's value immutable, so every maintenance is one write)
        self._buckets = TrackedDict(session)
        self.lock = TracedLock(session, f"index:{table_name}.{column}")
        self.lookups = 0
        self.maintenances = 0

    @traced
    def index_insert(self, value: int, row_index: int) -> None:
        """Register a new row under ``value``."""
        with self.lock:
            bucket = self._buckets.get(value, ())
            self._buckets[value] = bucket + (row_index,)
        self.maintenances += 1

    @traced
    def index_update(self, old_value: int, new_value: int, row_index: int) -> None:
        """Move a row from one bucket to another."""
        if old_value == new_value:
            return
        with self.lock:
            bucket = self._buckets.get(old_value, ())
            remaining = tuple(r for r in bucket if r != row_index)
            if remaining:
                self._buckets[old_value] = remaining
            elif old_value in self._buckets:
                del self._buckets[old_value]
        self.index_insert(new_value, row_index)
        self.maintenances += 1

    @traced
    def index_lookup(self, value: int) -> List[int]:
        """Row indices whose column equals ``value`` (sorted)."""
        self.lookups += 1
        with self.lock:
            return sorted(self._buckets.get(value, ()))

    def __len__(self) -> int:
        return sum(len(self._buckets.get(key, ())) for key in self._buckets.keys())
