"""minislap: the mysqlslap-style load generator.

The paper's MySQL experiments drive the server with mysqlslap — 50
concurrent clients submitting ~1000 auto-generated queries.  minislap
does the scaled-down equivalent: each client thread opens a connection
(a :class:`~repro.minidb.protocol.Protocol`) and submits a mixed
INSERT/SELECT stream against shared tables while the background flusher
drains the change buffer.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..pytrace.api import TraceSession, traced
from ..pytrace.sync import TracedThread
from .engine import Database

__all__ = ["SlapReport", "minislap"]


class SlapReport:
    """What a minislap run did, for assertions and bench logs."""

    def __init__(self) -> None:
        self.queries = 0
        self.rows_inserted = 0
        self.rows_received = 0
        self.flush_calls = 0
        self.records_flushed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlapReport(queries={self.queries}, inserted={self.rows_inserted}, "
            f"received={self.rows_received}, flushes={self.flush_calls})"
        )


@traced
def client_session(database: Database, client_id: int, queries: int,
                   insert_ratio: float, seed: int, report: SlapReport,
                   report_lock) -> None:
    """One client connection: a mixed stream of INSERTs and SELECTs."""
    rng = random.Random(seed)
    protocol = database.new_protocol()
    inserted = 0
    received = 0
    for index in range(queries):
        if rng.random() < insert_ratio:
            a = rng.randrange(0, 50)
            b = rng.randrange(0, 50)
            database.execute(f"INSERT INTO load_test VALUES ({a}, {b})")
            inserted += 1
        else:
            op = rng.choice(["<", ">", "="])
            pivot = rng.randrange(0, 50)
            rows = database.execute(
                f"SELECT * FROM load_test WHERE a {op} {pivot}", protocol
            )
            received += len(rows)
    with report_lock:
        report.queries += queries
        report.rows_inserted += inserted
        report.rows_received += received


def minislap(
    session: TraceSession,
    database: Optional[Database] = None,
    clients: int = 4,
    queries_per_client: int = 12,
    insert_ratio: float = 0.5,
    preload_rows: int = 16,
    seed: int = 101,
) -> SlapReport:
    """Run the load: returns a :class:`SlapReport`.

    Must be called inside an active session ``with`` block.  Creates the
    ``load_test`` table (two integer columns) unless ``database`` already
    has it, preloads ``preload_rows`` rows, runs ``clients`` concurrent
    client threads, then stops the flusher and drains everything.
    """
    import threading

    database = database or Database(session)
    if "load_test" not in database.tables:
        database.execute("CREATE TABLE load_test (a, b)")
    rng = random.Random(seed)
    database.start_flusher()
    for _ in range(preload_rows):
        database.execute(
            f"INSERT INTO load_test VALUES ({rng.randrange(50)}, {rng.randrange(50)})"
        )

    report = SlapReport()
    report_lock = threading.Lock()
    threads: List[TracedThread] = []
    for client_id in range(clients):
        thread = TracedThread(
            session,
            client_session,
            args=(database, client_id, queries_per_client, insert_ratio,
                  seed + client_id, report, report_lock),
            name=f"client-{client_id}",
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()
    database.stop_flusher()
    report.flush_calls = database.change_buffer.flush_calls
    report.records_flushed = database.change_buffer.records_flushed
    return report
