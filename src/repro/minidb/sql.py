"""A tiny SQL subset: enough surface for the mysqlslap-style workload.

Grammar (case-insensitive keywords, integer literals only)::

    CREATE TABLE name (col, col, ...)
    INSERT INTO name VALUES (int, int, ...)
    SELECT * FROM name [WHERE colname <op> int]     op in {=, <, >, <=, >=, !=}
    UPDATE name SET colname = int [WHERE colname <op> int]
    CREATE INDEX ON name (colname)

The parser produces small statement objects consumed by the engine.
Column names are positional aliases: the WHERE clause resolves a name to
its index in the CREATE statement's column list.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Union

__all__ = ["SqlError", "CreateIndex", "CreateTable", "Insert", "Select", "Update", "parse"]


class SqlError(ValueError):
    """Raised on any malformed statement."""


class CreateIndex(NamedTuple):
    table: str
    column: str


class CreateTable(NamedTuple):
    table: str
    columns: List[str]


class Insert(NamedTuple):
    table: str
    values: List[int]


class Select(NamedTuple):
    table: str
    where_column: Optional[str]
    where_op: Optional[str]
    where_value: Optional[int]


class Update(NamedTuple):
    table: str
    set_column: str
    set_value: int
    where_column: Optional[str]
    where_op: Optional[str]
    where_value: Optional[int]


_CREATE_INDEX_RE = re.compile(
    r"^\s*create\s+index\s+on\s+(\w+)\s*\(\s*(\w+)\s*\)\s*;?\s*$",
    re.IGNORECASE,
)
_CREATE_RE = re.compile(
    r"^\s*create\s+table\s+(\w+)\s*\(\s*([\w\s,]+?)\s*\)\s*;?\s*$", re.IGNORECASE
)
_INSERT_RE = re.compile(
    r"^\s*insert\s+into\s+(\w+)\s+values\s*\(\s*([-\d\s,]+?)\s*\)\s*;?\s*$",
    re.IGNORECASE,
)
_UPDATE_RE = re.compile(
    r"^\s*update\s+(\w+)\s+set\s+(\w+)\s*=\s*(-?\d+)"
    r"(?:\s+where\s+(\w+)\s*(=|<=|>=|!=|<|>)\s*(-?\d+))?\s*;?\s*$",
    re.IGNORECASE,
)
_SELECT_RE = re.compile(
    r"^\s*select\s+\*\s+from\s+(\w+)"
    r"(?:\s+where\s+(\w+)\s*(=|<=|>=|!=|<|>)\s*(-?\d+))?\s*;?\s*$",
    re.IGNORECASE,
)

Statement = Union[CreateIndex, CreateTable, Insert, Select, Update]


def parse(sql: str) -> Statement:
    """Parse one statement; raises :class:`SqlError` on anything else."""
    match = _CREATE_INDEX_RE.match(sql)
    if match:
        return CreateIndex(match.group(1), match.group(2))

    match = _CREATE_RE.match(sql)
    if match:
        columns = [token.strip() for token in match.group(2).split(",")]
        if not columns or any(not column for column in columns):
            raise SqlError(f"bad column list in: {sql!r}")
        if len(set(columns)) != len(columns):
            raise SqlError(f"duplicate column names in: {sql!r}")
        return CreateTable(match.group(1), columns)

    match = _INSERT_RE.match(sql)
    if match:
        try:
            values = [int(token.strip()) for token in match.group(2).split(",")]
        except ValueError:
            raise SqlError(f"bad value list in: {sql!r}") from None
        return Insert(match.group(1), values)

    match = _UPDATE_RE.match(sql)
    if match:
        table, set_column, set_value, column, op, literal = match.groups()
        return Update(
            table,
            set_column,
            int(set_value),
            column,
            op,
            int(literal) if literal is not None else None,
        )

    match = _SELECT_RE.match(sql)
    if match:
        table, column, op, literal = match.groups()
        return Select(
            table,
            column,
            op,
            int(literal) if literal is not None else None,
        )

    raise SqlError(f"cannot parse statement: {sql!r}")


_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


def evaluate(op: str, left: int, right: int) -> bool:
    """Evaluate a WHERE comparison."""
    try:
        return _OPS[op](left, right)
    except KeyError:
        raise SqlError(f"unknown operator {op!r}") from None
