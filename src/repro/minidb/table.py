"""Heap tables: fixed-width integer rows on disk pages.

Page layout: cell 0 holds the row count; rows follow consecutively,
``columns`` cells each.  Inserts go through the change buffer (they
become visible to scans once flushed); scans read pages through the
buffer pool, cell by cell — which is what makes a large scan stream its
table through a small set of reused frames.
"""

from __future__ import annotations

import threading
from typing import Iterator, List

from .bufferpool import BufferPool, ChangeBuffer

__all__ = ["HeapTable"]


class HeapTable:
    """One table: a name, a column count, and a range of disk pages."""

    _next_page_base = 0
    _page_base_lock = threading.Lock()
    #: pages reserved per table (a fixed-size extent keeps page ids simple)
    EXTENT_PAGES = 4096

    def __init__(self, name: str, columns: int, pool: BufferPool, change_buffer: ChangeBuffer):
        if columns <= 0:
            raise ValueError("a table needs at least one column")
        if columns > change_buffer.width:
            raise ValueError(
                f"{columns} columns exceed the change-buffer record width "
                f"{change_buffer.width}"
            )
        self.name = name
        self.columns = columns
        self.pool = pool
        self.change_buffer = change_buffer
        page_size = pool.page_size
        self.rows_per_page = (page_size - 1) // columns
        if self.rows_per_page <= 0:
            raise ValueError(f"page size {page_size} too small for {columns} columns")
        with HeapTable._page_base_lock:
            self.first_page = HeapTable._next_page_base
            HeapTable._next_page_base += HeapTable.EXTENT_PAGES
        #: committed row count (maintained under the metadata lock)
        self._row_count = 0
        self._meta_lock = threading.Lock()

    # -- geometry -----------------------------------------------------------------

    def _locate(self, row_index: int) -> (int, int):
        page_id = self.first_page + row_index // self.rows_per_page
        slot = row_index % self.rows_per_page
        offset = 1 + slot * self.columns
        return page_id, offset

    @property
    def row_count(self) -> int:
        return self._row_count

    def page_count(self) -> int:
        full = (self._row_count + self.rows_per_page - 1) // self.rows_per_page
        return max(full, 0)

    # -- writes ---------------------------------------------------------------------

    def insert(self, row: List[int]) -> int:
        """Buffer one row insert; returns the row index it will occupy."""
        if len(row) != self.columns:
            raise ValueError(
                f"row has {len(row)} values, table {self.name!r} has {self.columns} columns"
            )
        with self._meta_lock:
            row_index = self._row_count
            self._row_count += 1
        page_id, offset = self._locate(row_index)
        self.change_buffer.append(page_id, offset, list(row))
        # the row-count header is also a buffered change
        self.change_buffer.append(page_id, 0, [(row_index % self.rows_per_page) + 1])
        return row_index

    def update_cell(self, row_index: int, column: int, value: int) -> None:
        """Buffer an update of one column of one committed row."""
        if not 0 <= row_index < self._row_count:
            raise IndexError(f"row {row_index} out of range")
        if not 0 <= column < self.columns:
            raise IndexError(f"column {column} out of range")
        page_id, offset = self._locate(row_index)
        self.change_buffer.append(page_id, offset + column, [value])

    # -- reads ----------------------------------------------------------------------

    def read_row(self, row_index: int) -> List[int]:
        """Read one row through the buffer pool."""
        page_id, offset = self._locate(row_index)
        with self.pool.lock:
            return [
                self.pool.read_cell(page_id, offset + column)
                for column in range(self.columns)
            ]

    def scan(self) -> Iterator[List[int]]:
        """Yield every committed row, page by page, through the pool."""
        for row_index in range(self._row_count):
            yield self.read_row(row_index)
