"""Disk model: pages living outside the traced address space.

The database's persistent state is "the external world": reading a page
into a buffer-pool frame is a kernel buffer fill (one ``kernelWrite``
trace event per cell), and writing data out is a kernel read of the
sending thread's memory — exactly how the paper maps Linux I/O syscalls
to trace events (Section 5).  The page store itself is plain Python
data; the profiler never sees it, only the transfers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..pytrace.api import TraceSession

__all__ = ["Disk", "DiskManager"]


class Disk:
    """A sparse page store: page id → list of ``page_size`` words."""

    def __init__(self, page_size: int = 8):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self._pages: Dict[int, List[int]] = {}
        self.reads = 0
        self.writes = 0

    def page(self, page_id: int) -> List[int]:
        page = self._pages.get(page_id)
        if page is None:
            page = [0] * self.page_size
            self._pages[page_id] = page
        return page

    def page_count(self) -> int:
        return len(self._pages)


class DiskManager:
    """Moves pages between the disk and tracked memory via the kernel."""

    def __init__(self, session: TraceSession, disk: Disk):
        self.session = session
        self.disk = disk

    def read_page(self, page_id: int, frame, frame_offset: int) -> None:
        """Fill ``frame[frame_offset:...]`` with the page (kernel fill)."""
        self.disk.reads += 1
        self.session.kernel_fill(frame, frame_offset, self.disk.page(page_id))

    def write_page(self, page_id: int, frame, frame_offset: int) -> None:
        """Write the frame's copy back to disk (kernel reads the frame)."""
        self.disk.writes += 1
        words = self.session.kernel_drain(frame, frame_offset, self.disk.page_size)
        self.disk._pages[page_id] = list(words)

    def patch_page(self, page_id: int, offset: int, values: Sequence[int]) -> None:
        """Apply already-drained words to a page (no further events)."""
        page = self.disk.page(page_id)
        for index, value in enumerate(values):
            page[offset + index] = value
        self.disk.writes += 1
