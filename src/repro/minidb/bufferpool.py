"""Buffer pool and change buffer — the engine's memory heart.

Two structures shape the case-study profiles:

* :class:`BufferPool` — ``frames`` page slots of tracked cells with LRU
  replacement.  A table scan larger than the pool streams every page
  through *reused* frame cells via kernel fills, so a scanning routine's
  rms saturates near the pool size while its trms keeps growing with the
  table — the ``mysql_select`` effect of Figure 4.
* :class:`ChangeBuffer` — a fixed ring of change records appended by
  client threads and drained in batches by
  :meth:`ChangeBuffer.buf_flush_buffered_writes`.  The flusher's reads
  of ring slots are thread-induced (clients wrote them), its rms is
  pinned near the ring size, and the batch it drains is
  insertion-sorted by page id — quadratic work in the batch size, the
  super-linear trend of Figure 6 that only the trms axis reveals.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from ..pytrace.api import TraceSession, traced
from ..pytrace.cells import TrackedArray
from ..pytrace.sync import TracedLock
from .storage import DiskManager

__all__ = ["BufferPool", "ChangeBuffer"]


class BufferPool:
    """Page cache over tracked frame cells with LRU replacement."""

    def __init__(self, session: TraceSession, disk_manager: DiskManager, frames: int = 4):
        if frames <= 0:
            raise ValueError("frames must be positive")
        self.session = session
        self.disk_manager = disk_manager
        self.page_size = disk_manager.disk.page_size
        self.frames = frames
        self.data = TrackedArray(session, frames * self.page_size)
        self._frame_page: List[Optional[int]] = [None] * frames
        self._page_frame: Dict[int, int] = {}
        self._dirty: List[bool] = [False] * frames
        self._lru: List[int] = list(range(frames))
        self.lock = TracedLock(session, "bufpool")
        self.fetches = 0
        self.hits = 0

    # The pool lock must be held for every method below; the engine's
    # read/write paths take it once per page operation.

    def _touch(self, frame: int) -> None:
        self._lru.remove(frame)
        self._lru.append(frame)

    def _fetch(self, page_id: int) -> int:
        """Frame index holding ``page_id``, loading (and evicting) as needed."""
        self.fetches += 1
        frame = self._page_frame.get(page_id)
        if frame is not None:
            self.hits += 1
            self._touch(frame)
            return frame
        frame = self._lru[0]
        victim = self._frame_page[frame]
        if victim is not None:
            if self._dirty[frame]:
                self.disk_manager.write_page(victim, self.data, frame * self.page_size)
                self._dirty[frame] = False
            del self._page_frame[victim]
        self.disk_manager.read_page(page_id, self.data, frame * self.page_size)
        self._frame_page[frame] = page_id
        self._page_frame[page_id] = frame
        self._touch(frame)
        return frame

    def read_cell(self, page_id: int, offset: int) -> int:
        frame = self._fetch(page_id)
        return self.data[frame * self.page_size + offset]

    def write_cell(self, page_id: int, offset: int, value: int) -> None:
        frame = self._fetch(page_id)
        self.data[frame * self.page_size + offset] = value
        self._dirty[frame] = True

    def invalidate(self, page_id: int) -> None:
        """Drop a cached page (after the flusher rewrote it on disk)."""
        frame = self._page_frame.pop(page_id, None)
        if frame is not None:
            self._frame_page[frame] = None
            self._dirty[frame] = False

    def flush_all(self) -> None:
        """Write every dirty frame back (shutdown path)."""
        for frame, page_id in enumerate(self._frame_page):
            if page_id is not None and self._dirty[frame]:
                self.disk_manager.write_page(page_id, self.data, frame * self.page_size)
                self._dirty[frame] = False


class ChangeBuffer:
    """Fixed ring of change records between client threads and the flusher.

    A record occupies one ring slot of ``3 + width`` tracked cells:
    ``(page_id, offset, length, values...)``.  Clients block on a free slot
    (semaphore), write the record, and signal the flusher.  The flusher
    drains every available record in one activation of
    :meth:`buf_flush_buffered_writes`, insertion-sorts the batch by page
    id (write coalescing — and the deliberate quadratic term of
    Figure 6), applies the records to disk, and invalidates the affected
    pool pages.
    """

    def __init__(
        self,
        session: TraceSession,
        disk_manager: DiskManager,
        pool: BufferPool,
        slots: int = 8,
        width: int = 4,
    ):
        if slots <= 0 or width <= 0:
            raise ValueError("slots and width must be positive")
        self.session = session
        self.disk_manager = disk_manager
        self.pool = pool
        self.slots = slots
        self.record_cells = 3 + width
        self.width = width
        self.ring = TrackedArray(session, slots * self.record_cells)
        self.lock = TracedLock(session, "changebuf")
        self.free = threading.Semaphore(slots)
        self.used = threading.Semaphore(0)
        self._head = 0            # next slot the flusher drains
        self._tail = 0            # next slot a client fills
        #: completely written, not yet drained records (under ``lock``);
        #: distinguishes real work from the shutdown poison token
        self._pending = 0
        self.records_flushed = 0
        self.flush_calls = 0
        #: True while a background flusher owns draining; when False a
        #: client hitting a full ring flushes from its own thread, like
        #: a MySQL user thread doing a synchronous flush under pressure
        self.flusher_active = False

    # -- client side -------------------------------------------------------------

    def append(self, page_id: int, offset: int, values: List[int]) -> None:
        """Buffer one change record (blocks or self-flushes when full)."""
        if len(values) > self.width:
            raise ValueError(f"record wider than {self.width}")
        while not self.free.acquire(blocking=False):
            if self.flusher_active:
                self.free.acquire()
                break
            if self.used.acquire(blocking=False):
                self.buf_flush_buffered_writes()
        with self.lock:
            slot = self._tail
            self._tail = (self._tail + 1) % self.slots
            base = slot * self.record_cells
            self.ring[base] = page_id
            self.ring[base + 1] = offset
            self.ring[base + 2] = len(values)
            for index, value in enumerate(values):
                self.ring[base + 3 + index] = value
            self._pending += 1
        self.used.release()

    @property
    def pending(self) -> int:
        """Records written but not yet drained."""
        with self.lock:
            return self._pending

    # -- flusher side --------------------------------------------------------------

    @traced
    def buf_flush_buffered_writes(self) -> int:
        """Drain every buffered record; return how many were applied.

        The first record is already reserved by the caller (it acquired
        ``used`` once before calling); further available records are
        claimed non-blockingly so one activation handles a whole batch.
        """
        self.flush_calls += 1
        batch: List[Tuple[int, int, List[int]]] = []
        # One record is reserved by the caller (it consumed a ``used``
        # token while records were pending); keep draining whatever
        # clients append while we work (yielding per record, as a real
        # flusher would while waiting on I/O), so one activation can
        # flush far more records than the ring holds at once.
        while True:
            with self.lock:
                slot = self._head
                self._head = (self._head + 1) % self.slots
                self._pending -= 1
                base = slot * self.record_cells
                page_id = self.ring[base]
                offset = self.ring[base + 1]
                length = self.ring[base + 2]
                values = self.session.kernel_drain(self.ring, base + 3, length)
            self.free.release()
            batch.append((page_id, offset, list(values)))
            time.sleep(0)
            # continue only while real records remain AND a token is
            # available — a lone shutdown-poison token never drains a
            # nonexistent record
            if self.pending <= 0 or not self.used.acquire(blocking=False):
                break

        # Coalesce writes by page id: insertion sort over a tracked
        # scratch list — O(batch^2) tracked operations, the deliberate
        # super-linear cost component.
        ordered = self.session.list()
        for position, record in enumerate(batch):
            insert_at = 0
            for index in range(len(ordered)):
                if batch[ordered[index]][0] <= record[0]:
                    insert_at = index + 1
            ordered.append(position)
            for index in range(len(ordered) - 1, insert_at, -1):
                ordered[index] = ordered[index - 1]
            ordered[insert_at] = position

        for index in range(len(ordered)):
            page_id, offset, values = batch[ordered[index]]
            self.disk_manager.patch_page(page_id, offset, values)
            with self.pool.lock:
                self.pool.invalidate(page_id)
        self.records_flushed += len(batch)
        return len(batch)
