"""The database engine: catalog, executor, background flusher.

``Database.execute`` dispatches parsed statements.  ``mysql_select`` —
named after the MySQL routine the paper profiles — runs the scan+filter
plan for SELECT through the buffer pool, so on tables larger than the
pool its rms saturates at the pool size while its trms tracks the table
(Figure 4).  Inserts buffer change records; a dedicated flusher thread
wakes whenever records are pending and drains them in batches through
``buf_flush_buffered_writes`` (Figure 6).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..pytrace.api import TraceSession, traced
from ..pytrace.sync import TracedThread
from .bufferpool import BufferPool, ChangeBuffer
from .protocol import Protocol, ServerStatus
from .index import HashIndex
from .sql import CreateIndex, CreateTable, Insert, Select, SqlError, Update, evaluate, parse
from .storage import Disk, DiskManager
from .table import HeapTable

__all__ = ["Database"]


class Database:
    """An embedded mini relational database over one tracing session."""

    def __init__(
        self,
        session: TraceSession,
        page_size: int = 9,
        pool_frames: int = 4,
        ring_slots: int = 8,
        record_width: int = 4,
    ):
        self.session = session
        self.disk = Disk(page_size=page_size)
        self.disk_manager = DiskManager(session, self.disk)
        self.pool = BufferPool(session, self.disk_manager, frames=pool_frames)
        self.change_buffer = ChangeBuffer(
            session, self.disk_manager, self.pool, slots=ring_slots, width=record_width
        )
        self.status = ServerStatus(session)
        self.tables: Dict[str, HeapTable] = {}
        self._schemas: Dict[str, List[str]] = {}
        self.indexes: Dict[tuple, HashIndex] = {}
        self._catalog_lock = threading.Lock()
        self._flusher: Optional[TracedThread] = None
        self._shutdown = threading.Event()

    # -- catalog ---------------------------------------------------------------------

    def create_table(self, name: str, columns: List[str]) -> HeapTable:
        with self._catalog_lock:
            if name in self.tables:
                raise SqlError(f"table {name!r} already exists")
            table = HeapTable(name, len(columns), self.pool, self.change_buffer)
            self.tables[name] = table
            self._schemas[name] = list(columns)
            return table

    def table(self, name: str) -> HeapTable:
        try:
            return self.tables[name]
        except KeyError:
            raise SqlError(f"no such table {name!r}") from None

    def create_index(self, table_name: str, column: str) -> HashIndex:
        """Build a hash index over ``column`` from the committed rows."""
        table = self.table(table_name)
        column_position = self.column_index(table_name, column)
        key = (table_name, column)
        with self._catalog_lock:
            if key in self.indexes:
                raise SqlError(f"index on {table_name}.{column} already exists")
            index = HashIndex(self.session, table_name, column, column_position)
            self.indexes[key] = index
        for row_index in range(table.row_count):
            row = table.read_row(row_index)
            index.index_insert(row[column_position], row_index)
        return index

    def _table_indexes(self, table_name: str) -> List[HashIndex]:
        return [index for (name, _), index in self.indexes.items()
                if name == table_name]

    def column_index(self, table: str, column: str) -> int:
        schema = self._schemas[table]
        try:
            return schema.index(column)
        except ValueError:
            raise SqlError(f"no column {column!r} in table {table!r}") from None

    # -- execution -------------------------------------------------------------------

    def execute(self, sql: str, protocol: Optional[Protocol] = None) -> List[List[int]]:
        """Parse and run one statement; returns result rows (SELECT only)."""
        statement = parse(sql)
        self.status.bump(0)
        if isinstance(statement, CreateTable):
            self.create_table(statement.table, statement.columns)
            return []
        if isinstance(statement, CreateIndex):
            if self._flusher is None:
                self.flush_now()
            self.create_index(statement.table, statement.column)
            return []
        if isinstance(statement, Insert):
            self.mysql_insert(statement)
            return []
        # Read-your-writes: statements that scan (SELECT, UPDATE) first
        # drain any change records still buffered — synchronously when no
        # background flusher owns the ring; otherwise the flusher's own
        # drain provides the (slightly lagged) visibility, as in a real
        # write-behind engine.
        if isinstance(statement, (Select, Update)) and self._flusher is None:
            self.flush_now()
        if isinstance(statement, Update):
            self.mysql_update(statement)
            return []
        return self.mysql_select(statement, protocol)

    @traced
    def mysql_insert(self, statement: Insert) -> None:
        row_index = self.table(statement.table).insert(statement.values)
        for index in self._table_indexes(statement.table):
            index.index_insert(statement.values[index.column_index], row_index)

    @traced
    def mysql_update(self, statement: Update) -> int:
        """Scan + filter + buffer one change record per matching row.

        Updates flow through the same change-buffer ring as inserts, so
        they are visible to scans once flushed — and they are more food
        for ``buf_flush_buffered_writes``.  Returns the number of rows
        updated.
        """
        table = self.table(statement.table)
        set_index = self.column_index(statement.table, statement.set_column)
        predicate_index: Optional[int] = None
        if statement.where_column is not None:
            predicate_index = self.column_index(statement.table, statement.where_column)
        updated = 0
        for row_index in range(table.row_count):
            row = table.read_row(row_index)
            if predicate_index is not None and not evaluate(
                statement.where_op, row[predicate_index], statement.where_value
            ):
                continue
            table.update_cell(row_index, set_index, statement.set_value)
            for index in self._table_indexes(statement.table):
                if index.column_index == set_index:
                    index.index_update(row[set_index], statement.set_value, row_index)
            updated += 1
        return updated

    @traced
    def mysql_select(
        self, statement: Select, protocol: Optional[Protocol] = None
    ) -> List[List[int]]:
        """Scan + filter + (optionally) send the result set."""
        table = self.table(statement.table)
        predicate_index: Optional[int] = None
        if statement.where_column is not None:
            predicate_index = self.column_index(statement.table, statement.where_column)

        # an equality predicate over an indexed column becomes a point
        # lookup: the activation's input shrinks from the whole table to
        # the bucket plus the matching rows
        index = self.indexes.get((statement.table, statement.where_column))
        if index is not None and statement.where_op == "=":
            rows = [table.read_row(r) for r in index.index_lookup(statement.where_value)]
        else:
            rows = []
            for row in table.scan():
                if predicate_index is not None and not evaluate(
                    statement.where_op, row[predicate_index], statement.where_value
                ):
                    continue
                rows.append(row)
        for row in rows:
            if protocol is not None:
                protocol.send_row(row)
        if protocol is not None:
            protocol.send_eof()
        return rows

    # -- flusher -----------------------------------------------------------------------

    def start_flusher(self) -> None:
        """Start the background flusher thread (idempotent)."""
        if self._flusher is not None:
            return
        self._shutdown.clear()
        self.change_buffer.flusher_active = True
        self._flusher = TracedThread(self.session, self._flusher_loop, name="flusher")
        self._flusher.start()

    def _flusher_loop(self) -> None:
        while True:
            self.change_buffer.used.acquire()
            if self.change_buffer.pending > 0:
                self.change_buffer.buf_flush_buffered_writes()
            if self._shutdown.is_set() and self.change_buffer.pending == 0:
                return

    def stop_flusher(self) -> None:
        """Flush everything pending and stop the flusher thread."""
        if self._flusher is None:
            return
        self._shutdown.set()
        self.change_buffer.used.release()   # poison wake-up
        self._flusher.join()
        self._flusher = None
        self.change_buffer.flusher_active = False

    def flush_now(self) -> int:
        """Synchronously flush pending records from the calling thread.

        Only valid while no background flusher is running.  Returns the
        number of records applied.
        """
        if self._flusher is not None:
            raise RuntimeError("background flusher owns the change buffer")
        applied = 0
        while self.change_buffer.used.acquire(blocking=False):
            applied += self.change_buffer.buf_flush_buffered_writes()
        return applied

    def new_protocol(self) -> Protocol:
        """A protocol instance for one client connection."""
        return Protocol(self.session, self.status)
