"""A vips-like demand-driven image pipeline on the tracing VM.

PARSEC's ``vips`` constructs multi-threaded image processing pipelines:
data flows demand-driven through small reusable *regions*, worker
threads evaluate operations per region (``im_generate``), and a
write-behind thread (``wbuffer_write_thread``) batches finished regions
out to disk.  Two behaviours of that architecture are exactly what the
paper's Figures 5 and 7 probe, and this model reproduces both:

* ``im_generate`` consumes its input through a **fixed-size window**
  refilled by a source thread.  Its per-activation rms is therefore
  roughly the window size — *constant* regardless of how much data
  streams through — while its trms equals the true strip size.  Plotting
  cost against rms mis-reports the routine as an asymptotic bottleneck;
  against trms the trend is linear (Figure 5).
* ``wbuffer_write_thread`` drains however many finished strips have
  accumulated through **one shared slot**, reading a tiny metadata block
  from a device per strip.  Its rms is pinned near
  ``slot_cells + control`` (the paper observed all 110 activations
  collapsing onto two rms values, 67 and 69) while its trms varies with
  the batch size and external metadata — the profile-richness story of
  Figure 7.

The pipeline is race-free: windows and the slot are handed over with
semaphores, the pending counter is lock-protected, and termination uses
a poison token after the workers are joined.
"""

from __future__ import annotations

from typing import Dict

from ..vm.programs import Scenario
from ..vm.syscalls import InputDevice, OutputDevice

__all__ = ["vips_pipeline", "SLOT_CELLS"]

#: fixed output tile size — the paper's wbuffer rms sits just above this
SLOT_CELLS = 64

_PENDING = 0x0E00
_DONE = 0x0E01
_SLOT = 0x0E10
_META = 0x0D00
_WINDOW_BASE = 0x0C00
_WINDOW_STRIDE = 0x40


def _source_funcs(index: int, chunks: int, window: int, seed: int) -> str:
    win = _WINDOW_BASE + index * _WINDOW_STRIDE
    return f"""
    func source_{index}:             ; refills worker {index}'s window
        const r9, {chunks}
        const r13, 0
        const r11, {seed}
    sloop:
        ble r9, r13, sdone
        semdown we_{index}
        call produce_window_{index}
        semup wf_{index}
        addi r9, r9, -1
        jmp sloop
    sdone:
        ret
    func produce_window_{index}:
        const r1, {win}
        const r2, 0
    pl:
        const r3, {window}
        bge r2, r3, pd
        muli r11, r11, 75
        addi r11, r11, 74
        const r4, 65537
        mod r11, r11, r4
        add r5, r1, r2
        store r5, 0, r11
        addi r2, r2, 1
        jmp pl
    pd:
        ret
    """


def _worker_funcs(index: int, strips: int, strip_cells: int, window: int) -> str:
    win = _WINDOW_BASE + index * _WINDOW_STRIDE
    chunks_per_strip = strip_cells // window
    return f"""
    func imworker_{index}:
        const r9, {strips}
        const r13, 0
    wloop:
        ble r9, r13, wdone
        call im_generate_{index}
        lock plock
        const r1, {_PENDING}
        load r2, r1, 0
        addi r2, r2, 1
        store r1, 0, r2
        unlock plock
        semdown slot_free
        call fill_slot_{index}
        semup slot_ready
        addi r9, r9, -1
        jmp wloop
    wdone:
        ret
    func im_generate_{index}:        ; consume one strip through the window
        const r10, {chunks_per_strip}
        const r13, 0
        const r8, 0                  ; accumulator
    igl:
        ble r10, r13, igd
        semdown wf_{index}
        const r1, {win}
        const r2, 0
    rl:
        const r3, {window}
        bge r2, r3, rd
        add r4, r1, r2
        load r5, r4, 0               ; induced: the source wrote this cell
        add r8, r8, r5
        addi r2, r2, 1
        jmp rl
    rd:
        semup we_{index}
        addi r10, r10, -1
        jmp igl
    igd:
        ret
    func fill_slot_{index}:          ; write the finished tile to the slot
        const r1, {_SLOT}
        const r2, 0
    fl:
        const r3, {SLOT_CELLS}
        bge r2, r3, fd
        add r4, r1, r2
        add r5, r8, r2
        store r4, 0, r5
        addi r2, r2, 1
        jmp fl
    fd:
        ret
    """


_WBUFFER = f"""
    func wbuffer_loop:
        const r13, 0
    top:
        semdown slot_ready
        lock plock
        const r1, {_PENDING}
        load r4, r1, 0
        const r1, {_DONE}
        load r2, r1, 0
        unlock plock
        bgt r4, r13, work
        bgt r2, r13, exit
        jmp top
    work:
        call wbuffer_write_thread
        jmp top
    exit:
        ret
    func wbuffer_write_thread:       ; drain every accumulated strip
        const r13, 0
    flush:
        const r1, {_SLOT}
        const r2, {SLOT_CELLS}
        syswrite r1, r2, imgout      ; kernel reads the worker-written tile
        load r3, r1, 0               ; explicit checksum touches
        load r4, r1, 1
        add r3, r3, r4
        const r5, {_META}
        const r6, 2
        sysread r7, r5, r6, meta     ; external metadata per strip
        load r7, r5, 0
        load r8, r5, 1
        lock plock
        const r9, {_PENDING}
        load r10, r9, 0
        addi r10, r10, -1
        store r9, 0, r10
        unlock plock
        semup slot_free
        bgt r10, r13, more
        ret
    more:
        semdown slot_ready
        jmp flush
"""


def vips_pipeline(
    workers: int = 2,
    strips_per_worker: int = 8,
    strip_cells: int = 64,
    window: int = 16,
) -> Scenario:
    """Build the pipeline scenario.

    Args:
        workers: number of (source, im_generate) thread pairs.
        strips_per_worker: strips each worker evaluates.
        strip_cells: cells streamed per strip (must be a multiple of
            ``window``) — ``im_generate``'s true input size.
        window: reusable region size — ``im_generate``'s apparent (rms)
            input size.
    """
    if strip_cells % window != 0:
        raise ValueError("strip_cells must be a multiple of window")
    chunks = strips_per_worker * (strip_cells // window)

    sources = "".join(
        _source_funcs(index, chunks, window, seed=97 + 13 * index)
        for index in range(workers)
    )
    impls = "".join(
        _worker_funcs(index, strips_per_worker, strip_cells, window)
        for index in range(workers)
    )
    window_sems = "\n".join(f"        semup we_{index}" for index in range(workers))
    spawns = "\n".join(
        f"""        spawn r{2 + 2 * index}, source_{index}, r0
        spawn r{3 + 2 * index}, imworker_{index}, r0"""
        for index in range(workers)
    )
    joins = "\n".join(
        f"""        join r{2 + 2 * index}
        join r{3 + 2 * index}"""
        for index in range(workers)
    )
    asm = f"""
    func main:
        semup slot_free
{window_sems}
        spawn r1, wbuffer_loop, r0
{spawns}
{joins}
        lock plock
        const r10, {_DONE}
        const r11, 1
        store r10, 0, r11
        unlock plock
        semup slot_ready             ; poison token for the wbuffer
        join r1
        ret
    {sources}
    {impls}
    {_WBUFFER}
    """

    total_strips = workers * strips_per_worker

    def device_factory() -> Dict[str, object]:
        return {
            # 2 metadata words per strip, generous margin for retries
            "meta": InputDevice(list(range(1, 4 * total_strips + 1))),
            "imgout": OutputDevice(),
        }

    return Scenario(
        f"vips[{workers}w x{strips_per_worker}s x{strip_cells}c /w{window}]",
        asm,
        device_factory=device_factory,
    )
