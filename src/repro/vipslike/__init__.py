"""vips-like image pipeline — the PARSEC vips case-study substitute."""

from .pipeline import SLOT_CELLS, vips_pipeline

__all__ = ["SLOT_CELLS", "vips_pipeline"]
