"""Distributed trace-analysis farm.

The paper's closing future-work item asks for "a fully scalable and
concurrent dynamic instrumentation framework … to exploit parallelism
to leverage the slowdown of our profiler".  :mod:`repro.core.offline`
proved the algorithmic half — after the write-index pass, per-thread
analyses share no mutable state — but Python threads cannot cash that
in under the GIL.  This package is the systems half:

* :mod:`repro.farm.binfmt` — trace format v2: chunked, struct-packed
  binary traces with a string table and a seekable chunk index;
* :mod:`repro.farm.shards` — shard planning over the chunk index
  (whole threads per shard, chunk-range fallback for skewed traces);
* :mod:`repro.farm.worker` — the per-process shard analyser;
* :mod:`repro.farm.merge` — exact, associative profile merging across
  shards and across independent runs, plus the lossless profile dump
  format;
* :mod:`repro.farm.engine` — orchestration with per-shard timeouts,
  bounded retries and inline fallback.

The farm's contract is exactness: its merged output is bit-identical
to the online :class:`~repro.core.trms.TrmsProfiler` on every
workload; parallel speed is never allowed to change a profile.
"""

from .binfmt import (
    BINARY_MAGIC,
    NAMES_SUFFIX,
    BinaryTraceError,
    BinaryTraceWriter,
    ChunkMeta,
    TraceMeta,
    TruncatedChunk,
    convert_v1_to_v2,
    convert_v2_to_v1,
    is_binary_trace,
    iter_binary_trace,
    live_names_path,
    read_binary_trace,
    read_trace_meta,
    write_binary_trace,
)
from .engine import FarmResult, FarmStats, ShardOutcome, analyze_events, analyze_file
from .merge import (
    PROFILE_MAGIC,
    ProfileDumpError,
    copy_database,
    is_profile_dump,
    load_profile,
    merge_databases,
    merge_into,
    save_profile,
)
from .shards import Shard, ShardPlan, plan_shards
from .worker import ShardTask, WorkerResult, run_shard

__all__ = [
    "BINARY_MAGIC",
    "NAMES_SUFFIX",
    "BinaryTraceError",
    "BinaryTraceWriter",
    "ChunkMeta",
    "TraceMeta",
    "TruncatedChunk",
    "live_names_path",
    "convert_v1_to_v2",
    "convert_v2_to_v1",
    "is_binary_trace",
    "iter_binary_trace",
    "read_binary_trace",
    "read_trace_meta",
    "write_binary_trace",
    "FarmResult",
    "FarmStats",
    "ShardOutcome",
    "analyze_events",
    "analyze_file",
    "PROFILE_MAGIC",
    "ProfileDumpError",
    "copy_database",
    "is_profile_dump",
    "load_profile",
    "merge_databases",
    "merge_into",
    "save_profile",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "ShardTask",
    "WorkerResult",
    "run_shard",
]
