"""Farm worker: analyse one shard of a recorded trace, in-process.

``run_shard`` is the function the engine ships to pool processes (it
must stay module-level and its task/result types picklable).  A worker
is deliberately self-sufficient: it opens the trace file itself, decodes
only its shard's chunk subset, rebuilds the write index *locally* from
the write-bearing chunks, and analyses its assigned threads with the
ordinary :func:`repro.core.offline.analyze_thread` machinery.  Nothing
mutable crosses the process boundary in either direction — the price is
that every worker re-reads the write chunks, the payoff is that workers
share no state and the result is exact by construction.

Fault injection (for the retry/fallback tests) is part of the task:
a ``fault`` field can make the worker die abruptly, raise, or hang,
before it touches the trace.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..core.events import Event, EventKind
from ..core.offline import WriteIndex, analyze_thread
from ..core.profile_data import ProfileDatabase
from .binfmt import decode_chunk, read_trace_meta

__all__ = ["ShardTask", "WorkerResult", "run_shard"]

_KERNEL = -1


class ShardTask(NamedTuple):
    """Everything a worker needs, picklable and immutable."""

    trace_path: str
    shard_id: int
    threads: Tuple[int, ...]
    chunk_indices: Tuple[int, ...]
    context_sensitive: bool = False
    keep_activations: bool = False
    #: test-only fault injection: ``("crash-once", sentinel_path)``,
    #: ``("crash-always",)``, ``("error",)``, or ``("hang", seconds)``
    fault: Optional[Tuple] = None


class WorkerResult(NamedTuple):
    shard_id: int
    db: ProfileDatabase
    events_decoded: int
    seconds: float
    pid: int


def _inject_fault(fault: Optional[Tuple]) -> None:
    if fault is None:
        return
    kind = fault[0]
    if kind == "crash-once":
        sentinel = fault[1]
        if not os.path.exists(sentinel):
            with open(sentinel, "w"):
                pass
            os._exit(3)
    elif kind == "crash-always":
        os._exit(3)
    elif kind == "error":
        raise RuntimeError("injected worker error")
    elif kind == "hang":
        time.sleep(fault[1])
    else:
        raise ValueError(f"unknown fault {fault!r}")


def run_shard(task: ShardTask) -> WorkerResult:
    """Decode the shard's chunks, analyse its threads, return the profiles.

    One pass over the chunk subset feeds two structures: the local
    write index (every write in a decoded chunk, any thread) and the
    per-thread event buckets (assigned threads only, with the same
    skip rules as :func:`repro.core.offline.split_by_thread`).  Global
    positions come from the chunk headers, so skipped chunks leave the
    position space intact and the induced-first-access binary search
    behaves exactly as it would over the full trace.
    """
    _inject_fault(task.fault)
    started = time.perf_counter()
    mine = frozenset(task.threads)
    index = WriteIndex()
    buckets: Dict[int, List[Tuple[int, Event]]] = {thread: [] for thread in task.threads}
    decoded = 0

    with open(task.trace_path, "rb") as stream:
        meta = read_trace_meta(stream)
        for chunk_index in task.chunk_indices:
            chunk = meta.chunks[chunk_index]
            for position, event in decode_chunk(stream, chunk, meta.names):
                decoded += 1
                kind = event.kind
                if kind == EventKind.WRITE:
                    index.add(event.arg, position, event.thread)
                    if event.thread in mine:
                        buckets[event.thread].append((position, event))
                elif kind == EventKind.KERNEL_WRITE:
                    index.add(event.arg, position, _KERNEL)
                elif kind != EventKind.THREAD_SWITCH and event.thread in mine:
                    buckets[event.thread].append((position, event))

    db = ProfileDatabase(keep_activations=task.keep_activations)
    for thread in task.threads:
        analyze_thread(buckets[thread], thread, index, db,
                       context_sensitive=task.context_sensitive)
    return WorkerResult(task.shard_id, db, decoded,
                        time.perf_counter() - started, os.getpid())
