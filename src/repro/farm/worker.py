"""Farm worker: analyse one shard of a recorded trace, in-process.

``run_shard`` is the function the engine ships to pool processes (it
must stay module-level and its task/result types picklable).  A worker
is deliberately self-sufficient: it opens the trace file itself, decodes
only its shard's chunk subset, rebuilds the write index *locally* from
the write-bearing chunks, and analyses its assigned threads with the
ordinary :func:`repro.core.offline.analyze_thread` machinery.  Nothing
mutable crosses the process boundary in either direction — the price is
that every worker re-reads the write chunks, the payoff is that workers
share no state and the result is exact by construction.

**Heartbeats.**  A worker is also observable while it runs: given a
``heartbeat_path``, it appends one JSON line every
``heartbeat_events`` decoded events (and at every phase change) with
its phase (``decode`` / ``analyze``), events processed, peak RSS and
wall time — the coordinator tails these files to expose live progress
and to attribute per-shard stalls.  Phase spans (wall + CPU) travel the
same channel.  Heartbeats are fire-and-forget: any failure to write one
is swallowed, because observability must never outrank the result.

Fault injection (for the retry/fallback tests) is part of the task:
a ``fault`` field can make the worker die abruptly, raise, or hang,
before it touches the trace.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..core.events import Event, EventKind
from ..core.flatkernel import FlatAnalyzer
from ..core.offline import WriteIndex, analyze_thread
from ..core.profile_data import ProfileDatabase
from .binfmt import decode_chunk, decode_chunk_columns, read_trace_meta

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

__all__ = ["ShardTask", "WorkerResult", "run_shard", "DEFAULT_HEARTBEAT_EVENTS"]

_KERNEL = -1

#: decoded events between two heartbeats (plus one per phase change)
DEFAULT_HEARTBEAT_EVENTS = 25000


class ShardTask(NamedTuple):
    """Everything a worker needs, picklable and immutable."""

    trace_path: str
    shard_id: int
    threads: Tuple[int, ...]
    chunk_indices: Tuple[int, ...]
    context_sensitive: bool = False
    keep_activations: bool = False
    #: test-only fault injection: ``("crash-once", sentinel_path)``,
    #: ``("crash-always",)``, ``("error",)``, or ``("hang", seconds)``
    fault: Optional[Tuple] = None
    #: JSONL file this worker appends heartbeat/span records to
    heartbeat_path: Optional[str] = None
    heartbeat_events: int = DEFAULT_HEARTBEAT_EVENTS
    #: analysis kernel: "flat" (columnar single-pass) or "classic"
    kernel: str = "flat"


class WorkerResult(NamedTuple):
    shard_id: int
    db: ProfileDatabase
    events_decoded: int
    seconds: float
    pid: int
    decode_seconds: float = 0.0
    analyze_seconds: float = 0.0
    max_rss_kb: int = 0
    heartbeats: int = 0
    kernel: str = "classic"


def _max_rss_kb() -> int:
    if _resource is None:
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


class _Heart:
    """Best-effort heartbeat/span appender for one shard."""

    def __init__(self, task: ShardTask, started: float):
        self.task = task
        self.started = started
        self.beats = 0
        self._stream = None
        if task.heartbeat_path is not None:
            try:
                self._stream = open(task.heartbeat_path, "a", encoding="utf-8")
            except OSError:
                self._stream = None

    def _write(self, record: Dict) -> None:
        if self._stream is None:
            return
        try:
            self._stream.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._stream.flush()
        except (OSError, ValueError):
            self._stream = None

    def beat(self, phase: str, events: int) -> None:
        self.beats += 1
        self._write({
            "type": "heartbeat", "shard": self.task.shard_id, "phase": phase,
            "events": events, "rss_kb": _max_rss_kb(), "pid": os.getpid(),
            "wall": round(time.perf_counter() - self.started, 6),
        })

    def span(self, name: str, wall: float, cpu: float, **attrs) -> None:
        self._write({
            "type": "span", "name": name, "shard": self.task.shard_id,
            "wall": round(wall, 6), "cpu": round(cpu, 6), "ok": True,
            "attrs": attrs,
        })

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None


def _inject_fault(fault: Optional[Tuple]) -> None:
    if fault is None:
        return
    kind = fault[0]
    if kind == "crash-once":
        sentinel = fault[1]
        if not os.path.exists(sentinel):
            with open(sentinel, "w"):
                pass
            os._exit(3)
    elif kind == "crash-always":
        os._exit(3)
    elif kind == "error":
        raise RuntimeError("injected worker error")
    elif kind == "hang":
        time.sleep(fault[1])
    else:
        raise ValueError(f"unknown fault {fault!r}")


def _run_classic(task: ShardTask, stream, meta, heart: _Heart,
                 beat_every: int) -> Tuple[ProfileDatabase, int, float]:
    """The original two-pass machinery: decode to Events, bucket, replay.

    One pass over the chunk subset feeds two structures: the local
    write index (every write in a decoded chunk, any thread) and the
    per-thread event buckets (assigned threads only, with the same
    skip rules as :func:`repro.core.offline.split_by_thread`).  Global
    positions come from the chunk headers, so skipped chunks leave the
    position space intact and the induced-first-access binary search
    behaves exactly as it would over the full trace.
    """
    mine = frozenset(task.threads)
    index = WriteIndex()
    buckets: Dict[int, List[Tuple[int, Event]]] = {thread: [] for thread in task.threads}
    decoded = 0
    decode_started = time.perf_counter()

    for chunk_index in task.chunk_indices:
        chunk = meta.chunks[chunk_index]
        for position, event in decode_chunk(stream, chunk, meta.names):
            decoded += 1
            if decoded % beat_every == 0:
                heart.beat("decode", decoded)
            kind = event.kind
            if kind == EventKind.WRITE:
                index.add(event.arg, position, event.thread)
                if event.thread in mine:
                    buckets[event.thread].append((position, event))
            elif kind == EventKind.KERNEL_WRITE:
                index.add(event.arg, position, _KERNEL)
            elif kind != EventKind.THREAD_SWITCH and event.thread in mine:
                buckets[event.thread].append((position, event))

    decode_seconds = time.perf_counter() - decode_started
    heart.beat("analyze", decoded)
    db = ProfileDatabase(keep_activations=task.keep_activations)
    for thread in task.threads:
        analyze_thread(buckets[thread], thread, index, db,
                       context_sensitive=task.context_sensitive)
        heart.beat("analyze", decoded)
    return db, decoded, decode_seconds


def _run_flat(task: ShardTask, stream, meta, heart: _Heart,
              beat_every: int) -> Tuple[ProfileDatabase, int, float]:
    """The flat-array kernel: columnar decode + single interleaved pass.

    Chunks are decoded whole into :class:`~repro.farm.binfmt.ChunkColumns`
    and fed, in trace order, to one
    :class:`~repro.core.flatkernel.FlatAnalyzer` covering all assigned
    threads — decode and analysis interleave per chunk (there is no
    separate bucketing pass), so ``decode_seconds`` here is purely the
    columnar batch decode.
    """
    db = ProfileDatabase(keep_activations=task.keep_activations)
    analyzer = FlatAnalyzer(task.threads, meta.names, db,
                            context_sensitive=task.context_sensitive)
    decoded = 0
    decode_seconds = 0.0
    next_beat = beat_every
    for chunk_index in sorted(task.chunk_indices):
        chunk = meta.chunks[chunk_index]
        decode_started = time.perf_counter()
        columns = decode_chunk_columns(stream, chunk)
        decode_seconds += time.perf_counter() - decode_started
        analyzer.feed(columns)
        decoded += columns.events
        if decoded >= next_beat:
            heart.beat("analyze", decoded)
            next_beat = decoded + beat_every
    analyzer.finish()
    return db, decoded, decode_seconds


def run_shard(task: ShardTask) -> WorkerResult:
    """Decode the shard's chunks, analyse its threads, return the profiles.

    ``task.kernel`` selects the hot path: ``"flat"`` (default — the
    columnar single-pass kernel) or ``"classic"`` (the two-pass
    object-per-event machinery).  Both produce bit-identical profiles;
    the differential tests compare them against each other and against
    the online profiler.
    """
    _inject_fault(task.fault)
    if task.kernel not in ("flat", "classic"):
        raise ValueError(f"unknown analysis kernel {task.kernel!r}")
    started = time.perf_counter()
    cpu0 = time.process_time()
    heart = _Heart(task, started)
    heart.beat("decode", 0)
    beat_every = max(1, task.heartbeat_events)

    with open(task.trace_path, "rb") as stream:
        meta = read_trace_meta(stream)
        runner = _run_flat if task.kernel == "flat" else _run_classic
        db, decoded, decode_seconds = runner(task, stream, meta, heart, beat_every)

    seconds = time.perf_counter() - started
    cpu_seconds = time.process_time() - cpu0
    analyze_seconds = max(0.0, seconds - decode_seconds)
    heart.span("worker.decode", decode_seconds, min(decode_seconds, cpu_seconds),
               events=decoded, chunks=len(task.chunk_indices), kernel=task.kernel)
    heart.span("worker.analyze", analyze_seconds,
               max(0.0, cpu_seconds - decode_seconds),
               threads=len(task.threads), kernel=task.kernel)
    heart.beat("done", decoded)
    heart.close()
    return WorkerResult(task.shard_id, db, decoded, seconds, os.getpid(),
                        decode_seconds, analyze_seconds, _max_rss_kb(),
                        heart.beats, task.kernel)
