"""Trace format v2: compact, chunked, seekable binary traces.

The v1 text format (:mod:`repro.core.tracefile`) is greppable and
diffable but forces any analysis to scan the whole file front to back.
The farm needs random access: a worker assigned two threads of a
32-thread trace should not decode the other thirty.  Format v2 provides
that with three layers:

* **records** — one event is a fixed ``<Bqq`` struct (kind byte, thread
  id, argument).  Routine names are interned in a per-file string
  table, so a ``CALL`` record stores a table index; arguments of
  ``RETURN`` records are zero and decode to ``None``.
* **chunks** — records are grouped into chunks of ``chunk_events``
  events.  Each chunk is prefixed by a header carrying its payload
  size, event count, the *global position* of its first event, its
  write-event count (plain + kernel), and per-thread event counts.
  That metadata is what shard planning consumes: it tells a worker
  which chunks contain its threads' events and which chunks it may
  skip entirely (no writes, no assigned threads).
* **footer** — after the last chunk the writer emits the string table
  and a copy of every chunk's metadata (with file offsets), then a
  fixed-size trailer pointing back at the footer.  Readers seek to the
  trailer, load the footer, and can then decode any chunk in any order
  without touching the rest of the file.

Layout::

    "RPTRACE2"                                      file magic
    [chunk header][records...]                      repeated
    footer:  string table, chunk index
    trailer: footer offset, event count, "RPT2END\\0"

Converters to/from the v1 text format are lossless for the event
vocabulary both formats share (which is all of it).
"""

from __future__ import annotations

import os
import struct
import sys
from array import array
from typing import IO, Dict, Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from ..core.events import Event, EventKind, TraceConsumer, replay
from ..core.tracefile import TraceFileError, TraceWriter, escape_name, iter_trace

__all__ = [
    "BINARY_MAGIC",
    "NAMES_SUFFIX",
    "BinaryTraceError",
    "TruncatedChunk",
    "live_names_path",
    "ChunkMeta",
    "TraceMeta",
    "BinaryTraceWriter",
    "write_binary_trace",
    "read_trace_meta",
    "iter_binary_trace",
    "read_binary_trace",
    "iter_positioned",
    "decode_chunk",
    "ChunkColumns",
    "decode_chunk_columns",
    "columns_from_events",
    "is_binary_trace",
    "convert_v1_to_v2",
    "convert_v2_to_v1",
]

BINARY_MAGIC = b"RPTRACE2"
_TRAILER_MAGIC = b"RPT2END\0"

_RECORD = struct.Struct("<Bqq")
_CHUNK_FIXED = struct.Struct("<IIQIH")  # payload bytes, events, first pos, writes, n threads
_THREAD_COUNT = struct.Struct("<qI")    # thread id, events of that thread in the chunk
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_TRAILER = struct.Struct("<QQ8s")       # footer offset, event count, trailer magic

DEFAULT_CHUNK_EVENTS = 4096

#: suffix of the live names sidecar a streaming writer maintains next to
#: the trace (``trace.rpt2`` -> ``trace.rpt2.names``): interned routine
#: names, escaped one per line, flushed with every sealed chunk so a
#: tailer can resolve ``CALL`` ids before the footer exists.
NAMES_SUFFIX = ".names"


class BinaryTraceError(TraceFileError):
    """Raised on malformed binary trace files."""


class TruncatedChunk(BinaryTraceError):
    """A *recoverable* truncation: the trace ends mid-write.

    Raised when a v2 file has valid leading chunks but no (or a torn)
    seal — the writer is still running, or was killed between
    ``_flush_chunk`` and ``close``.  Every chunk sealed before the tear
    is intact; callers that can live with a prefix (the streaming
    tailer, crash recovery) catch this and keep what they have, unlike
    :class:`BinaryTraceError` which signals an unusable file.
    """


def live_names_path(trace_path: str) -> str:
    """Path of the live names sidecar for ``trace_path``."""
    return trace_path + NAMES_SUFFIX


class ChunkMeta(NamedTuple):
    """Metadata of one chunk, as stored in both header and footer."""

    offset: int            #: file offset of the chunk header
    payload_offset: int    #: file offset of the first record
    payload_bytes: int
    events: int
    first_pos: int         #: global position of the chunk's first event
    writes: int            #: WRITE + KERNEL_WRITE records in the chunk
    thread_counts: Dict[int, int]

    @property
    def last_pos(self) -> int:
        """Global position one past the chunk's final event."""
        return self.first_pos + self.events

    def threads(self) -> frozenset:
        return frozenset(self.thread_counts)


class TraceMeta(NamedTuple):
    """Everything the footer knows: the key to random-access decoding."""

    event_count: int
    names: List[str]
    chunks: List[ChunkMeta]

    def thread_totals(self) -> Dict[int, int]:
        """Whole-trace per-thread event counts (summed over chunks)."""
        totals: Dict[int, int] = {}
        for chunk in self.chunks:
            for thread, count in chunk.thread_counts.items():
                totals[thread] = totals.get(thread, 0) + count
        return totals


def _read_exact(stream: IO[bytes], size: int, what: str) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise BinaryTraceError(f"truncated binary trace: short read of {what}")
    return data


class BinaryTraceWriter(TraceConsumer):
    """Streams the event vocabulary to a chunked binary file.

    A drop-in stand-in for :class:`~repro.core.tracefile.TraceWriter` on binary
    streams.  Call :meth:`close` to seal the file with footer and
    trailer once recording is over; sealing is deliberately *not* tied
    to ``on_finish``, so several executions can be recorded into one
    trace (the substrates fire ``on_finish`` after each run).  The
    underlying stream is left open.

    Every sealed chunk is flushed to the OS at ``_flush_chunk`` time so
    a concurrent tailer (:mod:`repro.streaming`) sees it immediately —
    data buffered in the writer process is invisible to other processes
    and would starve any live consumer.  ``durable=True`` additionally
    ``fsync``\\ s after each chunk (and the seal), trading throughput
    for power-loss durability.  ``names_stream`` attaches a live names
    sidecar: newly interned routine names are appended (escaped, one
    per line) and flushed *with* the chunk that first references them,
    so a tailer can decode ``CALL`` ids before the footer exists.
    """

    name = "binary-trace-writer"

    def __init__(
        self,
        stream: IO[bytes],
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        durable: bool = False,
        names_stream: Optional[IO[str]] = None,
    ):
        if chunk_events <= 0:
            raise ValueError("chunk_events must be positive")
        self.stream = stream
        self.chunk_events = chunk_events
        self.durable = durable
        self.names_stream = names_stream
        self.events_written = 0
        self.chunks: List[ChunkMeta] = []
        self.closed = False
        self._name_ids: Dict[str, int] = {}
        self._names: List[str] = []
        self._names_flushed = 0
        self._buf = bytearray()
        self._buf_events = 0
        self._buf_writes = 0
        self._buf_threads: Dict[int, int] = {}
        self._buf_first_pos = 0
        stream.write(BINARY_MAGIC)

    # -- record emission ---------------------------------------------------------

    def _intern(self, name: str) -> int:
        ident = self._name_ids.get(name)
        if ident is None:
            ident = len(self._names)
            self._name_ids[name] = ident
            self._names.append(name)
        return ident

    def _add(self, kind: int, thread: int, arg: int, is_write: bool = False) -> None:
        if self.closed:
            raise BinaryTraceError("write on a sealed binary trace")
        if not self._buf_events:
            self._buf_first_pos = self.events_written
        self._buf += _RECORD.pack(kind, thread, arg)
        self._buf_events += 1
        self._buf_threads[thread] = self._buf_threads.get(thread, 0) + 1
        if is_write:
            self._buf_writes += 1
        self.events_written += 1
        if self._buf_events >= self.chunk_events:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        if not self._buf_events:
            return
        offset = self.stream.tell()
        header = _CHUNK_FIXED.pack(
            len(self._buf), self._buf_events, self._buf_first_pos,
            self._buf_writes, len(self._buf_threads),
        ) + b"".join(
            _THREAD_COUNT.pack(thread, count)
            for thread, count in sorted(self._buf_threads.items())
        )
        self.stream.write(header)
        payload_offset = self.stream.tell()
        self.stream.write(bytes(self._buf))
        self.chunks.append(ChunkMeta(
            offset, payload_offset, len(self._buf), self._buf_events,
            self._buf_first_pos, self._buf_writes, dict(self._buf_threads),
        ))
        self._buf = bytearray()
        self._buf_events = 0
        self._buf_writes = 0
        self._buf_threads = {}
        # Sidecar first: by the time the chunk's bytes hit the OS, every
        # name its CALL records reference must already be readable.
        self._flush_names()
        self._sync(self.stream)

    def _flush_names(self) -> None:
        """Append newly interned names to the live sidecar and flush."""
        if self.names_stream is None or self._names_flushed >= len(self._names):
            return
        for name in self._names[self._names_flushed:]:
            self.names_stream.write(escape_name(name) + "\n")
        self._names_flushed = len(self._names)
        self._sync(self.names_stream)

    def _sync(self, stream: IO) -> None:
        """Flush ``stream`` to the OS; fsync too when ``durable``."""
        stream.flush()
        if self.durable:
            try:
                fd = stream.fileno()
            except (AttributeError, OSError, ValueError):
                return  # in-memory stream: nothing to sync
            os.fsync(fd)

    def close(self) -> None:
        """Flush the open chunk and seal the file (idempotent)."""
        if self.closed:
            return
        self._flush_chunk()
        footer_offset = self.stream.tell()
        out = self.stream
        out.write(_U32.pack(len(self._names)))
        for name in self._names:
            raw = name.encode("utf-8")
            out.write(_U32.pack(len(raw)))
            out.write(raw)
        out.write(_U32.pack(len(self.chunks)))
        for chunk in self.chunks:
            out.write(_U64.pack(chunk.offset))
            out.write(_CHUNK_FIXED.pack(
                chunk.payload_bytes, chunk.events, chunk.first_pos,
                chunk.writes, len(chunk.thread_counts),
            ))
            for thread, count in sorted(chunk.thread_counts.items()):
                out.write(_THREAD_COUNT.pack(thread, count))
        out.write(_TRAILER.pack(footer_offset, self.events_written, _TRAILER_MAGIC))
        self._flush_names()
        self._sync(out)
        self.closed = True

    # -- TraceConsumer callbacks -------------------------------------------------

    def on_call(self, thread: int, routine: str) -> None:
        self._add(EventKind.CALL, thread, self._intern(routine))

    def on_return(self, thread: int) -> None:
        self._add(EventKind.RETURN, thread, 0)

    def on_read(self, thread: int, addr: int) -> None:
        self._add(EventKind.READ, thread, addr)

    def on_write(self, thread: int, addr: int) -> None:
        self._add(EventKind.WRITE, thread, addr, is_write=True)

    def on_kernel_read(self, thread: int, addr: int) -> None:
        self._add(EventKind.KERNEL_READ, thread, addr)

    def on_kernel_write(self, thread: int, addr: int) -> None:
        self._add(EventKind.KERNEL_WRITE, thread, addr, is_write=True)

    def on_thread_switch(self, thread: int) -> None:
        self._add(EventKind.THREAD_SWITCH, thread, thread)

    def on_cost(self, thread: int, units: int) -> None:
        self._add(EventKind.COST, thread, units)


def write_binary_trace(
    events: Iterable[Event], stream: IO[bytes],
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> int:
    """Write an event iterable as a sealed v2 trace; returns the count."""
    writer = BinaryTraceWriter(stream, chunk_events=chunk_events)
    replay(events, writer)
    writer.close()
    return writer.events_written


# -- reading ------------------------------------------------------------------


def _parse_chunk_fixed(data: bytes, stream: IO[bytes]) -> Tuple[int, int, int, int, Dict[int, int]]:
    payload_bytes, events, first_pos, writes, n_threads = _CHUNK_FIXED.unpack(data)
    counts: Dict[int, int] = {}
    raw = _read_exact(stream, _THREAD_COUNT.size * n_threads, "chunk thread table")
    for thread, count in _THREAD_COUNT.iter_unpack(raw):
        counts[thread] = count
    return payload_bytes, events, first_pos, writes, counts


def read_trace_meta(stream: IO[bytes]) -> TraceMeta:
    """Load footer metadata from a seekable v2 stream (no chunk decode).

    A stream with the right magic but a missing or torn seal raises
    :class:`TruncatedChunk` (recoverable: the writer may still be
    running, or died mid-flush — the sealed prefix is intact and a
    tailer can consume it).  Anything else malformed raises plain
    :class:`BinaryTraceError`.
    """
    stream.seek(0)
    if _read_exact(stream, len(BINARY_MAGIC), "magic") != BINARY_MAGIC:
        raise BinaryTraceError("not a binary trace (bad magic)")
    size = stream.seek(0, 2)
    if size < len(BINARY_MAGIC) + _TRAILER.size:
        raise TruncatedChunk(
            "binary trace is unsealed (no room for a trailer yet): "
            "the writer has not sealed the file")
    stream.seek(-_TRAILER.size, 2)
    trailer_offset = stream.tell()
    footer_offset, event_count, magic = _TRAILER.unpack(
        _read_exact(stream, _TRAILER.size, "trailer"))
    if magic != _TRAILER_MAGIC:
        raise TruncatedChunk(
            "binary trace is unsealed or truncated (bad trailer): "
            "writer still running, or killed mid-flush")
    if not len(BINARY_MAGIC) <= footer_offset <= trailer_offset:
        raise BinaryTraceError("corrupt trailer: footer offset out of range")
    stream.seek(footer_offset)
    (n_names,) = _U32.unpack(_read_exact(stream, _U32.size, "string table size"))
    names: List[str] = []
    for _ in range(n_names):
        (length,) = _U32.unpack(_read_exact(stream, _U32.size, "name length"))
        names.append(_read_exact(stream, length, "name").decode("utf-8"))
    (n_chunks,) = _U32.unpack(_read_exact(stream, _U32.size, "chunk index size"))
    chunks: List[ChunkMeta] = []
    for _ in range(n_chunks):
        (offset,) = _U64.unpack(_read_exact(stream, _U64.size, "chunk offset"))
        fixed = _read_exact(stream, _CHUNK_FIXED.size, "chunk index entry")
        payload_bytes, events, first_pos, writes, counts = _parse_chunk_fixed(fixed, stream)
        payload_offset = offset + _CHUNK_FIXED.size + _THREAD_COUNT.size * len(counts)
        chunks.append(ChunkMeta(offset, payload_offset, payload_bytes, events,
                                first_pos, writes, counts))
    return TraceMeta(event_count, names, chunks)


def decode_chunk(
    stream: IO[bytes], chunk: ChunkMeta, names: Sequence[str]
) -> Iterator[Tuple[int, Event]]:
    """Yield ``(global position, event)`` for every record of ``chunk``."""
    stream.seek(chunk.payload_offset)
    payload = _read_exact(stream, chunk.payload_bytes, "chunk payload")
    position = chunk.first_pos
    call = EventKind.CALL
    ret = EventKind.RETURN
    for kind, thread, arg in _RECORD.iter_unpack(payload):
        kind = EventKind(kind)
        if kind == call:
            try:
                decoded = names[arg]
            except IndexError:
                raise BinaryTraceError(f"routine id {arg} outside string table") from None
            yield position, Event(kind, thread, decoded)
        elif kind == ret:
            yield position, Event(kind, thread, None)
        else:
            yield position, Event(kind, thread, arg)
        position += 1


class ChunkColumns(NamedTuple):
    """One decoded chunk as flat event columns (the flat kernel's food).

    Instead of one :class:`~repro.core.events.Event` object per record,
    the whole chunk becomes three parallel columns indexed by record
    ordinal: ``kinds[i]`` / ``threads[i]`` / ``args[i]`` describe the
    event at global position ``first_pos + i``.  ``CALL`` arguments stay
    *interned* routine ids (indices into the trace string table) — the
    flat kernel works on integers end to end and only materialises
    routine names when a profile record is emitted.
    """

    first_pos: int    #: global position of record 0
    events: int
    kinds: bytes      #: one event-kind byte per record
    threads: array    #: ``array('q')`` of issuing thread ids
    args: array       #: ``array('q')`` of raw arguments (CALL: name id)


#: record layout constants for the strided column decode
_RECORD_BYTES = _RECORD.size          # 17: 1 kind byte + two little-endian i64
_NATIVE_I64 = sys.byteorder == "little" and array("q").itemsize == 8


def decode_chunk_columns(stream: IO[bytes], chunk: ChunkMeta) -> ChunkColumns:
    """Decode a whole chunk into :class:`ChunkColumns` in one batch.

    The fast path never touches records one by one: the kind column is a
    single strided byte slice, and each 64-bit column is reassembled
    from eight strided byte slices into an ``array('q')`` — all C-speed
    bulk copies, ~20x faster than :func:`decode_chunk`.  Hosts whose
    native 64-bit layout differs from the file's little-endian records
    fall back to ``struct.iter_unpack`` with identical results.
    """
    stream.seek(chunk.payload_offset)
    payload = _read_exact(stream, chunk.payload_bytes, "chunk payload")
    count = chunk.events
    if count * _RECORD_BYTES != len(payload):
        raise BinaryTraceError("chunk payload size disagrees with event count")
    kinds = payload[0::_RECORD_BYTES]
    threads = array("q")
    args = array("q")
    if _NATIVE_I64:
        thread_bytes = bytearray(8 * count)
        arg_bytes = bytearray(8 * count)
        for byte in range(8):
            thread_bytes[byte::8] = payload[1 + byte::_RECORD_BYTES]
            arg_bytes[byte::8] = payload[9 + byte::_RECORD_BYTES]
        threads.frombytes(bytes(thread_bytes))
        args.frombytes(bytes(arg_bytes))
    else:  # pragma: no cover - big-endian / exotic hosts
        for _, thread, arg in _RECORD.iter_unpack(payload):
            threads.append(thread)
            args.append(arg)
    return ChunkColumns(chunk.first_pos, count, kinds, threads, args)


def columns_from_events(
    events: Iterable[Event], first_pos: int = 0
) -> Tuple[ChunkColumns, List[str]]:
    """Columnarise an in-memory event stream; returns (columns, names).

    The offline flat kernel uses this when it is handed
    :class:`~repro.core.events.Event` objects instead of a v2 file:
    routine names are interned into a fresh string table so the columns
    carry the same integer vocabulary ``decode_chunk_columns`` produces.
    """
    name_ids: Dict[str, int] = {}
    names: List[str] = []
    kinds = bytearray()
    threads = array("q")
    args = array("q")
    call = EventKind.CALL
    for event in events:
        kinds.append(event.kind)
        threads.append(event.thread)
        if event.kind == call:
            ident = name_ids.get(event.arg)
            if ident is None:
                ident = len(names)
                name_ids[event.arg] = ident
                names.append(event.arg)
            args.append(ident)
        else:
            args.append(event.arg or 0)
    return ChunkColumns(first_pos, len(kinds), bytes(kinds), threads, args), names


def iter_positioned(
    stream: IO[bytes],
    meta: Optional[TraceMeta] = None,
    chunks: Optional[Sequence[ChunkMeta]] = None,
) -> Iterator[Tuple[int, Event]]:
    """Yield ``(position, event)`` over selected chunks (default: all)."""
    if meta is None:
        meta = read_trace_meta(stream)
    for chunk in (meta.chunks if chunks is None else chunks):
        yield from decode_chunk(stream, chunk, meta.names)


def iter_binary_trace(stream: IO[bytes]) -> Iterator[Event]:
    """Yield all events of a v2 trace in global order."""
    for _, event in iter_positioned(stream):
        yield event


def read_binary_trace(stream: IO[bytes]) -> List[Event]:
    """Load a whole v2 trace into memory."""
    return list(iter_binary_trace(stream))


def is_binary_trace(path: str) -> bool:
    """True when the file at ``path`` starts with the v2 magic."""
    try:
        with open(path, "rb") as stream:
            return stream.read(len(BINARY_MAGIC)) == BINARY_MAGIC
    except OSError:
        return False


# -- format conversion --------------------------------------------------------


def convert_v1_to_v2(
    text_stream: IO[str], binary_stream: IO[bytes],
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> int:
    """Re-encode a v1 text trace as a v2 binary trace; returns the count."""
    return write_binary_trace(iter_trace(text_stream), binary_stream,
                              chunk_events=chunk_events)


def convert_v2_to_v1(binary_stream: IO[bytes], text_stream: IO[str]) -> int:
    """Re-encode a v2 binary trace as a v1 text trace; returns the count."""
    writer = TraceWriter(text_stream)
    replay(iter_binary_trace(binary_stream), writer)
    return writer.events_written
