"""Shard planning: carve a chunked trace into independent work units.

The offline analysis (:mod:`repro.core.offline`) is exact per thread:
after the write index exists, thread ``t``'s profile depends only on
``t``'s own events and the (immutable) index.  A *shard* is therefore a
set of whole threads plus the chunk subset a worker must decode to
analyse them:

* every chunk containing a write (by anyone) — the worker rebuilds the
  write index locally from those, which is cheaper than pickling a
  shared index across process boundaries;
* every chunk containing at least one event of an assigned thread.

Two planning strategies, chosen automatically:

* ``by-thread`` (default): longest-processing-time bin packing of
  threads into ``jobs`` bins by their whole-trace event counts.  Best
  when thread activity is roughly uniform.
* ``by-chunks`` (skew fallback): when a few threads dominate the trace,
  per-thread totals make LPT degenerate (one giant bin, idle workers).
  The fallback walks the chunk index in trace order, cutting shard
  boundaries at chunk granularity so each shard owns a contiguous
  chunk *range*'s worth of events; a thread belongs to the shard
  covering the range where it first appears.  Threads stay whole (the
  per-thread automaton is sequential — splitting one would break
  exactness), but phased workloads balance better because shard
  boundaries follow trace time instead of thread identity.

Either way the plan is exhaustive and disjoint: every thread of the
trace appears in exactly one shard, which the differential tests rely
on.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

from .binfmt import ChunkMeta, TraceMeta

__all__ = ["Shard", "ShardPlan", "plan_shards"]

#: a thread holding more than this share of all events marks the trace
#: as skewed (thread-level LPT cannot balance it across jobs)
SKEW_THRESHOLD = 0.5


class Shard(NamedTuple):
    """One unit of farm work: whole threads + the chunks to decode."""

    shard_id: int
    threads: Tuple[int, ...]
    chunk_indices: Tuple[int, ...]   #: chunks the worker decodes (threads ∪ writes)
    events: int                      #: assigned threads' event total (load estimate)


class ShardPlan(NamedTuple):
    strategy: str                    #: "by-thread" | "by-chunks" | "empty"
    shards: List[Shard]

    def total_events(self) -> int:
        return sum(shard.events for shard in self.shards)


def _chunks_for(threads: frozenset, chunks: Sequence[ChunkMeta]) -> Tuple[int, ...]:
    """Indices of every chunk a worker for ``threads`` must decode."""
    needed = []
    for index, chunk in enumerate(chunks):
        if chunk.writes or not threads.isdisjoint(chunk.thread_counts):
            needed.append(index)
    return tuple(needed)


def _pack_by_thread(totals: Dict[int, int], jobs: int) -> List[List[int]]:
    """LPT bin packing: heaviest thread first, into the lightest bin."""
    loads = [0] * jobs
    bins: List[List[int]] = [[] for _ in range(jobs)]
    for thread, count in sorted(totals.items(), key=lambda item: (-item[1], item[0])):
        slot = min(range(jobs), key=loads.__getitem__)
        bins[slot].append(thread)
        loads[slot] += count
    return [sorted(members) for members in bins if members]


def _pack_by_chunks(
    totals: Dict[int, int], chunks: Sequence[ChunkMeta], jobs: int
) -> List[List[int]]:
    """Skew fallback: cut shard boundaries along the chunk sequence.

    Threads are claimed by the shard whose chunk range sees them first;
    a boundary falls whenever the running event total passes the next
    ``1/jobs`` slice of the trace.
    """
    target = max(1, sum(totals.values()) // jobs)
    groups: List[List[int]] = [[]]
    claimed: Dict[int, None] = {}
    running = 0
    for chunk in chunks:
        for thread in sorted(chunk.thread_counts):
            if thread not in claimed:
                claimed[thread] = None
                groups[-1].append(thread)
        running += chunk.events
        if running >= target and len(groups) < jobs:
            running = 0
            groups.append([])
    return [sorted(group) for group in groups if group]


def plan_shards(meta: TraceMeta, jobs: int) -> ShardPlan:
    """Plan at most ``jobs`` shards covering every thread of ``meta``."""
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    totals = meta.thread_totals()
    if not totals:
        return ShardPlan("empty", [])
    total_events = sum(totals.values())
    skewed = (
        len(totals) > 1
        and jobs > 1
        and max(totals.values()) > SKEW_THRESHOLD * total_events
    )
    if skewed:
        strategy = "by-chunks"
        groups = _pack_by_chunks(totals, meta.chunks, jobs)
    else:
        strategy = "by-thread"
        groups = _pack_by_thread(totals, jobs)

    shards = []
    for shard_id, members in enumerate(groups):
        member_set = frozenset(members)
        shards.append(Shard(
            shard_id,
            tuple(members),
            _chunks_for(member_set, meta.chunks),
            sum(totals[thread] for thread in members),
        ))
    return ShardPlan(strategy, shards)
