"""Farm orchestration: trace file in, merged profile database out.

``analyze_file`` drives the whole pipeline:

1. ensure the trace is format v2 (v1 text traces are converted to a
   temporary binary file first — the farm only plans over chunk
   indices);
2. plan shards from the chunk index (:mod:`repro.farm.shards`);
3. run :func:`repro.farm.worker.run_shard` for every shard — on a
   ``concurrent.futures`` process pool when ``jobs > 1``, inline
   otherwise;
4. merge the per-shard databases (:mod:`repro.farm.merge`) into one
   profile, bit-identical to the online ``TrmsProfiler``.

Failure policy (the part a benchmark never shows): every shard gets up
to ``1 + retries`` pool attempts with a per-shard ``timeout``; a worker
that crashes, raises, or times out is resubmitted on a fresh pool, and
a shard that exhausts its attempts — or a pool that cannot be created
at all — degrades to inline execution in the coordinator.  The farm
therefore *always* returns the exact result; parallelism is strictly a
performance property.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..core.profile_data import ProfileDatabase
from .binfmt import DEFAULT_CHUNK_EVENTS, convert_v1_to_v2, is_binary_trace, read_trace_meta
from .merge import merge_databases
from .shards import ShardPlan, plan_shards
from .worker import ShardTask, WorkerResult, run_shard

__all__ = ["ShardOutcome", "FarmStats", "FarmResult", "analyze_file", "analyze_events"]

#: per-shard pool attempts beyond the first
DEFAULT_RETRIES = 2


class ShardOutcome(NamedTuple):
    """How one shard fared: where it ran, how often, how fast."""

    shard_id: int
    threads: Tuple[int, ...]
    events: int          #: events decoded by the worker (shard chunks)
    seconds: float       #: in-worker analysis wall time
    attempts: int        #: pool submissions consumed (0 when inline-only)
    where: str           #: "pool" | "inline"

    @property
    def events_per_s(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0


class FarmStats(NamedTuple):
    """Aggregate run report, rendered by ``reporting.render_farm_stats``."""

    strategy: str
    jobs: int
    outcomes: List[ShardOutcome]
    retries: int         #: failed pool attempts that were retried
    fallbacks: int       #: shards that ended up running inline
    pool_failures: int   #: broken pools / failed pool creations observed
    wall_seconds: float
    event_count: int     #: events in the trace (not per-shard decode work)


class FarmResult(NamedTuple):
    db: ProfileDatabase
    stats: FarmStats


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _run_inline(task: ShardTask) -> WorkerResult:
    return run_shard(task._replace(fault=None))


def _run_pool(
    tasks: Sequence[ShardTask],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    progress: Optional[Callable[[str], None]],
) -> Tuple[Dict[int, WorkerResult], Dict[int, int], List[ShardTask], int, int]:
    """Pool phase: returns (results, attempts, leftover-for-inline, retried, pool_failures)."""
    from concurrent.futures import TimeoutError as FutureTimeout
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    results: Dict[int, WorkerResult] = {}
    attempts: Dict[int, int] = {task.shard_id: 0 for task in tasks}
    leftover: List[ShardTask] = []
    pending = list(tasks)
    retried = 0
    pool_failures = 0

    while pending:
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)), mp_context=_pool_context())
        except Exception as error:  # pool cannot even start: degrade fully
            pool_failures += 1
            if progress:
                progress(f"farm: process pool unavailable ({error}); running inline\n")
            leftover.extend(pending)
            return results, attempts, leftover, retried, pool_failures

        futures = {}
        failed: List[ShardTask] = []
        broken = False
        try:
            for task in pending:
                attempts[task.shard_id] += 1
                futures[task.shard_id] = executor.submit(run_shard, task)
            for task in pending:
                try:
                    result = futures[task.shard_id].result(timeout=timeout)
                    results[task.shard_id] = result
                except BrokenProcessPool:
                    broken = True
                    failed.append(task)
                except FutureTimeout:
                    broken = True  # a hung worker poisons its slot: recycle the pool
                    failed.append(task)
                except Exception:
                    failed.append(task)
        finally:
            if broken:
                pool_failures += 1
                executor.shutdown(wait=False, cancel_futures=True)
            else:
                executor.shutdown(wait=True)

        pending = []
        for task in failed:
            if attempts[task.shard_id] <= retries:
                retried += 1
                if progress:
                    progress(f"farm: shard {task.shard_id} failed "
                             f"(attempt {attempts[task.shard_id]}), retrying\n")
                pending.append(task)
            else:
                if progress:
                    progress(f"farm: shard {task.shard_id} exhausted "
                             f"{attempts[task.shard_id]} attempts; falling back inline\n")
                leftover.append(task)
    return results, attempts, leftover, retried, pool_failures


def analyze_file(
    path: str,
    jobs: Optional[int] = None,
    context_sensitive: bool = False,
    keep_activations: bool = False,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
    progress: Optional[Callable[[str], None]] = None,
    faults: Optional[Dict[int, Tuple]] = None,
) -> FarmResult:
    """Analyse a recorded trace (v1 or v2) with the farm; exact by contract.

    ``faults`` maps shard ids to :class:`~repro.farm.worker.ShardTask`
    fault specs — test hooks for the retry and fallback paths; inline
    (fallback) execution always strips faults, so an injected fault can
    delay but never corrupt the result.
    """
    started = time.perf_counter()
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, jobs)

    temp_path: Optional[str] = None
    try:
        if not is_binary_trace(path):
            handle, temp_path = tempfile.mkstemp(suffix=".rpt2")
            with os.fdopen(handle, "wb") as binary, \
                    open(path, "r", encoding="utf-8") as text:
                convert_v1_to_v2(text, binary, chunk_events=chunk_events)
            trace_path = temp_path
        else:
            trace_path = path

        with open(trace_path, "rb") as stream:
            meta = read_trace_meta(stream)
        plan: ShardPlan = plan_shards(meta, jobs)

        tasks = [
            ShardTask(
                trace_path, shard.shard_id, shard.threads, shard.chunk_indices,
                context_sensitive=context_sensitive,
                keep_activations=keep_activations,
                fault=(faults or {}).get(shard.shard_id),
            )
            for shard in plan.shards
        ]

        results: Dict[int, WorkerResult] = {}
        attempts: Dict[int, int] = {task.shard_id: 0 for task in tasks}
        inline: List[ShardTask] = []
        retried = 0
        pool_failures = 0
        if jobs > 1 and len(tasks) > 1:
            results, attempts, inline, retried, pool_failures = _run_pool(
                tasks, jobs, timeout, retries, progress)
        else:
            inline = list(tasks)

        fallbacks = 0
        outcomes: List[ShardOutcome] = []
        for task in tasks:
            if task.shard_id in results:
                where = "pool"
                result = results[task.shard_id]
            else:
                where = "inline"
                if jobs > 1 and len(tasks) > 1:
                    fallbacks += 1
                result = _run_inline(task)
                results[task.shard_id] = result
            outcomes.append(ShardOutcome(
                task.shard_id, task.threads, result.events_decoded,
                result.seconds, attempts[task.shard_id], where,
            ))
        del inline  # every task not in `results` was just run above

        merged = merge_databases(
            (results[task.shard_id].db for task in tasks),
            keep_activations=keep_activations,
        )
        stats = FarmStats(
            plan.strategy, jobs, outcomes, retried, fallbacks, pool_failures,
            time.perf_counter() - started, meta.event_count,
        )
        return FarmResult(merged, stats)
    finally:
        if temp_path is not None:
            try:
                os.unlink(temp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def analyze_events(
    events,
    jobs: Optional[int] = None,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
    **kwargs,
) -> FarmResult:
    """Farm-analyse an in-memory event stream (spools to a temp v2 file)."""
    from .binfmt import write_binary_trace

    handle, path = tempfile.mkstemp(suffix=".rpt2")
    try:
        with os.fdopen(handle, "wb") as stream:
            write_binary_trace(events, stream, chunk_events=chunk_events)
        return analyze_file(path, jobs=jobs, chunk_events=chunk_events, **kwargs)
    finally:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
