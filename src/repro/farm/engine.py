"""Farm orchestration: trace file in, merged profile database out.

``analyze_file`` drives the whole pipeline:

1. ensure the trace is format v2 (v1 text traces are converted to a
   temporary binary file first — the farm only plans over chunk
   indices);
2. plan shards from the chunk index (:mod:`repro.farm.shards`);
3. run :func:`repro.farm.worker.run_shard` for every shard — on a
   ``concurrent.futures`` process pool when ``jobs > 1``, inline
   otherwise;
4. merge the per-shard databases (:mod:`repro.farm.merge`) into one
   profile, bit-identical to the online ``TrmsProfiler``.

Failure policy (the part a benchmark never shows): every shard gets up
to ``1 + retries`` pool attempts with a per-shard ``timeout``; a worker
that crashes, raises, or times out is resubmitted on a fresh pool, and
a shard that exhausts its attempts — or a pool that cannot be created
at all — degrades to inline execution in the coordinator.  The farm
therefore *always* returns the exact result; parallelism is strictly a
performance property.

Observability: the run is traced end to end.  Every phase (convert,
plan, pool, inline fallback, merge) is a telemetry span; workers
append heartbeats and phase spans to per-shard files the coordinator
tails while it waits — live progress via the ``progress`` callback,
worker spans re-emitted into the session's event log.  The farm also
keeps its own always-on :class:`~repro.telemetry.MetricsRegistry`
(mirrored into the session telemetry when one is live): per-shard
retries, timeouts and fallbacks are *counted there* and surface in
:class:`FarmStats` for ``render_farm_stats``.  None of this touches
profile state — the differential tests run with telemetry on and off
and demand bit-identical output.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import time
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from .. import telemetry
from ..core.profile_data import ProfileDatabase
from ..telemetry import MetricsRegistry
from .binfmt import DEFAULT_CHUNK_EVENTS, convert_v1_to_v2, is_binary_trace, read_trace_meta
from .merge import merge_databases
from .shards import ShardPlan, plan_shards
from .worker import DEFAULT_HEARTBEAT_EVENTS, ShardTask, WorkerResult, run_shard

__all__ = ["ShardOutcome", "FarmStats", "FarmResult", "analyze_file", "analyze_events"]

#: per-shard pool attempts beyond the first
DEFAULT_RETRIES = 2

#: seconds between heartbeat-driven progress reports
PROGRESS_INTERVAL = 0.5

#: pool wait quantum: how often heartbeats are polled while blocked
POLL_INTERVAL = 0.1


class ShardOutcome(NamedTuple):
    """How one shard fared: where it ran, how often, how fast."""

    shard_id: int
    threads: Tuple[int, ...]
    events: int          #: events decoded by the worker (shard chunks)
    seconds: float       #: in-worker analysis wall time
    attempts: int        #: pool submissions consumed (0 when inline-only)
    where: str           #: "pool" | "inline"
    retries: int = 0     #: failed pool attempts of this shard
    timeouts: int = 0    #: of those, how many were per-shard timeouts
    decode_seconds: float = 0.0
    analyze_seconds: float = 0.0
    max_rss_kb: int = 0  #: worker peak RSS (heartbeat-reported)
    heartbeats: int = 0  #: heartbeat records received from this shard

    @property
    def events_per_s(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0


class FarmStats(NamedTuple):
    """Aggregate run report, rendered by ``reporting.render_farm_stats``."""

    strategy: str
    jobs: int
    outcomes: List[ShardOutcome]
    retries: int         #: failed pool attempts that were retried
    fallbacks: int       #: shards that ended up running inline
    pool_failures: int   #: broken pools / failed pool creations observed
    wall_seconds: float
    event_count: int     #: events in the trace (not per-shard decode work)
    metrics: Optional[List[Dict]] = None   #: farm registry snapshot
    kernel: str = "classic"   #: analysis kernel the workers ran


class FarmResult(NamedTuple):
    db: ProfileDatabase
    stats: FarmStats


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _run_inline(task: ShardTask) -> WorkerResult:
    return run_shard(task._replace(fault=None))


class _HeartbeatWatcher:
    """Tails the per-shard heartbeat files the coordinator hands out.

    ``poll`` is called from the pool wait loop: it reads any new JSONL
    records, keeps per-shard progress state, and (throttled) reports a
    one-line progress summary through the ``progress`` callback.  All
    harvested records are kept so worker spans and heartbeats can be
    re-emitted into the session telemetry once the run settles.
    """

    def __init__(self, directory: str, progress: Optional[Callable[[str], None]]):
        self.directory = directory
        self.progress = progress
        self.records: List[Dict] = []
        self.state: Dict[int, Dict] = {}
        self._offsets: Dict[str, int] = {}
        self._partial: Dict[str, str] = {}
        self._last_report = time.perf_counter()

    def _consume(self, record: Dict) -> None:
        self.records.append(record)
        if record.get("type") != "heartbeat":
            return
        shard = record.get("shard", -1)
        state = self.state.setdefault(
            shard, {"phase": "?", "events": 0, "rss_kb": 0, "beats": 0, "wall": 0.0})
        state["phase"] = record.get("phase", "?")
        state["events"] = max(state["events"], record.get("events", 0))
        state["rss_kb"] = max(state["rss_kb"], record.get("rss_kb", 0))
        state["wall"] = max(state["wall"], record.get("wall", 0.0))
        state["beats"] += 1

    def poll(self, report: bool = True) -> None:
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "r", encoding="utf-8") as stream:
                    stream.seek(self._offsets.get(name, 0))
                    data = stream.read()
                    self._offsets[name] = stream.tell()
            except OSError:
                continue
            if not data:
                continue
            data = self._partial.pop(name, "") + data
            lines = data.split("\n")
            if not data.endswith("\n"):
                self._partial[name] = lines.pop()
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    self._consume(record)
        if report:
            self._report()

    def _report(self) -> None:
        now = time.perf_counter()
        if self.progress is None or not self.state:
            return
        if now - self._last_report < PROGRESS_INTERVAL:
            return
        self._last_report = now
        live = [shard for shard in sorted(self.state)
                if self.state[shard]["phase"] != "done"]
        if not live:
            return
        parts = [f"shard {shard} {self.state[shard]['phase']} "
                 f"{self.state[shard]['events']:,} events"
                 for shard in live]
        self.progress("farm: " + "; ".join(parts) + "\n")

    def summary(self, shard_id: int) -> Dict:
        return self.state.get(
            shard_id, {"phase": "?", "events": 0, "rss_kb": 0, "beats": 0, "wall": 0.0})


def _run_pool(
    tasks: Sequence[ShardTask],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    progress: Optional[Callable[[str], None]],
    watcher: Optional[_HeartbeatWatcher] = None,
    on_failure: Optional[Callable[[int, str], None]] = None,
) -> Tuple[Dict[int, WorkerResult], Dict[int, int], List[ShardTask], int, int]:
    """Pool phase: returns (results, attempts, leftover-for-inline, retried, pool_failures).

    Waiting is a poll loop (``concurrent.futures.wait`` in
    :data:`POLL_INTERVAL` quanta) so heartbeats surface while workers
    run.  The per-shard ``timeout`` clock starts when the shard is
    *observed running* — a task queued behind a hung sibling is never
    charged for the wait.  ``on_failure(shard_id, "timeout" | "error")``
    reports every failed pool attempt as it is classified.
    """
    from concurrent.futures import FIRST_COMPLETED, wait
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    results: Dict[int, WorkerResult] = {}
    attempts: Dict[int, int] = {task.shard_id: 0 for task in tasks}
    leftover: List[ShardTask] = []
    pending = list(tasks)
    retried = 0
    pool_failures = 0

    while pending:
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)), mp_context=_pool_context())
        except Exception as error:  # pool cannot even start: degrade fully
            pool_failures += 1
            if progress:
                progress(f"farm: process pool unavailable ({error}); running inline\n")
            leftover.extend(pending)
            return results, attempts, leftover, retried, pool_failures

        failed: List[ShardTask] = []
        broken = False
        started_at: Dict[int, float] = {}
        try:
            futures = {}
            for task in pending:
                attempts[task.shard_id] += 1
                futures[executor.submit(run_shard, task)] = task
            outstanding = set(futures)
            while outstanding:
                done, _ = wait(outstanding, timeout=POLL_INTERVAL,
                               return_when=FIRST_COMPLETED)
                now = time.perf_counter()
                for future in done:
                    task = futures[future]
                    outstanding.discard(future)
                    try:
                        results[task.shard_id] = future.result()
                    except BrokenProcessPool:
                        broken = True
                        failed.append(task)
                        if on_failure:
                            on_failure(task.shard_id, "error")
                    except Exception:
                        failed.append(task)
                        if on_failure:
                            on_failure(task.shard_id, "error")
                for future in list(outstanding):
                    task = futures[future]
                    if future.running():
                        started_at.setdefault(task.shard_id, now)
                    ran_for = now - started_at.get(task.shard_id, now)
                    if timeout is not None and ran_for > timeout:
                        # a hung worker poisons its slot: abandon the
                        # future, recycle the whole pool afterwards
                        outstanding.discard(future)
                        future.cancel()
                        broken = True
                        failed.append(task)
                        if on_failure:
                            on_failure(task.shard_id, "timeout")
                if watcher is not None:
                    watcher.poll()
        finally:
            if broken:
                pool_failures += 1
                executor.shutdown(wait=False, cancel_futures=True)
            else:
                executor.shutdown(wait=True)

        pending = []
        for task in failed:
            if attempts[task.shard_id] <= retries:
                retried += 1
                if progress:
                    progress(f"farm: shard {task.shard_id} failed "
                             f"(attempt {attempts[task.shard_id]}), retrying\n")
                pending.append(task)
            else:
                if progress:
                    progress(f"farm: shard {task.shard_id} exhausted "
                             f"{attempts[task.shard_id]} attempts; falling back inline\n")
                leftover.append(task)
    return results, attempts, leftover, retried, pool_failures


def analyze_file(
    path: str,
    jobs: Optional[int] = None,
    context_sensitive: bool = False,
    keep_activations: bool = False,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
    progress: Optional[Callable[[str], None]] = None,
    faults: Optional[Dict[int, Tuple]] = None,
    heartbeat_events: int = DEFAULT_HEARTBEAT_EVENTS,
    kernel: str = "auto",
) -> FarmResult:
    """Analyse a recorded trace (v1 or v2) with the farm; exact by contract.

    ``kernel`` selects the per-worker analysis implementation:
    ``"flat"`` (the columnar single-pass kernel of
    :mod:`repro.core.flatkernel`), ``"classic"`` (the two-pass
    object-per-event machinery), or ``"auto"`` (the default — resolves
    to ``"flat"``).  Both kernels are bit-identical by contract; the
    differential tests run every benchmark through both.

    ``faults`` maps shard ids to :class:`~repro.farm.worker.ShardTask`
    fault specs — test hooks for the retry and fallback paths; inline
    (fallback) execution always strips faults, so an injected fault can
    delay but never corrupt the result.
    """
    if kernel not in ("auto", "flat", "classic"):
        raise ValueError(f"unknown analysis kernel {kernel!r}")
    if kernel == "auto":
        kernel = "flat"
    started = time.perf_counter()
    tele = telemetry.current()
    farm_metrics = MetricsRegistry()

    def bump(name: str, amount: int = 1, **labels) -> None:
        farm_metrics.counter(name, **labels).inc(amount)
        tele.counter(name, **labels).inc(amount)

    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, jobs)

    temp_path: Optional[str] = None
    heartbeat_dir = tempfile.mkdtemp(prefix="repro-farm-hb-")
    try:
        if not is_binary_trace(path):
            with tele.span("analyze.convert", source=os.path.basename(path)):
                handle, temp_path = tempfile.mkstemp(suffix=".rpt2")
                with os.fdopen(handle, "wb") as binary, \
                        open(path, "r", encoding="utf-8") as text:
                    convert_v1_to_v2(text, binary, chunk_events=chunk_events)
            trace_path = temp_path
        else:
            trace_path = path

        with tele.span("analyze.plan", jobs=jobs):
            with open(trace_path, "rb") as stream:
                meta = read_trace_meta(stream)
            plan: ShardPlan = plan_shards(meta, jobs)
        bump("farm.trace_events", meta.event_count)
        bump("farm.shards", len(plan.shards))
        farm_metrics.gauge("farm.jobs").set(jobs)
        tele.gauge("farm.jobs").set(jobs)

        tasks = [
            ShardTask(
                trace_path, shard.shard_id, shard.threads, shard.chunk_indices,
                context_sensitive=context_sensitive,
                keep_activations=keep_activations,
                fault=(faults or {}).get(shard.shard_id),
                heartbeat_path=os.path.join(
                    heartbeat_dir, f"shard-{shard.shard_id}.jsonl"),
                heartbeat_events=heartbeat_events,
                kernel=kernel,
            )
            for shard in plan.shards
        ]
        watcher = _HeartbeatWatcher(heartbeat_dir, progress)

        def on_failure(shard_id: int, kind: str) -> None:
            bump("farm.shard.retries", shard=shard_id)
            if kind == "timeout":
                bump("farm.shard.timeouts", shard=shard_id)

        results: Dict[int, WorkerResult] = {}
        attempts: Dict[int, int] = {task.shard_id: 0 for task in tasks}
        retried = 0
        pool_failures = 0
        pool_span_id: Optional[int] = None
        if jobs > 1 and len(tasks) > 1:
            with tele.span("analyze.pool", jobs=jobs, shards=len(tasks)) as pool_span:
                pool_span_id = pool_span.span_id or None
                results, attempts, _, retried, pool_failures = _run_pool(
                    tasks, jobs, timeout, retries, progress, watcher, on_failure)
        bump("farm.pool_failures", pool_failures)

        fallbacks = 0
        for task in tasks:
            if task.shard_id not in results:
                if jobs > 1 and len(tasks) > 1:
                    fallbacks += 1
                    bump("farm.shard.fallbacks", shard=task.shard_id)
                with tele.span("analyze.inline", shard=task.shard_id):
                    results[task.shard_id] = _run_inline(task)

        with tele.span("analyze.merge", shards=len(tasks)):
            merged = merge_databases(
                (results[task.shard_id].db for task in tasks),
                keep_activations=keep_activations,
            )

        # settle the heartbeat channel: final poll, re-emit worker
        # records into the session event log, account the totals
        watcher.poll(report=False)
        for record in watcher.records:
            if record.get("type") == "span" and pool_span_id is not None:
                record = {**record, "parent": pool_span_id}
            tele.emit(record)
        bump("farm.heartbeats",
             sum(1 for record in watcher.records
                 if record.get("type") == "heartbeat"))

        outcomes: List[ShardOutcome] = []
        for task in tasks:
            result = results[task.shard_id]
            where = "pool" if result.pid != os.getpid() else "inline"
            beat = watcher.summary(task.shard_id)
            bump("farm.shard.events", result.events_decoded, shard=task.shard_id)
            bump("farm.kernel.events", result.events_decoded, kernel=result.kernel)
            farm_metrics.histogram("farm.shard_ms").observe(result.seconds * 1000)
            tele.histogram("farm.shard_ms").observe(result.seconds * 1000)
            outcomes.append(ShardOutcome(
                task.shard_id, task.threads, result.events_decoded,
                result.seconds, attempts[task.shard_id], where,
                # per-shard failure tallies come from the telemetry
                # counters the failure callbacks incremented above
                retries=farm_metrics.counter(
                    "farm.shard.retries", shard=task.shard_id).value,
                timeouts=farm_metrics.counter(
                    "farm.shard.timeouts", shard=task.shard_id).value,
                decode_seconds=result.decode_seconds,
                analyze_seconds=result.analyze_seconds,
                max_rss_kb=max(result.max_rss_kb, beat["rss_kb"]),
                heartbeats=beat["beats"],
            ))

        stats = FarmStats(
            plan.strategy, jobs, outcomes, retried, fallbacks, pool_failures,
            time.perf_counter() - started, meta.event_count,
            metrics=farm_metrics.snapshot(), kernel=kernel,
        )
        return FarmResult(merged, stats)
    finally:
        shutil.rmtree(heartbeat_dir, ignore_errors=True)
        if temp_path is not None:
            try:
                os.unlink(temp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def analyze_events(
    events,
    jobs: Optional[int] = None,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
    **kwargs,
) -> FarmResult:
    """Farm-analyse an in-memory event stream (spools to a temp v2 file)."""
    from .binfmt import write_binary_trace

    handle, path = tempfile.mkstemp(suffix=".rpt2")
    try:
        with os.fdopen(handle, "wb") as stream:
            write_binary_trace(events, stream, chunk_events=chunk_events)
        return analyze_file(path, jobs=jobs, chunk_events=chunk_events, **kwargs)
    finally:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
