"""Associative merging of profile databases, and a lossless dump format.

Cost plots aggregate with per-field semantics that make the merge of
two :class:`~repro.core.profile_data.ProfileDatabase` objects exact:

* per ``(routine, thread, size)`` point: ``calls`` and ``cost_sum`` /
  ``cost_sumsq`` add, ``cost_min`` / ``cost_max`` take min/max — this
  is :meth:`SizeStats.merge`, and it is associative and commutative
  because each field's combiner is;
* per ``(routine, thread)`` profile: the induced-input tallies add;
* per database: the session-global induced counters add, raw
  activation records concatenate, and the sampling lower-bound flag
  ORs (one sampled constituent makes every merged size a lower bound).

Because the per-thread databases a farm run produces are key-disjoint,
merging them reconstructs exactly what a single sequential analysis
would have built.  The same operation applied to profiles of
*independent executions* of one program folds many runs into a single,
richer cost plot — more distinct sizes, tighter envelopes — which is
the paper's per-plot aggregation extended across runs.

The dump format (``repro-profile 1``) serialises everything the merge
needs bit-exactly: unlike the plot-point TSV of
:mod:`repro.reporting.report`, it carries ``cost_sumsq``, the per-
profile induced splits, the global induced counters, and the
lower-bound flag.  Raw activation records are deliberately not stored
(they are a debugging aid, unbounded in size).
"""

from __future__ import annotations

from typing import IO, Iterable, List, Optional

from ..core.profile_data import ProfileDatabase, RoutineProfile, SizeStats
from ..core.tracefile import TraceFileError, escape_name, unescape_name

__all__ = [
    "PROFILE_MAGIC",
    "ProfileDumpError",
    "copy_database",
    "merge_into",
    "merge_databases",
    "save_profile",
    "load_profile",
    "is_profile_dump",
]

PROFILE_MAGIC = "repro-profile 1"


class ProfileDumpError(TraceFileError):
    """Raised on malformed profile dump files."""


def _copy_profile(profile: RoutineProfile) -> RoutineProfile:
    clone = RoutineProfile(profile.routine, profile.thread)
    clone.merge(profile)
    return clone


def copy_database(db: ProfileDatabase) -> ProfileDatabase:
    """Deep copy of the mergeable state of ``db``."""
    clone = ProfileDatabase(keep_activations=db.keep_activations)
    merge_into(clone, db)
    return clone


def merge_into(dst: ProfileDatabase, src: ProfileDatabase) -> ProfileDatabase:
    """Fold ``src`` into ``dst`` (exact, associative); returns ``dst``.

    ``src`` is not modified; profiles new to ``dst`` are deep-copied so
    later merges into ``dst`` never alias ``src``'s state.
    """
    for key, profile in src._profiles.items():
        mine = dst._profiles.get(key)
        if mine is None:
            dst._profiles[key] = _copy_profile(profile)
        else:
            mine.merge(profile)
    dst.global_induced_thread += src.global_induced_thread
    dst.global_induced_external += src.global_induced_external
    dst.activations.extend(src.activations)
    dst.sizes_lower_bound = dst.sizes_lower_bound or src.sizes_lower_bound
    return dst


def merge_databases(
    databases: Iterable[ProfileDatabase],
    keep_activations: bool = False,
) -> ProfileDatabase:
    """Merge any number of databases into a fresh one.

    Works for the two farm cases alike: per-shard databases of one run
    (key-disjoint — the result equals the sequential analysis) and
    databases of independent runs (overlapping keys — points merge).
    """
    merged = ProfileDatabase(keep_activations=keep_activations)
    for db in databases:
        merge_into(merged, db)
    return merged


# -- persistence --------------------------------------------------------------


def save_profile(db: ProfileDatabase, stream: IO[str]) -> int:
    """Write ``db`` as a ``repro-profile 1`` dump; returns the point count.

    Line vocabulary: ``F`` flags, ``G`` global induced counters, ``P``
    opens a (routine, thread) profile, ``S`` one size point of the open
    profile.  Routine names are escaped like v1 trace routine names.
    """
    stream.write(PROFILE_MAGIC + "\n")
    stream.write(f"F lower_bound={int(db.sizes_lower_bound)}\n")
    stream.write(f"G {db.global_induced_thread} {db.global_induced_external}\n")
    count = 0
    for key in sorted(db._profiles):
        profile = db._profiles[key]
        stream.write(
            f"P {escape_name(profile.routine)}\t{profile.thread}\t"
            f"{profile.induced_thread_sum}\t{profile.induced_external_sum}\n"
        )
        for size in sorted(profile.points):
            stats = profile.points[size]
            stream.write(
                f"S {size} {stats.calls} {stats.cost_min} {stats.cost_max} "
                f"{stats.cost_sum} {stats.cost_sumsq}\n"
            )
            count += 1
    return count


def load_profile(stream: IO[str]) -> ProfileDatabase:
    """Rebuild a database from :func:`save_profile` output (exact)."""
    header = stream.readline().rstrip("\n")
    if header != PROFILE_MAGIC:
        raise ProfileDumpError(f"not a profile dump (header {header!r})")
    db = ProfileDatabase()
    profile: Optional[RoutineProfile] = None
    for line_no, line in enumerate(stream, start=2):
        line = line.rstrip("\n")
        if not line:
            continue
        tag, _, rest = line.partition(" ")
        try:
            if tag == "F":
                for flag in rest.split():
                    name, _, value = flag.partition("=")
                    if name == "lower_bound":
                        db.sizes_lower_bound = bool(int(value))
            elif tag == "G":
                thread_part, external_part = rest.split()
                db.global_induced_thread = int(thread_part)
                db.global_induced_external = int(external_part)
            elif tag == "P":
                name_text, thread_text, ind_thread, ind_external = rest.split("\t")
                profile = RoutineProfile(unescape_name(name_text), int(thread_text))
                profile.induced_thread_sum = int(ind_thread)
                profile.induced_external_sum = int(ind_external)
                db._profiles[(profile.routine, profile.thread)] = profile
            elif tag == "S":
                if profile is None:
                    raise ValueError("size point before any profile")
                size, calls, cost_min, cost_max, cost_sum, cost_sumsq = (
                    int(field) for field in rest.split()
                )
                stats = SizeStats()
                stats.calls = calls
                stats.cost_min = cost_min
                stats.cost_max = cost_max
                stats.cost_sum = cost_sum
                stats.cost_sumsq = cost_sumsq
                profile.points[size] = stats
                profile.calls += calls
                profile.size_sum += size * calls
                profile.cost_sum += cost_sum
            else:
                raise ValueError(f"unknown record tag {tag!r}")
        except (ValueError, TraceFileError) as error:
            raise ProfileDumpError(f"line {line_no}: {error}") from None
    return db


def is_profile_dump(path: str) -> bool:
    """True when the file at ``path`` starts with the profile magic."""
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as stream:
            return stream.readline().rstrip("\n") == PROFILE_MAGIC
    except OSError:
        return False
