"""Asymptotic model family for empirical cost functions.

Input-sensitive profiles pair input sizes with costs; fitting those
points against a small family of classical complexity models lets the
profiler *name* the growth rate of a routine (Figure 6 of the paper uses
exactly this kind of standard curve fitting to tell a linear rms trend
from a super-linear trms trend).

Each model is affine in one basis function: ``cost ≈ a * g(n) + b`` with
``a >= 0``.  Affinity keeps fitting closed-form (ordinary least squares
on a single regressor) while still covering the distinctions that matter
for asymptotic diagnosis: constant, logarithmic, linear, linearithmic,
quadratic, quadratic-log, cubic and exponential growth.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

__all__ = ["Model", "DEFAULT_FAMILY", "model_by_name"]


class Model:
    """One asymptotic hypothesis ``cost ≈ a * basis(n) + b``."""

    def __init__(self, name: str, basis: Callable[[float], float], order: int):
        self.name = name
        self.basis = basis
        #: rank of the model inside the default family, used to break
        #: near-ties in favour of the slower-growing hypothesis
        self.order = order

    def transform(self, sizes: Sequence[float]) -> List[float]:
        """Apply the basis to each size (sizes below 1 are clamped to 1,
        so log-type bases stay defined at the tiny inputs real profiles
        contain)."""
        return [self.basis(max(float(n), 1.0)) for n in sizes]

    def evaluate(self, n: float, a: float, b: float) -> float:
        """Predicted cost at input size ``n`` for coefficients ``a, b``."""
        return a * self.basis(max(float(n), 1.0)) + b

    def __repr__(self) -> str:
        return f"Model({self.name!r})"


def _exp_basis(n: float) -> float:
    # Cap the exponent: beyond ~60 doublings every finite cost is "exponential
    # enough", and the cap keeps the regression finite on wide size ranges.
    return 2.0 ** min(n, 60.0)


DEFAULT_FAMILY: List[Model] = [
    Model("O(1)", lambda n: 1.0, 0),
    Model("O(log n)", lambda n: math.log2(n + 1.0), 1),
    Model("O(sqrt n)", math.sqrt, 2),
    Model("O(n)", lambda n: n, 3),
    Model("O(n log n)", lambda n: n * math.log2(n + 1.0), 4),
    Model("O(n^2)", lambda n: n * n, 5),
    Model("O(n^2 log n)", lambda n: n * n * math.log2(n + 1.0), 6),
    Model("O(n^3)", lambda n: n * n * n, 7),
    Model("O(2^n)", _exp_basis, 8),
]


def model_by_name(name: str) -> Model:
    """Look up a model of the default family by its display name."""
    for model in DEFAULT_FAMILY:
        if model.name == name:
            return model
    raise KeyError(f"unknown model {name!r}")
