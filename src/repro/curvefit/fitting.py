"""Least-squares fitting of cost plots against asymptotic models.

Given the ``(size, cost)`` points of a routine's worst-case (or average)
cost plot, :func:`fit` estimates the coefficients of one model by
ordinary least squares on its basis, and :func:`fit_power_law` estimates
a free exponent by log-log regression — the quick "is this super-linear?"
check used in the Figure 6 reproduction.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence, Tuple

from .models import Model

__all__ = ["FitResult", "fit", "fit_power_law", "PowerLawFit"]


class FitResult(NamedTuple):
    """Outcome of fitting one model to a cost plot."""

    model: Model
    a: float
    b: float
    #: residual sum of squares
    rss: float
    #: coefficient of determination in [0, 1] (1 = perfect fit)
    r2: float

    def predict(self, n: float) -> float:
        return self.model.evaluate(n, self.a, self.b)


def _ols(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Ordinary least squares for ``y = a*x + b`` (closed form)."""
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0.0:
        return 0.0, mean_y
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    a = sxy / sxx
    return a, mean_y - a * mean_x


def fit(points: Sequence[Tuple[float, float]], model: Model) -> FitResult:
    """Fit ``model`` to ``(size, cost)`` points.

    The slope is clamped to be non-negative: a cost function decreasing
    in its own basis is never evidence *for* that growth class, and the
    clamp stops pathological plots from producing negative predictions.
    Raises ValueError on an empty plot.
    """
    if not points:
        raise ValueError("cannot fit an empty cost plot")
    sizes = [p[0] for p in points]
    costs = [float(p[1]) for p in points]
    xs = model.transform(sizes)
    a, b = _ols(xs, costs)
    if a < 0.0:
        a = 0.0
        b = sum(costs) / len(costs)
    rss = sum((y - (a * x + b)) ** 2 for x, y in zip(xs, costs))
    mean_y = sum(costs) / len(costs)
    tss = sum((y - mean_y) ** 2 for y in costs)
    r2 = 1.0 if tss == 0.0 else max(0.0, 1.0 - rss / tss)
    return FitResult(model, a, b, rss, r2)


class PowerLawFit(NamedTuple):
    """Log-log regression result: ``cost ≈ c * n^exponent``."""

    exponent: float
    coefficient: float
    r2: float

    def predict(self, n: float) -> float:
        return self.coefficient * max(float(n), 1.0) ** self.exponent


def fit_power_law(points: Sequence[Tuple[float, float]]) -> PowerLawFit:
    """Estimate a free exponent from ``(size, cost)`` points.

    Points with non-positive size or cost are dropped (they carry no
    log-log information).  Raises ValueError when fewer than two usable
    points remain — an exponent needs a slope.
    """
    usable = [(n, c) for n, c in points if n > 0 and c > 0]
    if len(usable) < 2:
        raise ValueError("power-law fit needs at least two positive points")
    log_n = [math.log(n) for n, _ in usable]
    log_c = [math.log(c) for _, c in usable]
    exponent, intercept = _ols(log_n, log_c)
    rss = sum((y - (exponent * x + intercept)) ** 2 for x, y in zip(log_n, log_c))
    mean_y = sum(log_c) / len(log_c)
    tss = sum((y - mean_y) ** 2 for y in log_c)
    r2 = 1.0 if tss == 0.0 else max(0.0, 1.0 - rss / tss)
    return PowerLawFit(exponent, math.exp(intercept), r2)
