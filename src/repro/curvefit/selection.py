"""Model selection: naming the growth rate of a cost plot.

:func:`select_model` fits every model of a family and ranks them.  Plain
RSS comparison systematically over-selects fast-growing models (a cubic
can always bend itself around linear data), so ranking uses a
parsimony-aware score: among models whose RSS is within ``tolerance`` of
the best, the *slowest-growing* one wins.  This mirrors how a human reads
the paper's cost plots — "the trend is linear unless the data genuinely
demands more".
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

from .fitting import FitResult, fit
from .models import DEFAULT_FAMILY, Model

__all__ = ["Selection", "select_model", "classify_growth", "rank_models"]


class Selection(NamedTuple):
    """Result of model selection over a family."""

    best: FitResult
    ranking: List[FitResult]

    @property
    def name(self) -> str:
        return self.best.model.name


def rank_models(
    points: Sequence[Tuple[float, float]],
    family: Optional[Sequence[Model]] = None,
) -> List[FitResult]:
    """All fits, ordered by residual sum of squares (best first)."""
    family = DEFAULT_FAMILY if family is None else family
    fits = [fit(points, model) for model in family]
    fits.sort(key=lambda result: result.rss)
    return fits


def select_model(
    points: Sequence[Tuple[float, float]],
    family: Optional[Sequence[Model]] = None,
    tolerance: float = 0.10,
) -> Selection:
    """Pick the best model for a cost plot.

    Args:
        points: ``(size, cost)`` pairs (a worst-case or average plot).
        family: candidate models; defaults to :data:`DEFAULT_FAMILY`.
        tolerance: relative RSS slack within which a slower-growing model
            is preferred over a faster-growing one.

    Raises ValueError on an empty plot (propagated from :func:`fit`).
    """
    ranking = rank_models(points, family)
    best_rss = ranking[0].rss
    threshold = best_rss * (1.0 + tolerance) + 1e-12
    candidates = [result for result in ranking if result.rss <= threshold]
    best = min(candidates, key=lambda result: result.model.order)
    return Selection(best, ranking)


def classify_growth(
    points: Sequence[Tuple[float, float]],
    family: Optional[Sequence[Model]] = None,
) -> str:
    """Convenience wrapper: the name of the selected growth class."""
    return select_model(points, family).name
