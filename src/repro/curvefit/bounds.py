"""Empirical asymptotic bound testing (the guess-ratio method).

Least-squares model selection (``selection.py``) picks the family member
that best *explains* the data; experimental algorithmics (McGeoch et
al., which the paper builds on for its curve analysis) asks a subtler
question: is the data **consistent with** a hypothesised bound
``f(n) = O(g(n))``?

The guess-ratio heuristic answers it from the ratio series
``r(n) = f(n) / g(n)`` over increasing ``n``:

* if the ratios trend *upward*, ``g`` under-estimates the growth — the
  bound hypothesis is rejected;
* if they trend downward toward 0, ``g`` over-estimates (``f = o(g)``);
* if they flatten to a positive constant, ``g`` is a tight guess
  (``f = Theta(g)``).

Trend is judged by the normalised slope of the ratio tail (second half
of the series), which is robust to the small-``n`` transient where
lower-order terms dominate.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence, Tuple

from .models import DEFAULT_FAMILY, Model

__all__ = ["RatioVerdict", "ratio_test", "empirical_bound", "TREND_TOLERANCE"]

#: |normalised slope| below this counts as "flat"
TREND_TOLERANCE = 0.15


class RatioVerdict(NamedTuple):
    """Outcome of one guess-ratio test."""

    model: Model
    #: normalised trend of the ratio tail: (last - first) / mean
    trend: float
    #: data consistent with f = O(g)?
    is_upper_bound: bool
    #: ratios flat and positive: f = Theta(g)?
    is_tight: bool

    @property
    def verdict(self) -> str:
        if not self.is_upper_bound:
            return "rejected"
        return "tight" if self.is_tight else "loose"


def _tail_trend(ratios: Sequence[float]) -> float:
    """Normalised first-to-last change over the tail of the series."""
    tail = list(ratios[len(ratios) // 2:])
    if len(tail) < 2:
        tail = list(ratios)
    mean = sum(tail) / len(tail)
    if mean == 0.0:
        return 0.0
    return (tail[-1] - tail[0]) / mean


def ratio_test(
    points: Sequence[Tuple[float, float]],
    model: Model,
    tolerance: float = TREND_TOLERANCE,
) -> RatioVerdict:
    """Test ``cost = O(model)`` against a cost plot.

    Requires at least four points with positive sizes (ratios need a
    discernible trend); raises ValueError otherwise.
    """
    usable = sorted((n, c) for n, c in points if n > 0)
    if len(usable) < 4:
        raise ValueError("ratio test needs at least four positive-size points")
    ratios = [cost / model.basis(float(n)) for n, cost in usable]
    trend = _tail_trend(ratios)
    is_upper = trend <= tolerance
    is_tight = is_upper and trend >= -tolerance and ratios[-1] > 0
    return RatioVerdict(model, trend, is_upper, is_tight)


def empirical_bound(
    points: Sequence[Tuple[float, float]],
    family: Optional[Sequence[Model]] = None,
    tolerance: float = TREND_TOLERANCE,
) -> RatioVerdict:
    """The smallest family member that upper-bounds the data.

    Walks the family from slowest- to fastest-growing and returns the
    first accepted hypothesis; falls back to the fastest-growing member
    (marked loose/rejected as measured) when nothing is accepted.
    """
    family = list(DEFAULT_FAMILY if family is None else family)
    family.sort(key=lambda model: model.order)
    last = None
    for model in family:
        last = ratio_test(points, model, tolerance)
        if last.is_upper_bound:
            return last
    return last
