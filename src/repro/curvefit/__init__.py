"""Empirical cost-function fitting for input-sensitive profiles."""

from .bounds import RatioVerdict, empirical_bound, ratio_test
from .fitting import FitResult, PowerLawFit, fit, fit_power_law
from .models import DEFAULT_FAMILY, Model, model_by_name
from .selection import Selection, classify_growth, rank_models, select_model

__all__ = [
    "RatioVerdict",
    "empirical_bound",
    "ratio_test",
    "FitResult",
    "PowerLawFit",
    "fit",
    "fit_power_law",
    "DEFAULT_FAMILY",
    "Model",
    "model_by_name",
    "Selection",
    "classify_growth",
    "rank_models",
    "select_model",
]
