"""Automatic call/return tracing through ``sys.setprofile``.

The ``@traced`` decorator is explicit and cheap, but instrumenting a
large codebase by hand is tedious.  :class:`AutoTracer` hooks CPython's
profiling callback instead: every Python-level call and return inside
the ``with`` block is forwarded to the session, filtered so that only
*application* frames count — the profiler's own machinery, the standard
library and installed packages stay invisible, like Valgrind tools that
skip their own code.

Per-thread call depth is tracked explicitly, so enabling the tracer in
the middle of a call stack never unbalances the shadow stacks: returns
of frames whose calls predate the tracer are ignored.

Usage::

    session = TraceSession(tools=EventBus([RmsProfiler()]))
    with session, AutoTracer(session):
        my_unmodified_function(data)     # calls/returns traced

Threads started *inside* the block are hooked too (via
``threading.setprofile``); data accesses still need tracked containers —
CPython exposes calls, not loads and stores.
"""

from __future__ import annotations

import os
import sys
import sysconfig
import threading
from typing import Callable, List, Optional

from .api import TraceSession

__all__ = ["AutoTracer", "default_include"]

_REPRO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_STDLIB = sysconfig.get_paths().get("stdlib", "")
_EXCLUDED_PREFIXES = tuple(
    prefix for prefix in (_REPRO_ROOT, _STDLIB) if prefix
) + ("<",)  # "<string>", "<frozen ...>" and friends
_EXCLUDED_PARTS = ("site-packages", "dist-packages")


def _thread_profile_hook():
    """The profile hook future threads would start with, if any.

    ``threading.getprofile`` arrived in 3.10; older interpreters keep
    the hook in ``threading._profile_hook``.
    """
    getter = getattr(threading, "getprofile", None)
    if getter is not None:
        return getter()
    return getattr(threading, "_profile_hook", None)  # pragma: no cover - 3.9


def default_include(code) -> bool:
    """Default frame filter: application code only.

    Excludes this package, the standard library, installed packages and
    synthetic filenames — everything a user profiling *their* program
    would not want in the call tree.
    """
    filename = code.co_filename
    if filename.startswith(_EXCLUDED_PREFIXES):
        return False
    return not any(part in filename for part in _EXCLUDED_PARTS)


class AutoTracer:
    """Context manager installing the profile hook for a session.

    Args:
        session: the active :class:`TraceSession` to feed.
        include: predicate on code objects; defaults to
            :func:`default_include`.  Only matching frames produce
            call/return events (non-matching frames are transparent:
            their callees still get traced).
    """

    def __init__(self, session: TraceSession,
                 include: Optional[Callable] = None):
        self.session = session
        self.include = include or default_include
        self._stacks = threading.local()
        self._previous_profile = None
        self._previous_thread_profile = None

    # -- hook plumbing ---------------------------------------------------------

    def _stack(self) -> List[bool]:
        stack = getattr(self._stacks, "frames", None)
        if stack is None:
            stack = []
            self._stacks.frames = stack
        return stack

    def _hook(self, frame, event: str, arg) -> None:
        if event == "call":
            matched = self.include(frame.f_code)
            self._stack().append(matched)
            if matched:
                self.session._enter_routine(frame.f_code.co_name)
        elif event == "return":
            stack = self._stack()
            if not stack:
                return   # the call predates the tracer: ignore
            if stack.pop():
                self.session._exit_routine()
        # c_call / c_return / exceptions: invisible, like the VM's ALU ops

    def __enter__(self) -> "AutoTracer":
        self._previous_profile = sys.getprofile()
        self._previous_thread_profile = _thread_profile_hook()
        threading.setprofile(self._hook)
        sys.setprofile(self._hook)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # restore both hooks symmetrically: clobbering the threading
        # hook with None would silently unhook an enclosing tracer (or
        # any other profiler) for every thread started afterwards
        sys.setprofile(self._previous_profile)
        threading.setprofile(self._previous_thread_profile)
        # unwind anything the hook opened and never saw return
        stack = getattr(self._stacks, "frames", None)
        while stack:
            if stack.pop():
                self.session._exit_routine()
