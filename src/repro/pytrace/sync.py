"""Thread and lock wrappers that report synchronization to the session.

These are thin veneers over :mod:`threading` that emit the
create/join/acquire/release hints the helgrind comparator (and any
future happens-before analysis) consumes.  The profilers themselves
ignore synchronization events — the TRMS algorithm needs none.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from .api import TraceSession, current_session

__all__ = ["TracedThread", "TracedLock", "spawn"]


class TracedThread(threading.Thread):
    """A thread whose creation and join are reported to ``session``.

    The session reference is captured at construction (the spawning
    thread's active session), so the child emits into the same stream.
    """

    def __init__(self, session: TraceSession, target: Callable, args=(), kwargs=None,
                 name: Optional[str] = None):
        self._session = session
        self._target_fn = target
        self._target_args = args
        self._target_kwargs = kwargs or {}
        #: profiling id, reserved before start (OS idents are recycled)
        self.tid = session.reserve_thread_id()
        super().__init__(name=name, daemon=True)

    def run(self) -> None:  # pragma: no cover - exercised via start()
        self._session.bind_current_thread(self.tid)
        self._target_fn(*self._target_args, **self._target_kwargs)

    def start(self) -> None:
        self._session.thread_created(self.tid)
        super().start()

    def join(self, timeout: Optional[float] = None) -> None:
        super().join(timeout)
        if not self.is_alive():
            self._session.thread_joined(self.tid)


def spawn(target: Callable, *args, session: Optional[TraceSession] = None) -> TracedThread:
    """Start a :class:`TracedThread` in the given (or current) session."""
    session = session or current_session()
    if session is None:
        raise RuntimeError("spawn() requires an active TraceSession")
    thread = TracedThread(session, target, args)
    thread.start()
    return thread


class TracedLock:
    """A mutex that reports acquire/release to the session."""

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, session: TraceSession, name: Optional[str] = None):
        self.session = session
        self._lock = threading.Lock()
        if name is None:
            with TracedLock._counter_lock:
                TracedLock._counter += 1
                name = f"pylock-{TracedLock._counter}"
        self.name = name

    def acquire(self) -> None:
        self._lock.acquire()
        self.session.lock_acquired(self.name)

    def release(self) -> None:
        self.session.lock_released(self.name)
        self._lock.release()

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()
