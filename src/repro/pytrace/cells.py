"""Tracked containers: Python data with observable cell accesses.

Each container element occupies one synthetic cell address allocated
from its session; indexing emits read/write events through the session.
``raw_*`` accessors bypass event emission — they exist for the kernel
I/O paths (a buffer fill is not a thread access) and for test
assertions, never for traced application logic.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Sequence

from .api import TraceSession

__all__ = ["TrackedArray", "TrackedList", "TrackedDict"]


class TrackedArray:
    """Fixed-size array of tracked cells."""

    def __init__(self, session: TraceSession, size: int, fill=0):
        if size < 0:
            raise ValueError(f"negative array size {size}")
        self.session = session
        self.base = session.alloc(max(size, 1))
        self._values: List = [fill] * size

    def __len__(self) -> int:
        return len(self._values)

    def addr_of(self, index: int) -> int:
        """Synthetic address of element ``index``."""
        return self.base + index

    def __getitem__(self, index: int):
        value = self._values[index]          # raises IndexError first
        if index < 0:
            index += len(self._values)
        self.session.emit_read(self.base + index)
        return value

    def __setitem__(self, index: int, value) -> None:
        self._values[index] = value
        if index < 0:
            index += len(self._values)
        self.session.emit_write(self.base + index)

    def __iter__(self) -> Iterator:
        for index in range(len(self._values)):
            yield self[index]

    # untracked accessors (kernel paths and test assertions only) -------------

    def raw_get(self, index: int):
        return self._values[index]

    def raw_set(self, index: int, value) -> None:
        self._values[index] = value

    def raw_fill(self, offset: int, values: Sequence) -> None:
        for index, value in enumerate(values):
            self._values[offset + index] = value

    def snapshot(self) -> List:
        """Untracked copy of the contents."""
        return list(self._values)


class TrackedList:
    """Growable list of tracked cells.

    Append allocates a fresh cell (and emits the write); element access
    behaves like :class:`TrackedArray`.  Cells are allocated one at a
    time, so address contiguity is *not* guaranteed — profilers never
    rely on it.
    """

    def __init__(self, session: TraceSession, values: Iterable = ()):
        self.session = session
        self._values: List = []
        self._addrs: List[int] = []
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        return len(self._values)

    def addr_of(self, index: int) -> int:
        return self._addrs[index]

    def append(self, value) -> None:
        addr = self.session.alloc(1)
        self._values.append(value)
        self._addrs.append(addr)
        self.session.emit_write(addr)

    def pop(self):
        value = self._values.pop()
        addr = self._addrs.pop()
        self.session.emit_read(addr)
        return value

    def __getitem__(self, index: int):
        value = self._values[index]
        self.session.emit_read(self._addrs[index])
        return value

    def __setitem__(self, index: int, value) -> None:
        self._values[index] = value
        self.session.emit_write(self._addrs[index])

    def __iter__(self) -> Iterator:
        for index in range(len(self._values)):
            yield self[index]

    def raw_get(self, index: int):
        return self._values[index]

    def snapshot(self) -> List:
        return list(self._values)


class TrackedDict:
    """Mapping from hashable keys to tracked value cells.

    Key lookup itself is untracked (hashing is interpreter machinery);
    reading or writing a value touches that key's cell.  Deleting a key
    retires its cell; re-inserting the key allocates a fresh one.
    """

    def __init__(self, session: TraceSession):
        self.session = session
        self._values: Dict[Hashable, object] = {}
        self._addrs: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def addr_of(self, key: Hashable) -> int:
        return self._addrs[key]

    def __getitem__(self, key: Hashable):
        value = self._values[key]            # raises KeyError first
        self.session.emit_read(self._addrs[key])
        return value

    def get(self, key: Hashable, default=None):
        if key not in self._values:
            return default
        return self[key]

    def __setitem__(self, key: Hashable, value) -> None:
        addr = self._addrs.get(key)
        if addr is None:
            addr = self.session.alloc(1)
            self._addrs[key] = addr
        self._values[key] = value
        self.session.emit_write(addr)

    def __delitem__(self, key: Hashable) -> None:
        del self._values[key]
        del self._addrs[key]

    def keys(self):
        return self._values.keys()

    def items(self) -> Iterator:
        for key in list(self._values):
            yield key, self[key]

    def snapshot(self) -> Dict:
        return dict(self._values)
