"""Tracing sessions: input-sensitive profiling of real Python code.

CPython will not let us observe native memory traffic, so this substrate
traces at the level the interpreter *can* see (the calibration hint for
this reproduction: "interpreter-level tracing only"):

* data lives in **tracked containers** (:mod:`repro.pytrace.cells`)
  whose element accesses emit read/write events on synthetic cell
  addresses;
* routines are marked with the :func:`traced` decorator, emitting
  call/return events;
* kernel-mediated I/O goes through :meth:`TraceSession.kernel_fill` /
  :meth:`TraceSession.kernel_drain`, emitting per-cell
  ``kernelWrite``/``kernelRead`` events exactly like the VM's syscalls;
* cost is charged per tracked operation (the substrate's analogue of
  the paper's basic-block count), plus one unit per routine call.

A session serializes event emission across Python threads (the paper's
tool runs under Valgrind's serializing scheduler; here a lock around
each event gives the consumers one consistent total order) and inserts
``switchThread`` events whenever the emitting thread changes.

Usage::

    session = TraceSession(tools=EventBus([TrmsProfiler()]))

    @traced
    def work(data):
        return sum(data[i] for i in range(len(data)))

    with session:
        data = session.array(100, fill=1)
        work(data)
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.events import TraceConsumer

__all__ = ["TraceSession", "traced", "current_session"]

_active = threading.local()
_session_stack: List["TraceSession"] = []
_session_guard = threading.Lock()


def current_session() -> Optional["TraceSession"]:
    """The innermost active session, or None outside any ``with`` block."""
    if _session_stack:
        return _session_stack[-1]
    return None


def traced(fn: Callable) -> Callable:
    """Mark ``fn`` as a routine: activations emit call/return events.

    Outside an active session the wrapper adds (almost) nothing: it
    checks for a session and calls through.
    """

    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        session = current_session()
        if session is None:
            return fn(*args, **kwargs)
        session._enter_routine(name)
        try:
            return fn(*args, **kwargs)
        finally:
            session._exit_routine()

    wrapper.__traced__ = True
    return wrapper


class TraceSession:
    """One profiling session over Python code.

    Args:
        tools: the analysis consumer(s); None runs "native" (containers
            still work, nothing is emitted — the overhead baseline).
        call_cost: cost units charged per routine activation.
        op_cost: cost units charged per tracked element access.
    """

    def __init__(
        self,
        tools: Optional[TraceConsumer] = None,
        call_cost: int = 1,
        op_cost: int = 1,
    ):
        self.tools = tools
        self.call_cost = call_cost
        self.op_cost = op_cost
        self._lock = threading.RLock()
        self._next_addr = 1
        self._thread_ids: Dict[int, int] = {}
        self._next_thread = 1
        self._last_thread: Optional[int] = None
        self._entered = False
        #: operation counters, for tests and overhead accounting
        self.ops = 0

    # -- session lifecycle -------------------------------------------------------

    def __enter__(self) -> "TraceSession":
        with _session_guard:
            _session_stack.append(self)
        self._entered = True
        if self.tools is not None:
            self.tools.on_start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.tools is not None:
            self.tools.on_finish()
        with _session_guard:
            _session_stack.remove(self)
        self._entered = False

    # -- identity ----------------------------------------------------------------

    def thread_id(self) -> int:
        """Small, stable id of the calling thread (assigned on first use)."""
        ident = threading.get_ident()
        tid = self._thread_ids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._thread_ids.get(ident)
                if tid is None:
                    tid = self._next_thread
                    self._next_thread += 1
                    self._thread_ids[ident] = tid
        return tid

    def reserve_thread_id(self) -> int:
        """Pre-assign an id for a thread about to be spawned.

        OS thread identifiers are recycled, so a child must get a fresh
        profiling id *before* it starts and bind it on entry
        (:meth:`bind_current_thread`); otherwise a recycled ident would
        alias the new thread onto a finished one's profile.
        """
        with self._lock:
            tid = self._next_thread
            self._next_thread += 1
            return tid

    def bind_current_thread(self, tid: int) -> None:
        """Bind the calling OS thread to a reserved profiling id."""
        with self._lock:
            self._thread_ids[threading.get_ident()] = tid

    def alloc(self, size: int) -> int:
        """Reserve ``size`` fresh synthetic cell addresses; return the base."""
        with self._lock:
            base = self._next_addr
            self._next_addr += size
        if self.tools is not None:
            with self._lock:
                tid = self.thread_id()
                self._switch(tid)
                self.tools.on_alloc(tid, base, size)
        return base

    # -- event emission -----------------------------------------------------------

    def _switch(self, tid: int) -> None:
        if tid != self._last_thread:
            self._last_thread = tid
            self.tools.on_thread_switch(tid)

    def emit_read(self, addr: int) -> None:
        self.ops += 1
        if self.tools is None:
            return
        with self._lock:
            tid = self.thread_id()
            self._switch(tid)
            self.tools.on_read(tid, addr)
            if self.op_cost:
                self.tools.on_cost(tid, self.op_cost)

    def emit_write(self, addr: int) -> None:
        self.ops += 1
        if self.tools is None:
            return
        with self._lock:
            tid = self.thread_id()
            self._switch(tid)
            self.tools.on_write(tid, addr)
            if self.op_cost:
                self.tools.on_cost(tid, self.op_cost)

    def charge(self, units: int) -> None:
        """Charge explicit cost units (compute not visible as data ops)."""
        if self.tools is None or units <= 0:
            return
        with self._lock:
            tid = self.thread_id()
            self._switch(tid)
            self.tools.on_cost(tid, units)

    def _enter_routine(self, name: str) -> None:
        if self.tools is None:
            return
        with self._lock:
            tid = self.thread_id()
            self._switch(tid)
            self.tools.on_call(tid, name)
            if self.call_cost:
                self.tools.on_cost(tid, self.call_cost)

    def _exit_routine(self) -> None:
        if self.tools is None:
            return
        with self._lock:
            tid = self.thread_id()
            self._switch(tid)
            self.tools.on_return(tid)

    # -- kernel-mediated I/O ---------------------------------------------------------

    def kernel_fill(self, array, offset: int, values: Sequence) -> None:
        """The kernel fills ``array[offset:offset+len(values)]``.

        Emits one ``kernelWrite`` per cell and stores the values without
        counting thread reads/writes — the Figure 12 semantics: a buffer
        load is not input until the thread actually reads it.
        """
        if self.tools is None:
            array.raw_fill(offset, values)
            return
        with self._lock:
            tid = self.thread_id()
            self._switch(tid)
            for index, value in enumerate(values):
                array.raw_set(offset + index, value)
                self.tools.on_kernel_write(tid, array.addr_of(offset + index))

    def kernel_drain(self, array, offset: int, count: int) -> List:
        """The kernel reads ``count`` cells (the thread sends data out).

        Emits one ``kernelRead`` per cell (input consumption by the
        thread, per Figure 12) and returns the values.
        """
        if self.tools is None:
            return [array.raw_get(offset + index) for index in range(count)]
        values = []
        with self._lock:
            tid = self.thread_id()
            self._switch(tid)
            for index in range(count):
                values.append(array.raw_get(offset + index))
                self.tools.on_kernel_read(tid, array.addr_of(offset + index))
        return values

    # -- synchronization hints ----------------------------------------------------------

    def lock_acquired(self, lock_id) -> None:
        if self.tools is None:
            return
        with self._lock:
            tid = self.thread_id()
            self._switch(tid)
            self.tools.on_lock_acquire(tid, lock_id)

    def lock_released(self, lock_id) -> None:
        if self.tools is None:
            return
        with self._lock:
            tid = self.thread_id()
            self._switch(tid)
            self.tools.on_lock_release(tid, lock_id)

    def thread_created(self, child_tid: int) -> None:
        """Record that the calling thread spawned profiling id ``child_tid``."""
        if self.tools is None:
            return
        with self._lock:
            parent = self.thread_id()
            self._switch(parent)
            self.tools.on_thread_create(parent, child_tid)

    def thread_joined(self, child_tid: int) -> None:
        if self.tools is None:
            return
        with self._lock:
            parent = self.thread_id()
            self._switch(parent)
            self.tools.on_thread_join(parent, child_tid)

    # -- container factories (convenience) ------------------------------------------------

    def array(self, size: int, fill=0):
        """A fresh TrackedArray bound to this session."""
        from .cells import TrackedArray

        return TrackedArray(self, size, fill=fill)

    def list(self, values: Iterable = ()):
        """A fresh growable TrackedList bound to this session."""
        from .cells import TrackedList

        return TrackedList(self, values)

    def dict(self):
        """A fresh TrackedDict bound to this session."""
        from .cells import TrackedDict

        return TrackedDict(self)
