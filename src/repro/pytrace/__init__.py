"""Pure-Python tracing substrate: profile real Python code."""

from .api import TraceSession, current_session, traced
from .autotrace import AutoTracer, default_include
from .cells import TrackedArray, TrackedDict, TrackedList
from .sync import TracedLock, TracedThread, spawn

__all__ = [
    "AutoTracer",
    "default_include",
    "TraceSession",
    "current_session",
    "traced",
    "TrackedArray",
    "TrackedDict",
    "TrackedList",
    "TracedLock",
    "TracedThread",
    "spawn",
]
