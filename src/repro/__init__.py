"""repro — Input-sensitive profiling (aprof, PLDI 2012) in pure Python.

An input-sensitive profiler estimates, for every routine activation, the
*size of the input* the activation worked on, and pairs it with the
activation's cost — turning a profile from one number per routine into an
empirical *cost function* per routine.  This package reproduces:

* the PLDI 2012 ``aprof`` system: the read memory size (RMS) metric and
  the single-pass latest-access profiling algorithm (:mod:`repro.core`);
* its multithreaded extension: the threaded read memory size (TRMS)
  metric, handling input induced by other threads and by kernel I/O;
* the substrates the evaluation needs: a Valgrind-like tracing VM
  (:mod:`repro.vm`), a pure-Python tracing harness
  (:mod:`repro.pytrace`), comparator analysis tools
  (:mod:`repro.tools`), a mini relational database (:mod:`repro.minidb`)
  and an image pipeline (:mod:`repro.vipslike`) standing in for the
  paper's MySQL and vips case studies, synthetic benchmark suites
  (:mod:`repro.workloads`), curve fitting (:mod:`repro.curvefit`) and
  reporting (:mod:`repro.reporting`).

Quickstart::

    from repro.vm import Machine, programs
    from repro.core import TrmsProfiler, EventBus

    profiler = TrmsProfiler()
    machine = Machine(programs.producer_consumer(items=64), tools=EventBus([profiler]))
    machine.run()
    for profile in profiler.db:
        print(profile.routine, profile.worst_case_points())
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "curvefit",
    "vm",
    "pytrace",
    "tools",
    "minidb",
    "vipslike",
    "workloads",
    "reporting",
]
