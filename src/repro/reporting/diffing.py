"""Profile diffing: find asymptotic regressions between two runs.

The pay-off of cost *functions* over cost *numbers*: two profiles of
different program versions (or configurations) can be compared where it
matters — does any routine now **scale worse**?  A routine that got 20%
slower everywhere is a constant-factor regression; a routine whose
growth class moved from O(n) to O(n^2) is a time bomb that a flat
profile diff at today's input sizes would miss entirely.

:func:`diff_databases` classifies each routine:

* ``regressed`` / ``improved`` — the fitted growth class changed rank;
* ``slower`` / ``faster`` — same class, but the predicted cost at the
  common largest input moved beyond a tolerance;
* ``unchanged`` — same class, comparable constants;
* ``added`` / ``removed`` — only one side has (fittable) data.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..core.profile_data import ProfileDatabase
from ..curvefit.models import model_by_name
from ..curvefit.selection import select_model
from .ascii_charts import table

__all__ = [
    "ProfileDiff",
    "SEVERITY",
    "MIN_FIT_POINTS",
    "classify_pair",
    "diff_databases",
    "render_diff",
]

#: verdict ranking shared with the observatory drift detector — the
#: alert feed and the pairwise diff sort by the same urgency
SEVERITY = {"regressed": 0, "slower": 1, "added": 2, "removed": 3,
            "unchanged": 4, "faster": 5, "improved": 6}

#: a growth class needs at least this many distinct plot points: below
#: it every affine model fits exactly (two points determine any basis),
#: so "fitting" would classify noise, not growth
MIN_FIT_POINTS = 3


class ProfileDiff(NamedTuple):
    """One routine's before/after comparison."""

    routine: str
    verdict: str          # regressed | improved | slower | faster | unchanged | added | removed
    old_growth: Optional[str]
    new_growth: Optional[str]
    #: new predicted cost / old predicted cost at the common largest size
    cost_ratio: Optional[float]


def classify_pair(
    old_order: int, new_order: int, ratio: Optional[float],
    tolerance: float = 1.30,
) -> str:
    """Verdict for one (old, new) growth-class pair.

    ``ratio`` is the predicted-cost ratio at the common largest input
    size; None (incomparable constants) degrades gracefully to a pure
    class-rank comparison.
    """
    if new_order > old_order:
        return "regressed"
    if new_order < old_order:
        return "improved"
    if ratio is not None:
        if ratio > tolerance:
            return "slower"
        if ratio < 1.0 / tolerance:
            return "faster"
    return "unchanged"


def _fit(db: ProfileDatabase, routine: str, min_points: int):
    """(selection, points) — selection is None when unfittable.

    Unfittable means absent, or fewer than ``max(min_points,
    MIN_FIT_POINTS)`` distinct sizes: such routines classify as
    added/removed instead of producing a degenerate O(1) fit that
    would mis-rank against the other side.
    """
    profile = db.merged().get(routine)
    if profile is None:
        return None, None
    points = profile.worst_case_points()
    if len(points) < max(min_points, MIN_FIT_POINTS):
        return None, points
    try:
        return select_model(points), points
    except ValueError:
        return None, points


def diff_databases(
    old_db: ProfileDatabase,
    new_db: ProfileDatabase,
    min_points: int = 4,
    tolerance: float = 1.30,
) -> List[ProfileDiff]:
    """Compare two databases routine by routine (worst diffs first).

    ``tolerance`` is the cost ratio beyond which a same-class routine
    counts as slower/faster.
    """
    routines = sorted(set(old_db.routines()) | set(new_db.routines()))
    diffs: List[ProfileDiff] = []
    for routine in routines:
        old_selection, old_points = _fit(old_db, routine, min_points)
        new_selection, new_points = _fit(new_db, routine, min_points)
        if old_selection is None and new_selection is None:
            continue
        if old_selection is None:
            diffs.append(ProfileDiff(routine, "added", None,
                                     new_selection.name, None))
            continue
        if new_selection is None:
            diffs.append(ProfileDiff(routine, "removed",
                                     old_selection.name, None, None))
            continue
        common_max = min(old_points[-1][0], new_points[-1][0])
        old_cost = old_selection.best.predict(common_max)
        new_cost = max(new_selection.best.predict(common_max), 0.0)
        # a vanishing old prediction makes the ratio meaningless, not
        # infinite — leave it None and judge by class rank alone
        ratio = new_cost / old_cost if old_cost > 1e-9 else None
        verdict = classify_pair(
            model_by_name(old_selection.name).order,
            model_by_name(new_selection.name).order,
            ratio, tolerance,
        )
        diffs.append(ProfileDiff(routine, verdict, old_selection.name,
                                 new_selection.name, ratio))

    diffs.sort(key=lambda diff: (SEVERITY[diff.verdict],
                                 -(diff.cost_ratio or 0.0)))
    return diffs


def render_diff(old_db: ProfileDatabase, new_db: ProfileDatabase,
                min_points: int = 4, tolerance: float = 1.30) -> str:
    """Human-readable regression report."""
    diffs = diff_databases(old_db, new_db, min_points=min_points,
                           tolerance=tolerance)
    rows = [
        [
            diff.routine,
            diff.verdict,
            diff.old_growth or "-",
            diff.new_growth or "-",
            f"{diff.cost_ratio:.2f}x" if diff.cost_ratio is not None else "-",
        ]
        for diff in diffs
    ]
    return table(
        ["routine", "verdict", "old growth", "new growth", "cost ratio"],
        rows, title="Profile diff (worst first)",
    )
