"""Asymptotic bottleneck ranking — the "so what" layer of the profiler.

Input-sensitive profiles exist so developers can find the routine that
will blow up *first* as inputs grow, which is not the routine with the
biggest cost today.  This module fits every routine's worst-case cost
plot against the model family and ranks routines by how badly they
scale: growth class first, then the predicted cost at an extrapolated
input size.

A routine with a handful of points cannot be fitted meaningfully, so
profiles below ``min_points`` are skipped (and reported as such).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..core.profile_data import ProfileDatabase
from ..curvefit.selection import Selection, select_model
from .ascii_charts import table

__all__ = ["Bottleneck", "rank_bottlenecks", "render_bottlenecks"]


class Bottleneck(NamedTuple):
    """One routine's scaling diagnosis."""

    routine: str
    growth: str
    r2: float
    points: int
    max_size: int
    cost_at_max: float
    #: predicted cost if the input grew 10x past the largest observed size
    projected_cost: float

    @property
    def projection_ratio(self) -> float:
        """How much worse 10x input is predicted to be."""
        if self.cost_at_max <= 0:
            return 0.0
        return self.projected_cost / self.cost_at_max


def rank_bottlenecks(
    db: ProfileDatabase,
    min_points: int = 4,
    extrapolate: float = 10.0,
) -> List[Bottleneck]:
    """Rank routines by asymptotic badness (worst first).

    Args:
        db: a profile database (routine- or context-keyed).
        min_points: minimum distinct input sizes for a fit to count.
        extrapolate: input-size multiplier used for the projection.
    """
    results: List[Bottleneck] = []
    for routine, profile in db.merged().items():
        points = profile.worst_case_points()
        if len(points) < min_points:
            continue
        selection: Selection = select_model(points)
        max_size = points[-1][0]
        cost_at_max = float(points[-1][1])
        projected = selection.best.predict(max_size * extrapolate)
        results.append(Bottleneck(
            routine=routine,
            growth=selection.name,
            r2=selection.best.r2,
            points=len(points),
            max_size=max_size,
            cost_at_max=cost_at_max,
            projected_cost=projected,
        ))
    results.sort(key=lambda item: (-item.best_order(), -item.projected_cost))
    return results


def _order_of(growth: str) -> int:
    from ..curvefit.models import DEFAULT_FAMILY

    for model in DEFAULT_FAMILY:
        if model.name == growth:
            return model.order
    return -1


# attach the order lookup without polluting the NamedTuple definition
def _best_order(self: Bottleneck) -> int:
    return _order_of(self.growth)


Bottleneck.best_order = _best_order


def render_bottlenecks(db: ProfileDatabase, min_points: int = 4,
                       limit: Optional[int] = 10) -> str:
    """Human-readable bottleneck ranking."""
    ranked = rank_bottlenecks(db, min_points=min_points)
    if limit is not None:
        ranked = ranked[:limit]
    rows = [
        [
            item.routine,
            item.growth,
            f"{item.r2:.3f}",
            item.points,
            item.max_size,
            f"{item.projection_ratio:.1f}x",
        ]
        for item in ranked
    ]
    return table(
        ["routine", "growth", "R^2", "points", "max input", "cost at 10x input"],
        rows,
        title="Asymptotic bottleneck ranking (worst scaling first)",
    )
