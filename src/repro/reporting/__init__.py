"""Reporting: ASCII charts, aprof-style reports, figure-series builders."""

from .ascii_charts import bars, scatter, table
from .bottlenecks import Bottleneck, rank_bottlenecks, render_bottlenecks
from .diffing import ProfileDiff, diff_databases, render_diff
from .html import render_html_report, svg_scatter, svg_timeline
from .telemetry import render_telemetry_dashboard, render_telemetry_html
from .tracing import (
    Trace,
    TraceSpan,
    assemble_traces,
    load_trace_spans,
    render_trace_waterfall,
    render_traces_html,
    slowest,
)
from .figures import (
    external_input_curve,
    induced_breakdown,
    richness_curve,
    thread_input_curve,
    volume_curve,
    worst_case_series,
)
from .report import (
    dump_points,
    parse_points,
    render_farm_stats,
    render_report,
    routine_summary,
)

__all__ = [
    "Bottleneck",
    "rank_bottlenecks",
    "render_bottlenecks",
    "bars",
    "scatter",
    "table",
    "external_input_curve",
    "induced_breakdown",
    "richness_curve",
    "thread_input_curve",
    "volume_curve",
    "worst_case_series",
    "dump_points",
    "parse_points",
    "render_farm_stats",
    "render_report",
    "render_html_report",
    "render_telemetry_dashboard",
    "render_telemetry_html",
    "svg_timeline",
    "Trace",
    "TraceSpan",
    "assemble_traces",
    "load_trace_spans",
    "render_trace_waterfall",
    "render_traces_html",
    "slowest",
    "ProfileDiff",
    "diff_databases",
    "render_diff",
    "svg_scatter",
    "routine_summary",
]
