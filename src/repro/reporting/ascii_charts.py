"""Terminal rendering: scatter plots, tables and bar charts.

The benchmarks regenerate the paper's figures as data series; these
helpers draw them as ASCII so ``pytest benchmarks/ -s`` output is
readable on its own.  Rendering is intentionally dependency-free.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = ["scatter", "table", "bars", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[Optional[float]],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render a numeric series as one row of block characters.

    Scaling is min..max of the series unless ``lo``/``hi`` pin the
    range (the observatory pins growth-exponent sparklines to a shared
    scale so rows are comparable).  Gaps (None values) render as ``·``.
    """
    present = [value for value in values if value is not None]
    if not present:
        return "·" * len(values)
    floor = min(present) if lo is None else lo
    ceiling = max(present) if hi is None else hi
    span = (ceiling - floor) or 1.0
    cells = []
    for value in values:
        if value is None:
            cells.append("·")
            continue
        level = int((value - floor) / span * (len(_SPARK_LEVELS) - 1))
        cells.append(_SPARK_LEVELS[max(0, min(level, len(_SPARK_LEVELS) - 1))])
    return "".join(cells)


def _format_number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.2f}"
    return str(int(value))


def scatter(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    xlabel: str = "input size",
    ylabel: str = "cost",
    marker: str = "*",
) -> str:
    """Render ``(x, y)`` points as an ASCII scatter plot."""
    if not points:
        return f"{title}\n(no points)\n"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = _format_number(y_max)
    bottom_label = _format_number(y_min)
    label_width = max(len(top_label), len(bottom_label))
    for index, row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(label_width)
        elif index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_left = _format_number(x_min)
    x_right = _format_number(x_max)
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * (label_width + 2) + x_left + " " * max(padding, 1) + x_right
    )
    lines.append(" " * (label_width + 2) + f"x: {xlabel}   y: {ylabel}")
    return "\n".join(lines) + "\n"


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    left: Sequence[int] = (),
) -> str:
    """Render a padded text table.

    Cells are right-justified (the numeric default); column indices in
    ``left`` are left-justified instead — the telemetry span tree needs
    its indentation to survive padding.
    """
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    leftward = set(left)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(
            cell.ljust(w) if index in leftward else cell.rjust(w)
            for index, (cell, w) in enumerate(zip(row, widths))))
    return "\n".join(lines) + "\n"


def bars(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render labelled horizontal bars (used for the Figure 17 histogram)."""
    if not items:
        return f"{title}\n(no data)\n"
    label_width = max(len(label) for label, _ in items)
    peak = max(value for _, value in items) or 1.0
    lines = []
    if title:
        lines.append(title)
    for label, value in items:
        bar = "#" * max(0, int(value / peak * width))
        lines.append(f"{label.rjust(label_width)} |{bar} {value:.1f}{unit}")
    return "\n".join(lines) + "\n"
