"""aprof-style text reports from profile databases.

The original aprof writes one report file per profiling session; tools
downstream plot from it.  This module renders the equivalent from a
:class:`~repro.core.profile_data.ProfileDatabase`: a per-routine summary
(calls, distinct input sizes, cost envelope, induced-input split) and a
machine-readable dump of every plot point.
"""

from __future__ import annotations

from typing import List, TextIO

from ..core.metrics import induced_split
from ..core.profile_data import ProfileDatabase, RoutineProfile
from .ascii_charts import table

__all__ = [
    "routine_summary",
    "render_report",
    "dump_points",
    "parse_points",
    "render_farm_stats",
]


def routine_summary(profile: RoutineProfile) -> List:
    """One summary row for a routine profile."""
    worst = max((stats.cost_max for stats in profile.points.values()), default=0)
    induced = profile.induced_sum
    induced_pct = 100.0 * induced / profile.size_sum if profile.size_sum else 0.0
    return [
        profile.routine,
        profile.thread if profile.thread >= 0 else "all",
        profile.calls,
        profile.distinct_sizes,
        profile.size_sum,
        worst,
        f"{induced_pct:.1f}%",
    ]


def render_report(db: ProfileDatabase, merged: bool = True, title: str = "profile") -> str:
    """Human-readable session report."""
    if merged:
        profiles = sorted(db.merged().values(), key=lambda p: -p.cost_sum)
    else:
        profiles = sorted(db, key=lambda p: (-p.cost_sum, p.thread))
    rows = [routine_summary(profile) for profile in profiles]
    headers = ["routine", "thread", "calls", "points", "input", "worst", "induced"]
    thread_pct, external_pct = induced_split(db)
    footer = (
        f"threads: {len(db.threads())}   routines: {len(db.routines())}   "
        f"induced split: {thread_pct:.1f}% thread / {external_pct:.1f}% external\n"
    )
    return table(headers, rows, title=title) + footer


def _shard_counter(stats, name: str, shard_id: int, fallback: int) -> int:
    """A per-shard counter value from the farm's telemetry snapshot.

    The engine counts retries/timeouts/fallbacks in its metrics
    registry as they happen; the snapshot rides along in
    ``FarmStats.metrics``.  Older/synthetic stats without a snapshot
    fall back to the value mirrored on the outcome itself.
    """
    for entry in stats.metrics or ():
        if (entry.get("kind") == "counter" and entry.get("name") == name
                and entry.get("labels", {}).get("shard") == shard_id):
            return entry["value"]
    return fallback


def render_farm_stats(stats) -> str:
    """Progress/health report of one farm run (``repro.farm.FarmStats``).

    One row per shard — where it ran, how many pool attempts it took,
    how the worker split its time between decode and analysis,
    heartbeat-reported peak RSS and throughput — plus the per-shard
    failure ledger (retries / timeouts / inline fallback), sourced from
    the farm's telemetry counters, and a footer with the plan strategy
    and aggregate tallies.
    """
    rows = []
    for outcome in stats.outcomes:
        fell_back = _shard_counter(
            stats, "farm.shard.fallbacks", outcome.shard_id,
            1 if outcome.where == "inline" and stats.jobs > 1 else 0)
        rows.append([
            outcome.shard_id,
            len(outcome.threads),
            outcome.events,
            f"{outcome.seconds * 1000:.1f}ms",
            f"{outcome.decode_seconds * 1000:.0f}/"
            f"{outcome.analyze_seconds * 1000:.0f}ms",
            f"{outcome.events_per_s:,.0f}",
            outcome.heartbeats,
            f"{outcome.max_rss_kb / 1024:.0f}M" if outcome.max_rss_kb else "-",
            outcome.attempts,
            _shard_counter(stats, "farm.shard.retries",
                           outcome.shard_id, outcome.retries),
            _shard_counter(stats, "farm.shard.timeouts",
                           outcome.shard_id, outcome.timeouts),
            outcome.where + ("!" if fell_back else ""),
        ])
    headers = ["shard", "threads", "events", "time", "dec/ana", "events/s",
               "beats", "rss", "attempts", "retries", "timeouts", "ran"]
    footer = (
        f"plan: {stats.strategy}   jobs: {stats.jobs}   "
        f"kernel: {getattr(stats, 'kernel', 'classic')}   "
        f"trace events: {stats.event_count}   wall: {stats.wall_seconds * 1000:.1f}ms\n"
        f"retries: {stats.retries}   inline fallbacks: {stats.fallbacks}   "
        f"pool failures: {stats.pool_failures}\n"
        "('!' marks a shard that exhausted its pool attempts and ran inline)\n"
    )
    return table(headers, rows, title="farm shards") + footer


def dump_points(db: ProfileDatabase, stream: TextIO) -> int:
    """Write every plot point as tab-separated values; return the count.

    Format per line: routine, thread, size, calls, min, max, sum —
    the information aprof's report files carry per (routine, rms) pair.
    """
    count = 0
    for profile in db:
        for size in sorted(profile.points):
            stats = profile.points[size]
            stream.write(
                f"{profile.routine}\t{profile.thread}\t{size}\t"
                f"{stats.calls}\t{stats.cost_min}\t{stats.cost_max}\t{stats.cost_sum}\n"
            )
            count += 1
    return count


def parse_points(stream: TextIO) -> ProfileDatabase:
    """Rebuild a database from :func:`dump_points` output.

    Reconstructs aggregate-equivalent profiles: per (routine, thread,
    size) the call count and cost envelope survive the round trip; the
    per-activation induced split does not (the dump format, like
    aprof's, does not carry it).
    """
    db = ProfileDatabase()
    for line in stream:
        line = line.strip()
        if not line:
            continue
        routine, thread, size, calls, cost_min, cost_max, cost_sum = line.split("\t")
        calls = int(calls)
        cost_min = int(cost_min)
        cost_max = int(cost_max)
        cost_sum = int(cost_sum)
        size = int(size)
        thread = int(thread)
        # reconstruct the envelope: min and max once, the rest at the mean
        remaining = calls - 2
        if calls == 1:
            db.add_activation(routine, thread, size, cost_max)
            continue
        db.add_activation(routine, thread, size, cost_min)
        db.add_activation(routine, thread, size, cost_max)
        if remaining > 0:
            body = cost_sum - cost_min - cost_max
            base = body // remaining
            extra = body - base * remaining
            for index in range(remaining):
                db.add_activation(
                    routine, thread, size, base + (1 if index < extra else 0)
                )
    return db
